"""Tests for the experiment engine: cache round-trips, grid runner, CLI."""

import json
import math
import subprocess
import sys

import numpy as np
import pytest

from repro.cdag.schemes import get_scheme
from repro.cdag.strassen_cdag import dec_graph, h_graph
from repro.core.expansion import exact_edge_expansion
from repro.engine import (
    EngineCache,
    GridPoint,
    GridSpec,
    cache_key,
    cached_dec_graph,
    cached_estimate,
    cached_h_graph,
    cached_spectrum,
    evaluate_point,
    run_grid,
    scheme_fingerprint,
)
from repro.engine.cli import main


@pytest.fixture
def cache(tmp_path):
    return EngineCache(tmp_path / "cache")


def _rows_equal(a: dict, b: dict) -> bool:
    if a.keys() != b.keys():
        return False
    for key in a:
        x, y = a[key], b[key]
        if isinstance(x, float) and isinstance(y, float):
            if math.isnan(x) and math.isnan(y):
                continue
            if not math.isclose(x, y, rel_tol=1e-12, abs_tol=1e-15):
                return False
        elif x != y:
            return False
    return True


class TestKeys:
    def test_key_distinguishes_depth_options_and_scheme(self):
        s = get_scheme("strassen")
        w = get_scheme("winograd")
        keys = {
            cache_key("dec", s, k=2, expand_trees=False),
            cache_key("dec", s, k=3, expand_trees=False),
            cache_key("dec", s, k=2, expand_trees=True),
            cache_key("dec", w, k=2, expand_trees=False),
            cache_key("spectrum", s, k=2),
        }
        assert len(keys) == 5

    def test_fingerprint_is_content_addressed(self):
        # same coefficients under a different registry name share artifacts
        s = get_scheme("strassen")
        from repro.cdag.schemes import BilinearScheme

        clone = BilinearScheme(
            "renamed", s.m0, s.n0, s.p0, s.U.copy(), s.V.copy(), s.W.copy()
        )
        assert scheme_fingerprint(clone) == scheme_fingerprint(s)


class TestCacheRoundTrip:
    def test_graph_roundtrip_is_bit_identical(self, cache, tmp_path):
        g1 = cached_dec_graph("strassen", 3, cache=cache)
        assert cache.stats.builds == 1
        # a fresh instance over the same root: pure disk hit, no rebuild
        cache2 = EngineCache(tmp_path / "cache")
        g2 = cached_dec_graph("strassen", 3, cache=cache2)
        assert cache2.stats.builds == 0
        assert cache2.stats.hits == 1
        direct = dec_graph("strassen", 3)
        for loaded in (g1, g2):
            assert loaded.n_vertices == direct.n_vertices
            for name in ("src", "dst", "kinds", "levels"):
                a, b = getattr(loaded, name), getattr(direct, name)
                assert a.dtype == b.dtype
                assert np.array_equal(a, b)

    def test_second_lookup_is_a_memory_hit(self, cache):
        g1 = cached_dec_graph("strassen", 2, cache=cache)
        before = cache.stats.as_dict()
        assert cached_dec_graph("strassen", 2, cache=cache) is g1
        delta = cache.stats.delta_since(before)
        assert delta["hits"] == 1 and delta["builds"] == 0

    def test_h_graph_roundtrip(self, cache, tmp_path):
        cached_h_graph("strassen", 2, cache=cache)
        cache2 = EngineCache(tmp_path / "cache")
        hg2 = cached_h_graph("strassen", 2, cache=cache2)
        assert cache2.stats.builds == 0
        direct = h_graph("strassen", 2)
        assert hg2.cdag.n_vertices == direct.cdag.n_vertices
        assert hg2.cdag.n_edges == direct.cdag.n_edges
        for name in ("a_inputs", "b_inputs", "mult_ids", "output_ids", "dec_ids"):
            assert np.array_equal(getattr(hg2, name), getattr(direct, name))
        assert hg2.scheme_name == "strassen" and hg2.k == 2

    def test_spectrum_roundtrip(self, cache, tmp_path):
        lower1, fiedler1 = cached_spectrum("strassen", 3, cache=cache)
        cache2 = EngineCache(tmp_path / "cache")
        lower2, fiedler2 = cached_spectrum("strassen", 3, cache=cache2)
        assert cache2.stats.builds == 0
        assert lower1 == lower2
        assert np.array_equal(fiedler1, fiedler2)

    def test_estimate_roundtrip(self, cache, tmp_path):
        est1 = cached_estimate("strassen", 3, policy="spectral", cache=cache)
        cache2 = EngineCache(tmp_path / "cache")
        est2 = cached_estimate("strassen", 3, policy="spectral", cache=cache2)
        assert cache2.stats.builds == 0
        assert est1 == est2  # exact float equality through the npz round-trip

    def test_memory_only_cache_never_touches_disk(self, tmp_path):
        root = tmp_path / "never-created"
        c = EngineCache(root, disk=False)
        cached_dec_graph("strassen", 2, cache=c)
        assert not root.exists()

    def test_corrupt_entry_is_a_miss_and_rebuilt(self, cache, tmp_path):
        cached_dec_graph("strassen", 2, cache=cache)
        for path in (tmp_path / "cache").glob("*/*.npz"):
            path.write_bytes(b"not a zip file")
        cache2 = EngineCache(tmp_path / "cache")
        g = cached_dec_graph("strassen", 2, cache=cache2)
        assert cache2.stats.builds == 1
        assert g.n_vertices == dec_graph("strassen", 2).n_vertices

    def test_clear_and_info(self, cache):
        cached_dec_graph("strassen", 2, cache=cache)
        info = cache.info()
        assert info["entries"] >= 1 and info["bytes"] > 0
        removed = cache.clear()
        assert removed == info["entries"]
        assert cache.info()["entries"] == 0


class TestStatsReset:
    def test_reset_stats_zeroes_counters_and_returns_old(self, cache):
        cached_dec_graph("strassen", 2, cache=cache)   # one build
        cached_dec_graph("strassen", 2, cache=cache)   # one memory hit
        before = cache.stats_snapshot()
        assert before["builds"] == 1 and before["hits"] == 1
        old = cache.reset_stats()
        assert old == before
        assert cache.stats.as_dict() == {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "builds": 0,
            "disk_errors": 0,
            "evictions": 0,
        }

    def test_reset_preserves_cached_artifacts(self, cache):
        g1 = cached_dec_graph("strassen", 2, cache=cache)
        cache.reset_stats()
        g2 = cached_dec_graph("strassen", 2, cache=cache)
        assert g2 is g1  # still a decoded-object hit, not a rebuild
        after = cache.stats.as_dict()
        assert after["builds"] == 0 and after["hits"] == 1

    def test_cold_warm_accounting_is_exact(self, cache):
        # the bench harness's pattern: warm the cache, reset, then measure
        cached_estimate("strassen", 2, cache=cache)
        cache.reset_stats()
        cached_estimate("strassen", 2, cache=cache)
        stats = cache.stats.as_dict()
        assert stats == {
            "hits": 1,
            "misses": 0,
            "stores": 0,
            "builds": 0,
            "disk_errors": 0,
            "evictions": 0,
        }


class TestEstimatePolicies:
    def test_exact_policy_matches_enumeration(self, cache):
        est = cached_estimate("strassen", 1, policy="exact", cache=cache)
        h, mask = exact_edge_expansion(dec_graph("strassen", 1))
        assert est.lower == est.upper == pytest.approx(h)
        assert est.method == "exact"

    def test_auto_policy_selects_by_size(self, cache):
        assert cached_estimate("strassen", 1, cache=cache).method == "exact"
        est3 = cached_estimate("strassen", 3, cache=cache)
        assert est3.method.startswith("spectral")
        est5 = cached_estimate("strassen", 5, cache=cache)
        assert est5.method == "cone-only"
        assert math.isnan(est5.lower)

    def test_unknown_policy_rejected(self, cache):
        with pytest.raises(ValueError, match="policy"):
            cached_estimate("strassen", 2, policy="bogus", cache=cache)

    def test_auto_estimates_track_exact_limit_changes(self, cache, monkeypatch):
        """Changing REPRO_EXACT_LIMIT must never replay a stale auto estimate.

        The auto policy's method choice depends on the enumeration ceiling,
        so the effective ceiling is part of the estimate's cache key; before
        that, lowering the env var after a warm run kept returning the
        exact-method artifact computed under the old ceiling.
        """
        warm = cached_estimate("strassen", 1, policy="auto", cache=cache)
        assert warm.method == "exact"  # 11 vertices, default ceiling 28

        monkeypatch.setenv("REPRO_EXACT_LIMIT", "1")
        shrunk = cached_estimate("strassen", 1, policy="auto", cache=cache)
        assert shrunk.method.startswith("spectral")  # not the stale exact entry

        monkeypatch.delenv("REPRO_EXACT_LIMIT")
        restored = cached_estimate("strassen", 1, policy="auto", cache=cache)
        assert restored.method == "exact"
        assert restored == warm

    def test_fixed_policies_are_limit_independent(self, cache, monkeypatch):
        warm = cached_estimate("strassen", 1, policy="exact", cache=cache)
        hits_before = cache.stats.hits
        monkeypatch.setenv("REPRO_EXACT_LIMIT", "1")
        again = cached_estimate("strassen", 1, policy="exact", cache=cache)
        assert again == warm
        assert cache.stats.hits > hits_before  # same key: served from cache


class TestGrid:
    SPEC = GridSpec.from_ranges(
        schemes=("strassen", "winograd"), k_max=3, memories=(48, 192)
    )

    def test_warm_sweep_has_zero_rebuilds(self, cache):
        cold = run_grid(self.SPEC, cache=cache)
        assert cold.rebuilds > 0
        warm = run_grid(self.SPEC, cache=cache)
        assert warm.rebuilds == 0
        assert warm.stats["hits"] > 0
        assert len(warm.rows) == len(self.SPEC.points())
        for a, b in zip(cold.rows, warm.rows):
            assert _rows_equal(a, b)

    def test_parallel_equals_serial(self, tmp_path):
        serial = run_grid(self.SPEC, cache=EngineCache(tmp_path / "serial"))
        parallel = run_grid(
            self.SPEC, workers=2, cache=EngineCache(tmp_path / "parallel")
        )
        assert parallel.workers == 2
        assert len(parallel.rows) == len(serial.rows)
        for a, b in zip(serial.rows, parallel.rows):
            assert _rows_equal(a, b)

    def test_row_fields(self, cache):
        row = evaluate_point(GridPoint("strassen", 2, 48), cache=cache)
        assert row["V"] == 93 and row["n"] == 4
        assert row["io_lower_bound"] > 0
        assert row["measured_words"] > 0
        assert row["method"] in ("exact", "spectral+sweep", "spectral+cone")

    def test_report_json_serializes(self, cache):
        report = run_grid(self.SPEC, cache=cache)
        decoded = json.loads(report.to_json())
        assert decoded["stats"]["builds"] == report.rebuilds
        assert len(decoded["rows"]) == len(report.rows)

    def test_report_json_is_strict_for_nan_rows(self, cache):
        # cone-only rows carry h_lower = NaN; JSON output must map it to
        # null (literal NaN is rejected by strict parsers)
        spec = GridSpec(schemes=("strassen",), ks=(5,), memories=(192,))
        report = run_grid(spec, cache=cache)
        assert math.isnan(report.rows[0]["h_lower"])
        text = report.to_json()
        assert "NaN" not in text
        assert json.loads(text)["rows"][0]["h_lower"] is None


class TestCLI:
    def test_schemes_listing(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "strassen" in out and "winograd" in out

    def test_sweep_smoke(self, tmp_path, capsys):
        argv = [
            "--cache-dir",
            str(tmp_path / "c"),
            "sweep",
            "--schemes",
            "strassen",
            "--k-max",
            "2",
            "--memories",
            "48",
            "192",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "builds=" in first
        assert main(argv) == 0  # warm: same grid, zero rebuilds
        second = capsys.readouterr().out
        assert "builds=0" in second

    def test_sweep_json(self, tmp_path, capsys):
        assert (
            main(
                [
                    "--cache-dir",
                    str(tmp_path / "c"),
                    "sweep",
                    "--schemes",
                    "strassen",
                    "--k-max",
                    "1",
                    "--memories",
                    "48",
                    "--json",
                ]
            )
            == 0
        )
        decoded = json.loads(capsys.readouterr().out)
        assert decoded["rows"][0]["scheme"] == "strassen"

    def test_expansion_command(self, tmp_path, capsys):
        assert (
            main(
                [
                    "--cache-dir",
                    str(tmp_path / "c"),
                    "expansion",
                    "--scheme",
                    "strassen",
                    "--k",
                    "2",
                ]
            )
            == 0
        )
        decoded = json.loads(capsys.readouterr().out)
        assert decoded["lower"] <= decoded["upper"]

    def test_cache_info_and_clear(self, tmp_path, capsys):
        root = str(tmp_path / "c")
        main(["--cache-dir", root, "expansion", "--k", "1"])
        capsys.readouterr()
        assert main(["--cache-dir", root, "cache", "info"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["entries"] >= 1
        assert main(["--cache-dir", root, "cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out

    def test_module_entry_point(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--cache-dir", str(tmp_path), "schemes"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "strassen" in proc.stdout
