"""Tests for the parallel algorithms: numerics, costs, memory regimes."""

import math

import numpy as np
import pytest

from repro.parallel import ParallelConfig, get_parallel
from repro.parallel.caps import quadtree_permutation, validate_caps_geometry
from repro.cdag.schemes import get_scheme
from repro.util.matgen import integer_matrix, random_matrix


def _pair(n, s1=11, s2=13):
    return integer_matrix(n, seed=s1), integer_matrix(n, seed=s2)


def _execute(name, A, B, p, *, c=1, scheme=None, schedule=None, memory_limit=None):
    cfg = ParallelConfig(
        n=A.shape[0], p=p, c=c, scheme=scheme, schedule=schedule,
        memory_limit=memory_limit,
    )
    return get_parallel(name).execute(A, B, cfg)


def cannon_multiply(A, B, q, memory_limit=None):
    return _execute("cannon", A, B, q * q, memory_limit=memory_limit)


def summa_multiply(A, B, q, memory_limit=None):
    return _execute("summa", A, B, q * q, memory_limit=memory_limit)


def threed_multiply(A, B, q, memory_limit=None):
    return _execute("3d", A, B, q**3, memory_limit=memory_limit)


def two5d_multiply(A, B, q, c, memory_limit=None):
    return _execute("2.5d", A, B, q * q * c, c=c, memory_limit=memory_limit)


def caps_multiply(A, B, ell, schedule=None, memory_limit=None, scheme="strassen"):
    t0 = get_scheme(scheme).t0
    return _execute(
        "caps", A, B, t0**ell, scheme=scheme, schedule=schedule,
        memory_limit=memory_limit,
    )


class TestCannon:
    @pytest.mark.parametrize("q", [1, 2, 3, 4])
    def test_exact_product(self, q):
        n = 12
        A, B = _pair(n)
        r = cannon_multiply(A, B, q)
        assert np.array_equal(r.C, A @ B)

    def test_bandwidth_exact_form(self):
        # measured = skew (2 permutations) + 2(q-1) shift rounds, each 2b²
        n, q = 32, 4
        A, B = _pair(n)
        r = cannon_multiply(A, B, q)
        b2 = (n // q) ** 2
        assert r.critical_words == 2 * 2 * b2 + 2 * (q - 1) * 2 * b2

    def test_bandwidth_scales_inverse_sqrt_p(self):
        n = 64
        A, B = _pair(n)
        words = [cannon_multiply(A, B, q).critical_words for q in (2, 4, 8)]
        assert words[0] / words[1] == pytest.approx(2.0, rel=0.1)
        assert words[1] / words[2] == pytest.approx(2.0, rel=0.1)

    def test_minimal_memory_regime(self):
        # Cannon is a "2D" algorithm: peak memory Θ(n²/p), here exactly 3 blocks + transit
        n, q = 32, 4
        A, B = _pair(n)
        r = cannon_multiply(A, B, q)
        assert r.max_mem_peak <= 5 * (n // q) ** 2

    def test_memory_limit_respected(self):
        n, q = 32, 4
        A, B = _pair(n)
        r = cannon_multiply(A, B, q, memory_limit=5 * (n // q) ** 2)
        assert np.array_equal(r.C, A @ B)

    def test_float_inputs(self):
        A = random_matrix(24, seed=3)
        B = random_matrix(24, seed=4)
        r = cannon_multiply(A, B, 2)
        assert np.allclose(r.C, A @ B, atol=1e-12)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            cannon_multiply(np.zeros((4, 6)), np.zeros((4, 6)), 2)

    def test_rejects_indivisible_grid_up_front(self):
        # q ∤ n used to reach b = n // q and truncate; now a clear error
        with pytest.raises(ValueError, match="not divisible by grid side"):
            cannon_multiply(np.eye(10), np.eye(10), 3)


class TestSumma:
    @pytest.mark.parametrize("q", [2, 3, 4])
    def test_exact_product(self, q):
        n = 24
        A, B = _pair(n)
        r = summa_multiply(A, B, q)
        assert np.array_equal(r.C, A @ B)

    def test_lg_factor_vs_cannon(self):
        # SUMMA pays a lg q broadcast factor over Cannon
        n = 64
        A, B = _pair(n)
        c = cannon_multiply(A, B, 8).critical_words
        s = summa_multiply(A, B, 8).critical_words
        assert s > c
        assert s < c * (1 + math.log2(8))

    def test_rejects_indivisible_grid_up_front(self):
        with pytest.raises(ValueError, match="not divisible by grid side"):
            summa_multiply(np.eye(10), np.eye(10), 3)


class TestThreeD:
    @pytest.mark.parametrize("q", [2, 3, 4])
    def test_exact_product(self, q):
        n = 12
        A, B = _pair(n)
        r = threed_multiply(A, B, q)
        assert np.array_equal(r.C, A @ B)

    def test_memory_is_3d_regime(self):
        # per-rank peak Θ(n²/p^(2/3)): a few blocks of size (n/q)²
        n, q = 32, 4
        A, B = _pair(n)
        r = threed_multiply(A, B, q)
        assert r.max_mem_peak <= 6 * (n // q) ** 2

    def test_at_least_matches_cannon_at_same_p(self):
        # p = 64: 3D (q=4) vs 2D Cannon (q=8).  Table I promises a p^(1/6)
        # asymptotic win; at p=64 the broadcast lg-factors eat it, so the
        # sharp check is "no worse", with the scaling fit in E6 showing the
        # different exponents.
        n = 64
        A, B = _pair(n)
        w3 = threed_multiply(A, B, 4).critical_words
        w2 = cannon_multiply(A, B, 8).critical_words
        assert w3 <= w2

    def test_divisibility_check(self):
        with pytest.raises(ValueError):
            threed_multiply(np.eye(10), np.eye(10), 4)


class TestTwo5D:
    @pytest.mark.parametrize("q,c", [(2, 1), (2, 2), (4, 1), (4, 2), (4, 4), (6, 3)])
    def test_exact_product(self, q, c):
        n = 24
        A, B = _pair(n)
        r = two5d_multiply(A, B, q, c)
        assert np.array_equal(r.C, A @ B)

    def test_c1_matches_cannon_shape(self):
        n = 32
        A, B = _pair(n)
        w25 = two5d_multiply(A, B, 4, 1).critical_words
        wc = cannon_multiply(A, B, 4).critical_words
        assert w25 == wc  # c=1 degenerates to Cannon exactly

    def test_memory_grows_with_c_at_fixed_p(self):
        # the regime statement M = Θ(c·n²/p) is at fixed p: p = 64 via
        # (q=8, c=1) vs (q=4, c=4) — replication costs real memory
        n = 32
        A, B = _pair(n)
        m1 = two5d_multiply(A, B, 8, 1).max_mem_peak
        m4 = two5d_multiply(A, B, 4, 4).max_mem_peak
        assert m4 > m1

    def test_shift_phase_shrinks_with_c(self):
        # count only the shift supersteps: q/c-1 rounds instead of q-1
        n = 32
        A, B = _pair(n)
        r1 = two5d_multiply(A, B, 4, 1)
        r4 = two5d_multiply(A, B, 4, 4)
        shifts1 = sum(1 for s in r1.machine.log.steps if s.label.startswith("shift"))
        shifts4 = sum(1 for s in r4.machine.log.steps if s.label.startswith("shift"))
        assert shifts4 < shifts1

    def test_c_must_divide_q(self):
        with pytest.raises(ValueError):
            two5d_multiply(np.eye(8), np.eye(8), 4, 3)


class TestQuadtreePermutation:
    def test_identity_at_depth_zero(self):
        assert np.array_equal(quadtree_permutation(4, 0), np.arange(16))

    def test_depth_one_blocks(self):
        perm = quadtree_permutation(2, 1)
        assert perm.tolist() == [0, 1, 2, 3]  # 1x1 leaves in row-major quads

    def test_permutation_is_bijection(self):
        perm = quadtree_permutation(8, 2)
        assert sorted(perm.tolist()) == list(range(64))

    def test_quadrants_contiguous(self):
        n, d = 8, 1
        perm = quadtree_permutation(n, d)
        M = np.arange(64).reshape(8, 8)
        flat = M.ravel()[perm]
        # first quarter must be exactly the top-left quadrant row-major
        assert np.array_equal(flat[:16], M[:4, :4].ravel())

    def test_divisibility_enforced(self):
        with pytest.raises(ValueError):
            quadtree_permutation(6, 2)


class TestCapsGeometry:
    def test_valid_geometry_accepts(self):
        validate_caps_geometry(14, 7, "B")
        validate_caps_geometry(28, 49, "BB")
        validate_caps_geometry(56, 49, "DBB")

    def test_wrong_bfs_count(self):
        with pytest.raises(ValueError, match="BFS steps"):
            validate_caps_geometry(28, 49, "B")

    def test_divisibility_violation(self):
        with pytest.raises(ValueError, match="does not divide"):
            validate_caps_geometry(8, 7, "B")

    def test_bad_symbol(self):
        with pytest.raises(ValueError, match="'B'/'D'"):
            validate_caps_geometry(28, 7, "XB"[:1] + "B")


class TestCaps:
    @pytest.mark.parametrize("n,ell,sched", [
        (14, 1, "B"),
        (28, 1, "B"),
        (28, 1, "DB"),
        (28, 1, "BD"),
        (28, 2, "BB"),
        (56, 2, "DBB"),
        (56, 2, "BDB"),
        (56, 2, "BBD"),
    ])
    def test_exact_product(self, n, ell, sched):
        A, B = _pair(n)
        r = caps_multiply(A, B, ell, schedule=sched)
        assert np.array_equal(r.C, A @ B)

    def test_float_numerics(self):
        A = random_matrix(28, seed=5)
        B = random_matrix(28, seed=6)
        r = caps_multiply(A, B, 1)
        assert np.allclose(r.C, A @ B, atol=1e-12)

    def test_winograd_scheme_works(self):
        A, B = _pair(28)
        r = caps_multiply(A, B, 1, scheme="winograd")
        assert np.array_equal(r.C, A @ B)

    def test_dfs_trades_bandwidth_for_memory(self):
        # the CAPS tradeoff: more DFS steps -> fewer words of memory,
        # more words of communication
        A, B = _pair(56)
        bb = caps_multiply(A, B, 2, schedule="BB")
        dbb = caps_multiply(A, B, 2, schedule="DBB")
        assert dbb.max_mem_peak < bb.max_mem_peak
        assert dbb.critical_words > bb.critical_words

    def test_bfs_comm_only_in_redistribution(self):
        # all-DFS-then-base would be ell=0; with one B, supersteps = 2
        A, B = _pair(14)
        r = caps_multiply(A, B, 1, schedule="B")
        labels = [s.label for s in r.machine.log.steps]
        assert all("caps-bfs" in lab for lab in labels)
        assert len(labels) == 2  # forward + inverse redistribution

    def test_dfs_step_is_communication_free(self):
        A, B = _pair(28)
        r_db = caps_multiply(A, B, 1, schedule="DB")
        # DB: the D step adds no supersteps; only the B step's 2 remain,
        # but run 7 times (once per DFS branch) = 14
        assert all("caps-bfs" in s.label for s in r_db.machine.log.steps)

    def test_rectangular_scheme_rejected(self):
        A, B = _pair(16)
        with pytest.raises(ValueError, match="square scheme"):
            caps_multiply(A, B, 1, scheme="strassen122")

    def test_scheme_driven_3x3_recursion(self):
        # the layout generalizes beyond 2x2: classical3 runs on 27 ranks
        A, B = _pair(27)
        r = caps_multiply(A, B, 1, scheme="classical3")
        assert r.p == 27
        assert np.allclose(r.C, A @ B)

    def test_memory_limit_enforcement(self):
        A, B = _pair(56)
        lean = caps_multiply(A, B, 2, schedule="DBB").max_mem_peak
        # the all-BFS schedule cannot run within the lean footprint
        with pytest.raises(MemoryError):
            caps_multiply(A, B, 2, schedule="BB", memory_limit=lean)
