"""Tests for the grid/block-distribution helpers (repro.machine.distmatrix)."""

import numpy as np
import pytest

from repro.machine.distmatrix import Grid2D, Grid3D, distribute_blocks, gather_blocks
from repro.machine.distributed import Machine
from repro.util.matgen import structured_matrix


class TestGrid2D:
    def test_rank_roundtrip(self):
        g = Grid2D(4)
        for i in range(4):
            for j in range(4):
                assert g.coords(g.rank(i, j)) == (i, j)

    def test_wraparound(self):
        g = Grid2D(4)
        assert g.rank(-1, 0) == g.rank(3, 0)
        assert g.rank(0, 5) == g.rank(0, 1)

    def test_rows_and_cols_partition(self):
        g = Grid2D(3)
        all_ranks = sorted(r for i in range(3) for r in g.row(i))
        assert all_ranks == list(range(9))
        all_ranks = sorted(r for j in range(3) for r in g.col(j))
        assert all_ranks == list(range(9))

    def test_p(self):
        assert Grid2D(5).p == 25


class TestGrid3D:
    def test_rank_roundtrip(self):
        g = Grid3D(3, 2)
        for i in range(3):
            for j in range(3):
                for layer in range(2):
                    assert g.coords(g.rank(i, j, layer)) == (i, j, layer)

    def test_fiber_spans_layers(self):
        g = Grid3D(2, 4)
        fiber = g.fiber(1, 0)
        assert len(fiber) == 4
        assert len(set(fiber)) == 4

    def test_p(self):
        assert Grid3D(4, 2).p == 32


class TestDistributeGather:
    def test_roundtrip_preserves_matrix(self):
        n, q = 12, 3
        X = structured_matrix(n, kind="index")
        grid = Grid2D(q)
        m = Machine(grid.p)
        distribute_blocks(m, X, "X", grid)
        back = gather_blocks(m, "X", grid, n)
        assert np.array_equal(back, X)

    def test_blocks_are_correct_slices(self):
        n, q = 8, 2
        X = structured_matrix(n, kind="index")
        grid = Grid2D(q)
        m = Machine(grid.p)
        distribute_blocks(m, X, "X", grid)
        assert np.array_equal(m.get(grid.rank(1, 0), "X"), X[4:, :4])

    def test_layer_rank_override(self):
        n, q = 8, 2
        X = structured_matrix(n, kind="index")
        grid3 = Grid3D(q, 3)
        face = Grid2D(q)
        m = Machine(grid3.p)
        distribute_blocks(m, X, "X", face, layer_rank=lambda i, j: grid3.rank(i, j, 2))
        # blocks live on layer 2, not layer 0
        assert m.has(grid3.rank(0, 0, 2), "X")
        assert not m.has(grid3.rank(0, 0, 0), "X")
        back = gather_blocks(m, "X", face, n, layer_rank=lambda i, j: grid3.rank(i, j, 2))
        assert np.array_equal(back, X)

    def test_indivisible_rejected(self):
        m = Machine(4)
        with pytest.raises(ValueError, match="not divisible"):
            distribute_blocks(m, np.zeros((7, 7)), "X", Grid2D(2))

    def test_distribution_is_free(self):
        # initial layout costs nothing (the model's assumption, §1.1)
        n, q = 8, 2
        grid = Grid2D(q)
        m = Machine(grid.p)
        distribute_blocks(m, structured_matrix(n), "X", grid)
        assert m.critical_words == 0
        assert m.log.n_supersteps == 0
