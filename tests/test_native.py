"""Native (C kernel) exact-expansion backend: equivalence + loader contract.

The native backend must be a *pure accelerator*: bit-identical ``(h, mask)``
to the numpy bitset kernels on every input and every ``jobs`` value, and a
silent no-op when the compiled library cannot be produced (``REPRO_NATIVE=0``,
missing compiler).  These tests pin both halves of that contract; the CI
fallback leg re-runs the whole exact/certify surface with the build disabled.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdag.build import layered_circulant_cdag
from repro.cdag.graph import CDAG
from repro.core import _native
from repro.core.exact import (
    EXACT_BACKENDS,
    exact_edge_expansion_v2,
    native_backend_available,
)

needs_native = pytest.mark.skipif(
    not native_backend_available(),
    reason=f"native kernel unavailable: {_native.native_build_error()}",
)


def _random_graph(n: int, seed: int, p: float = 0.35) -> CDAG | None:
    rng = np.random.default_rng(seed)
    src, dst = [], []
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                src.append(i)
                dst.append(j)
    if not src:
        return None
    return CDAG(n, np.array(src), np.array(dst), np.zeros(n, dtype=np.int8))


class TestNativeEquivalence:
    """native ≡ bitset ≡ gray — the tentpole's bit-identity contract."""

    @needs_native
    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=2, max_value=14), seed=st.integers(0, 2**31 - 1))
    def test_native_matches_bitset_and_gray_on_random_cdags(self, n, seed):
        g = _random_graph(n, seed)
        if g is None:
            return
        h_b, m_b = exact_edge_expansion_v2(g, backend="bitset")
        h_n, m_n = exact_edge_expansion_v2(g, backend="native")
        h_g, m_g = exact_edge_expansion_v2(g, backend="gray")
        assert h_n == h_b == h_g
        assert np.array_equal(m_n, m_b) and np.array_equal(m_n, m_g)

    @needs_native
    @pytest.mark.parametrize("n", [12, 18, 22, 26])
    def test_native_matches_bitset_on_circulant_bench_graphs(self, n):
        g = layered_circulant_cdag(n)
        h_b, m_b = exact_edge_expansion_v2(g, backend="bitset")
        h_n, m_n = exact_edge_expansion_v2(g, backend="native")
        assert h_n == h_b
        assert np.array_equal(m_n, m_b)

    @needs_native
    @pytest.mark.parametrize("jobs", [1, 2, 3])
    def test_native_jobs_do_not_change_results(self, jobs):
        # n=18 > _LOW_BITS so the prefix space really shards over the pool.
        g = layered_circulant_cdag(18)
        h_b, m_b = exact_edge_expansion_v2(g, backend="bitset", jobs=1)
        h_n, m_n = exact_edge_expansion_v2(g, backend="native", jobs=jobs)
        assert h_n == h_b
        assert np.array_equal(m_n, m_b)

    @needs_native
    def test_restricted_walk_agrees_through_native_dispatch(self):
        # max_size= routes through the shared combinatorial machinery; the
        # answer must be identical whichever backend the caller named.
        g = layered_circulant_cdag(20)
        h_b, m_b = exact_edge_expansion_v2(g, max_size=4, backend="bitset")
        h_n, m_n = exact_edge_expansion_v2(g, max_size=4, backend="native")
        assert h_n == h_b
        assert np.array_equal(m_n, m_b)

    @needs_native
    def test_edgeless_graph_matches_bitset_nan_contract(self):
        g = CDAG(4, np.array([], dtype=np.int64), np.array([], dtype=np.int64),
                 np.zeros(4, dtype=np.int8))
        h_b, m_b = exact_edge_expansion_v2(g, backend="bitset")
        h_n, m_n = exact_edge_expansion_v2(g, backend="native")
        assert np.isnan(h_b) and np.isnan(h_n)
        assert np.array_equal(m_n, m_b)


class TestBackendSelection:
    def test_backend_registry_lists_native(self):
        assert EXACT_BACKENDS == ("auto", "native", "bitset", "gray")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            exact_edge_expansion_v2(layered_circulant_cdag(6), backend="simd")

    @needs_native
    def test_auto_equals_explicit_native(self):
        g = layered_circulant_cdag(14)
        h_a, m_a = exact_edge_expansion_v2(g, backend="auto")
        h_n, m_n = exact_edge_expansion_v2(g, backend="native")
        assert h_a == h_n
        assert np.array_equal(m_a, m_n)

    def test_explicit_native_raises_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        try:
            with pytest.raises(RuntimeError, match="native exact backend unavailable"):
                exact_edge_expansion_v2(layered_circulant_cdag(8), backend="native")
        finally:
            monkeypatch.undo()
            _native.reset()

    def test_auto_falls_back_silently_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        try:
            g = layered_circulant_cdag(12)
            h, m = exact_edge_expansion_v2(g, backend="auto")  # must not raise
            h_b, m_b = exact_edge_expansion_v2(g, backend="bitset")
            assert h == h_b
            assert np.array_equal(m, m_b)
        finally:
            monkeypatch.undo()
            _native.reset()


class TestLoaderContract:
    def test_disabled_via_env_returns_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        try:
            assert _native.load() is None
            assert not native_backend_available()
        finally:
            monkeypatch.undo()
            _native.reset()

    def test_missing_compiler_degrades_to_unavailable(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NATIVE", "1")  # even on the fallback CI leg
        monkeypatch.setenv("REPRO_NATIVE_CC", str(tmp_path / "no-such-cc"))
        monkeypatch.setenv("REPRO_NATIVE_DIR", str(tmp_path / "native"))
        _native.reset()
        try:
            assert _native.load() is None
            assert not native_backend_available()
            assert _native.native_build_error()  # the reason is recorded
        finally:
            monkeypatch.undo()
            _native.reset()

    @needs_native
    def test_compiled_library_is_content_addressed_and_cached(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NATIVE_DIR", str(tmp_path / "native"))
        _native.reset()
        try:
            lib = _native.load()
            assert lib is not None
            built = list((tmp_path / "native").glob("exactscan-*.so"))
            assert len(built) == 1
            # A second load attempt must reuse the cached build (same path).
            _native.reset()
            assert _native.load() is not None
            assert list((tmp_path / "native").glob("exactscan-*.so")) == built
        finally:
            monkeypatch.undo()
            _native.reset()

    @needs_native
    def test_abi_version_exported(self):
        lib = _native.load()
        assert lib is not None
        assert int(lib.repro_native_abi()) == _native.NATIVE_ABI
