"""Tests for the sequential two-level machine (repro.machine.cache)."""

import pytest

from repro.machine.cache import FastMemory, streamed_add_cost


class TestCapacity:
    def test_rejects_nonpositive_m(self):
        with pytest.raises(ValueError):
            FastMemory(0)

    def test_load_counts_words_and_messages(self):
        fm = FastMemory(100)
        fm.new_slow("a", 40)
        fm.load("a")
        assert fm.counter.words_read == 40
        assert fm.counter.messages_read == 1

    def test_double_load_is_free(self):
        fm = FastMemory(100)
        fm.new_slow("a", 40)
        fm.load("a")
        fm.load("a")
        assert fm.counter.words_read == 40

    def test_overflow_raises(self):
        fm = FastMemory(10)
        fm.new_slow("a", 8)
        fm.new_slow("b", 8)
        fm.load("a")
        with pytest.raises(MemoryError, match="overflow"):
            fm.load("b")

    def test_peak_tracking(self):
        fm = FastMemory(100)
        fm.new_slow("a", 60)
        fm.load("a")
        fm.free("a")
        fm.new_slow("b", 30)
        fm.load("b")
        assert fm.peak_used == 60
        assert fm.used == 30

    def test_available(self):
        fm = FastMemory(50)
        fm.alloc_fast("x", 20)
        assert fm.available == 30


class TestDirtyProtocol:
    def test_store_required_before_free(self):
        fm = FastMemory(100)
        fm.alloc_fast("c", 10)
        with pytest.raises(RuntimeError, match="dirty"):
            fm.free("c")

    def test_discard_allows_dropping_scratch(self):
        fm = FastMemory(100)
        fm.alloc_fast("c", 10)
        fm.free("c", discard=True)
        assert fm.used == 0

    def test_store_then_free_ok(self):
        fm = FastMemory(100)
        fm.alloc_fast("c", 10)
        fm.store("c")
        fm.free("c")
        assert fm.counter.words_written == 10

    def test_store_nonresident_raises(self):
        fm = FastMemory(100)
        fm.new_slow("a", 10)
        with pytest.raises(RuntimeError, match="non-resident"):
            fm.store("a")

    def test_touch_dirty_requires_residency(self):
        fm = FastMemory(100)
        fm.new_slow("a", 10)
        with pytest.raises(RuntimeError):
            fm.touch_dirty("a")

    def test_contains_reflects_residency(self):
        fm = FastMemory(100)
        fm.new_slow("a", 10)
        assert "a" not in fm
        fm.load("a")
        assert "a" in fm


class TestRegions:
    def test_duplicate_name_rejected(self):
        fm = FastMemory(100)
        fm.new_slow("a", 10)
        with pytest.raises(ValueError, match="already exists"):
            fm.new_slow("a", 5)

    def test_drop_releases_capacity(self):
        fm = FastMemory(100)
        fm.alloc_fast("a", 40)
        fm.drop("a")
        assert fm.used == 0

    def test_negative_size_rejected(self):
        fm = FastMemory(100)
        with pytest.raises(ValueError):
            fm.new_slow("a", -1)


class TestStreaming:
    def test_stream_words_exact(self):
        fm = FastMemory(1000)
        fm.stream(read_sizes=[100, 100], write_sizes=[100])
        assert fm.counter.words_read == 200
        assert fm.counter.words_written == 100

    def test_stream_message_chunking(self):
        fm = FastMemory(30)
        # 3 streams -> chunk = 10; 100 words = 10 messages per stream
        fm.stream(read_sizes=[100, 100], write_sizes=[100])
        assert fm.counter.messages_read == 20
        assert fm.counter.messages_written == 10

    def test_stream_remainder_message(self):
        fm = FastMemory(20)
        fm.stream(read_sizes=[25], write_sizes=[])
        # chunk = 20 -> messages of 20 + 5
        assert fm.counter.messages_read == 2
        assert fm.counter.words_read == 25

    def test_stream_empty_noop(self):
        fm = FastMemory(10)
        fm.stream(read_sizes=[], write_sizes=[])
        assert fm.counter.words == 0

    def test_streamed_add_cost_formula(self):
        assert streamed_add_cost(100, 3) == 400


class TestBulkCounters:
    """read_many/write_many must tally exactly like a loop of read/write."""

    def test_bulk_matches_loop(self):
        from repro.machine.counters import IOCounter

        loop, bulk = IOCounter(), IOCounter()
        for _ in range(7):
            loop.read(13)
            loop.write(5)
        bulk.read_many(7, 13)
        bulk.write_many(7, 5)
        assert (loop.words_read, loop.messages_read) == (
            bulk.words_read,
            bulk.messages_read,
        )
        assert (loop.words_written, loop.messages_written) == (
            bulk.words_written,
            bulk.messages_written,
        )

    def test_bulk_zero_is_free(self):
        from repro.machine.counters import IOCounter

        c = IOCounter()
        c.read_many(0, 10)
        c.read_many(10, 0)
        c.write_many(0, 10)
        assert c.words == 0 and c.messages == 0

    def test_bulk_negative_rejected(self):
        import pytest as _pytest

        from repro.machine.counters import IOCounter

        c = IOCounter()
        with _pytest.raises(ValueError):
            c.read_many(-1, 5)
        with _pytest.raises(ValueError):
            c.write_many(1, -5)

    def test_stream_charging_matches_message_model(self):
        # 25 words in chunks of 10 -> messages of 10, 10, 5 (closed form)
        fm = FastMemory(10)
        fm.stream(read_sizes=[25], write_sizes=[], chunk=10)
        assert fm.counter.messages_read == 3
        assert fm.counter.words_read == 25
