"""Tests for the strong-scaling subsystem: engine sweep, cache, experiment.

Covers the acceptance criteria of the scaling refactor: every registered
algorithm runs across a p-grid, measured critical-path words sit within a
constant factor of the declared analytic cost and never below
``max(memory-dependent, memory-independent)``, the sweep is warm-cacheable,
and the strong-scaling floor crossover is pinned for one (n, M) pair.
"""


import pytest

from repro.core.bounds import LG7, perfect_scaling_limit, scaling_regime
from repro.engine.cache import EngineCache
from repro.engine.scaling import (
    ScalingPoint,
    ScalingSpec,
    evaluate_scaling_point,
    scaling_sweep,
)
from repro.experiments.strong_scaling import strong_scaling_experiment
from repro.parallel import available_parallel


@pytest.fixture(scope="module")
def sweep_report():
    cache = EngineCache(disk=False)
    spec = ScalingSpec(algos=tuple(available_parallel()), n=56, p_max=64)
    return scaling_sweep(spec, cache=cache)


class TestSweep:
    def test_every_algorithm_appears(self, sweep_report):
        ran = {row["algorithm"] for row in sweep_report.rows}
        assert ran == set(available_parallel())

    def test_all_runs_verified(self, sweep_report):
        assert all(row["verified"] for row in sweep_report.rows)

    def test_measured_within_constant_factor_of_analytic(self, sweep_report):
        for row in sweep_report.rows:
            ratio = row["measured/analytic"]
            assert 0.25 <= ratio <= 4.0, (row["label"], row["p"], ratio)

    def test_measured_never_below_lower_bound(self, sweep_report):
        # the acceptance invariant, explicitly including the three headline
        # algorithms: classical 2D (cannon), 2.5D, and CAPS
        seen = set()
        for row in sweep_report.rows:
            assert row["lower_bound"] == max(
                row["memory_dependent_bound"], row["memory_independent_bound"]
            )
            assert row["measured_words"] >= row["lower_bound"], (
                row["label"],
                row["p"],
                row["measured_words"],
                row["lower_bound"],
            )
            seen.add(row["algorithm"])
        assert {"cannon", "2.5d", "caps"} <= seen

    def test_strassen_floor_shallower_than_classical(self, sweep_report):
        # at equal p = 49 the CAPS memory-independent floor (ω₀ = lg 7)
        # sits above the classical one — and CAPS still clears it
        caps = next(r for r in sweep_report.rows if r["algorithm"] == "caps" and r["p"] == 49)
        cannon = next(r for r in sweep_report.rows if r["algorithm"] == "cannon" and r["p"] == 49)
        assert caps["memory_independent_bound"] < cannon["memory_independent_bound"]
        assert caps["measured_words"] < cannon["measured_words"]

    def test_omega0_per_class(self, sweep_report):
        for row in sweep_report.rows:
            if row["class"] == "classical":
                assert row["omega0"] == 3.0
            else:
                assert row["omega0"] == pytest.approx(LG7)

    def test_rows_deterministic_order(self, sweep_report):
        cache = EngineCache(disk=False)
        spec = ScalingSpec(algos=tuple(available_parallel()), n=56, p_max=64)
        again = scaling_sweep(spec, cache=cache)
        assert [r["label"] for r in again.rows] == [r["label"] for r in sweep_report.rows]


class TestSweepCache:
    def test_warm_rerun_builds_nothing(self, tmp_path):
        cache = EngineCache(tmp_path / "cache")
        spec = ScalingSpec(algos=("cannon", "caps"), n=56, p_max=49)
        cold = scaling_sweep(spec, cache=cache)
        assert cold.stats["builds"] == len(cold.rows)
        warm = scaling_sweep(spec, cache=cache)
        assert warm.stats["builds"] == 0
        assert warm.rows == cold.rows

    def test_disk_roundtrip_across_instances(self, tmp_path):
        spec = ScalingSpec(algos=("2.5d",), n=24, p_max=32, cs=(1, 2))
        first = scaling_sweep(spec, cache=EngineCache(tmp_path / "c"))
        second = scaling_sweep(spec, cache=EngineCache(tmp_path / "c"))
        assert second.stats["builds"] == 0
        assert second.rows == first.rows

    def test_alpha_beta_sweeps_reuse_the_simulation(self, tmp_path):
        # the cached artifact carries per-superstep per-rank tallies, so a
        # different (α, β) recomputes time without simulating again
        cache = EngineCache(tmp_path / "c")
        a = evaluate_scaling_point(ScalingPoint("cannon", 24, 16), cache=cache, beta=1.0)
        b = evaluate_scaling_point(ScalingPoint("cannon", 24, 16), cache=cache, beta=2.0)
        assert cache.stats.builds == 1
        assert b["time"] > a["time"]
        assert b["measured_words"] == a["measured_words"]

    def test_cached_time_matches_machine_time(self, tmp_path):
        from repro.parallel import run_parallel
        from repro.util.matgen import integer_matrix

        cache = EngineCache(disk=False)
        row = evaluate_scaling_point(
            ScalingPoint("caps", 56, 49), cache=cache, alpha=3.0, beta=0.25
        )
        A = integer_matrix(56, seed=11)
        B = integer_matrix(56, seed=13)
        r = run_parallel("caps", A, B, p=49)
        assert row["time"] == pytest.approx(r.time(3.0, 0.25))

    def test_json_is_strict(self, sweep_report):
        import json

        def reject(token):
            raise ValueError(f"non-strict constant {token}")

        parsed = json.loads(sweep_report.to_json(), parse_constant=reject)
        assert len(parsed["rows"]) == len(sweep_report.rows)


class TestFloorCrossoverPin:
    """Pins the strong-scaling floor crossover for (n, M) = (64, 256)."""

    N, M = 64, 256

    def test_crossover_point_exact(self):
        # classical p* = n³/M^(3/2) = 64³/4096 = 64, exactly
        assert perfect_scaling_limit(self.N, self.M, 3.0) == pytest.approx(64.0)

    def test_bounds_flip_across_the_floor(self):
        below = scaling_regime(self.N, 16, self.M, 3.0)
        above = scaling_regime(self.N, 256, self.M, 3.0)
        assert below.binding == "memory-dependent"
        assert above.binding == "memory-independent"
        assert below.p_limit == above.p_limit == pytest.approx(64.0)

    def test_experiment_shows_crossover(self):
        cache = EngineCache(disk=False)
        result = strong_scaling_experiment(
            n=self.N, M=self.M, p_max=256, cs=(1, 2, 4), cache=cache
        )
        assert result["p_limit"]["classical"] == pytest.approx(64.0)
        # the Strassen-like range ends earlier (ω₀ < 3)
        assert result["p_limit"]["strassen-like"] < 64.0
        classical = [r for r in result["rows"] if r["class"] == "classical"]
        below = [r for r in classical if r["p"] < 64]
        above = [r for r in classical if r["p"] > 64]
        assert below and above, "p-grid must straddle the floor"
        assert all(r["binding"] == "memory-dependent" for r in below)
        assert all(r["binding"] == "memory-independent" for r in above)
        assert all(r["beyond_floor"] for r in above)
        assert not any(r["beyond_floor"] for r in below)
        # the memory-independent floor binds every run; the fixed-M bound
        # only binds runs that actually stayed within M (bound_applies)
        assert all(r["measured_words"] >= r["bound_mi"] for r in result["rows"])
        assert all(
            r["measured_words"] >= r["lower_bound"]
            for r in result["rows"]
            if r["bound_applies"]
        )
        assert all(r["verified"] for r in result["rows"])

    def test_unlimited_runs_marked_inapplicable_at_tiny_M(self):
        # with M far below what the (unlimited) runs used, the fixed-M
        # bound rows must be flagged rather than presented as violated
        cache = EngineCache(disk=False)
        result = strong_scaling_experiment(n=64, M=16, p_max=64, cache=cache)
        assert all(not r["bound_applies"] for r in result["rows"])
        assert all(r["mem_peak"] > 16 for r in result["rows"])


class TestSpecGeometry:
    def test_points_respect_p_max(self):
        spec = ScalingSpec(algos=tuple(available_parallel()), n=56, p_max=16)
        assert all(pt.p <= 16 for pt in spec.points())

    def test_caps_points_are_rank_powers(self):
        spec = ScalingSpec(algos=("caps",), n=56, p_max=64)
        assert [pt.p for pt in spec.points()] == [7, 49]

    def test_invalid_algo_name_raises(self):
        spec = ScalingSpec(algos=("nonsense",), n=56, p_max=16)
        with pytest.raises(KeyError, match="unknown parallel algorithm"):
            spec.points()
