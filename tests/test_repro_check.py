"""The ``repro check`` static-analysis subsystem.

Each shipped checker gets a true-positive and a true-negative fixture
(tiny synthetic trees under ``tmp_path``), the baseline round-trips, the
JSON report schema is pinned, and — the meta-gate — the repo's own
``src/`` tree must come back clean.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Severity,
    available_checkers,
    load_baseline,
    run_check,
    write_baseline,
)
from repro.analysis.baseline import split_baselined
from repro.analysis.checkers.cache_fingerprint import (
    PINS_REL,
    RESULT_MODULES,
    write_pins,
)
from repro.analysis.runner import CHECK_SCHEMA_VERSION
from repro.engine.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[1]


def check_snippet(tmp_path: Path, source: str, select: list[str] | None = None):
    """Run checkers over one synthetic module rooted at ``tmp_path``."""
    mod = tmp_path / "mod.py"
    mod.write_text(textwrap.dedent(source))
    return run_check(paths=[mod], select=select, root=tmp_path, use_baseline=False)


def codes(report) -> list[str]:
    return [f.code for f in report.findings]


# --------------------------------------------------------------------- #
# RC101 cache-fingerprint                                               #
# --------------------------------------------------------------------- #


class TestCacheFingerprint:
    def test_flags_param_missing_from_key(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def build(scheme, k, policy):
                key = cache_key("estimate", scheme, k=k)
                return key
            """,
            select=["cache-fingerprint"],
        )
        assert codes(report) == ["RC101"]
        assert "policy" in report.findings[0].message

    def test_clean_when_all_params_flow_in(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def build(scheme, k, policy, cache, jobs):
                return cache_key("estimate", scheme, k=k, policy=policy)
            """,
            select=["cache-fingerprint"],
        )
        assert codes(report) == []

    def test_one_hop_derivation_counts_as_keyed(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def build(scheme, k):
                s = get_scheme(scheme)
                return cache_key("profile", s, k=k)
            """,
            select=["cache-fingerprint"],
        )
        assert codes(report) == []

    def test_inline_suppression_silences_the_line(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def build(scheme, seed):  # repro: ignore[RC101]
                return cache_key("thing", scheme)
            """,
            select=["cache-fingerprint"],
        )
        assert codes(report) == []
        assert report.suppressed == 1


# --------------------------------------------------------------------- #
# RC102 cache-version-pin                                               #
# --------------------------------------------------------------------- #


def _engine_tree(tmp_path: Path, version: int = 3) -> Path:
    cache_py = tmp_path / "src" / "repro" / "engine" / "cache.py"
    cache_py.parent.mkdir(parents=True)
    cache_py.write_text(f"CACHE_VERSION = {version}\n")
    exact_py = tmp_path / "src" / "repro" / "core" / "exact.py"
    exact_py.parent.mkdir(parents=True)
    exact_py.write_text("LIMIT = 28\n")
    return tmp_path


class TestCacheVersionPin:
    def test_missing_pin_map_is_a_warning_not_an_error(self, tmp_path):
        _engine_tree(tmp_path)
        report = run_check(
            paths=[tmp_path / "src"],
            select=["cache-version-pin"],
            root=tmp_path,
            use_baseline=False,
        )
        assert codes(report) == ["RC102"]
        assert report.findings[0].severity == Severity.WARNING
        assert report.ok  # warnings do not gate

    def test_pinned_tree_is_clean_until_a_module_changes(self, tmp_path):
        _engine_tree(tmp_path)
        write_pins(tmp_path)
        report = run_check(
            paths=[tmp_path / "src"],
            select=["cache-version-pin"],
            root=tmp_path,
            use_baseline=False,
        )
        assert codes(report) == []

        (tmp_path / "src/repro/core/exact.py").write_text("LIMIT = 30\n")
        report = run_check(
            paths=[tmp_path / "src"],
            select=["cache-version-pin"],
            root=tmp_path,
            use_baseline=False,
        )
        assert codes(report) == ["RC102"]
        assert "without a CACHE_VERSION bump" in report.findings[0].message

    def test_version_bump_without_repin_is_flagged_at_the_assignment(self, tmp_path):
        _engine_tree(tmp_path, version=3)
        write_pins(tmp_path)
        (tmp_path / "src/repro/engine/cache.py").write_text("CACHE_VERSION = 4\n")
        report = run_check(
            paths=[tmp_path / "src"],
            select=["cache-version-pin"],
            root=tmp_path,
            use_baseline=False,
        )
        assert codes(report) == ["RC102"]
        assert "pinned at 3" in report.findings[0].message

    def test_repin_after_bump_restores_clean(self, tmp_path):
        _engine_tree(tmp_path, version=3)
        write_pins(tmp_path)
        (tmp_path / "src/repro/engine/cache.py").write_text("CACHE_VERSION = 4\n")
        write_pins(tmp_path)
        report = run_check(
            paths=[tmp_path / "src"],
            select=["cache-version-pin"],
            root=tmp_path,
            use_baseline=False,
        )
        assert codes(report) == []


# --------------------------------------------------------------------- #
# RC201 / RC202 registry contracts                                      #
# --------------------------------------------------------------------- #


class TestRegistryContracts:
    def test_parallel_class_missing_contract_methods(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            @register_parallel
            class Sloppy:
                name = "sloppy"

                def validate(self, n, p, c):
                    return True
            """,
            select=["registry-parallel"],
        )
        assert codes(report) == ["RC201", "RC201"]
        missing = {f.message.split("define ")[1] for f in report.findings}
        assert missing == {"analytic_costs()", "_execute()"}

    def test_parallel_class_with_full_contract_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            @register_parallel
            class Good:
                name = "good"

                def validate(self, n, p, c):
                    return True

                def analytic_costs(self, n, p, c):
                    return {}

                def _execute(self, machine):
                    return None
            """,
            select=["registry-parallel"],
        )
        assert codes(report) == []

    def test_bench_params_without_quick_params(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            @register_bench("w", "cat", params={"n": 8})
            def _bench_w(cache, n):
                return {"wall": 1.0, "check": {"n": n}}
            """,
            select=["registry-bench"],
        )
        assert codes(report) == ["RC202"]
        assert "quick_params" in report.findings[0].message

    def test_bench_return_without_check_entry(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            @register_bench("w", "cat", params={"n": 8}, quick_params={})
            def _bench_w(cache, n):
                return {"wall": 1.0}
            """,
            select=["registry-bench"],
        )
        assert codes(report) == ["RC202"]
        assert "'check'" in report.findings[0].message

    def test_bench_full_contract_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            @register_bench("w", "cat", params={"n": 8}, quick_params={"n": 2})
            def _bench_w(cache, n):
                return {"wall": 1.0, "check": {"n": n}}
            """,
            select=["registry-bench"],
        )
        assert codes(report) == []

    def test_pure_cost_method_touching_numpy_flagged(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            @register_parallel
            class Leaky:
                name = "leaky"

                def analytic_costs(self, n, p, c):
                    return np.zeros(p).sum()

                def estimate(self, cfg, topology=None):
                    m = Machine(cfg.p)
                    return m

                def _execute(self, machine):
                    return np.zeros(4)
            """,
            select=["registry-pure-cost"],
        )
        assert codes(report) == ["RC203", "RC203"]
        names = {f.message.split("references ")[1].split(";")[0] for f in report.findings}
        assert names == {"'np'", "'Machine'"}

    def test_pure_cost_methods_closed_form_are_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            @register_parallel
            class Analytic:
                name = "analytic"

                def validate(self, n, p, c):
                    return True

                def analytic_costs(self, n, p, c):
                    return 4 * n * n / p**0.5

                def analytic_flops(self, n, p, c):
                    return 2.0 * n**3 / p

                def _execute(self, machine):
                    # arrays and the simulator are sanctioned here
                    return np.zeros((4, 4)) if Machine else None
            """,
            select=["registry-pure-cost"],
        )
        assert codes(report) == []

    def test_pure_cost_checker_ignores_unregistered_classes(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            class Helper:
                def estimate(self, cfg):
                    return np.zeros(3)
            """,
            select=["registry-pure-cost"],
        )
        assert codes(report) == []


# --------------------------------------------------------------------- #
# RC301 strict-json                                                     #
# --------------------------------------------------------------------- #


class TestStrictJson:
    def test_raw_dump_of_computed_payload(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import json

            def emit(payload):
                return json.dumps(payload, indent=2)
            """,
            select=["strict-json"],
        )
        assert sorted(codes(report)) == ["RC301", "RC301"]  # unwrapped + no allow_nan

    def test_jsonable_wrapped_with_allow_nan_false_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import json

            from repro.util.jsonutil import jsonable

            def emit(payload):
                return json.dumps(jsonable(payload), indent=2, allow_nan=False)
            """,
            select=["strict-json"],
        )
        assert codes(report) == []

    def test_name_assigned_from_jsonable_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import json

            from repro.util.jsonutil import jsonable

            def emit(payload):
                doc = jsonable(payload)
                return json.dumps(doc, allow_nan=False)
            """,
            select=["strict-json"],
        )
        assert codes(report) == []

    def test_pure_literal_payload_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import json

            def emit():
                return json.dumps({"ok": True, "n": 3})
            """,
            select=["strict-json"],
        )
        assert codes(report) == []


# --------------------------------------------------------------------- #
# RC401 / RC402 spawn-pool                                              #
# --------------------------------------------------------------------- #


class TestSpawnPool:
    def test_lambda_submitted_to_pool(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import multiprocessing as mp

            def run(tasks):
                with mp.Pool(2) as pool:
                    return pool.map(lambda t: t * 2, tasks)
            """,
            select=["spawn-pool"],
        )
        assert codes(report) == ["RC401"]
        assert "lambda" in report.findings[0].message

    def test_closure_submitted_to_pool(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import multiprocessing as mp

            def run(tasks):
                def work(t):
                    return t * 2

                with mp.Pool(2) as pool:
                    return pool.map(work, tasks)
            """,
            select=["spawn-pool"],
        )
        assert codes(report) == ["RC401"]
        assert "closure" in report.findings[0].message

    def test_bound_method_and_lambda_initializer(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import multiprocessing as mp

            class Runner:
                def work(self, t):
                    return t

                def run(self, tasks):
                    pool = mp.Pool(2, initializer=lambda: None)
                    return pool.map(self.work, tasks)
            """,
            select=["spawn-pool"],
        )
        assert sorted(codes(report)) == ["RC401", "RC401"]

    def test_module_level_worker_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import multiprocessing as mp

            def _worker(t):
                return t * 2

            def run(tasks):
                with mp.Pool(2) as pool:
                    return pool.map(_worker, tasks)
            """,
            select=["spawn-pool"],
        )
        assert codes(report) == []

    def test_set_iteration_in_parallel_module(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import multiprocessing as mp

            def build_tasks(items):
                out = []
                for item in set(items):
                    out.append(item)
                return [x for x in {1, 2, 3}]
            """,
            select=["spawn-order"],
        )
        assert sorted(codes(report)) == ["RC402", "RC402"]

    def test_sorted_set_iteration_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import multiprocessing as mp

            def build_tasks(items):
                return [x for x in sorted(set(items))]
            """,
            select=["spawn-order"],
        )
        assert codes(report) == []

    def test_set_iteration_without_multiprocessing_is_out_of_scope(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def build_tasks(items):
                return [x for x in set(items)]
            """,
            select=["spawn-order"],
        )
        assert codes(report) == []


# --------------------------------------------------------------------- #
# RC404 adhoc-pool                                                      #
# --------------------------------------------------------------------- #


class TestAdHocPool:
    def test_mp_pool_is_flagged(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import multiprocessing as mp

            def _worker(t):
                return t

            def run(tasks):
                with mp.get_context("spawn").Pool(2) as pool:
                    return pool.map(_worker, tasks)
            """,
            select=["adhoc-pool"],
        )
        assert codes(report) == ["RC404"]
        assert "Pool" in report.findings[0].message

    def test_process_pool_executor_is_flagged(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import concurrent.futures

            def _worker(t):
                return t

            def run(tasks):
                with concurrent.futures.ProcessPoolExecutor(2) as ex:
                    return list(ex.map(_worker, tasks))
            """,
            select=["adhoc-pool"],
        )
        assert codes(report) == ["RC404"]

    def test_thread_pool_executor_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import concurrent.futures

            def run(tasks):
                with concurrent.futures.ThreadPoolExecutor(2) as ex:
                    return list(ex.map(str, tasks))
            """,
            select=["adhoc-pool"],
        )
        assert codes(report) == []

    def test_ignore_comment_suppresses(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import multiprocessing as mp

            def _worker(t):
                return t

            def run(tasks):
                pool = mp.Pool(2)  # repro: ignore[RC404]
                return pool.map(_worker, tasks)
            """,
            select=["adhoc-pool"],
        )
        assert codes(report) == []

    def test_pool_runtime_module_is_exempt(self, tmp_path):
        mod = tmp_path / "repro" / "engine" / "pool.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            textwrap.dedent(
                """
                import multiprocessing as mp

                def boot():
                    return mp.Pool(2)
                """
            )
        )
        report = run_check(
            paths=[mod], select=["adhoc-pool"], root=tmp_path, use_baseline=False
        )
        assert codes(report) == []


# --------------------------------------------------------------------- #
# RC501 bitset-dtype                                                    #
# --------------------------------------------------------------------- #


class TestBitsetDtype:
    def test_uint64_mixed_with_signed_array(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import numpy as np

            def kernel(n):
                bits = np.zeros(n, dtype=np.uint64)
                idx = np.arange(n, dtype=np.int64)
                return bits + idx
            """,
            select=["bitset-dtype"],
        )
        assert codes(report) == ["RC501"]

    def test_augassign_mixing_is_flagged(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import numpy as np

            def kernel(g):
                bits = g.adjacency_bits
                shift = np.arange(4, dtype="int64")
                bits ^= shift
                return bits
            """,
            select=["bitset-dtype"],
        )
        assert codes(report) == ["RC501"]

    def test_all_uint64_pipeline_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import numpy as np

            def kernel(g, n):
                bits = g.adjacency_bits
                mask = np.uint64(1) << np.arange(n, dtype=np.uint64)
                widened = np.arange(n).astype(np.uint64)
                return (bits & mask) | widened
            """,
            select=["bitset-dtype"],
        )
        assert codes(report) == []

    def test_int_literals_are_neutral(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import numpy as np

            def kernel(n):
                bits = np.zeros(n, dtype=np.uint64)
                return bits >> 3
            """,
            select=["bitset-dtype"],
        )
        assert codes(report) == []


# --------------------------------------------------------------------- #
# RC403 async-cache-lock                                                #
# --------------------------------------------------------------------- #


class TestAsyncCacheLock:
    def test_unlocked_cache_call_in_coroutine(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import asyncio

            class Service:
                async def handle(self, key):
                    cached = self.cache.get_object(key)
                    if cached is None:
                        self.cache.put_object(key, {"v": 1})
                    return cached
            """,
            select=["async-cache-lock"],
        )
        assert sorted(codes(report)) == ["RC403", "RC403"]

    def test_locked_cache_call_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import asyncio

            class Service:
                async def handle(self, key):
                    async with self._lock:
                        cached = self.cache.get_object(key)
                        if cached is None:
                            self.cache.put_object(key, {"v": 1})
                    return cached
            """,
            select=["async-cache-lock"],
        )
        assert codes(report) == []

    def test_per_key_sync_lock_also_counts(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import asyncio

            class Service:
                async def handle(self, key):
                    with self.cache.lock(key):
                        return self.cache.get_object(key)
            """,
            select=["async-cache-lock"],
        )
        assert codes(report) == []

    def test_sync_function_is_out_of_scope(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import asyncio

            def warm(cache, key, obj):
                cache.put_object(key, obj)
            """,
            select=["async-cache-lock"],
        )
        assert codes(report) == []

    def test_module_without_asyncio_is_out_of_scope(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            class Service:
                async def handle(self, key):
                    return self.cache.get_object(key)
            """,
            select=["async-cache-lock"],
        )
        assert codes(report) == []

    def test_non_cache_receiver_is_out_of_scope(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            import asyncio

            class Service:
                async def handle(self, key):
                    return self.registry.get_object(key)
            """,
            select=["async-cache-lock"],
        )
        assert codes(report) == []


# --------------------------------------------------------------------- #
# RC601 broad-except                                                    #
# --------------------------------------------------------------------- #


class TestBroadExcept:
    @pytest.mark.parametrize(
        "clause",
        [
            "except Exception:",
            "except BaseException:",
            "except:",
            "except (ValueError, Exception):",
        ],
    )
    def test_broad_handlers_are_flagged(self, tmp_path, clause):
        report = check_snippet(
            tmp_path,
            f"""
            def f():
                try:
                    return 1
                {clause}
                    return 0
            """,
            select=["broad-except"],
        )
        assert codes(report) == ["RC601"]

    def test_narrow_handler_is_clean(self, tmp_path):
        report = check_snippet(
            tmp_path,
            """
            def f():
                try:
                    return 1
                except (ValueError, OSError):
                    return 0
            """,
            select=["broad-except"],
        )
        assert codes(report) == []


# --------------------------------------------------------------------- #
# framework: parse failures, baseline, schema, CLI, self-check          #
# --------------------------------------------------------------------- #


class TestFramework:
    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        report = check_snippet(tmp_path, "def broken(:\n")
        assert codes(report) == ["RC001"]
        assert not report.ok

    def test_baseline_round_trip(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("def f():\n    try:\n        pass\n    except Exception:\n        pass\n")
        report = run_check(paths=[mod], root=tmp_path, use_baseline=False)
        assert len(report.findings) == 1

        baseline_path = tmp_path / "repro_check_baseline.json"
        write_baseline(report.findings, baseline_path)
        identities = load_baseline(baseline_path)
        assert identities == {f.identity() for f in report.findings}
        new, old = split_baselined(report.findings, identities)
        assert new == [] and len(old) == 1

        rerun = run_check(paths=[mod], root=tmp_path)  # picks the file up by name
        assert rerun.findings == [] and len(rerun.baselined) == 1 and rerun.ok

    def test_unknown_baseline_schema_is_a_hard_error(self, tmp_path):
        path = tmp_path / "repro_check_baseline.json"
        path.write_text(json.dumps({"schema_version": 99, "findings": []}))
        with pytest.raises(ValueError, match="schema_version"):
            load_baseline(path)

    def test_json_report_schema_is_stable(self, tmp_path):
        report = check_snippet(tmp_path, "x = 1\n")
        doc = json.loads(report.to_json())
        assert doc["schema_version"] == CHECK_SCHEMA_VERSION == 1
        assert set(doc) == {
            "schema_version",
            "checkers",
            "files",
            "ok",
            "findings",
            "baselined",
            "suppressed",
        }
        assert doc["ok"] is True and doc["files"] == 1

    def test_finding_dict_schema_is_stable(self, tmp_path):
        report = check_snippet(tmp_path, "def broken(:\n")
        (finding,) = json.loads(report.to_json())["findings"]
        assert set(finding) == {
            "path",
            "line",
            "code",
            "checker",
            "severity",
            "message",
            "fix_hint",
        }

    def test_select_accepts_codes_via_cli(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text("import json\n\ndef f(p):\n    return json.dumps(p)\n")
        rc = cli_main(
            ["check", "--paths", str(mod), "--select", "RC301", "--format", "json"]
        )
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert {f["code"] for f in doc["findings"]} == {"RC301"}

    def test_cli_exit_zero_on_clean_tree(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text("x = 1\n")
        rc = cli_main(["check", "--paths", str(mod)])
        assert rc == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_all_twelve_checkers_are_registered(self):
        names = available_checkers()
        assert names == sorted(names)
        assert set(names) == {
            "adhoc-pool",
            "async-cache-lock",
            "bitset-dtype",
            "broad-except",
            "cache-fingerprint",
            "cache-version-pin",
            "registry-bench",
            "registry-parallel",
            "registry-pure-cost",
            "spawn-order",
            "spawn-pool",
            "strict-json",
        }

    def test_repo_src_tree_is_clean(self):
        """The meta-gate: the repo's own sources satisfy every invariant."""
        report = run_check(root=REPO_ROOT)
        assert report.findings == [], "\n".join(f.render() for f in report.findings)
        assert report.ok

    def test_digest_pins_cover_the_result_modules(self):
        doc = json.loads((REPO_ROOT / PINS_REL).read_text())
        existing = {rel for rel in RESULT_MODULES if (REPO_ROOT / rel).exists()}
        assert set(doc["modules"]) == existing
        from repro.engine.cache import CACHE_VERSION

        assert doc["cache_version"] == CACHE_VERSION
