"""Certified expansion intervals: invariants, provenance, end-to-end carry.

The contract under test (ISSUE 8): every ``auto``-policy expansion result —
engine rows, serve payloads, CLI JSON — carries an ``ExpansionInterval``
whose ``lower <= upper`` always holds, whose endpoints collapse to the exact
``h`` whenever enumeration ran, and whose provenance tag names the proof
path actually taken.
"""

import math

import pytest

from repro.cdag.strassen_cdag import dec_graph
from repro.core.certify import (
    PROVENANCES,
    ExpansionInterval,
    certified_interval,
    interval_from_estimate,
    provenance_for_method,
)
from repro.core.expansion import ExpansionEstimate, estimate_expansion
from repro.engine.builders import POLICIES, cached_estimate
from repro.engine.cache import EngineCache
from repro.engine.grid import GridPoint, evaluate_point


class TestIntervalInvariants:
    def test_valid_interval_accepts_and_reports(self):
        iv = ExpansionInterval(lower=0.25, upper=0.5, provenance="cheeger+sweep")
        assert iv.width == pytest.approx(0.25)
        assert not iv.is_exact
        assert iv.as_dict() == {"lower": 0.25, "upper": 0.5, "provenance": "cheeger+sweep"}

    def test_point_interval_is_exact(self):
        iv = ExpansionInterval(lower=0.15, upper=0.15, provenance="exact")
        assert iv.is_exact and iv.width == 0.0

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ExpansionInterval(lower=0.5, upper=0.25, provenance="exact")

    def test_non_finite_endpoints_rejected(self):
        for lo, hi in ((math.nan, 1.0), (0.0, math.inf), (math.nan, math.nan)):
            with pytest.raises(ValueError, match="finite"):
                ExpansionInterval(lower=lo, upper=hi, provenance="cone")

    def test_negative_lower_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            ExpansionInterval(lower=-0.1, upper=0.5, provenance="cone")

    def test_unknown_provenance_rejected(self):
        with pytest.raises(ValueError, match="provenance"):
            ExpansionInterval(lower=0.0, upper=1.0, provenance="vibes")


class TestProvenanceMapping:
    @pytest.mark.parametrize(
        ("method", "tag"),
        [
            ("exact", "exact"),
            ("spectral+sweep", "cheeger+sweep"),
            ("spectral+cone", "cheeger+cone"),
            ("cone-only", "cone"),
        ],
    )
    def test_method_maps_to_provenance(self, method, tag):
        assert provenance_for_method(method) == tag
        assert tag in PROVENANCES

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            provenance_for_method("oracle")

    def test_cone_only_nan_lower_becomes_trivial_zero(self):
        est = ExpansionEstimate(
            lower=math.nan, upper=0.25, witness_size=2,
            witness_boundary=3, degree=6, method="cone-only",
        )
        iv = interval_from_estimate(est)
        assert iv.lower == 0.0 and iv.upper == 0.25 and iv.provenance == "cone"


class TestEstimatorIntervals:
    def test_exact_interval_pins_h(self):
        g = dec_graph("strassen", 1)
        est = estimate_expansion(g)
        iv = est.interval()
        assert est.method == "exact"
        assert iv.is_exact and iv.lower == iv.upper == est.lower == est.upper
        assert iv.provenance == "exact"

    def test_certified_interval_facade(self):
        g = dec_graph("strassen", 1)
        iv = certified_interval(g, "strassen", 1)
        assert iv.is_exact and iv.provenance == "exact"

    def test_spectral_interval_sandwiches(self):
        g = dec_graph("strassen", 2)  # 105 vertices: beyond exact, spectral runs
        iv = certified_interval(g, "strassen", 2)
        assert iv.provenance in ("cheeger+sweep", "cheeger+cone")
        assert 0.0 < iv.lower <= iv.upper

    @pytest.mark.parametrize("policy", POLICIES)
    def test_cached_estimate_interval_invariants_per_policy(self, policy):
        cache = EngineCache(disk=False)
        k = 1 if policy == "exact" else 3
        est = cached_estimate("strassen", k, policy=policy, cache=cache)
        iv = est.interval()
        assert iv.lower <= iv.upper
        assert iv.provenance == provenance_for_method(est.method)
        if est.method == "exact":
            assert iv.is_exact
        if est.method == "cone-only":
            assert math.isnan(est.lower) and iv.lower == 0.0
        # warm decode path yields the same certificate
        iv2 = cached_estimate("strassen", k, policy=policy, cache=cache).interval()
        assert iv2 == iv

    def test_cached_arrays_carry_the_certificate(self, tmp_path):
        from repro.cdag.schemes import get_scheme
        from repro.core.exact import effective_exact_limit
        from repro.engine.cache import cache_key

        cache = EngineCache(tmp_path / "cache")
        est = cached_estimate("strassen", 1, policy="auto", cache=cache)
        key = cache_key(
            "estimate",
            get_scheme("strassen"),
            k=1,
            policy="auto",
            exact_limit=effective_exact_limit(),
        )
        data = cache.get_arrays(key)
        assert data is not None
        assert str(data["provenance"]) == est.interval().provenance
        assert float(data["interval_lower"]) == est.interval().lower


class TestGridRowsCarryIntervals:
    def test_auto_rows_expose_certified_fields(self):
        cache = EngineCache(disk=False)
        for k, want in ((1, "exact"), (2, "cheeger+sweep")):
            row = evaluate_point(GridPoint("strassen", k, 48, "auto"), cache=cache)
            assert row["provenance"] == want
            assert row["h_lower_cert"] <= row["h_upper"]
            if want == "exact":
                assert row["h_lower_cert"] == row["h_upper"] == row["h_lower"]

    def test_cone_row_has_zero_certified_lower(self):
        cache = EngineCache(disk=False)
        row = evaluate_point(GridPoint("strassen", 5, 48, "cone"), cache=cache)
        assert math.isnan(row["h_lower"])
        assert row["h_lower_cert"] == 0.0
        assert row["provenance"] == "cone"
