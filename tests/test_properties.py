"""Property-based tests (hypothesis) on the core invariants.

These guard the *laws* the rest of the reproduction leans on: cut symmetry,
bound monotonicity, scheme-recursion correctness on arbitrary integer
matrices, conservation in the machines, and order-independence of the
partition argument's soundness.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.strassen import bilinear_multiply
from repro.cdag.graph import CDAG
from repro.cdag.pebble import schedule_io
from repro.cdag.schedule import is_topological, random_topological_order
from repro.cdag.strassen_cdag import dec_graph
from repro.core.bounds import parallel_io_bound, sequential_io_bound
from repro.core.partition import best_partition_bound, segment_stats
from repro.machine.distributed import Machine

# ----------------------------------------------------------------------- #
# random DAG strategy: a numbered DAG with edges i -> j only for i < j     #
# ----------------------------------------------------------------------- #


@st.composite
def dags(draw, max_n=12):
    n = draw(st.integers(min_value=3, max_value=max_n))
    edges = []
    for j in range(1, n):
        # every non-source vertex gets 1..2 predecessors among earlier ids
        k = draw(st.integers(min_value=1, max_value=min(2, j)))
        preds = draw(
            st.lists(
                st.integers(min_value=0, max_value=j - 1),
                min_size=k,
                max_size=k,
                unique=True,
            )
        )
        edges.extend((p, j) for p in preds)
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    return CDAG(n, src, dst, np.zeros(n, dtype=np.int8))


class TestGraphProperties:
    @given(dags())
    @settings(max_examples=40, deadline=None)
    def test_cut_symmetry(self, g):
        rng = np.random.default_rng(0)
        mask = rng.random(g.n_vertices) < 0.5
        assert g.edge_boundary_size(mask) == g.edge_boundary_size(~mask)

    @given(dags())
    @settings(max_examples=40, deadline=None)
    def test_topological_order_is_topological(self, g):
        assert is_topological(g, g.topological_order)

    @given(dags(), st.integers(min_value=0, max_value=999))
    @settings(max_examples=40, deadline=None)
    def test_random_orders_are_topological(self, g, seed):
        assert is_topological(g, random_topological_order(g, seed=seed))

    @given(dags())
    @settings(max_examples=30, deadline=None)
    def test_degree_sum_is_twice_edges(self, g):
        u, v = g.undirected_edges
        assert g.degree.sum() == 2 * len(u)


class TestPartitionProperties:
    @given(dags(), st.integers(min_value=3, max_value=6), st.integers(min_value=0, max_value=99))
    @settings(max_examples=30, deadline=None)
    def test_partition_sound_for_any_order(self, g, M, seed):
        # M >= 3: a binary op needs both operands plus its result resident
        order = random_topological_order(g, seed=seed)
        measured = schedule_io(g, order, M=M, policy="belady").total
        bound, _ = best_partition_bound(g, order, M)
        assert bound <= measured

    @given(dags(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_segment_reads_bounded_by_predecessors(self, g, s):
        order = g.topological_order
        stats = segment_stats(g, order, s)
        assert stats.reads.sum() <= g.n_edges
        assert stats.writes.sum() <= g.n_vertices


class TestSchemeProperties:
    @given(
        st.sampled_from(["strassen", "winograd", "classical2"]),
        st.integers(min_value=-5, max_value=5),
        st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_recursion_exact_on_random_integer_matrices(self, name, shift, data):
        n = 8
        vals = st.integers(min_value=-4, max_value=4)
        A = np.array(
            data.draw(st.lists(vals, min_size=n * n, max_size=n * n))
        ).reshape(n, n).astype(float) + shift
        B = np.array(
            data.draw(st.lists(vals, min_size=n * n, max_size=n * n))
        ).reshape(n, n).astype(float)
        C = bilinear_multiply(A, B, name, cutoff=2)
        assert np.array_equal(C, A @ B)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=6, deadline=None)
    def test_dec_level_mass_invariant(self, k):
        # the top level always holds between 3/7 and 3/7 · 1/(1-(4/7)^(k+1))
        # of the vertices (Fact 4.6, exact-geometric-sum form)
        g = dec_graph("strassen", k)
        frac = 7**k / g.n_vertices
        lo = 3 / 7
        hi = lo / (1 - (4 / 7) ** (k + 1))
        assert lo - 1e-12 <= frac <= hi + 1e-12


class TestBoundProperties:
    @given(
        st.integers(min_value=16, max_value=4096),
        st.integers(min_value=12, max_value=2048),
        st.floats(min_value=2.1, max_value=3.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_sequential_bound_monotone_in_n(self, n, M, w):
        assert sequential_io_bound(2 * n, M, w) >= sequential_io_bound(n, M, w)

    @given(
        st.integers(min_value=64, max_value=4096),
        st.integers(min_value=12, max_value=512),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_parallel_bound_decreases_in_p(self, n, M, p):
        assert parallel_io_bound(n, M, 2 * p) <= parallel_io_bound(n, M, p)

    @given(
        st.integers(min_value=256, max_value=8192),
        st.floats(min_value=2.1, max_value=2.9),
    )
    @settings(max_examples=40, deadline=None)
    def test_smaller_omega_needs_less_io(self, n, w):
        M = 64
        if (n / 8) ** 0.1 > 0:  # guard: always true, keeps strategy simple
            assert sequential_io_bound(n, M, w) <= sequential_io_bound(n, M, 3.0) + 1e-9


class TestMachineProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=1, max_value=40),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_exchange_conservation(self, triples):
        m = Machine(6)
        msgs = []
        for i, (src, dst, words) in enumerate(triples):
            msgs.append((src, dst, f"k{i}", np.zeros(words)))
        m.exchange(msgs)
        if m.log.steps:
            step = m.log.steps[-1]
            assert sum(step.sent.values()) == sum(step.recv.values())
            assert step.critical_words() <= sum(step.sent.values()) + sum(step.recv.values())

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_memory_peak_dominates_usage(self, p, size):
        m = Machine(p)
        m.put(0, "x", np.zeros(size))
        m.put(0, "y", np.zeros(size))
        m.delete(0, "x")
        assert m.mem_peak[0] >= m.mem_used(0)
        assert m.mem_peak[0] == 2 * size
