"""Tests for the machine-topology cost model (devices, links, tiers)."""

import math

import numpy as np
import pytest

from repro.topology import TOPOLOGY_FAMILIES, CommTier, Device, Topology


class TestUniform:
    def test_unbounded_fleet(self):
        t = Topology.uniform()
        assert t.is_uniform
        assert t.capacity is None
        t.validate_p(10**6)  # never rejects

    def test_bounded_fleet(self):
        t = Topology.uniform(p=8)
        assert t.capacity == 8
        assert len(t.devices) == 8
        t.validate_p(8)
        with pytest.raises(ValueError, match="exceeds the topology"):
            t.validate_p(9)

    def test_flat_alpha_beta(self):
        t = Topology.uniform(2.0, 0.5)
        assert t.effective_alpha_beta(64) == (2.0, 0.5)
        assert t.predict_time(100.0, 10.0, p=64) == 2.0 * 10 + 0.5 * 100

    def test_flops_free_on_cpu_builders(self):
        t = Topology.uniform()
        assert t.slowest_flop_rate(16) == math.inf
        # infinite rate: the flop term contributes nothing
        assert t.predict_time(0.0, 0.0, p=4, flops=1e12) == 0.0

    def test_time_from_steps_matches_flat_expression(self):
        # the golden-pinned identity: exactly (α·msgs + β·words).max(1).sum()
        rng = np.random.default_rng(7)
        step_msgs = rng.integers(0, 9, size=(5, 16)).astype(np.int64)
        step_words = rng.integers(0, 900, size=(5, 16)).astype(np.int64)
        alpha, beta = 1.5, 0.25
        t = Topology.uniform(alpha, beta)
        expected = float((alpha * step_msgs + beta * step_words).max(axis=1).sum())
        assert t.time_from_steps(step_msgs, step_words) == expected

    def test_time_from_steps_empty(self):
        t = Topology.uniform()
        assert t.time_from_steps(np.zeros((0, 4)), np.zeros((0, 4))) == 0.0

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError, match="must be > 0"):
            Topology.uniform(alpha=0.0)
        with pytest.raises(ValueError, match="must be > 0"):
            Topology.uniform(beta=-1.0)


class TestFatTree:
    def test_tier_selection(self):
        t = Topology.fat_tree(16, 4)
        assert t.capacity == 64
        # p <= hosts_per_switch stays in-switch: 2 hops, uncontended
        assert t.effective_alpha_beta(4) == (2.0, 1.0)
        # crossing the core: 4 hops, oversubscribed bandwidth
        assert t.effective_alpha_beta(5) == (4.0, 2.0)

    def test_oversubscription_scales_beta(self):
        t = Topology.fat_tree(4, 4, oversubscription=3.0)
        assert t.effective_alpha_beta(16) == (4.0, 3.0)

    def test_capacity_enforced(self):
        t = Topology.fat_tree(2, 2)
        with pytest.raises(ValueError, match="exceeds the topology"):
            t.validate_p(5)

    def test_links_cover_hosts_and_switches(self):
        t = Topology.fat_tree(3, 2)
        assert len(t.devices) == 6
        assert len(t.links) == 6 + 3  # host->edge + edge->core


class TestTorus:
    def test_tiers_grow_with_subblock(self):
        t = Topology.torus((4, 4))
        assert t.capacity == 16
        caps = [tier.capacity for tier in t.tiers]
        assert caps == sorted(caps)
        assert caps[0] == 1 and caps[-1] == 16

    def test_single_node_job_pays_no_hops(self):
        t = Topology.torus((4, 4))
        alpha, beta = t.effective_alpha_beta(1)
        assert alpha == 1.0 and beta == 1.0

    def test_full_machine_pays_diameter_and_bisection(self):
        t = Topology.torus((8, 8))
        alpha, beta = t.effective_alpha_beta(64)
        assert alpha == 1.0 * (7 + 7)  # sub-block diameter in hops
        assert beta == 1.0 * (8 / 4.0)  # side/4 bisection contention

    def test_wraparound_link_count(self):
        # a d-dim torus with all sides > 1 has one +1 link per node per axis
        t = Topology.torus((3, 3))
        assert len(t.links) == 9 * 2

    def test_rejects_empty_dims(self):
        with pytest.raises(ValueError, match="at least one dimension"):
            Topology.torus(())


class TestGpuCluster:
    def test_nvlink_vs_network_tiers(self):
        t = Topology.gpu_cluster(2, 8)
        assert t.effective_alpha_beta(8) == (pytest.approx(0.1), pytest.approx(0.1))
        assert t.effective_alpha_beta(9) == (4.0, 1.0)

    def test_finite_flop_rate_prices_compute(self):
        t = Topology.gpu_cluster(2, 4, gpu_flop_rate=8.0)
        assert t.slowest_flop_rate(8) == 8.0
        assert t.predict_time(0.0, 0.0, p=4, flops=80.0) == pytest.approx(10.0)

    def test_devices_are_gpus(self):
        t = Topology.gpu_cluster(2, 2)
        assert all(d.kind == "gpu" for d in t.devices)


class TestParse:
    @pytest.mark.parametrize(
        "spec,kind,capacity",
        [
            ("uniform", "uniform", None),
            ("uniform:32", "uniform", 32),
            ("fat-tree:16x4", "fat-tree", 64),
            ("torus:4x4x4", "torus", 64),
            ("gpu:2x8", "gpu", 16),
            ("gpu-cluster:2x8", "gpu", 16),
        ],
    )
    def test_grammar(self, spec, kind, capacity):
        t = Topology.parse(spec)
        assert t.kind == kind
        assert t.capacity == capacity

    def test_alpha_beta_forwarded(self):
        t = Topology.parse("fat-tree:2x4", alpha=3.0, beta=0.5)
        assert t.effective_alpha_beta(2) == (6.0, 0.5)

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown topology family"):
            Topology.parse("hypercube:8")
        assert "fat-tree" in TOPOLOGY_FAMILIES

    @pytest.mark.parametrize("spec", ["fat-tree:16", "fat-tree:axb", "torus:0x4", "gpu:2"])
    def test_malformed_specs(self, spec):
        with pytest.raises(ValueError, match="malformed topology spec"):
            Topology.parse(spec)


class TestInvariants:
    def test_tier_ordering_enforced(self):
        with pytest.raises(ValueError, match="ordered innermost"):
            Topology(
                kind="x",
                name="x",
                tiers=(CommTier("outer", 64, 1, 1), CommTier("inner", 4, 1, 1)),
            )

    def test_device_count_must_match_outer_capacity(self):
        with pytest.raises(ValueError, match="device count"):
            Topology(
                kind="x",
                name="x",
                tiers=(CommTier("all", 4, 1, 1),),
                devices=(Device(0),),
            )

    def test_needs_a_tier(self):
        with pytest.raises(ValueError, match="at least one communication tier"):
            Topology(kind="x", name="x", tiers=())

    def test_cache_token_distinguishes_parameters(self):
        a = Topology.fat_tree(4, 4)
        b = Topology.fat_tree(4, 4, oversubscription=3.0)
        c = Topology.fat_tree(4, 4)
        assert a.cache_token() != b.cache_token()
        assert a.cache_token() == c.cache_token()

    def test_describe_is_json_ready(self):
        import json

        doc = Topology.parse("torus:4x4").describe()
        text = json.dumps(doc, allow_nan=False)
        assert "torus:4x4" in text


class TestScalingIdentity:
    def test_uniform_topology_reproduces_machine_time(self):
        """The bit-identity the golden file rests on: Topology.uniform's
        time equals Machine.time(alpha, beta) on a real measured run."""
        from repro.machine.distributed import Machine
        from repro.parallel import ParallelConfig, get_parallel
        from repro.util.matgen import integer_matrix

        A = integer_matrix(32, seed=1)
        B = integer_matrix(32, seed=2)
        r = get_parallel("cannon").execute(A, B, ParallelConfig(n=32, p=16))
        alpha, beta = 1.25, 0.75
        steps = r.machine.log.steps
        step_words = np.zeros((len(steps), 16), dtype=np.int64)
        step_msgs = np.zeros((len(steps), 16), dtype=np.int64)
        for i, s in enumerate(steps):
            for rk, w in s.sent.items():
                step_words[i, rk] += w
            for rk, w in s.recv.items():
                step_words[i, rk] += w
            for rk, cnt in s.msgs.items():
                step_msgs[i, rk] = cnt
        topo = Topology.uniform(alpha, beta)
        assert topo.time_from_steps(step_msgs, step_words) == r.machine.time(alpha, beta)
        assert isinstance(r.machine, Machine)
