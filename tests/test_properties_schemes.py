"""Property-based randomized tests for the rectangular scheme layer.

Seeded RNG only (no new dependencies): for random shapes, random tensor
compositions, and random *invertible base changes* (de Groote
transformations by unimodular integer matrices — the symmetry group of the
matrix-multiplication tensor), every generated scheme must

* satisfy the Brent equations exactly (``brent_residual() == 0``), and
* multiply exactly on integer matrices (``apply(A, B) == A @ B``),

with square schemes exercised as the ⟨n,n,n⟩ special case — the regression
guard for the rectangular refactor.
"""

import numpy as np
import pytest

from repro.cdag.schemes import (
    BilinearScheme,
    classical_rect_scheme,
    compose_schemes,
    get_scheme,
)

SEED = 0xB11D


def _rng():
    return np.random.default_rng(SEED)


# ---------------------------------------------------------------------- #
# generators                                                              #
# ---------------------------------------------------------------------- #


def _unimodular(rng: np.random.Generator, n: int, n_ops: int = 4):
    """A random integer matrix with det ±1, plus its exact integer inverse.

    Built from elementary row operations (swap, negate, add c·row), each of
    which has an exact integer inverse; applying the inverse ops in reverse
    order gives the inverse matrix with no floating-point division.
    """
    M = np.eye(n, dtype=np.int64)
    Minv = np.eye(n, dtype=np.int64)
    for _ in range(n_ops):
        kind = rng.integers(0, 3)
        i, j = rng.integers(0, n, 2)
        if kind == 0 and i != j:          # swap rows i, j
            M[[i, j]] = M[[j, i]]
            Minv[:, [i, j]] = Minv[:, [j, i]]
        elif kind == 1:                   # negate row i
            M[i] = -M[i]
            Minv[:, i] = -Minv[:, i]
        elif i != j:                      # row_i += c * row_j
            c = int(rng.integers(-2, 3))
            M[i] += c * M[j]
            Minv[:, j] -= c * Minv[:, i]
    assert np.array_equal(M @ Minv, np.eye(n, dtype=np.int64))
    return M.astype(np.float64), Minv.astype(np.float64)


def _row_major_kron(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """K with ``vec(A M Bᵀ) = K @ vec(M)`` under row-major vec: kron(A, B)."""
    return np.kron(A, B)


def _base_change(scheme: BilinearScheme, rng: np.random.Generator) -> BilinearScheme:
    """A random de Groote transformation of ``scheme``.

    With unimodular P (m₀×m₀), Q (n₀×n₀), R (p₀×p₀):

        U' = U · (P ⊗ Qᵀ)      (forms evaluated on P A Q)
        V' = V · (Q⁻¹ ⊗ Rᵀ)    (forms evaluated on Q⁻¹ B R)
        W' = (P⁻¹ ⊗ (R⁻¹)ᵀ) · W  (undo C ↦ P C R)

    The products compute the original scheme on (P A Q, Q⁻¹ B R), whose
    matrix product is P (A B) R — so W' reconstructs A B exactly, and the
    transformed triple is again a valid ⟨m₀,n₀,p₀;t₀⟩ scheme.
    """
    P, Pinv = _unimodular(rng, scheme.m0)
    Q, Qinv = _unimodular(rng, scheme.n0)
    R, Rinv = _unimodular(rng, scheme.p0)
    U = scheme.U @ _row_major_kron(P, Q.T)
    V = scheme.V @ _row_major_kron(Qinv, R.T)
    W = _row_major_kron(Pinv, Rinv.T) @ scheme.W
    return BilinearScheme(
        f"{scheme.name}~basechange", scheme.m0, scheme.n0, scheme.p0, U, V, W
    )


def _product_permuted(scheme: BilinearScheme, rng: np.random.Generator) -> BilinearScheme:
    """Permute the t₀ products (rows of U, V and columns of W together)."""
    perm = rng.permutation(scheme.t0)
    return BilinearScheme(
        f"{scheme.name}~perm",
        scheme.m0,
        scheme.n0,
        scheme.p0,
        scheme.U[perm],
        scheme.V[perm],
        scheme.W[:, perm],
    )


def _dyadic_scaled(scheme: BilinearScheme, rng: np.random.Generator) -> BilinearScheme:
    """Scale product r by (α_r, β_r, 1/(α_r β_r)) with dyadic α, β — exact
    in binary floating point, so residual and apply stay exactly 0/equal."""
    choices = np.array([1.0, -1.0, 2.0, -2.0])
    alpha = rng.choice(choices, scheme.t0)
    beta = rng.choice(choices, scheme.t0)
    return BilinearScheme(
        f"{scheme.name}~scaled",
        scheme.m0,
        scheme.n0,
        scheme.p0,
        scheme.U * alpha[:, None],
        scheme.V * beta[:, None],
        scheme.W / (alpha * beta)[None, :],
    )


def _random_shape(rng: np.random.Generator) -> tuple[int, int, int]:
    return tuple(int(d) for d in rng.integers(1, 4, 3))


def _assert_exact(scheme: BilinearScheme, rng: np.random.Generator, depth: int = 1):
    assert scheme.brent_residual() == 0.0
    for k in range(1, depth + 1):
        A = rng.integers(-3, 4, (scheme.m0**k, scheme.n0**k)).astype(float)
        B = rng.integers(-3, 4, (scheme.n0**k, scheme.p0**k)).astype(float)
        got = scheme.apply(A, B) if k == 1 else scheme.apply_recursive(A, B)
        assert np.array_equal(got, A @ B), f"{scheme.name} depth {k}"


# ---------------------------------------------------------------------- #
# properties                                                              #
# ---------------------------------------------------------------------- #

BASE_POOL = ["strassen", "winograd", "classical2", "classical122", "classical212", "classical221"]


class TestRandomShapes:
    def test_random_classical_rect_schemes_are_exact(self):
        rng = _rng()
        for trial in range(25):
            m, n, p = _random_shape(rng)
            s = classical_rect_scheme(m, n, p, name=f"rand{trial}")
            assert s.t0 == m * n * p
            _assert_exact(s, rng)

    def test_square_special_case(self):
        # ⟨n,n,n⟩ through the same generator: the refactor must not have
        # perturbed the square path.
        rng = _rng()
        for n in (1, 2, 3):
            s = classical_rect_scheme(n, n, n, name=f"sq{n}")
            assert s.is_square
            assert s.omega0 == pytest.approx(3.0)
            _assert_exact(s, rng, depth=2)


class TestRandomCompositions:
    def test_random_pairwise_compositions_are_exact(self):
        rng = _rng()
        for _ in range(10):
            s1 = get_scheme(str(rng.choice(BASE_POOL)))
            s2 = get_scheme(str(rng.choice(BASE_POOL)))
            s = compose_schemes(s1, s2)
            assert s.shape == (s1.m0 * s2.m0, s1.n0 * s2.n0, s1.p0 * s2.p0)
            assert s.t0 == s1.t0 * s2.t0
            _assert_exact(s, rng)

    def test_random_composition_with_random_rect_factor(self):
        rng = _rng()
        for _ in range(8):
            shape = _random_shape(rng)
            s1 = classical_rect_scheme(*shape, name="f")
            s2 = get_scheme(str(rng.choice(["strassen", "classical122"])))
            _assert_exact(compose_schemes(s1, s2), rng)


class TestInvertibleBaseChanges:
    @pytest.mark.parametrize("name", BASE_POOL)
    def test_base_change_preserves_validity(self, name):
        rng = _rng()
        s = get_scheme(name)
        for _ in range(6):
            _assert_exact(_base_change(s, rng), rng)

    @pytest.mark.parametrize("name", BASE_POOL)
    def test_product_permutation_preserves_validity(self, name):
        rng = _rng()
        _assert_exact(_product_permuted(get_scheme(name), rng), rng)

    @pytest.mark.parametrize("name", BASE_POOL)
    def test_dyadic_scaling_preserves_validity(self, name):
        rng = _rng()
        _assert_exact(_dyadic_scaled(get_scheme(name), rng), rng)

    def test_composed_base_changes(self):
        # stacking transformations (the "compositions" of the group) keeps
        # validity: scale ∘ permute ∘ base-change ∘ compose
        rng = _rng()
        s = compose_schemes(get_scheme("strassen"), get_scheme("classical122"))
        s = _base_change(s, rng)
        s = _product_permuted(s, rng)
        s = _dyadic_scaled(s, rng)
        _assert_exact(s, rng, depth=2)

    def test_broken_base_change_is_rejected(self):
        # sanity: a *wrong* transform (forgetting to undo Q) must not pass
        rng = _rng()
        s = get_scheme("strassen")
        Q, _ = _unimodular(rng, s.n0, n_ops=6)
        if np.array_equal(np.abs(Q), np.eye(s.n0)):  # degenerate draw
            Q = np.array([[1.0, 1.0], [0.0, 1.0]])
        U = s.U @ _row_major_kron(np.eye(s.m0), Q.T)
        with pytest.raises(ValueError, match="Brent"):
            BilinearScheme("broken", s.m0, s.n0, s.p0, U, s.V, s.W)
