"""Tests for the parallel machine (repro.machine.distributed + counters)."""

import numpy as np
import pytest

from repro.machine.counters import CommLog, SuperstepRecord
from repro.machine.distributed import Machine


class TestStorage:
    def test_put_get_roundtrip(self):
        m = Machine(2)
        m.put(0, "x", np.arange(5.0))
        assert np.array_equal(m.get(0, "x"), np.arange(5.0))

    def test_get_missing_raises(self):
        m = Machine(2)
        with pytest.raises(KeyError):
            m.get(0, "nope")

    def test_memory_accounting(self):
        m = Machine(2)
        m.put(0, "x", np.zeros(10))
        m.put(0, "y", np.zeros(5))
        assert m.mem_used(0) == 15
        m.delete(0, "x")
        assert m.mem_used(0) == 5
        assert m.mem_peak[0] == 15

    def test_replace_updates_usage(self):
        m = Machine(1)
        m.put(0, "x", np.zeros(10))
        m.put(0, "x", np.zeros(3))
        assert m.mem_used(0) == 3

    def test_memory_limit_enforced(self):
        m = Machine(1, memory_limit=8)
        m.put(0, "x", np.zeros(5))
        with pytest.raises(MemoryError, match="exceeded"):
            m.put(0, "y", np.zeros(5))

    def test_memory_limit_exceed_on_put_names_key_and_rank(self):
        m = Machine(3, memory_limit=4)
        with pytest.raises(MemoryError, match=r"rank 2.*'huge'"):
            m.put(2, "huge", np.zeros(5))

    def test_memory_limit_exceeded_mid_superstep(self):
        # delivery happens through put(): an incoming payload that would
        # overflow the receiver's memory raises during the exchange
        m = Machine(2, memory_limit=8)
        m.put(1, "x", np.zeros(6))
        with pytest.raises(MemoryError, match="rank 1"):
            m.exchange([(0, 1, "incoming", np.zeros(6))])

    def test_memory_limit_replace_within_budget_ok_mid_superstep(self):
        # replacing an existing key with an equal-size payload is delta 0
        m = Machine(2, memory_limit=8)
        m.put(1, "x", np.zeros(8))
        m.exchange([(0, 1, "x", np.ones(8))])
        assert np.array_equal(m.get(1, "x"), np.ones(8))

    def test_memory_limit_none_tracks_peaks_without_raising(self):
        m = Machine(1, memory_limit=None)
        m.put(0, "a", np.zeros(1000))
        m.put(0, "b", np.zeros(500))
        m.delete(0, "a")
        assert m.mem_used(0) == 500
        assert m.mem_peak[0] == 1500
        assert m.max_mem_peak == 1500

    def test_rank_bounds_checked(self):
        m = Machine(2)
        with pytest.raises(ValueError, match="out of range"):
            m.put(5, "x", np.zeros(1))


class TestExchange:
    def test_message_delivery(self):
        m = Machine(2)
        m.exchange([(0, 1, "data", np.arange(4.0))])
        assert np.array_equal(m.get(1, "data"), np.arange(4.0))

    def test_self_send_free(self):
        m = Machine(2)
        m.exchange([(0, 0, "data", np.arange(4.0))])
        assert m.critical_words == 0
        assert np.array_equal(m.get(0, "data"), np.arange(4.0))

    def test_critical_words_max_over_ranks(self):
        m = Machine(4)
        # two disjoint simultaneous transfers count once (paper's example);
        # each rank only sends or only receives, so the round costs 10
        m.exchange([(0, 1, "a", np.zeros(10)), (2, 3, "b", np.zeros(10))])
        assert m.critical_words == 10

    def test_fan_in_serializes(self):
        m = Machine(3)
        # two messages into rank 2 serialize (paper's §1.1 example)
        m.exchange([(0, 2, "a", np.zeros(10)), (1, 2, "b", np.zeros(10))])
        assert m.critical_words == 20

    def test_message_counts(self):
        m = Machine(3)
        m.exchange([(0, 2, "a", np.zeros(10)), (1, 2, "b", np.zeros(10))])
        assert m.critical_messages == 2  # rank 2 handles two messages

    def test_payload_snapshot(self):
        # delivery copies: later mutation of the source must not leak
        m = Machine(2)
        buf = np.zeros(3)
        m.exchange([(0, 1, "a", buf)])
        buf[:] = 9.0
        assert np.array_equal(m.get(1, "a"), np.zeros(3))

    def test_words_conservation(self):
        m = Machine(4)
        m.exchange([(0, 1, "a", np.zeros(7)), (2, 3, "b", np.zeros(9))])
        step = m.log.steps[-1]
        assert sum(step.sent.values()) == sum(step.recv.values()) == 16


class TestParallelRegions:
    def test_branches_merge_positionally(self):
        m = Machine(4)
        with m.parallel() as par:
            with par.branch():
                m.exchange([(0, 1, "a", np.zeros(10))])
            with par.branch():
                m.exchange([(2, 3, "b", np.zeros(10))])
        # one merged superstep, not two
        assert m.log.n_supersteps == 1
        assert m.critical_words == 10

    def test_uneven_branches(self):
        m = Machine(4)
        with m.parallel() as par:
            with par.branch():
                m.exchange([(0, 1, "a", np.zeros(5))])
                m.exchange([(0, 1, "a2", np.zeros(5))])
            with par.branch():
                m.exchange([(2, 3, "b", np.zeros(5))])
        assert m.log.n_supersteps == 2

    def test_overlapping_ranks_rejected(self):
        m = Machine(4)
        with pytest.raises(ValueError, match="disjoint"):
            with m.parallel() as par:
                with par.branch():
                    m.exchange([(0, 1, "a", np.zeros(5))])
                with par.branch():
                    m.exchange([(0, 2, "b", np.zeros(5))])

    def test_nested_regions(self):
        m = Machine(8)
        with m.parallel() as par:
            with par.branch():
                with m.parallel() as inner:
                    with inner.branch():
                        m.exchange([(0, 1, "a", np.zeros(4))])
                    with inner.branch():
                        m.exchange([(2, 3, "b", np.zeros(4))])
            with par.branch():
                m.exchange([(4, 5, "c", np.zeros(4))])
        assert m.log.n_supersteps == 1
        assert m.critical_words == 4


class TestFlops:
    def test_compute_phase_takes_max(self):
        m = Machine(2)
        m.flop(0, 100)
        m.flop(1, 40)
        m.end_compute_phase()
        assert m.critical_flops == 100
        m.flop(1, 60)
        m.end_compute_phase()
        assert m.critical_flops == 160

    def test_negative_flops_rejected(self):
        m = Machine(1)
        with pytest.raises(ValueError):
            m.flop(0, -1)

    def test_estimated_time_combines(self):
        m = Machine(2, alpha=5.0, beta=2.0)
        m.exchange([(0, 1, "a", np.zeros(10))])
        t = m.estimated_time()
        assert t == 5.0 * 1 + 2.0 * 10


class TestAlphaBetaTime:
    def test_hand_computed_two_supersteps(self):
        # step 1: fan-in at rank 1 (10 + 5 words, 2 msgs); step 2: one reply
        m = Machine(3)
        m.exchange([(0, 1, "a", np.zeros(10)), (2, 1, "b", np.zeros(5))])
        m.exchange([(1, 0, "c", np.zeros(3))])
        alpha, beta = 2.0, 0.5
        # step 1: max(α·1 + β·10, α·2 + β·15, α·1 + β·5) = 2·2 + 0.5·15 = 11.5
        # step 2: α·1 + β·3 = 3.5
        assert m.time(alpha, beta) == pytest.approx(11.5 + 3.5)

    def test_couples_per_rank_below_separable_estimate(self):
        # msg-heavy rank (3 tiny messages) != word-heavy rank (one big one):
        # the coupled time is strictly below α·crit_msgs + β·crit_words
        m = Machine(6)
        m.exchange([
            (0, 1, "big", np.zeros(100)),
            (2, 3, "t1", np.zeros(1)),
            (4, 3, "t2", np.zeros(1)),
            (5, 3, "t3", np.zeros(1)),
        ])
        alpha, beta = 10.0, 1.0
        assert m.critical_messages == 3 and m.critical_words == 100
        # coupled: max(10·1 + 1·100, 10·3 + 1·3) = 110 < 10·3 + 1·100 = 130
        assert m.time(alpha, beta) == pytest.approx(110.0)
        assert m.time(alpha, beta) < alpha * m.critical_messages + beta * m.critical_words

    def test_defaults_to_machine_alpha_beta(self):
        m = Machine(2, alpha=3.0, beta=2.0)
        m.exchange([(0, 1, "a", np.zeros(4))])
        assert m.time() == pytest.approx(3.0 * 1 + 2.0 * 4)
        assert m.time(0.0, 1.0) == pytest.approx(4.0)

    def test_empty_log_is_zero(self):
        assert Machine(2).time(5.0, 7.0) == 0.0

    def test_superstep_record_time(self):
        s = SuperstepRecord(sent={0: 5, 1: 3}, recv={1: 5, 0: 3}, msgs={0: 4, 1: 1})
        # rank 0: α·4 + β·8; rank 1: α·1 + β·8
        assert s.time(2.0, 1.0) == pytest.approx(16.0)
        assert s.time(0.0, 1.0) == pytest.approx(8.0)
        assert SuperstepRecord().time(1.0, 1.0) == 0.0


class TestCounters:
    def test_superstep_critical(self):
        s = SuperstepRecord(sent={0: 5, 1: 3}, recv={1: 5, 0: 3}, msgs={0: 1, 1: 1})
        assert s.critical_words() == 8
        assert s.critical_messages() == 1

    def test_commlog_accumulates(self):
        log = CommLog()
        log.add(SuperstepRecord(sent={0: 5}, recv={1: 5}, msgs={0: 1, 1: 1}))
        log.add(SuperstepRecord(sent={1: 7}, recv={0: 7}, msgs={0: 1, 1: 1}))
        assert log.critical_words == 12
        assert log.total_words == 12
        assert log.n_supersteps == 2
        assert log.per_rank_sent() == {0: 5, 1: 7}
