"""Tests for the parallel machine (repro.machine.distributed + counters)."""

import numpy as np
import pytest

from repro.machine.counters import CommLog, SuperstepRecord
from repro.machine.distributed import Machine, Message


class TestStorage:
    def test_put_get_roundtrip(self):
        m = Machine(2)
        m.put(0, "x", np.arange(5.0))
        assert np.array_equal(m.get(0, "x"), np.arange(5.0))

    def test_get_missing_raises(self):
        m = Machine(2)
        with pytest.raises(KeyError):
            m.get(0, "nope")

    def test_memory_accounting(self):
        m = Machine(2)
        m.put(0, "x", np.zeros(10))
        m.put(0, "y", np.zeros(5))
        assert m.mem_used(0) == 15
        m.delete(0, "x")
        assert m.mem_used(0) == 5
        assert m.mem_peak[0] == 15

    def test_replace_updates_usage(self):
        m = Machine(1)
        m.put(0, "x", np.zeros(10))
        m.put(0, "x", np.zeros(3))
        assert m.mem_used(0) == 3

    def test_memory_limit_enforced(self):
        m = Machine(1, memory_limit=8)
        m.put(0, "x", np.zeros(5))
        with pytest.raises(MemoryError, match="exceeded"):
            m.put(0, "y", np.zeros(5))

    def test_rank_bounds_checked(self):
        m = Machine(2)
        with pytest.raises(ValueError, match="out of range"):
            m.put(5, "x", np.zeros(1))


class TestExchange:
    def test_message_delivery(self):
        m = Machine(2)
        m.exchange([(0, 1, "data", np.arange(4.0))])
        assert np.array_equal(m.get(1, "data"), np.arange(4.0))

    def test_self_send_free(self):
        m = Machine(2)
        m.exchange([(0, 0, "data", np.arange(4.0))])
        assert m.critical_words == 0
        assert np.array_equal(m.get(0, "data"), np.arange(4.0))

    def test_critical_words_max_over_ranks(self):
        m = Machine(4)
        # two disjoint simultaneous transfers count once (paper's example);
        # each rank only sends or only receives, so the round costs 10
        m.exchange([(0, 1, "a", np.zeros(10)), (2, 3, "b", np.zeros(10))])
        assert m.critical_words == 10

    def test_fan_in_serializes(self):
        m = Machine(3)
        # two messages into rank 2 serialize (paper's §1.1 example)
        m.exchange([(0, 2, "a", np.zeros(10)), (1, 2, "b", np.zeros(10))])
        assert m.critical_words == 20

    def test_message_counts(self):
        m = Machine(3)
        m.exchange([(0, 2, "a", np.zeros(10)), (1, 2, "b", np.zeros(10))])
        assert m.critical_messages == 2  # rank 2 handles two messages

    def test_payload_snapshot(self):
        # delivery copies: later mutation of the source must not leak
        m = Machine(2)
        buf = np.zeros(3)
        m.exchange([(0, 1, "a", buf)])
        buf[:] = 9.0
        assert np.array_equal(m.get(1, "a"), np.zeros(3))

    def test_words_conservation(self):
        m = Machine(4)
        m.exchange([(0, 1, "a", np.zeros(7)), (2, 3, "b", np.zeros(9))])
        step = m.log.steps[-1]
        assert sum(step.sent.values()) == sum(step.recv.values()) == 16


class TestParallelRegions:
    def test_branches_merge_positionally(self):
        m = Machine(4)
        with m.parallel() as par:
            with par.branch():
                m.exchange([(0, 1, "a", np.zeros(10))])
            with par.branch():
                m.exchange([(2, 3, "b", np.zeros(10))])
        # one merged superstep, not two
        assert m.log.n_supersteps == 1
        assert m.critical_words == 10

    def test_uneven_branches(self):
        m = Machine(4)
        with m.parallel() as par:
            with par.branch():
                m.exchange([(0, 1, "a", np.zeros(5))])
                m.exchange([(0, 1, "a2", np.zeros(5))])
            with par.branch():
                m.exchange([(2, 3, "b", np.zeros(5))])
        assert m.log.n_supersteps == 2

    def test_overlapping_ranks_rejected(self):
        m = Machine(4)
        with pytest.raises(ValueError, match="disjoint"):
            with m.parallel() as par:
                with par.branch():
                    m.exchange([(0, 1, "a", np.zeros(5))])
                with par.branch():
                    m.exchange([(0, 2, "b", np.zeros(5))])

    def test_nested_regions(self):
        m = Machine(8)
        with m.parallel() as par:
            with par.branch():
                with m.parallel() as inner:
                    with inner.branch():
                        m.exchange([(0, 1, "a", np.zeros(4))])
                    with inner.branch():
                        m.exchange([(2, 3, "b", np.zeros(4))])
            with par.branch():
                m.exchange([(4, 5, "c", np.zeros(4))])
        assert m.log.n_supersteps == 1
        assert m.critical_words == 4


class TestFlops:
    def test_compute_phase_takes_max(self):
        m = Machine(2)
        m.flop(0, 100)
        m.flop(1, 40)
        m.end_compute_phase()
        assert m.critical_flops == 100
        m.flop(1, 60)
        m.end_compute_phase()
        assert m.critical_flops == 160

    def test_negative_flops_rejected(self):
        m = Machine(1)
        with pytest.raises(ValueError):
            m.flop(0, -1)

    def test_estimated_time_combines(self):
        m = Machine(2, alpha=5.0, beta=2.0)
        m.exchange([(0, 1, "a", np.zeros(10))])
        t = m.estimated_time()
        assert t == 5.0 * 1 + 2.0 * 10


class TestCounters:
    def test_superstep_critical(self):
        s = SuperstepRecord(sent={0: 5, 1: 3}, recv={1: 5, 0: 3}, msgs={0: 1, 1: 1})
        assert s.critical_words() == 8
        assert s.critical_messages() == 1

    def test_commlog_accumulates(self):
        log = CommLog()
        log.add(SuperstepRecord(sent={0: 5}, recv={1: 5}, msgs={0: 1, 1: 1}))
        log.add(SuperstepRecord(sent={1: 7}, recv={0: 7}, msgs={0: 1, 1: 1}))
        assert log.critical_words == 12
        assert log.total_words == 12
        assert log.n_supersteps == 2
        assert log.per_rank_sent() == {0: 5, 1: 7}
