"""The persistent shared worker-pool runtime (``repro.engine.pool``).

Lifecycle (one warm pool per process, reused across every call site),
failure semantics (one respawn, then permanent serial fallback), the
``REPRO_POOL`` kill switch, zero-copy transport, and the determinism
contract: identical results for every worker count — the property the
grid's row order and the exact engine's ``(h, mask)`` merge rely on.

Pool state is process-global, so every test that touches lifecycle or
counters goes through the ``fresh_pool`` fixture: boot from a clean
slate, restore the fallback state afterwards.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np
import pytest

from repro.cdag.build import layered_circulant_cdag
from repro.cdag.graph import CDAG
from repro.core.exact import exact_edge_expansion_v2
from repro.engine import pool as pool_runtime
from repro.engine.cache import EngineCache
from repro.engine.grid import GridSpec, run_grid
from repro.serve.jobs import parse_job, run_job_pooled

# --------------------------------------------------------------------- #
# module-level task functions (spawn must pickle them; RC401 contract)   #
# --------------------------------------------------------------------- #


def _square(x: int) -> int:
    return x * x


def _dot(msg: tuple[np.ndarray, np.ndarray]) -> float:
    a, b = msg
    return float(a @ b)


def _arange(n: int) -> np.ndarray:
    return np.arange(n, dtype=np.uint64)


def _crash_in_worker(x: int) -> tuple[str, int]:
    """Kill the hosting *worker*; inert when run inline in the parent."""
    if pool_runtime.in_worker():
        os._exit(13)
    return ("inline", x)


def _random_graph(n: int, seed: int, p: float = 0.35) -> CDAG:
    rng = np.random.default_rng(seed)
    src, dst = [], []
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                src.append(i)
                dst.append(j)
    return CDAG(n, np.array(src), np.array(dst), np.zeros(n, dtype=np.int8))


@pytest.fixture
def fresh_pool(monkeypatch):
    """A clean, enabled pool slate; restores fallback state afterwards.

    These tests exercise the pool runtime itself, so the kill switch is
    forced open regardless of the environment (the ``REPRO_POOL=0`` CI leg
    proves the *call sites* degrade gracefully; the kill-switch test below
    re-closes it explicitly).
    """
    monkeypatch.setenv(pool_runtime.POOL_ENV, "1")
    pool_runtime.shutdown_pool()
    saved_reason = pool_runtime._FALLBACK_REASON
    pool_runtime._FALLBACK_REASON = None
    pool_runtime.reset_pool_stats()
    yield
    pool_runtime.shutdown_pool()
    pool_runtime._FALLBACK_REASON = saved_reason


# --------------------------------------------------------------------- #
# transport and scheduling                                               #
# --------------------------------------------------------------------- #


class TestSubmitBatch:
    def test_results_in_task_order(self, fresh_pool):
        tasks = list(range(37))
        assert pool_runtime.submit_batch(_square, tasks, workers=3) == [
            x * x for x in tasks
        ]

    def test_explicit_chunksize_same_results(self, fresh_pool):
        tasks = list(range(23))
        expected = [x * x for x in tasks]
        for chunksize in (1, 4, 23, 100):
            got = pool_runtime.submit_batch(
                _square, tasks, workers=2, chunksize=chunksize
            )
            assert got == expected

    def test_empty_batch(self, fresh_pool):
        assert pool_runtime.submit_batch(_square, [], workers=4) == []

    def test_ndarrays_ship_both_ways(self, fresh_pool):
        # protocol-5 out-of-band buffers: arrays in the task message and in
        # the result both round-trip bit-exactly.
        msgs = [
            (np.arange(64, dtype=np.float64), np.ones(64, dtype=np.float64))
            for _ in range(4)
        ]
        assert pool_runtime.submit_batch(_dot, msgs, workers=2) == [2016.0] * 4
        out = pool_runtime.submit_batch(_arange, [5, 9], workers=2)
        assert [a.tolist() for a in out] == [list(range(5)), list(range(9))]

    def test_workers_clamped_to_task_count(self, fresh_pool):
        before = pool_runtime.pool_stats_snapshot()
        pool_runtime.submit_batch(_square, [1, 2, 3], workers=16)
        delta = pool_runtime._STATS.delta_since(before)
        assert 0 < delta["workers_spawned"] <= 3

    def test_env_cap_limits_pool_size(self, fresh_pool, monkeypatch):
        monkeypatch.setenv(pool_runtime.POOL_JOBS_ENV, "2")
        before = pool_runtime.pool_stats_snapshot()
        pool_runtime.submit_batch(_square, list(range(6)), workers=4)
        delta = pool_runtime._STATS.delta_since(before)
        assert delta["workers_spawned"] <= 2

    def test_task_exception_propagates(self, fresh_pool):
        with pytest.raises(ZeroDivisionError):
            pool_runtime.submit_batch(_reciprocal, [1, 0, 2], workers=2)
        # the pool survived the task error: next batch still runs pooled
        before = pool_runtime.pool_stats_snapshot()
        assert pool_runtime.submit_batch(_square, [4, 5], workers=2) == [16, 25]
        delta = pool_runtime._STATS.delta_since(before)
        assert delta["serial_tasks"] == 0


def _reciprocal(x: int) -> float:
    return 1.0 / x


# --------------------------------------------------------------------- #
# lifecycle: warm reuse, kill switch, recovery ladder                    #
# --------------------------------------------------------------------- #


class TestLifecycle:
    def test_warm_reuse_across_grid_exact_and_serve(self, fresh_pool):
        spec = GridSpec(
            schemes=("strassen",), ks=(1,), memories=(48, 192), policies=("auto",)
        )
        with tempfile.TemporaryDirectory() as root:
            run_grid(spec, workers=2, cache=EngineCache(root + "/grid"))
            after_grid = pool_runtime.pool_stats_snapshot()
            assert after_grid["pool_starts"] == 1
            assert after_grid["workers_spawned"] == 2

            # the exact scan and a pooled serve job ride the same workers
            exact_edge_expansion_v2(layered_circulant_cdag(18), jobs=2)
            job = parse_job("expansion", {"scheme": "strassen", "k": "1"})
            run_job_pooled(job, root + "/serve")

            delta = pool_runtime._STATS.delta_since(after_grid)
            assert delta["pool_starts"] == 0
            assert delta["workers_spawned"] == 0  # zero new processes
            assert delta["warm_dispatches"] >= 2
            assert pool_runtime.pool_info()["live_workers"] == 2

    def test_kill_switch_runs_serial(self, fresh_pool, monkeypatch):
        monkeypatch.setenv(pool_runtime.POOL_ENV, "0")
        spec = GridSpec(
            schemes=("strassen",), ks=(1, 2), memories=(48,), policies=("auto",)
        )
        with tempfile.TemporaryDirectory() as root:
            report = run_grid(spec, workers=2, cache=EngineCache(root))
        assert report.workers == 2  # the clamped request is still reported
        info = pool_runtime.pool_info()
        assert not info["enabled"]
        assert info["live_workers"] == 0
        assert info["stats"]["workers_spawned"] == 0
        assert info["stats"]["serial_tasks"] == 2

    def test_broken_pool_respawns_once_then_goes_serial(self, fresh_pool):
        # Every dispatch kills its worker: the first breakage is answered
        # with one respawn, the second drops the runtime into permanent
        # serial fallback — where the same tasks run inline and succeed.
        out = pool_runtime.submit_batch(_crash_in_worker, [1, 2], workers=2)
        assert out == [("inline", 1), ("inline", 2)]
        info = pool_runtime.pool_info()
        assert info["stats"]["respawns"] == 1
        assert info["serial_fallback"] is not None
        assert "respawn" in info["serial_fallback"]
        assert not info["enabled"]

        # fallback is sticky: later batches run inline without touching
        # worker processes at all
        before = pool_runtime.pool_stats_snapshot()
        assert pool_runtime.submit_batch(_square, [3, 4], workers=2) == [9, 16]
        delta = pool_runtime._STATS.delta_since(before)
        assert delta["workers_spawned"] == 0
        assert delta["serial_tasks"] == 2

    def test_shutdown_is_lifecycle_only(self, fresh_pool):
        pool_runtime.submit_batch(_square, [1, 2], workers=2)
        assert pool_runtime.pool_info()["live_workers"] == 2
        pool_runtime.shutdown_pool()
        assert pool_runtime.pool_info()["live_workers"] == 0
        assert pool_runtime.serial_fallback_reason() is None
        # next batch simply boots a fresh pool
        assert pool_runtime.submit_batch(_square, [3], workers=1) == [9]

    def test_prewarm_spawns_ahead_of_first_batch(self, fresh_pool):
        assert pool_runtime.prewarm(2) == 2
        before = pool_runtime.pool_stats_snapshot()
        pool_runtime.submit_batch(_square, [1, 2, 3, 4], workers=2)
        delta = pool_runtime._STATS.delta_since(before)
        assert delta["workers_spawned"] == 0
        assert delta["warm_dispatches"] == 1


# --------------------------------------------------------------------- #
# determinism: identical results for every worker count                  #
# --------------------------------------------------------------------- #


class TestDeterminism:
    def test_exact_jobs_bit_identical_on_circulant(self, fresh_pool):
        g = layered_circulant_cdag(18)
        h1, m1 = exact_edge_expansion_v2(g, jobs=1)
        for jobs in (2, 3):
            h, m = exact_edge_expansion_v2(g, jobs=jobs)
            assert h == h1
            assert np.array_equal(m, m1)

    def test_exact_jobs_bit_identical_on_random_graphs(self, fresh_pool):
        for seed in (3, 11):
            g = _random_graph(18, seed)
            h1, m1 = exact_edge_expansion_v2(g, jobs=1)
            for jobs in (2, 3):
                h, m = exact_edge_expansion_v2(g, jobs=jobs)
                assert h == h1
                assert np.array_equal(m, m1)

    def test_grid_rows_identical_for_every_worker_count(self, fresh_pool):
        spec = GridSpec(
            schemes=("strassen",), ks=(1, 2), memories=(48, 192), policies=("auto",)
        )
        with tempfile.TemporaryDirectory() as root:
            serial = run_grid(spec, workers=1, cache=EngineCache(root + "/w1"))
            for w in (2, 3):
                par = run_grid(spec, workers=w, cache=EngineCache(root + f"/w{w}"))
                assert par.rows == serial.rows
