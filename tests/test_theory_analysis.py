"""Tests for the executable paper claims (core.theory, cdag.analysis)."""

import numpy as np
import pytest

from repro.cdag.analysis import (
    check_claim_5_1,
    check_dec1_connected,
    check_fact_4_2,
    check_fact_4_6,
    degree_histogram,
    layer_profile,
    structure_report,
)
from repro.cdag.schemes import available_schemes
from repro.cdag.strassen_cdag import dec_graph
from repro.core.expansion import decode_cone_mask
from repro.core.theory import (
    check_claim_4_7,
    check_claim_4_10,
    check_corollary_4_4_constant,
    check_fact_4_5,
    check_fact_4_9,
    lemma_4_3_lower_form,
)


class TestFacts:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_fact_4_2_strassen(self, k):
        assert check_fact_4_2("strassen", k) <= 6

    @pytest.mark.parametrize("k", [2, 3])
    def test_fact_4_6_all_small_schemes(self, small_scheme, k):
        res = check_fact_4_6(small_scheme, k)
        assert res["lower"] <= res["top_ratio"] <= res["upper"]

    def test_fact_4_6_strassen_three_sevenths(self):
        res = check_fact_4_6("strassen", 4)
        assert res["lower"] == pytest.approx(3 / 7)

    def test_dec1_connectivity_dichotomy(self):
        connected = {name: check_dec1_connected(name) for name in available_schemes()}
        assert connected["strassen"] and connected["winograd"]
        assert not connected["classical2"] and not connected["classical3"]

    def test_claim_5_1_all_schemes(self, any_scheme):
        assert check_claim_5_1(any_scheme)

    def test_degree_histogram_sums(self):
        g = dec_graph("strassen", 2)
        hist = degree_histogram(g)
        assert sum(hist.values()) == g.n_vertices

    def test_layer_profile_rejects_skipping(self, diamond_graph):
        with pytest.raises(ValueError):
            layer_profile(diamond_graph)  # levels unset (-1)

    def test_structure_report_complete(self):
        rep = structure_report("strassen", 3)
        assert rep["deck"]["V"] == 715
        assert rep["hk"]["dec_fraction"] >= 1 / 3
        assert rep["dec1"]["connected"]


class TestProofClaims:
    """The counting claims inside the proof of Lemma 4.3, on many masks."""

    def _masks(self, g, seed=0):
        rng = np.random.default_rng(seed)
        yield decode_cone_mask("strassen", 3, branch=6)
        yield decode_cone_mask("strassen", 3, branch=0, depth=2)
        for density in (0.1, 0.3, 0.5):
            yield rng.random(g.n_vertices) < density
        one = np.zeros(g.n_vertices, dtype=bool)
        one[0] = True
        yield one

    def test_fact_4_5_many_masks(self):
        g = dec_graph("strassen", 3)
        for mask in self._masks(g):
            if mask.any():
                check_fact_4_5(g, mask)

    def test_claim_4_7_many_masks(self):
        g = dec_graph("strassen", 3)
        for mask in self._masks(g):
            if mask.any():
                check_claim_4_7("strassen", 3, mask)

    def test_claim_4_10_many_masks(self):
        g = dec_graph("strassen", 3)
        for mask in self._masks(g):
            if mask.any():
                check_claim_4_10("strassen", 3, mask)

    def test_fact_4_9_many_masks(self):
        g = dec_graph("strassen", 3)
        for mask in self._masks(g):
            if mask.any():
                check_fact_4_9("strassen", 3, mask)

    def test_claims_generalize_to_winograd(self):
        g = dec_graph("winograd", 2)
        rng = np.random.default_rng(3)
        mask = rng.random(g.n_vertices) < 0.3
        check_fact_4_5(g, mask)
        check_claim_4_7("winograd", 2, mask)
        check_claim_4_10("winograd", 2, mask)


class TestCorollary44:
    def test_arithmetic_consistency(self):
        res = check_corollary_4_4_constant(M=4096)
        # needed h_s matches the lemma's (4/7)^k' / 3 form up to the
        # explicit constants of the corollary
        assert res["needed_h"] == pytest.approx(res["lemma_form"], rel=0.01)

    def test_lemma_form(self):
        assert lemma_4_3_lower_form(3) == pytest.approx((4 / 7) ** 3)
        assert lemma_4_3_lower_form(2, c0=4, m0=8) == pytest.approx(0.25)
