"""Tests for the exact-expansion engine v2 (repro.core.exact).

The seed brute-force enumerator is kept *here* as the ground-truth oracle:
every v2 kernel (vectorized bitset scan, scalar Gray walk, size-restricted
combinatorial walk, process-parallel sharding) must reproduce its results
bit-for-bit — the same ``h`` float and the same (smallest) witness mask.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdag.build import GraphBuilder, layered_circulant_cdag
from repro.cdag.graph import CDAG, VertexKind
from repro.cdag.strassen_cdag import dec_graph
from repro.core.exact import (
    DEFAULT_EXACT_LIMIT,
    EXACT_LIMIT,
    _adjacency_ints,
    _bounded_walk_py,
    _gray_scan_py,
    exact_edge_expansion_v2,
    exact_small_set_expansion_v2,
)
from repro.core.expansion import (
    estimate_expansion,
    exact_edge_expansion,
    exact_small_set_expansion,
)


def _oracle(g: CDAG, max_size: int | None = None):
    """The seed implementation (per-edge loops over materialized masks)."""
    n = g.n_vertices
    limit = n // 2 if max_size is None else min(max_size, n)
    d = g.max_degree
    masks = np.arange(1, 2**n, dtype=np.int64)
    sizes = np.zeros_like(masks)
    work = masks.copy()
    while np.any(work):
        sizes += work & 1
        work >>= 1
    ok = (sizes >= 1) & (sizes <= limit)
    masks = masks[ok]
    sizes = sizes[ok]
    u, v = g.undirected_edges
    boundary = np.zeros(len(masks), dtype=np.int64)
    for a, b in zip(u.tolist(), v.tolist()):
        boundary += ((masks >> a) ^ (masks >> b)) & 1
    ratios = boundary / (d * sizes)
    best = int(np.argmin(ratios))
    best_mask = np.zeros(n, dtype=bool)
    for i in range(n):
        if (int(masks[best]) >> i) & 1:
            best_mask[i] = True
    return float(ratios[best]), best_mask


def _random_graph(n: int, seed: int, p: float = 0.35) -> CDAG | None:
    rng = np.random.default_rng(seed)
    src, dst = [], []
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                src.append(i)
                dst.append(j)
    if not src:
        return None
    return CDAG(n, np.array(src), np.array(dst), np.zeros(n, dtype=np.int8))


class TestPropertyOracle:
    """Hypothesis: v2 == seed oracle on random CDAGs with n ≤ 14."""

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=2, max_value=14), seed=st.integers(0, 2**31 - 1))
    def test_full_h_matches_oracle(self, n, seed):
        g = _random_graph(n, seed)
        if g is None:
            return
        h_ref, m_ref = _oracle(g)
        h_v2, m_v2 = exact_edge_expansion_v2(g)
        assert h_v2 == h_ref
        assert np.array_equal(m_v2, m_ref)

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(min_value=2, max_value=12), seed=st.integers(0, 2**31 - 1))
    def test_h_s_matches_oracle_at_every_s(self, n, seed):
        g = _random_graph(n, seed)
        if g is None:
            return
        for s in range(1, n + 1):
            h_ref, m_ref = _oracle(g, max_size=s)
            h_v2, m_v2 = exact_edge_expansion_v2(g, max_size=s)
            assert h_v2 == h_ref, (n, seed, s)
            assert np.array_equal(m_v2, m_ref), (n, seed, s)

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(min_value=2, max_value=11), seed=st.integers(0, 2**31 - 1))
    def test_gray_backend_matches_oracle(self, n, seed):
        g = _random_graph(n, seed)
        if g is None:
            return
        h_ref, m_ref = _oracle(g)
        h_g, m_g = exact_edge_expansion_v2(g, backend="gray")
        assert h_g == h_ref
        assert np.array_equal(m_g, m_ref)
        s = max(1, n // 3)
        h_ref_s, m_ref_s = _oracle(g, max_size=s)
        h_gs, m_gs = exact_edge_expansion_v2(g, max_size=s, backend="gray")
        assert h_gs == h_ref_s
        assert np.array_equal(m_gs, m_ref_s)


class TestBackendsAgree:
    @pytest.mark.parametrize("scheme", ["strassen", "winograd", "classical2"])
    def test_dec1_all_backends(self, scheme):
        g = dec_graph(scheme, 1)
        h_ref, m_ref = _oracle(g)
        for kwargs in ({}, {"backend": "gray"}):
            h, m = exact_edge_expansion_v2(g, **kwargs)
            assert h == h_ref
            assert np.array_equal(m, m_ref)

    def test_scalar_kernels_directly(self):
        g = layered_circulant_cdag(12)
        adj = _adjacency_ints(g)
        deg = [int(x) for x in g.degree]
        d = g.max_degree
        h_ref, m_ref = _oracle(g)
        r_gray, m_gray = _gray_scan_py(adj, deg, d, 12, 6)
        assert r_gray == h_ref
        r_walk, m_walk = _bounded_walk_py(adj, deg, d, 12, 6)
        assert r_walk == h_ref
        assert m_gray == m_walk == int(np.packbits(m_ref, bitorder="little").view(np.uint16)[0])

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            exact_edge_expansion_v2(layered_circulant_cdag(6), backend="nope")


class TestParallelSharding:
    def test_jobs_do_not_change_results(self):
        # n=18 > _LOW_BITS so the prefix space really is sharded over the pool
        g = layered_circulant_cdag(18)
        h1, m1 = exact_edge_expansion_v2(g, jobs=1)
        h2, m2 = exact_edge_expansion_v2(g, jobs=2)
        assert h1 == h2
        assert np.array_equal(m1, m2)


class TestRuntimeLimitFlip:
    """Regression: the v2 gate read the import-time EXACT_LIMIT constant
    while the auto-policy cache keys read effective_exact_limit() — flipping
    REPRO_EXACT_LIMIT at runtime desynchronized them."""

    def test_gate_follows_env_at_runtime(self, monkeypatch):
        g = layered_circulant_cdag(10)
        monkeypatch.setenv("REPRO_EXACT_LIMIT", "8")
        with pytest.raises(ValueError, match="enumeration"):
            exact_edge_expansion_v2(g)
        monkeypatch.setenv("REPRO_EXACT_LIMIT", "12")
        h, _ = exact_edge_expansion_v2(g)
        assert np.isfinite(h)

    def test_estimator_policy_follows_env(self, monkeypatch):
        g = layered_circulant_cdag(10)
        monkeypatch.setenv("REPRO_EXACT_LIMIT", "8")
        assert estimate_expansion(g).method != "exact"
        monkeypatch.setenv("REPRO_EXACT_LIMIT", "12")
        assert estimate_expansion(g).method == "exact"

    def test_explicit_limit_still_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXACT_LIMIT", "8")
        g = layered_circulant_cdag(10)
        h, _ = exact_edge_expansion_v2(g, limit=10)
        assert np.isfinite(h)


class TestRaisedLimit:
    def test_limit_is_32_plus(self):
        assert DEFAULT_EXACT_LIMIT >= 32
        assert EXACT_LIMIT >= 32

    def test_n26_full_solve_works(self):
        g = layered_circulant_cdag(26)
        h, mask = exact_edge_expansion(g)  # the public façade delegates to v2
        # the witness is a certified cut: ratio recomputed from the graph
        from repro.core.expansion import expansion_of_cut

        assert h == pytest.approx(expansion_of_cut(g, mask))
        h_v2, m_v2 = exact_edge_expansion_v2(g)
        assert h == h_v2
        assert np.array_equal(mask, m_v2)

    def test_n32_full_solve_under_native(self):
        # The new ceiling's headline case: 2^32 subsets in seconds.  Skipped
        # (not failed) on the fallback leg — the numpy path handles the same
        # space but is deliberately not held to the native wall-clock budget.
        from repro.core.exact import native_backend_available

        if not native_backend_available():
            pytest.skip("native kernel unavailable")
        g = layered_circulant_cdag(32)
        h, mask = exact_edge_expansion_v2(g)
        from repro.core.expansion import expansion_of_cut

        assert h == pytest.approx(expansion_of_cut(g, mask))

    def test_beyond_limit_rejected_without_max_size(self):
        g = layered_circulant_cdag(EXACT_LIMIT + 1)
        with pytest.raises(ValueError, match="enumeration"):
            exact_edge_expansion_v2(g)

    def test_explicit_limit_override(self):
        g = layered_circulant_cdag(10)
        with pytest.raises(ValueError, match="enumeration"):
            exact_edge_expansion_v2(g, limit=8)

    def test_dec2_of_122_scheme_solves_exactly_under_auto(self):
        # The headline scenario-space win: Dec_2 of a <1,2,2>-type scheme is
        # a 28-vertex graph, beyond the old 22-vertex ceiling.
        g = dec_graph("classical122", 2)
        assert g.n_vertices == 28
        est = estimate_expansion(g)
        assert est.method == "exact"
        assert est.lower == est.upper

    def test_cached_estimate_auto_is_exact_for_dec2_122(self):
        from repro.engine.builders import cached_estimate
        from repro.engine.cache import EngineCache

        est = cached_estimate("classical122", 2, policy="auto", cache=EngineCache(disk=False))
        assert est.method == "exact"
        assert est.lower == est.upper

    def test_e3_decay_table_gets_deeper_exact_rows(self):
        from repro.engine.cache import EngineCache
        from repro.experiments.expansion_exp import expansion_decay

        result = expansion_decay("classical122", k_max=2, cache=EngineCache(disk=False))
        methods = [r["method"] for r in result["rows"]]
        assert methods == ["exact", "exact"]  # k=2 was "spectral+sweep" pre-v2


class TestSmallSetWalk:
    def test_40_vertex_h3(self):
        # impossible pre-PR: n=40 is far beyond any full enumeration
        g = layered_circulant_cdag(40)
        h3, mask = exact_small_set_expansion_v2(g, 3)
        assert 1 <= mask.sum() <= 3
        hs = [exact_small_set_expansion(g, s) for s in (1, 2, 3)]
        assert hs[0] >= hs[1] >= hs[2]  # larger budgets can only cut deeper
        assert hs[2] == h3

    def test_40_vertex_matches_scalar_walk(self):
        g = layered_circulant_cdag(40)
        adj = _adjacency_ints(g)
        deg = [int(x) for x in g.degree]
        r_walk, m_walk = _bounded_walk_py(adj, deg, g.max_degree, 40, 3)
        h3, mask = exact_small_set_expansion_v2(g, 3)
        assert h3 == r_walk

    def test_infeasible_walk_reports_clearly(self):
        g = layered_circulant_cdag(70)  # far beyond the limit, s too big too
        with pytest.raises(ValueError, match="infeasible"):
            exact_edge_expansion_v2(g, max_size=30, limit=28)

    def test_beyond_uint64_uses_python_int_walk(self):
        # n > 63 exceeds the vectorized walk's packed masks; the scalar
        # combinatorial walk (arbitrary-width ints) takes over seamlessly.
        g = layered_circulant_cdag(70)
        h2, mask = exact_edge_expansion_v2(g, max_size=2)
        adj = _adjacency_ints(g)
        deg = [int(x) for x in g.degree]
        r_ref, _ = _bounded_walk_py(adj, deg, g.max_degree, 70, 2)
        assert h2 == r_ref
        assert 1 <= mask.sum() <= 2


class TestBitsetAdjacency:
    def test_packed_rows_match_adjacency_matrix(self):
        g = dec_graph("strassen", 2)
        bits = g.adjacency_bits
        A = g.adjacency.toarray()
        n = g.n_vertices
        for i in range(n):
            row = 0
            for w in range(bits.shape[1] - 1, -1, -1):
                row = (row << 64) | int(bits[i, w])
            neigh = {j for j in range(n) if (row >> j) & 1}
            assert neigh == set(np.flatnonzero(A[i]))

    def test_adjacency_ints_roundtrip(self):
        g = layered_circulant_cdag(70)  # multi-word rows
        adj = _adjacency_ints(g)
        u, v = g.undirected_edges
        expect = [0] * 70
        for a, b in zip(u.tolist(), v.tolist()):
            expect[a] |= 1 << b
            expect[b] |= 1 << a
        assert adj == expect


class TestEdgeCases:
    def test_too_small_graph(self):
        b = GraphBuilder()
        b.add_vertex(VertexKind.INPUT)
        with pytest.raises(ValueError, match="< 2 vertices"):
            exact_edge_expansion_v2(b.freeze())

    def test_edgeless_graph_keeps_seed_semantics(self):
        b = GraphBuilder()
        b.add_vertices(4, VertexKind.INPUT)
        h, mask = exact_edge_expansion_v2(b.freeze())
        assert np.isnan(h)
        assert mask.tolist() == [True, False, False, False]

    def test_zero_max_size_rejected(self):
        with pytest.raises(ValueError, match="max_size"):
            exact_edge_expansion_v2(layered_circulant_cdag(6), max_size=0)

    def test_circulant_builder_shape(self):
        g = layered_circulant_cdag(10, offsets=(1, 3))
        assert g.n_vertices == 10
        assert g.n_edges == 9 + 7
        with pytest.raises(ValueError, match="at least 2"):
            layered_circulant_cdag(1)


class TestDedupReuse:
    def test_edge_list_computed_exactly_once(self, monkeypatch):
        g = dec_graph("strassen", 2)
        calls = []
        orig = CDAG._undirected_simple_edges

        def counting(self):
            calls.append(1)
            return orig(self)

        monkeypatch.setattr(CDAG, "_undirected_simple_edges", counting)
        mask = np.zeros(g.n_vertices, dtype=bool)
        mask[0] = True
        _ = g.undirected_edges
        _ = g.degree
        _ = g.adjacency
        _ = g.adjacency_bits
        _ = g.edge_boundary_size(mask)
        assert len(calls) <= 1  # cached_property: at most the first accessor

    def test_dedup_matches_unique(self):
        rng = np.random.default_rng(3)
        n = 30
        src = rng.integers(0, n, 200)
        dst = (src + 1 + rng.integers(0, n - 1, 200)) % n
        keep = src != dst
        g = CDAG(n, src[keep], dst[keep], np.zeros(n, dtype=np.int8))
        u, v = g.undirected_edges
        lo = np.minimum(src[keep], dst[keep])
        hi = np.maximum(src[keep], dst[keep])
        key = np.unique(lo * n + hi)
        assert np.array_equal(u, key // n)
        assert np.array_equal(v, key % n)
        assert np.all(u < v)


class TestDecodeConeErrors:
    def test_all_cones_oversized_reports_constraint(self):
        from repro.core.expansion import decode_cone_upper_bound

        # The trivial <1,1,1> scheme has one branch whose depth-k cone holds
        # k of the k+1 vertices: always more than |V|/2 for k >= 2.
        g = dec_graph("classical1x1x1", 2)
        with pytest.raises(ValueError, match=r"exceed \|V\|/2"):
            decode_cone_upper_bound(g, "classical1x1x1", 2)

    def test_all_cones_empty_reports_constraint(self, monkeypatch):
        import repro.core.expansion as expansion

        g = dec_graph("strassen", 2)

        def empty_mask(scheme, k, branch=0, depth=None):
            return np.zeros(g.n_vertices, dtype=bool)

        monkeypatch.setattr(expansion, "decode_cone_mask", empty_mask)
        with pytest.raises(ValueError, match="empty"):
            expansion.decode_cone_upper_bound(g, "strassen", 2)

    def test_feasible_path_still_works(self):
        from repro.core.expansion import decode_cone_upper_bound, expansion_of_cut

        g = dec_graph("strassen", 3)
        ratio, mask = decode_cone_upper_bound(g, "strassen", 3)
        assert ratio == pytest.approx(expansion_of_cut(g, mask))
