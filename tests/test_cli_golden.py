"""Golden-file regression tests for the ``python -m repro`` CLI reports.

Runs a tiny ``sweep`` and a full ``scaling`` run into a temporary cache and
validates the emitted JSON against checked-in schemas and golden files
(``tests/data/sweep_golden.json``, ``tests/data/scaling_golden.json``).
The parse is *strict* JSON — the PR-1 invariant that NaN serializes as
``null`` is enforced by rejecting any non-finite constant token.
"""

import json
import math
from pathlib import Path

import pytest

from repro.engine.cli import main

GOLDEN_PATH = Path(__file__).parent / "data" / "sweep_golden.json"
SCALING_GOLDEN_PATH = Path(__file__).parent / "data" / "scaling_golden.json"

SWEEP_ARGV = [
    "sweep",
    "--schemes",
    "strassen",
    "classical122",
    "strassen122",
    "--k-min",
    "1",
    "--k-max",
    "2",
    "--memories",
    "48",
    "192",
    "--policies",
    "auto",
    "--json",
]

#: Minimal JSON-schema (hand-checked — no new deps) for one report row.
ROW_SCHEMA = {
    "scheme": str,
    "k": int,
    "M": int,
    "policy": str,
    "V": int,
    "E": int,
    "max_degree": int,
    "h_lower": (int, float, type(None)),   # null for cone-only rows
    "h_upper": (int, float),
    "h_lower_cert": (int, float),          # certified interval lower: finite
    "provenance": str,
    "h_upper/(c0/t0)^k": (int, float),
    "witness_size": int,
    "method": str,
    "shape": str,
    "n": int,
    "io_lower_bound": (int, float),
    "measured_words": (int, float, type(None)),
    "measured/lower": (int, float, type(None)),
}

REPORT_SCHEMA = {
    "spec": dict,
    "rows": list,
    "stats": dict,
    "wall_time": (int, float),
    "workers": int,
}


def _strict_loads(text: str):
    """json.loads that rejects NaN/Infinity tokens (strict-JSON invariant)."""

    def _reject(token):
        raise ValueError(f"non-strict JSON constant in CLI output: {token}")

    return json.loads(text, parse_constant=_reject)


def _validate_schema(report: dict) -> None:
    for key, typ in REPORT_SCHEMA.items():
        assert key in report, f"report missing {key!r}"
        assert isinstance(report[key], typ), f"report[{key!r}] has type {type(report[key])}"
    assert report["rows"], "report has no rows"
    for row in report["rows"]:
        assert set(row) == set(ROW_SCHEMA), (
            f"row keys {sorted(row)} != schema keys {sorted(ROW_SCHEMA)}"
        )
        for key, typ in ROW_SCHEMA.items():
            assert isinstance(row[key], typ), (
                f"row[{key!r}] = {row[key]!r} has type {type(row[key])}, wanted {typ}"
            )


#: Fields derived from an eigensolve.  Iterative/dense eigensolvers are only
#: reproducible to solver precision across BLAS/scipy releases (CI installs
#: unpinned wheels), so these get a coarse tolerance — the golden file still
#: catches real regressions (wrong graph, wrong formula, flipped sign) while
#: ignoring legitimate last-digit solver noise.  witness_size is excluded
#: entirely: ties between equally-expanding cuts are broken by eigenvector
#: ordering, which is not stable across solvers.
SPECTRAL_FIELDS = {"h_lower", "h_lower_cert", "h_upper", "h_upper/(c0/t0)^k"}
UNSTABLE_FIELDS = {"witness_size"}


def _assert_matches_golden(got, want, path="$", key=None):
    if key in UNSTABLE_FIELDS:
        return
    if isinstance(want, dict):
        assert isinstance(got, dict) and set(got) == set(want), f"{path}: key mismatch"
        for k in want:
            _assert_matches_golden(got[k], want[k], f"{path}.{k}", key=k)
    elif isinstance(want, list):
        assert isinstance(got, list) and len(got) == len(want), f"{path}: length mismatch"
        for i, (g, w) in enumerate(zip(got, want)):
            _assert_matches_golden(g, w, f"{path}[{i}]", key=key)
    elif isinstance(want, float) or (key in SPECTRAL_FIELDS and want is not None):
        assert isinstance(got, (int, float)) and got is not True and got is not False
        if key in SPECTRAL_FIELDS:
            rel, eps = 1e-5, 1e-6
        else:  # pure arithmetic (bounds, measured words): deterministic
            rel, eps = 1e-9, 1e-12
        assert math.isclose(got, want, rel_tol=rel, abs_tol=eps), (
            f"{path}: {got!r} != golden {want!r}"
        )
    else:
        assert got == want, f"{path}: {got!r} != golden {want!r}"


@pytest.fixture()
def sweep_output(tmp_path, capsys):
    argv = ["--cache-dir", str(tmp_path / "cache")] + SWEEP_ARGV
    assert main(argv) == 0
    return capsys.readouterr().out


class TestGoldenSweep:
    def test_output_is_strict_json(self, sweep_output):
        report = _strict_loads(sweep_output)
        assert "NaN" not in sweep_output and "Infinity" not in sweep_output
        assert isinstance(report, dict)

    def test_schema(self, sweep_output):
        _validate_schema(_strict_loads(sweep_output))

    def test_matches_golden_file(self, sweep_output):
        report = _strict_loads(sweep_output)
        golden = _strict_loads(GOLDEN_PATH.read_text())
        # volatile fields are not checked in
        for volatile in ("wall_time", "workers", "stats"):
            report.pop(volatile, None)
        _assert_matches_golden(report, golden)

    def test_warm_rerun_matches_golden_too(self, tmp_path, capsys):
        # the cached (warm) code path must serialize identically
        argv = ["--cache-dir", str(tmp_path / "cache")] + SWEEP_ARGV
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        report = _strict_loads(capsys.readouterr().out)
        assert report["stats"]["builds"] == 0  # warm: nothing rebuilt
        for volatile in ("wall_time", "workers", "stats"):
            report.pop(volatile, None)
        golden = _strict_loads(GOLDEN_PATH.read_text())
        _assert_matches_golden(report, golden)


SCALING_ARGV = ["scaling", "--algos", "all", "--json"]

#: Schema of one scaling row.  Everything here is deterministic integer
#: arithmetic or closed-form floats (no eigensolves), so — unlike the
#: sweep's spectral fields — the whole row gets the tight float tolerance.
SCALING_ROW_SCHEMA = {
    "algorithm": str,
    "label": str,
    "class": str,
    "n": int,
    "p": int,
    "c": int,
    "scheme": (str, type(None)),
    "schedule": (str, type(None)),
    "omega0": (int, float),
    "measured_words": int,
    "measured_messages": int,
    "time": (int, float),
    "mem_peak": int,
    "analytic_words": (int, float),
    "analytic_messages": (int, float),
    "analytic_memory": (int, float),
    "memory_dependent_bound": (int, float),
    "memory_independent_bound": (int, float),
    "lower_bound": (int, float),
    "binding": str,
    "p_limit": (int, float),
    "measured/analytic": (int, float),
    "measured/lower": (int, float),
    "verified": bool,
}


def _validate_scaling_schema(report: dict) -> None:
    for key in ("spec", "rows", "stats", "wall_time"):
        assert key in report, f"scaling report missing {key!r}"
    assert report["rows"], "scaling report has no rows"
    for row in report["rows"]:
        assert set(row) == set(SCALING_ROW_SCHEMA), (
            f"row keys {sorted(row)} != schema keys {sorted(SCALING_ROW_SCHEMA)}"
        )
        for key, typ in SCALING_ROW_SCHEMA.items():
            assert isinstance(row[key], typ), (
                f"row[{key!r}] = {row[key]!r} has type {type(row[key])}, wanted {typ}"
            )


@pytest.fixture()
def scaling_output(tmp_path, capsys):
    argv = ["--cache-dir", str(tmp_path / "cache")] + SCALING_ARGV
    assert main(argv) == 0
    return capsys.readouterr().out


class TestGoldenScaling:
    def test_output_is_strict_json(self, scaling_output):
        report = _strict_loads(scaling_output)
        assert "NaN" not in scaling_output and "Infinity" not in scaling_output
        assert isinstance(report, dict)

    def test_schema(self, scaling_output):
        _validate_scaling_schema(_strict_loads(scaling_output))

    def test_runs_every_registered_algorithm(self, scaling_output):
        from repro.parallel import available_parallel

        report = _strict_loads(scaling_output)
        assert {r["algorithm"] for r in report["rows"]} == set(available_parallel())

    def test_soundness_invariants(self, scaling_output):
        # acceptance: measured within a constant factor of the declared
        # analytic cost and never below max(md, mi), for every row —
        # including classical-2D, 2.5D, and CAPS
        report = _strict_loads(scaling_output)
        for row in report["rows"]:
            assert row["verified"] is True
            assert 0.25 <= row["measured/analytic"] <= 4.0
            assert row["measured_words"] >= row["lower_bound"]

    def test_matches_golden_file(self, scaling_output):
        report = _strict_loads(scaling_output)
        golden = _strict_loads(SCALING_GOLDEN_PATH.read_text())
        for volatile in ("wall_time", "stats"):
            report.pop(volatile, None)
        _assert_matches_golden(report, golden)

    def test_warm_rerun_matches_golden_too(self, tmp_path, capsys):
        argv = ["--cache-dir", str(tmp_path / "cache")] + SCALING_ARGV
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        report = _strict_loads(capsys.readouterr().out)
        assert report["stats"]["builds"] == 0  # warm: nothing simulated
        for volatile in ("wall_time", "stats"):
            report.pop(volatile, None)
        golden = _strict_loads(SCALING_GOLDEN_PATH.read_text())
        _assert_matches_golden(report, golden)


class TestGoldenNanNull:
    def test_cone_only_rows_serialize_nan_as_null(self, tmp_path, capsys):
        # k=5 strassen exceeds the spectral auto-limit: h_lower is NaN in
        # memory and must appear as null in strict JSON
        argv = [
            "--cache-dir",
            str(tmp_path / "c"),
            "sweep",
            "--schemes",
            "strassen",
            "--k-min",
            "5",
            "--k-max",
            "5",
            "--memories",
            "2",
            "--json",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        report = _strict_loads(out)
        row = report["rows"][0]
        assert row["h_lower"] is None
        # ... but the certified interval never has a hole: the cone path
        # certifies the trivial 0 <= h and says so in its provenance.
        assert row["h_lower_cert"] == 0.0
        assert row["provenance"] == "cone"
        assert row["measured_words"] is None  # M=2 < 3: no dfs run either
        _validate_schema(report)
