"""Tests for the partition argument (§3.2) and the red–blue pebble game.

The key cross-cutting invariant: for any graph, order, and M,

    partition bound  ≤  optimal I/O  ≤  Belady schedule I/O  ≤  LRU I/O.
"""

import numpy as np
import pytest

from repro.cdag.classical_cdag import classical_matmul_cdag, matvec_cdag
from repro.cdag.pebble import exhaustive_min_io, schedule_io
from repro.cdag.schedule import (
    bfs_topological_order,
    dfs_topological_order,
    is_topological,
    random_topological_order,
    topological_order,
)
from repro.cdag.strassen_cdag import h_graph
from repro.core.partition import (
    best_partition_bound,
    expansion_io_bound,
    segment_stats,
)


class TestSegmentStats:
    def test_single_segment_no_bound(self, diamond_graph):
        order = topological_order(diamond_graph)
        stats = segment_stats(diamond_graph, order, segment_size=10)
        assert stats.n_segments == 1
        # no cross-segment edges
        assert stats.reads.sum() == 0
        assert stats.writes.sum() == 0

    def test_two_segments_counts(self, path_graph):
        order = topological_order(path_graph)
        stats = segment_stats(path_graph, order, segment_size=3)
        # exactly one edge crosses the midpoint: 1 read, 1 write operand
        assert stats.reads.tolist() == [0, 1]
        assert stats.writes.tolist() == [1, 0]

    def test_distinct_operand_counting(self):
        # one producer feeding three consumers in the next segment counts
        # once as a write operand and once as a read operand
        from repro.cdag.build import GraphBuilder
        from repro.cdag.graph import VertexKind

        b = GraphBuilder()
        src = b.add_vertex(VertexKind.INPUT)
        sinks = [b.add_vertex(VertexKind.OUTPUT) for _ in range(3)]
        for s in sinks:
            b.add_edge(src, s)
        g = b.freeze()
        stats = segment_stats(g, np.arange(4), segment_size=1)
        assert stats.writes[0] == 1
        assert stats.reads.sum() == 3  # one per consuming segment

    def test_bad_segment_size(self, diamond_graph):
        with pytest.raises(ValueError):
            segment_stats(diamond_graph, topological_order(diamond_graph), 0)

    def test_bound_clamping(self, path_graph):
        order = topological_order(path_graph)
        stats = segment_stats(path_graph, order, 2)
        assert stats.bound(M=100) == 0  # huge memory, clamped at zero
        assert stats.bound(M=100, clamp=False) < 0


class TestSoundness:
    """The partition bound never exceeds any achievable I/O."""

    @pytest.mark.parametrize("maker,M", [
        (lambda: classical_matmul_cdag(3), 6),
        (lambda: classical_matmul_cdag(4), 8),
        (lambda: matvec_cdag(4), 4),
        (lambda: h_graph("strassen", 2).cdag, 8),
    ])
    def test_bound_below_schedule_io(self, maker, M):
        g = maker()
        for order_fn in (topological_order, dfs_topological_order, bfs_topological_order):
            order = order_fn(g)
            measured = schedule_io(g, order, M=M, policy="belady").total
            bound, _ = best_partition_bound(g, order, M)
            assert bound <= measured

    def test_bound_below_true_optimum(self):
        g = matvec_cdag(2)
        M = 4
        opt = exhaustive_min_io(g, M)
        order = dfs_topological_order(g)
        bound, _ = best_partition_bound(g, order, M)
        assert bound <= opt

    def test_random_orders_sound(self, rng):
        g = classical_matmul_cdag(3)
        for seed in range(5):
            order = random_topological_order(g, seed=seed)
            assert is_topological(g, order)
            measured = schedule_io(g, order, M=8, policy="belady").total
            bound, _ = best_partition_bound(g, order, 8)
            assert bound <= measured


class TestScheduleIO:
    def test_belady_never_worse_than_lru(self):
        g = classical_matmul_cdag(4)
        for M in (6, 12, 24):
            order = dfs_topological_order(g)
            lru = schedule_io(g, order, M=M, policy="lru").total
            bel = schedule_io(g, order, M=M, policy="belady").total
            assert bel <= lru

    def test_io_decreases_with_memory(self):
        g = classical_matmul_cdag(4)
        order = dfs_topological_order(g)
        ios = [schedule_io(g, order, M=M, policy="belady").total for M in (4, 8, 16, 32)]
        assert ios == sorted(ios, reverse=True)

    def test_huge_memory_floor(self):
        # with M >= everything, I/O = read inputs + write outputs
        g = classical_matmul_cdag(3)
        r = schedule_io(g, M=10_000, policy="belady")
        assert r.loads == len(g.inputs)
        assert r.stores == len(g.outputs)

    def test_peak_respects_m(self):
        g = classical_matmul_cdag(3)
        r = schedule_io(g, M=7, policy="lru")
        assert r.peak_red <= 7

    def test_too_small_memory_raises(self):
        g = classical_matmul_cdag(2)
        with pytest.raises(ValueError):
            schedule_io(g, M=1)

    def test_order_must_cover(self, diamond_graph):
        with pytest.raises(ValueError):
            schedule_io(diamond_graph, order=np.array([0, 1]), M=4)

    def test_unknown_policy(self, diamond_graph):
        with pytest.raises(ValueError, match="policy"):
            schedule_io(diamond_graph, M=4, policy="fifo")

    def test_dfs_beats_default_on_matmul(self):
        # the schedule matters: DFS locality wins on the classical CDAG
        g = classical_matmul_cdag(4)
        M = 8
        dfs = schedule_io(g, dfs_topological_order(g), M=M, policy="belady").total
        bfs = schedule_io(g, bfs_topological_order(g), M=M, policy="belady").total
        assert dfs < bfs


class TestExhaustive:
    def test_matches_known_floor(self):
        # 2x2 matvec: 6 inputs, 2 outputs; opt must load/store each once
        g = matvec_cdag(2)
        opt = exhaustive_min_io(g, M=6)
        assert opt >= len(g.inputs) + len(g.outputs)

    def test_below_belady(self):
        g = matvec_cdag(2)
        for M in (3, 4, 6):
            opt = exhaustive_min_io(g, M)
            bel = schedule_io(g, M=M, policy="belady").total
            assert opt <= bel

    def test_monotone_in_memory(self):
        g = matvec_cdag(2)
        assert exhaustive_min_io(g, 6) <= exhaustive_min_io(g, 3)

    def test_large_graph_rejected(self):
        with pytest.raises(ValueError):
            exhaustive_min_io(classical_matmul_cdag(4), M=8)


class TestExpansionIOBound:
    def test_premise_failure_returns_zero(self):
        assert expansion_io_bound(1000, hs=0.001, s=10, M=100) == 0.0

    def test_bound_formula(self):
        # h_s * s / 2 = 300 >= 3M = 300 -> IO >= (alpha/2)(V/s)M
        v = expansion_io_bound(10_000, hs=6.0, s=100, M=100, alpha=1.0)
        assert v == pytest.approx(0.5 * 100 * 100)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            expansion_io_bound(10, hs=1, s=0, M=1)
