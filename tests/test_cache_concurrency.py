"""Concurrency and correctness regressions for the hardened EngineCache.

Covers the PR-7 bugfix trio (NumPy-2.x key fragmentation, per-call disk
degradation, honest miss/clear accounting) plus the contended paths the
serving layer leans on: multi-process same-key writers racing
``os.replace``, thread-level single-flight deduplication, and the
byte-capped LRU's eviction order.
"""

from __future__ import annotations

import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.engine.cache import CacheStats, EngineCache, cache_key


class TestKeyNormalization:
    """NumPy-2.x scalar reprs must not fragment the keyspace."""

    def test_numpy_float_shares_key_with_python_float(self):
        assert cache_key("t", None, x=np.float64(1.5)) == cache_key("t", None, x=1.5)

    def test_numpy_int_shares_key_with_python_int(self):
        assert cache_key("t", None, k=np.int64(4)) == cache_key("t", None, k=4)

    def test_numpy_bool_shares_key_with_python_bool(self):
        assert cache_key("t", None, flag=np.bool_(True)) == cache_key("t", None, flag=True)

    def test_bool_and_int_stay_distinct(self):
        # plain bool is an int subclass; normalization must not collapse
        # True into 1 (their reprs differ, and so must their keys)
        assert cache_key("t", None, flag=True) != cache_key("t", None, flag=1)

    def test_numpy_str_shares_key_with_python_str(self):
        assert cache_key("t", None, s=np.str_("auto")) == cache_key("t", None, s="auto")

    def test_normalization_recurses_through_containers(self):
        mixed = (np.int64(1), [np.float64(2.0), np.str_("x")])
        plain = (1, [2.0, "x"])
        assert cache_key("t", None, v=mixed) == cache_key("t", None, v=plain)

    def test_distinct_values_still_miss_each_other(self):
        assert cache_key("t", None, x=np.float64(1.5)) != cache_key("t", None, x=2.5)


class TestDiskDegradation:
    """A transient OSError costs one store, not the process's lifetime."""

    def test_failed_write_is_per_call_not_permanent(self, tmp_path, monkeypatch):
        cache = EngineCache(tmp_path / "c")
        key = cache_key("t", None, n=1)
        arrays = {"a": np.arange(4)}

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("os.replace", boom)
        cache.put_arrays(key, arrays)
        assert cache.stats.disk_errors == 1
        assert cache.disk_degraded
        assert cache.disk_enabled  # the tier is degraded, never disabled

        monkeypatch.undo()
        cache.put_arrays(key, arrays)  # the very next store retries the disk
        assert cache.stats.disk_errors == 1
        assert not cache.disk_degraded
        loaded = cache.get_arrays(key)
        assert loaded is not None and np.array_equal(loaded["a"], np.arange(4))

    def test_retry_within_one_call_recovers(self, tmp_path, monkeypatch):
        import os as os_mod

        cache = EngineCache(tmp_path / "c")
        real_replace = os_mod.replace
        failures = iter([True, False])

        def flaky(src, dst):
            if next(failures):
                raise OSError("transient")
            return real_replace(src, dst)

        monkeypatch.setattr("os.replace", flaky)
        key = cache_key("t", None, n=2)
        cache.put_arrays(key, {"a": np.ones(3)})
        assert cache.stats.disk_errors == 0  # second attempt succeeded
        assert not cache.disk_degraded
        monkeypatch.undo()
        assert cache.get_arrays(key) is not None

    def test_degraded_state_surfaces_in_info(self, tmp_path, monkeypatch):
        cache = EngineCache(tmp_path / "c")
        assert cache.info()["disk_degraded"] is False
        monkeypatch.setattr("os.replace", lambda s, d: (_ for _ in ()).throw(OSError()))
        cache.put_arrays(cache_key("t", None, n=3), {"a": np.ones(1)})
        assert cache.info()["disk_degraded"] is True
        assert cache.info()["stats"]["disk_errors"] == 1


class TestHonestAccounting:
    """get_object counts misses; clear() works even after degradation."""

    def test_get_object_counts_misses(self):
        cache = EngineCache(disk=False)
        assert cache.get_object("nope") is None
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        cache.put_object("k", {"v": 1})
        assert cache.get_object("k") == {"v": 1}
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_memory_only_get_arrays_counts_a_miss(self):
        cache = EngineCache(disk=False)
        assert cache.get_arrays("anything") is None
        assert cache.stats.misses == 1

    def test_clear_is_honest_after_degradation(self, tmp_path, monkeypatch):
        cache = EngineCache(tmp_path / "c")
        k1 = cache_key("t", None, n=1)
        k2 = cache_key("t", None, n=2)
        cache.put_arrays(k1, {"a": np.ones(2)})
        cache.put_arrays(k2, {"a": np.ones(2)})
        # degrade: a later write fails, but the two entries above exist
        monkeypatch.setattr("os.replace", lambda s, d: (_ for _ in ()).throw(OSError()))
        cache.put_arrays(cache_key("t", None, n=3), {"a": np.ones(2)})
        assert cache.disk_degraded
        monkeypatch.undo()

        removed = cache.clear()
        assert removed == 2  # degradation never hides real entries
        assert not cache.disk_degraded  # nothing left to be degraded about
        assert not list(cache.root.glob("*/*.npz"))
        # emptied shard directories are pruned, not left as litter
        assert not [p for p in cache.root.iterdir() if p.is_dir()]

    def test_clear_skips_filesystem_when_memory_only(self, tmp_path):
        cache = EngineCache(tmp_path / "never-created", disk=False)
        cache.put_object("k", {"v": 1})
        assert cache.clear() == 0
        assert not (tmp_path / "never-created").exists()


class TestSingleFlightThreads:
    def test_racing_threads_build_exactly_once(self):
        cache = EngineCache(disk=False)
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        build_calls = []
        build_gate = threading.Event()

        def build():
            build_calls.append(1)
            build_gate.wait(timeout=5)  # hold every racer at the lock
            return {"answer": 42}

        results = [None] * n_threads

        def racer(i):
            barrier.wait(timeout=5)
            if i == 0:
                # let the pack pile up behind the leader's per-key lock
                threading.Timer(0.05, build_gate.set).start()
            results[i] = cache.single_flight("key", build)

        threads = [threading.Thread(target=racer, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert len(build_calls) == 1
        assert all(r == {"answer": 42} for r in results)

    def test_single_flight_counts_followers_as_hits(self):
        cache = EngineCache(disk=False)
        first = cache.single_flight("k", lambda: {"v": 1})
        second = cache.single_flight("k", lambda: pytest.fail("must not rebuild"))
        assert first == second
        assert cache.stats.hits >= 1

    def test_distinct_keys_have_distinct_locks(self):
        cache = EngineCache(disk=False)
        assert cache.lock("a") is cache.lock("a")
        assert cache.lock("a") is not cache.lock("b")


class TestLruByteCap:
    def test_eviction_is_lru_ordered(self):
        from repro.engine.cache import _approx_nbytes

        arr = np.zeros(1000, dtype=np.uint8)  # ~1 KB payload each
        cap = 3 * _approx_nbytes({"x": arr.copy()})  # room for exactly three
        cache = EngineCache(disk=False, memory_items=100, memory_bytes=cap)
        for name in ("a", "b", "c"):
            cache.put_object(name, {"x": arr.copy()})
        cache.get_object("a")  # refresh: "b" is now the LRU entry
        cache.put_object("d", {"x": arr.copy()})
        assert cache.get_object("b") is None  # evicted first
        assert cache.get_object("a") is not None
        assert cache.stats.evictions >= 1

    def test_item_cap_still_applies(self):
        cache = EngineCache(disk=False, memory_items=2)
        for name in ("a", "b", "c"):
            cache.put_object(name, name)
        assert cache.get_object("a") is None
        assert cache.get_object("c") == "c"
        assert cache.stats.evictions == 1

    def test_oversized_object_is_served_but_not_retained(self):
        cache = EngineCache(disk=False, memory_bytes=100)
        big = np.zeros(10_000, dtype=np.uint8)
        cache.put_object("big", big)
        assert cache.get_object("big") is None  # never retained
        assert cache.info()["memory"]["items"] == 0

    def test_replacing_a_key_updates_the_byte_ledger(self):
        cache = EngineCache(disk=False, memory_bytes=1 << 20)
        cache.put_object("k", np.zeros(1000, dtype=np.uint8))
        first = cache.info()["memory"]["bytes"]
        cache.put_object("k", np.zeros(10, dtype=np.uint8))
        second = cache.info()["memory"]["bytes"]
        assert 0 < second < first
        assert cache.info()["memory"]["items"] == 1


_WRITER_SNIPPET = """
import sys
import numpy as np
from repro.engine.cache import EngineCache, cache_key

root, worker = sys.argv[1], int(sys.argv[2])
cache = EngineCache(root)
key = cache_key("race", None, shared=True)
arrays = {"payload": np.arange(4096, dtype=np.int64)}
for _ in range(25):
    cache.put_arrays(key, arrays)
    got = cache.get_arrays(key)
    assert got is None or np.array_equal(got["payload"], arrays["payload"])
print("ok", worker)
"""


class TestMultiProcessWriters:
    def test_same_key_writers_race_safely(self, tmp_path):
        """Concurrent processes hammer one key; atomic rename keeps every
        read either a clean miss or the full, uncorrupted bundle."""
        import os
        from pathlib import Path

        import repro

        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        root = tmp_path / "shared"
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER_SNIPPET, str(root), str(i)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=env,
            )
            for i in range(4)
        ]
        for p in procs:
            out, err = p.communicate(timeout=120)
            assert p.returncode == 0, err.decode()
            assert out.decode().startswith("ok")
        # afterwards the shared entry is whole and loadable
        reader = EngineCache(root)
        key = cache_key("race", None, shared=True)
        got = reader.get_arrays(key)
        assert got is not None
        assert np.array_equal(got["payload"], np.arange(4096, dtype=np.int64))
        # no temp-file litter survived the stampede
        assert not list(root.glob("**/*.tmp"))


class TestStatsMergePlumbing:
    def test_delta_and_merge_round_trip(self):
        parent = EngineCache(disk=False)
        worker = CacheStats(hits=2, misses=1, stores=1, builds=1, disk_errors=0, evictions=3)
        parent.merge_stats(worker.delta_since(CacheStats().as_dict()))
        assert parent.stats.as_dict() == worker.as_dict()

    def test_merge_is_additive(self):
        parent = EngineCache(disk=False)
        parent.count_build()
        parent.merge_stats({"builds": 2})
        assert parent.stats.builds == 3
