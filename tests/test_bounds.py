"""Tests for the bound formulas (repro.core.bounds) — Table I algebra."""

import math

import pytest

from repro.core.bounds import (
    LG7,
    latency_bound,
    memory_independent_bound,
    memory_regimes,
    parallel_io_bound,
    perfect_scaling_limit,
    rect_memory_independent_bound,
    scaling_regime,
    sequential_io_bound,
    sequential_io_upper,
    table1_cell,
    table1_rows,
)


class TestSequential:
    def test_strassen_form(self):
        n, M = 1024, 1024
        assert sequential_io_bound(n, M) == pytest.approx((n / 32) ** LG7 * M)

    def test_classical_reduces_to_hong_kung(self):
        n, M = 1024, 256
        # omega0 = 3: (n/sqrt(M))^3 M = n^3/sqrt(M)
        assert sequential_io_bound(n, M, 3.0) == pytest.approx(n**3 / math.sqrt(M))

    def test_trivial_floor(self):
        # with huge M the bound degrades to reading the input
        n = 64
        assert sequential_io_bound(n, 10**9) == pytest.approx(2 * n * n)

    def test_upper_form_above_lower(self):
        for n in (128, 512, 2048):
            for M in (192, 768, 3072):
                assert sequential_io_upper(n, M) >= 0.3 * sequential_io_bound(n, M)

    def test_upper_in_memory_case(self):
        assert sequential_io_upper(8, 1000) == 3 * 64

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            sequential_io_bound(0, 10)
        with pytest.raises(ValueError):
            sequential_io_bound(10, 0)
        with pytest.raises(ValueError):
            sequential_io_bound(10, 10, omega0=1.5)


class TestParallel:
    def test_divides_by_p(self):
        n, M = 1024, 1024
        assert parallel_io_bound(n, M, 4) == pytest.approx(
            (n / 32) ** LG7 * M / 4
        )

    def test_p_must_be_positive(self):
        with pytest.raises(ValueError):
            parallel_io_bound(64, 64, 0)


class TestMemoryIndependent:
    def test_classical_form(self):
        # 1202.3177: classical floor n²/p^(2/3)
        assert memory_independent_bound(64, 8, 3.0) == pytest.approx(64 * 64 / 4)

    def test_strassen_form(self):
        n, p = 128, 49
        assert memory_independent_bound(n, p, LG7) == pytest.approx(
            n * n / p ** (2.0 / LG7)
        )

    def test_single_processor_moves_nothing(self):
        assert memory_independent_bound(64, 1) == 0.0

    def test_rejects_bad_omega(self):
        with pytest.raises(ValueError):
            memory_independent_bound(64, 4, 1.5)

    def test_rect_uses_geometric_mean(self):
        # ⟨m,n,k⟩ = (8, 64, 64): n_eff = (8·64·64)^(1/3) = 32
        assert rect_memory_independent_bound(8, 64, 64, 8, 3.0) == pytest.approx(
            memory_independent_bound(32, 8, 3.0)
        )


class TestPerfectScalingLimit:
    def test_classical_closed_form(self):
        # p* = n³/M^(3/2): the familiar classical strong-scaling end
        n, M = 64, 256
        assert perfect_scaling_limit(n, M, 3.0) == pytest.approx(n**3 / M**1.5)
        assert perfect_scaling_limit(64, 256, 3.0) == pytest.approx(64.0)

    def test_strassen_limit_is_smaller(self):
        # lower ω₀ ⇒ the perfect-scaling range ends earlier
        n, M = 1024, 1024
        assert perfect_scaling_limit(n, M, LG7) < perfect_scaling_limit(n, M, 3.0)

    def test_bounds_cross_exactly_at_limit(self):
        n, M = 64, 256
        p_star = perfect_scaling_limit(n, M, 3.0)
        md = parallel_io_bound(n, M, int(p_star), 3.0)
        mi = memory_independent_bound(n, int(p_star), 3.0)
        assert md == pytest.approx(mi)


class TestScalingRegime:
    def test_classifier_flips_at_crossover(self):
        n, M = 64, 256  # p* = 64 exactly
        below = scaling_regime(n, 16, M, 3.0)
        at = scaling_regime(n, 64, M, 3.0)
        above = scaling_regime(n, 512, M, 3.0)
        assert below.binding == "memory-dependent"
        assert at.binding == "memory-dependent"  # equality: last perfect point
        assert above.binding == "memory-independent"
        assert below.p_limit == pytest.approx(64.0)

    def test_bound_is_max_of_both(self):
        reg = scaling_regime(64, 512, 256, 3.0)
        assert reg.bound == max(reg.memory_dependent, reg.memory_independent)
        assert reg.bound == reg.memory_independent


class TestLatency:
    def test_footnote_8(self):
        assert latency_bound(7000.0, 70.0) == pytest.approx(100.0)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            latency_bound(100.0, 0.5)


class TestTable1:
    def test_memory_regimes(self):
        reg = memory_regimes(64, 64, c=4)
        assert reg["2D"] == pytest.approx(64.0)
        assert reg["3D"] == pytest.approx(64 * 64 / 16)
        assert reg["2.5D"] == pytest.approx(256.0)

    def test_classical_2d_closed_form(self):
        cell = table1_cell("2D", "classical", 64, 16)
        assert cell.bound == pytest.approx(64 * 64 / 4)  # n²/√p
        assert cell.exponent_of_p == pytest.approx(0.5)
        assert "Cannon" in cell.attained_by

    def test_classical_3d_closed_form(self):
        cell = table1_cell("3D", "classical", 64, 64)
        assert cell.bound == pytest.approx(64 * 64 / 16)  # n²/p^(2/3)
        assert cell.exponent_of_p == pytest.approx(2 / 3)

    def test_classical_25d_closed_form(self):
        n, p, c = 64, 64, 4
        cell = table1_cell("2.5D", "classical", n, p, c)
        assert cell.bound == pytest.approx(n * n / (math.sqrt(c) * math.sqrt(p)))

    def test_strassen_2d_exponent(self):
        cell = table1_cell("2D", "strassen-like", 64, 49)
        assert cell.exponent_of_p == pytest.approx(2 - LG7 / 2)
        assert cell.bound == pytest.approx(64 * 64 / 49 ** (2 - LG7 / 2))

    def test_strassen_3d_exponent(self):
        cell = table1_cell("3D", "strassen-like", 64, 64)
        assert cell.exponent_of_p == pytest.approx((5 - LG7) / 3)

    def test_strassen_beats_classical_everywhere(self):
        # the Strassen-like lower bound is *smaller* (less communication
        # needed) in every regime — the ω₀ improvement deepens p's power
        for regime in ("2D", "3D", "2.5D"):
            sc = table1_cell(regime, "strassen-like", 256, 64, 2)
            cc = table1_cell(regime, "classical", 256, 64, 2)
            assert sc.bound < cc.bound

    def test_numerator_omega_free(self):
        # §6.1: at p = 1 every cell collapses to n² regardless of ω₀
        for w in (2.1, 2.5, LG7, 3.0):
            cell = table1_cell("2D", "strassen-like", 128, 1, omega0=w)
            assert cell.bound == pytest.approx(128 * 128)

    def test_rows_complete(self):
        rows = table1_rows(64, 64, 2)
        assert len(rows) == 6
        assert {r.regime for r in rows} == {"2D", "3D", "2.5D"}
        assert {r.algorithm_class for r in rows} == {"classical", "strassen-like"}

    def test_unknown_regime(self):
        with pytest.raises(ValueError):
            table1_cell("4D", "classical", 64, 4)

    def test_unknown_class(self):
        with pytest.raises(ValueError):
            table1_cell("2D", "quantum", 64, 4)

    def test_consistency_with_corollary(self):
        # every cell equals Cor 1.2/1.4 evaluated at the regime's M
        n, p, c = 128, 64, 2
        for regime, M in memory_regimes(n, p, c).items():
            for cls, w in (("classical", 3.0), ("strassen-like", LG7)):
                cell = table1_cell(regime, cls, n, p, c)
                assert cell.bound == pytest.approx(parallel_io_bound(n, M, p, w))
