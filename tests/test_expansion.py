"""Tests for edge-expansion machinery (repro.core.expansion) — Lemma 4.3."""

import numpy as np
import pytest

from repro.cdag.build import GraphBuilder
from repro.cdag.graph import CDAG, VertexKind
from repro.cdag.strassen_cdag import dec_graph
from repro.core.expansion import (
    claim_2_1_small_set_bound,
    decode_cone_mask,
    decode_cone_upper_bound,
    estimate_expansion,
    exact_edge_expansion,
    exact_small_set_expansion,
    expansion_of_cut,
    fiedler_sweep_cut,
    spectral_lower_bound,
)


def _exact_edge_expansion_reference(g: CDAG, max_size: int | None = None):
    """The seed implementation (per-edge / per-bit Python loops) — kept as
    the ground truth the vectorized kernel must reproduce exactly."""
    n = g.n_vertices
    limit = n // 2 if max_size is None else min(max_size, n)
    d = g.max_degree
    masks = np.arange(1, 2**n, dtype=np.int64)
    sizes = np.zeros_like(masks)
    work = masks.copy()
    while np.any(work):
        sizes += work & 1
        work >>= 1
    ok = (sizes >= 1) & (sizes <= limit)
    masks = masks[ok]
    sizes = sizes[ok]
    u, v = g.undirected_edges
    boundary = np.zeros(len(masks), dtype=np.int64)
    for a, b in zip(u.tolist(), v.tolist()):
        boundary += ((masks >> a) ^ (masks >> b)) & 1
    ratios = boundary / (d * sizes)
    best = int(np.argmin(ratios))
    best_mask = np.zeros(n, dtype=bool)
    for i in range(n):
        if (int(masks[best]) >> i) & 1:
            best_mask[i] = True
    return float(ratios[best]), best_mask


def _cycle(n: int) -> CDAG:
    b = GraphBuilder()
    vs = b.add_vertices(n, VertexKind.ADD)
    for i in range(n - 1):
        b.add_edge(int(vs[i]), int(vs[i + 1]))
    # close the cycle with consistent direction cut in half to stay acyclic
    b.add_edge(int(vs[0]), int(vs[n - 1]))
    return b.freeze()


class TestExact:
    def test_path_expansion(self, path_graph):
        # a path of 6: best cut is one end-half, boundary 1, d=2
        h, mask = exact_edge_expansion(path_graph)
        assert h == pytest.approx(1 / (2 * 3))
        assert mask.sum() == 3

    def test_exact_matches_cut_evaluation(self, diamond_graph):
        h, mask = exact_edge_expansion(diamond_graph)
        assert h == pytest.approx(expansion_of_cut(diamond_graph, mask))

    def test_small_set_restriction_monotone(self, path_graph):
        # restricting the set size can only increase the minimum ratio
        h_all = exact_small_set_expansion(path_graph, 3)
        h_small = exact_small_set_expansion(path_graph, 1)
        assert h_small >= h_all

    def test_too_large_graph_rejected(self):
        g = dec_graph("strassen", 3)
        with pytest.raises(ValueError, match="enumeration"):
            exact_edge_expansion(g)

    def test_dec1_exact_value(self):
        # ground truth for Dec1C of Strassen, used by E3's first row
        h, mask = exact_edge_expansion(dec_graph("strassen", 1))
        assert 0 < h < 0.5714
        assert 1 <= mask.sum() <= 5


class TestVectorizedExact:
    """The vectorized enumeration must match the seed's loop implementation
    bit-for-bit (same h, same argmin witness) on every small graph."""

    def test_matches_reference_on_fixtures(self, path_graph, diamond_graph):
        for g in (path_graph, diamond_graph):
            h_new, mask_new = exact_edge_expansion(g)
            h_ref, mask_ref = _exact_edge_expansion_reference(g)
            assert h_new == h_ref
            assert np.array_equal(mask_new, mask_ref)

    @pytest.mark.parametrize("scheme", ["strassen", "winograd"])
    def test_matches_reference_on_dec1(self, scheme):
        g = dec_graph(scheme, 1)
        h_new, mask_new = exact_edge_expansion(g)
        h_ref, mask_ref = _exact_edge_expansion_reference(g)
        assert h_new == h_ref
        assert np.array_equal(mask_new, mask_ref)

    def test_matches_reference_on_random_graphs(self, rng):
        for _ in range(5):
            n = int(rng.integers(4, 13))
            src, dst = [], []
            for i in range(n):
                for j in range(i + 1, n):
                    if rng.random() < 0.3:
                        src.append(i)
                        dst.append(j)
            if not src:
                continue
            g = CDAG(n, np.array(src), np.array(dst), np.zeros(n, dtype=np.int8))
            h_new, mask_new = exact_edge_expansion(g)
            h_ref, mask_ref = _exact_edge_expansion_reference(g)
            assert h_new == h_ref
            assert np.array_equal(mask_new, mask_ref)

    def test_matches_reference_with_max_size(self, path_graph):
        for s in (1, 2, 3):
            h_new, _ = exact_edge_expansion(path_graph, max_size=s)
            h_ref, _ = _exact_edge_expansion_reference(path_graph, max_size=s)
            assert h_new == h_ref

    def test_popcount_vectorized(self):
        from repro.core.expansion import _popcount

        values = np.array([0, 1, 2, 3, 7, 255, 2**22 - 1, 2**40 + 5], dtype=np.int64)
        expected = [bin(int(v)).count("1") for v in values]
        assert _popcount(values).tolist() == expected


class TestEigsExceptionHandling:
    """_two_smallest_eigs must fall back only on solver failures; real bugs
    (bad shapes, dtypes) propagate instead of being silently swallowed."""

    def _big_laplacian(self):
        # anything > 600 vertices takes the sparse path
        g = dec_graph("strassen", 3)
        from repro.core.expansion import _regularized_laplacian

        L, _ = _regularized_laplacian(g)
        return L

    def test_programming_errors_propagate(self, monkeypatch):
        import scipy.sparse.linalg as spla
        from repro.core.expansion import _two_smallest_eigs

        def boom(*args, **kwargs):
            raise ValueError("bad input shape")

        monkeypatch.setattr(spla, "eigsh", boom)
        with pytest.raises(ValueError, match="bad input shape"):
            _two_smallest_eigs(self._big_laplacian())

    def test_solver_failure_falls_back(self, monkeypatch):
        import scipy.sparse.linalg as spla
        from repro.core.expansion import _two_smallest_eigs

        real_eigsh = spla.eigsh
        calls = []

        def flaky(L, *args, **kwargs):
            calls.append(kwargs)
            if "sigma" in kwargs:
                raise RuntimeError("Factor is exactly singular")
            return real_eigsh(L, *args, **kwargs)

        monkeypatch.setattr(spla, "eigsh", flaky)
        w, V = _two_smallest_eigs(self._big_laplacian())
        assert len(calls) == 2  # shift-invert failed, plain Lanczos ran
        assert w[0] <= w[1]
        assert V.shape[1] == 2


class TestCutEvaluation:
    def test_empty_cut_rejected(self, diamond_graph):
        with pytest.raises(ValueError, match="nonempty"):
            expansion_of_cut(diamond_graph, np.zeros(5, dtype=bool))

    def test_oversized_cut_rejected(self, diamond_graph):
        with pytest.raises(ValueError, match="smaller side"):
            expansion_of_cut(diamond_graph, np.ones(5, dtype=bool))

    def test_known_cut_value(self, diamond_graph):
        mask = np.zeros(5, dtype=bool)
        mask[0] = True  # boundary 2, d = 3
        assert expansion_of_cut(diamond_graph, mask) == pytest.approx(2 / 3)


class TestSpectral:
    @pytest.mark.parametrize("k", [2, 3])
    def test_cheeger_sandwich(self, k):
        g = dec_graph("strassen", k)
        lower, fiedler = spectral_lower_bound(g)
        upper, mask = fiedler_sweep_cut(g, fiedler)
        assert 0 < lower <= upper
        # Cheeger: upper cut is a real cut, so h <= upper; lower <= h
        assert lower <= expansion_of_cut(g, mask) + 1e-12

    def test_sweep_cut_is_certified(self):
        g = dec_graph("strassen", 3)
        upper, mask = fiedler_sweep_cut(g)
        assert upper == pytest.approx(expansion_of_cut(g, mask))
        assert 1 <= mask.sum() <= g.n_vertices // 2

    def test_lower_below_exact_on_tiny(self):
        g = dec_graph("strassen", 1)
        h, _ = exact_edge_expansion(g)
        lower, _ = spectral_lower_bound(g)
        assert lower <= h + 1e-9


class TestDecodeCones:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_cone_gives_lemma_43_shape(self, k):
        g = dec_graph("strassen", k)
        ratio, mask = decode_cone_upper_bound(g, "strassen", k)
        assert ratio <= 0.35 * (4 / 7) ** (k - 1)

    def test_cone_mask_size(self):
        # full-depth cone of one branch: (7^k - 4^k)/3 vertices
        k = 3
        mask = decode_cone_mask("strassen", k, branch=0)
        assert mask.sum() == (7**3 - 4**3) // 3

    def test_cone_depth_restriction(self):
        m1 = decode_cone_mask("strassen", 3, branch=0, depth=1)
        m2 = decode_cone_mask("strassen", 3, branch=0, depth=2)
        assert m1.sum() < m2.sum()
        assert np.all(m2[m1])  # nested

    def test_bad_branch_rejected(self):
        with pytest.raises(ValueError):
            decode_cone_mask("strassen", 3, branch=9)

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            decode_cone_mask("strassen", 3, branch=0, depth=5)

    def test_cone_boundary_is_only_top_frontier(self):
        # the cone's whole boundary is the branch's output edges into the
        # final combine: nnz(column) * 4^(k-1) for the chosen branch
        k, branch = 3, 6  # Strassen column M7 has nnz 1
        from repro.cdag.schemes import get_scheme

        s = get_scheme("strassen")
        g = dec_graph(s, k)
        mask = decode_cone_mask(s, k, branch=branch)
        nnz_col = int((s.W[:, branch] != 0).sum())
        assert g.edge_boundary_size(mask) == nnz_col * 4 ** (k - 1)


class TestEstimator:
    def test_tiny_graph_exact_path(self, diamond_graph):
        est = estimate_expansion(diamond_graph)
        assert est.method == "exact"
        assert est.lower == est.upper

    def test_dec_estimate_ordering(self):
        g = dec_graph("strassen", 3)
        est = estimate_expansion(g, "strassen", 3)
        assert est.lower <= est.upper
        assert est.witness_size >= 1
        assert est.witness_boundary >= 1

    def test_decay_with_k(self):
        uppers = []
        for k in (2, 3, 4):
            g = dec_graph("strassen", k)
            est = estimate_expansion(g, "strassen", k)
            uppers.append(est.upper)
        assert uppers[0] > uppers[1] > uppers[2]
        # geometric decay ratio approaches 4/7 from below
        assert 0.4 < uppers[2] / uppers[1] < 0.75


class TestClaim21:
    def test_bound_formula(self):
        assert claim_2_1_small_set_bound(0.15, 4, 6) == pytest.approx(0.1)

    def test_invalid_degrees(self):
        with pytest.raises(ValueError):
            claim_2_1_small_set_bound(0.1, 8, 6)

    def test_decomposition_soundness_on_dec(self):
        # h_s of Dec_3 for s <= |Dec_1|/2 is at least h(Dec_1) * d'/d
        g_small = dec_graph("strassen", 1)
        g_big = dec_graph("strassen", 3)
        h_small, _ = exact_edge_expansion(g_small)
        bound = claim_2_1_small_set_bound(h_small, g_small.max_degree, g_big.max_degree)
        # verify on every singleton + the known small sets (exact h_s is
        # infeasible; we check the bound against sampled small cuts)
        rng = np.random.default_rng(7)
        for _ in range(50):
            size = rng.integers(1, g_small.n_vertices // 2 + 1)
            idx = rng.choice(g_big.n_vertices, size=size, replace=False)
            mask = np.zeros(g_big.n_vertices, dtype=bool)
            mask[idx] = True
            assert expansion_of_cut(g_big, mask) >= bound - 1e-12
