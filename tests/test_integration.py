"""Integration tests: the paper's full chains of reasoning, end to end.

Each test wires several subsystems together the way the paper does:
CDAG → expansion → partition bound → measured I/O, or
bound formulas → simulated algorithms → Table I shapes.
"""

import math

import pytest

from repro.algorithms.io_strassen import dfs_io_model
from repro.cdag.pebble import schedule_io
from repro.cdag.schedule import dfs_topological_order
from repro.cdag.strassen_cdag import dec_graph, h_graph
from repro.core.bounds import LG7, parallel_io_bound, sequential_io_bound
from repro.core.dominator import minimum_dominator_size
from repro.core.expansion import (
    claim_2_1_small_set_bound,
    decode_cone_upper_bound,
    estimate_expansion,
    exact_edge_expansion,
)
from repro.core.partition import best_partition_bound, expansion_io_bound
from repro.parallel import ParallelConfig, get_parallel
from repro.util.matgen import integer_matrix
from repro.util.numutil import fit_power_law


def cannon_multiply(A, B, q):
    cfg = ParallelConfig(n=A.shape[0], p=q * q)
    return get_parallel("cannon").execute(A, B, cfg)


def caps_multiply(A, B, ell, schedule=None):
    cfg = ParallelConfig(
        n=A.shape[0], p=7**ell, scheme="strassen", schedule=schedule
    )
    return get_parallel("caps").execute(A, B, cfg)


class TestLowerBoundChain:
    """§3's pipeline: expansion ⇒ partition ⇒ I/O, on real graphs."""

    def test_partition_bound_on_strassen_cdag(self):
        # the full H_2 graph, DF order, small memory: the partition bound
        # must be positive (communication is forced) yet below measured I/O
        H = h_graph("strassen", 2)
        g = H.cdag
        order = dfs_topological_order(g)
        M = 8
        measured = schedule_io(g, order, M=M, policy="belady").total
        bound, seg = best_partition_bound(g, order, M)
        assert 0 < bound <= measured

    def test_expansion_io_bound_consistency(self):
        # Corollary 4.4's arithmetic: with s = 9 M^(lg7/2) and
        # h_s >= (1/3)·h(Dec_k') (Claim 2.1), the premise h_s·s/2 >= 3M
        # holds when h(Dec_k') >= (4/7)^k' (Lemma 4.3 with constant 1)
        M = 256
        k_small = max(int(math.log2(M) / 2), 1)  # 4
        g_small = dec_graph("strassen", k_small)
        est = estimate_expansion(g_small, "strassen", k_small)
        # take the *certified upper* as a stand-in for h (it is within a
        # small constant of the truth); scale per Claim 2.1
        hs = claim_2_1_small_set_bound(est.upper, g_small.max_degree, 6)
        s = 9 * M ** (LG7 / 2)
        io = expansion_io_bound(10**6, hs, int(s), M)
        # the bound may or may not fire depending on constants; it must
        # never be negative and fires for generous constants
        assert io >= 0.0

    def test_dominator_degenerates_on_dec(self):
        # the paper's §1.5 contrast: Dec graphs have no input vertices, so
        # dominator-based arguments collapse (size-0 dominators) while the
        # expansion approach still yields bounds
        g = dec_graph("strassen", 2)
        assert len(g.inputs) > 0  # products are sources of Dec alone...
        H = h_graph("strassen", 2)
        dec_sub = H.dec_subgraph()
        # inside H, Dec's "inputs" are mult vertices, not graph inputs;
        # a dominator query against *graph inputs* on dec-only targets
        # must pass through the mult layer
        targets = H.output_ids[:4]
        d = minimum_dominator_size(H.cdag, targets)
        assert d >= 1

    def test_hong_kung_vs_partition_on_classical(self):
        from repro.cdag.classical_cdag import classical_matmul_cdag
        from repro.core.dominator import hong_kung_2m_partition_bound

        g = classical_matmul_cdag(4)
        order = dfs_topological_order(g)
        M = 8
        measured = schedule_io(g, order, M=M, policy="belady").total
        hk = hong_kung_2m_partition_bound(g, order, M, h_of_2m=int((2 * M) ** 1.5))
        pt, _ = best_partition_bound(g, order, M)
        assert hk <= measured
        assert pt <= measured


class TestUpperMeetsLower:
    """Tightness: measured optimal implementations sit a constant above
    the lower-bound expressions (Theorems 1.1/1.3 are optimal)."""

    def test_sequential_ratio_band(self):
        M = 192
        ratios = []
        for t in (5, 6, 7, 8):
            n = 8 * 2**t
            words = dfs_io_model(n, M, "strassen").words
            ratios.append(words / sequential_io_bound(n, M))
        # bounded band: the ratio settles (tightness), max/min small
        assert max(ratios) / min(ratios) < 1.6
        assert all(1.0 <= r < 200 for r in ratios)

    def test_sequential_exponent(self):
        M = 192
        ns = [8 * 2**t for t in (6, 7, 8, 9)]
        ws = [dfs_io_model(n, M, "strassen").words for n in ns]
        e, _ = fit_power_law(ns, ws)
        assert abs(e - LG7) < 0.05

    def test_omega_ordering_preserved(self):
        # Theorem 1.3: lower ω₀ ⇒ asymptotically less communication
        M = 192
        n = 8 * 2**9
        w_fast = dfs_io_model(n, M, "strassen").words
        w_slow = dfs_io_model(n, M, "classical2").words
        assert w_fast < w_slow

    def test_cannon_attains_2d_cell(self):
        n = 64
        A = integer_matrix(n, seed=1)
        B = integer_matrix(n, seed=2)
        ratios = []
        for q in (2, 4, 8):
            r = cannon_multiply(A, B, q)
            cell_bound = n * n / q
            ratios.append(r.critical_words / cell_bound)
        # flat ratio = attaining the bound's shape
        assert max(ratios) / min(ratios) < 1.01

    def test_caps_beats_cannon_scaling(self):
        # the Strassen-like column beats the classical one: CAPS at p=49
        # moves fewer words than 2D classical at p=49-ish scale per n²
        n = 56
        A = integer_matrix(n, seed=3)
        B = integer_matrix(n, seed=4)
        caps_words = caps_multiply(A, B, 2, schedule="BB").critical_words
        cannon_words = cannon_multiply(A, B, 7).critical_words
        assert caps_words < cannon_words

    def test_parallel_bound_sound_for_caps(self):
        # measured >= bound at the measured memory footprint (Cor. 1.2)
        n = 56
        A = integer_matrix(n, seed=5)
        B = integer_matrix(n, seed=6)
        for sched in ("BB", "DBB"):
            r = caps_multiply(A, B, 2, schedule=sched)
            bound = parallel_io_bound(n, r.max_mem_peak, 49, LG7)
            assert r.critical_words >= bound


class TestLemma43EndToEnd:
    def test_expansion_sandwich_decays_like_4_7(self):
        uppers = []
        for k in (2, 3, 4, 5):
            g = dec_graph("strassen", k)
            u, _ = decode_cone_upper_bound(g, "strassen", k)
            uppers.append(u)
        ratios = [uppers[i + 1] / uppers[i] for i in range(len(uppers) - 1)]
        # the decay ratio converges to 4/7 ≈ 0.571
        assert abs(ratios[-1] - 4 / 7) < 0.08

    def test_exact_vs_witness_at_k1(self):
        g = dec_graph("strassen", 1)
        h, _ = exact_edge_expansion(g)
        est = estimate_expansion(g)
        assert est.lower == pytest.approx(h)
        assert est.upper == pytest.approx(h)

    def test_winograd_same_decay(self):
        # Lemma 4.3 is scheme-generic (§5.1.2): Winograd's Dec decays alike
        uppers = []
        for k in (2, 3, 4):
            g = dec_graph("winograd", k)
            u, _ = decode_cone_upper_bound(g, "winograd", k)
            uppers.append(u)
        assert uppers[0] > uppers[1] > uppers[2]
