"""Tests for the benchmark subsystem (repro.engine.bench + the CLI gate).

Covers the registry round-trip, the pinned BENCH_*.json schema (golden
file under tests/data/), the --compare pass/fail/threshold paths, and the
determinism of workload selection under --quick.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.engine import cli
from repro.engine.bench import (
    BENCH_SCHEMA_VERSION,
    _BENCHES,
    available_benches,
    bench_groups,
    compare_benchmarks,
    get_bench,
    load_bench_file,
    register_bench,
    render_comparison,
    run_bench,
    run_suite,
    selected_benches,
    write_bench_file,
)

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "bench_golden.json").read_text()
)


@pytest.fixture
def scratch_workload():
    """Register a throwaway workload; always unregister afterwards."""
    calls = []

    @register_bench(
        "scratch",
        "cdag",
        params={"x": 2, "y": 10},
        quick_params={"y": 3},
        rounds=2,
        quick_rounds=1,
    )
    def _scratch(cache, x, y):
        """Scratch workload for the harness tests."""
        calls.append((x, y))
        return {"product": x * y, "check": {"product": x * y}}

    yield calls
    _BENCHES.pop("scratch", None)


class TestRegistry:
    def test_registry_round_trip(self, scratch_workload):
        assert "scratch" in available_benches()
        w = get_bench("scratch")
        assert w.name == "scratch"
        assert w.group == "cdag"
        assert w.description.startswith("Scratch workload")
        assert w.resolve_params() == {"x": 2, "y": 10}
        assert w.resolve_params(quick=True) == {"x": 2, "y": 3}
        assert "scratch" in bench_groups()["cdag"]

    def test_call_applies_overrides(self, scratch_workload):
        payload = get_bench("scratch").call(quick=True, x=5)
        assert payload["check"] == {"product": 15}

    def test_duplicate_name_rejected(self, scratch_workload):
        with pytest.raises(ValueError, match="already registered"):
            register_bench("scratch", "cdag")(lambda cache: {"check": {}})

    def test_unknown_group_rejected(self):
        with pytest.raises(ValueError, match="unknown bench group"):
            register_bench("nope", "not-a-group")

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark workload"):
            get_bench("definitely-not-registered")

    def test_every_registered_group_is_known(self):
        from repro.engine.bench import BENCH_GROUPS

        for name in available_benches():
            assert get_bench(name).group in BENCH_GROUPS


class TestSelection:
    def test_quick_never_changes_membership(self):
        assert selected_benches(quick=True) == selected_benches(quick=False)

    def test_selection_is_deterministic(self):
        assert selected_benches() == selected_benches()
        assert selected_benches() == available_benches()

    def test_subset_is_reordered_to_registry_order(self):
        names = available_benches()
        subset = [names[2], names[0]]
        assert selected_benches(subset) == [names[0], names[2]]
        assert selected_benches(subset, quick=True) == [names[0], names[2]]

    def test_unknown_selection_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark workload"):
            selected_benches(["nope"])


class TestHarness:
    def test_run_bench_record_shape_and_rounds(self, scratch_workload):
        rec = run_bench("scratch", rounds=3)
        assert rec["rounds"] == 3
        assert len(rec["seconds"]["raw"]) == 3
        assert rec["seconds"]["min"] <= rec["seconds"]["p50"] <= rec["seconds"]["max"]
        assert rec["check"] == {"product": 20}
        assert rec["cache"] == {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "builds": 0,
            "disk_errors": 0,
            "evictions": 0,
        }
        assert rec["peak_rss_kb"] > 0

    def test_quick_uses_quick_params_and_rounds(self, scratch_workload):
        rec = run_bench("scratch", quick=True)
        assert rec["rounds"] == 1
        assert rec["params"] == {"x": 2, "y": 3}
        assert rec["check"] == {"product": 6}

    def test_zero_rounds_rejected(self, scratch_workload):
        with pytest.raises(ValueError, match="at least one"):
            run_bench("scratch", rounds=0)

    def test_payload_without_check_rejected(self):
        @register_bench("badcheck", "cdag")
        def _bad(cache):
            return {"oops": 1}

        try:
            with pytest.raises(TypeError, match="'check' key"):
                run_bench("badcheck")
        finally:
            _BENCHES.pop("badcheck", None)

    def test_warm_grid_counts_no_builds(self):
        rec = run_bench("grid_sweep_warm", quick=True, rounds=1)
        # warmup populated the cache; the timed round must be all hits
        assert rec["cache"]["builds"] == 0
        assert rec["cache"]["hits"] > 0
        assert rec["check"]["rebuilds"] == 0

    def test_cold_grid_builds_every_round(self):
        rec = run_bench("grid_sweep_cold", quick=True, rounds=2)
        # a fresh cache per round: both rounds construct artifacts
        assert rec["cache"]["builds"] > 0


class TestSchemaGolden:
    """The BENCH_*.json layout is pinned by tests/data/bench_golden.json."""

    @pytest.fixture(scope="class")
    def doc(self):
        return run_suite(
            names=["cdag_build", "seq_io_simulate"],
            quick=True,
            rounds=1,
            tag="schema-test",
        )

    def test_schema_version(self, doc):
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION == GOLDEN["schema_version"]

    def test_top_level_keys(self, doc):
        assert sorted(doc.keys()) == GOLDEN["top_level_keys"]
        assert sorted(doc["host"].keys()) == GOLDEN["host_keys"]

    def test_workload_record_keys(self, doc):
        for rec in doc["workloads"].values():
            assert sorted(rec.keys()) == GOLDEN["workload_keys"]
            assert sorted(rec["seconds"].keys()) == GOLDEN["seconds_keys"]
            assert sorted(rec["cache"].keys()) == GOLDEN["cache_keys"]
            assert sorted(rec["pool"].keys()) == GOLDEN["pool_keys"]

    def test_check_values_are_pinned(self, doc):
        # science outputs of deterministic integer workloads never drift
        for name, expected in GOLDEN["checks"].items():
            assert doc["workloads"][name]["check"] == expected

    def test_file_round_trip(self, doc, tmp_path):
        path = write_bench_file(doc, tmp_path / "BENCH_t.json")
        loaded = load_bench_file(path)
        assert loaded["workloads"].keys() == doc["workloads"].keys()
        assert loaded["workloads"]["cdag_build"]["check"] == GOLDEN["checks"]["cdag_build"]

    def test_wrong_schema_version_rejected(self, doc, tmp_path):
        bad = dict(doc, schema_version=BENCH_SCHEMA_VERSION + 1)
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        with pytest.raises(ValueError, match="schema_version"):
            load_bench_file(path)


def _doc(seconds_by_name: dict[str, float], checks: dict | None = None) -> dict:
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "tag": "synthetic",
        "quick": False,
        "created_unix": 0.0,
        "host": {},
        "workloads": {
            name: {
                "group": "cdag",
                "params": {},
                "rounds": 1,
                "warmup": False,
                "cold": False,
                "seconds": {
                    "raw": [s],
                    "min": s,
                    "max": s,
                    "mean": s,
                    "p50": s,
                    "p90": s,
                },
                "peak_rss_kb": 1,
                "cache": {
                    "hits": 0,
                    "misses": 0,
                    "stores": 0,
                    "builds": 0,
                    "disk_errors": 0,
                    "evictions": 0,
                },
                "check": (checks or {}).get(name, {"v": 1}),
            }
            for name, s in seconds_by_name.items()
        },
    }


class TestCompare:
    def test_all_ok_passes(self):
        cmp = compare_benchmarks(_doc({"a": 1.0}), _doc({"a": 1.0}))
        assert [r.status for r in cmp.rows] == ["ok"]
        assert not cmp.failed()

    def test_regression_beyond_threshold_fails(self):
        cmp = compare_benchmarks(_doc({"a": 2.1}), _doc({"a": 1.0}), threshold=2.0)
        assert [r.status for r in cmp.rows] == ["regression"]
        assert cmp.failed()
        assert cmp.rows[0].ratio == pytest.approx(2.1)

    def test_threshold_is_respected(self):
        current, base = _doc({"a": 1.9}), _doc({"a": 1.0})
        assert not compare_benchmarks(current, base, threshold=2.0).failed()
        assert compare_benchmarks(current, base, threshold=1.5).failed()

    def test_improvement_is_reported_not_failed(self):
        cmp = compare_benchmarks(_doc({"a": 0.4}), _doc({"a": 1.0}), threshold=2.0)
        assert [r.status for r in cmp.rows] == ["improved"]
        assert not cmp.failed()

    def test_missing_gates_strictly_new_never_does(self):
        cmp = compare_benchmarks(_doc({"b": 1.0}), _doc({"a": 1.0}))
        statuses = {r.name: r.status for r in cmp.rows}
        assert statuses == {"a": "missing", "b": "new"}
        # a baseline workload that did not run is an unenforced gate
        assert cmp.failed(strict_checks=True)
        assert not cmp.failed(strict_checks=False)
        only_new = compare_benchmarks(_doc({"a": 1.0, "b": 1.0}), _doc({"a": 1.0}))
        assert not only_new.failed(strict_checks=True)

    def test_params_mismatch_wins_and_gates_strictly(self):
        current, base = _doc({"a": 50.0}), _doc({"a": 1.0})
        current["workloads"]["a"]["params"] = {"k": 5}
        base["workloads"]["a"]["params"] = {"k": 6}
        # the check values differ too — params_differ must win over both
        current["workloads"]["a"]["check"] = {"v": 2}
        cmp = compare_benchmarks(current, base)
        assert [r.status for r in cmp.rows] == ["params_differ"]
        # an uncomparable workload is an unenforced gate: strict runs fail
        assert cmp.failed(strict_checks=True)
        assert not cmp.failed(strict_checks=False)

    def test_check_mismatch_fails_strict_only(self):
        current = _doc({"a": 1.0}, checks={"a": {"v": 2}})
        cmp = compare_benchmarks(current, _doc({"a": 1.0}))
        assert [r.status for r in cmp.rows] == ["check_mismatch"]
        assert cmp.failed(strict_checks=True)
        assert not cmp.failed(strict_checks=False)

    def test_check_float_tolerance(self):
        base = _doc({"a": 1.0}, checks={"a": {"v": 1.0}})
        near = _doc({"a": 1.0}, checks={"a": {"v": 1.0 + 1e-9}})
        far = _doc({"a": 1.0}, checks={"a": {"v": 1.01}})
        assert compare_benchmarks(near, base).rows[0].status == "ok"
        assert compare_benchmarks(far, base).rows[0].status == "check_mismatch"

    def test_nested_check_structures(self):
        base = _doc({"a": 1.0}, checks={"a": {"xs": [1, 2, 3], "m": {"k": True}}})
        same = copy.deepcopy(base)
        assert compare_benchmarks(same, base).rows[0].status == "ok"
        drift = copy.deepcopy(base)
        drift["workloads"]["a"]["check"]["xs"][1] = 99
        assert compare_benchmarks(drift, base).rows[0].status == "check_mismatch"

    def test_metric_selects_statistic(self):
        current, base = _doc({"a": 1.0}), _doc({"a": 1.0})
        current["workloads"]["a"]["seconds"]["p90"] = 10.0
        assert not compare_benchmarks(current, base, metric="min").failed()
        assert compare_benchmarks(current, base, metric="p90").failed()

    def test_threshold_must_exceed_one(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_benchmarks(_doc({}), _doc({}), threshold=1.0)

    def test_render_comparison_mentions_summary(self):
        text = render_comparison(compare_benchmarks(_doc({"a": 1.0}), _doc({"a": 1.0})))
        assert "0 regression(s)" in text
        assert "a" in text


class TestCLI:
    def test_bench_list(self, capsys):
        assert cli.main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "cdag_build" in out
        assert "scaling_sweep" in out

    def test_bench_run_writes_file(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_x.json"
        rc = cli.main(
            [
                "bench",
                "--quick",
                "--rounds",
                "1",
                "--workloads",
                "cdag_build",
                "--tag",
                "x",
                "--out",
                str(out_path),
            ]
        )
        assert rc == 0
        doc = json.loads(out_path.read_text())
        assert doc["tag"] == "x"
        assert list(doc["workloads"]) == ["cdag_build"]

    def test_bench_compare_pass_and_fail(self, tmp_path, capsys):
        base_args = [
            "bench",
            "--quick",
            "--rounds",
            "1",
            "--workloads",
            "cdag_build",
            "--out",
        ]
        baseline = tmp_path / "baseline.json"
        assert cli.main(base_args + [str(baseline)]) == 0

        # identical re-run vs itself: passes
        current = tmp_path / "current.json"
        rc = cli.main(
            base_args
            + [str(current), "--compare", str(baseline), "--threshold", "100.0"]
        )
        assert rc == 0
        assert "0 regression(s)" in capsys.readouterr().out

        # impossibly fast baseline: every workload regresses -> exit 1
        doc = json.loads(baseline.read_text())
        for rec in doc["workloads"].values():
            for key in ("raw", "min", "max", "mean", "p50", "p90"):
                rec["seconds"][key] = [1e-12] if key == "raw" else 1e-12
        fast = tmp_path / "fast.json"
        fast.write_text(json.dumps(doc))
        rc = cli.main(base_args + [str(current), "--compare", str(fast)])
        assert rc == 1
        assert "regression" in capsys.readouterr().out

    def test_bench_compare_check_drift_respects_strictness(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        args = [
            "bench",
            "--quick",
            "--rounds",
            "1",
            "--workloads",
            "cdag_build",
            "--out",
        ]
        assert cli.main(args + [str(baseline)]) == 0
        doc = json.loads(baseline.read_text())
        doc["workloads"]["cdag_build"]["check"]["dec_V"] += 1
        drifted = tmp_path / "drifted.json"
        drifted.write_text(json.dumps(doc))
        current = tmp_path / "current.json"
        assert cli.main(args + [str(current), "--compare", str(drifted)]) == 1
        assert (
            cli.main(
                args
                + [
                    str(current),
                    "--compare",
                    str(drifted),
                    "--no-strict-checks",
                ]
            )
            == 0
        )
        capsys.readouterr()
