"""Tests for the serving layer: job grammar, endpoints, single-flight.

The acceptance invariant lives in ``TestSingleFlight``: N concurrent
identical ``/expansion`` requests must produce exactly one build chain —
``CacheStats.builds`` is the proof, not response timing.  Everything runs
on loopback with ``port=0`` (the OS picks a free port) and an injected
memory-only cache, so the suite is hermetic and parallel-safe.
"""

from __future__ import annotations

import asyncio
import math

import pytest

from repro.core.bounds import (
    LG7,
    memory_independent_bound,
    parallel_io_bound,
    sequential_io_bound,
)
from repro.engine.builders import cached_estimate
from repro.engine.cache import EngineCache
from repro.serve import (
    JOB_KINDS,
    ExpansionService,
    Job,
    ServeConfig,
    fetch_json,
    parse_job,
    run_job_inline,
)
from repro.serve.http import Request
from repro.serve.jobs import MAX_K, MAX_SWEEP_POINTS


@pytest.fixture
def cache():
    return EngineCache(disk=False)


def _run_with_service(cache, scenario, workers=0):
    """Boot a service on a free loopback port, run ``scenario(svc)``, stop."""

    async def _main():
        svc = ExpansionService(
            ServeConfig(host="127.0.0.1", port=0, workers=workers), cache=cache
        )
        await svc.start()
        try:
            return await scenario(svc)
        finally:
            await svc.stop()

    return asyncio.run(_main())


def _get(svc, target):
    return fetch_json("127.0.0.1", svc.port, target)


class TestJobGrammar:
    def test_param_order_is_canonicalized(self):
        a = parse_job("expansion", {"scheme": "strassen", "k": "2"})
        b = parse_job("expansion", {"k": "2", "scheme": "strassen"})
        assert a == b
        assert a.key() == b.key()

    def test_defaults_fill_in(self):
        job = parse_job("expansion", {})
        assert job.as_dict() == {"scheme": "strassen", "k": 4, "policy": "auto"}

    def test_kinds_are_distinct_key_namespaces(self):
        # same (empty) raw query, different kinds: keys must never collide
        keys = {parse_job(kind, {}).key() for kind in ("expansion", "bounds")}
        assert len(keys) == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            parse_job("spectra", {})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            parse_job("expansion", {"kk": "2"})

    def test_type_and_range_validation(self):
        with pytest.raises(ValueError, match="must be an integer"):
            parse_job("expansion", {"k": "two"})
        with pytest.raises(ValueError, match=rf"\[1, {MAX_K}\]"):
            parse_job("expansion", {"k": str(MAX_K + 1)})
        with pytest.raises(ValueError, match="policy"):
            parse_job("expansion", {"policy": "bogus"})

    def test_sweep_point_cap(self):
        with pytest.raises(ValueError, match=str(MAX_SWEEP_POINTS)):
            parse_job(
                "sweep",
                {"k_min": "1", "k_max": "7", "memories": ",".join(["48"] * 40)},
            )
        with pytest.raises(ValueError, match="k_min"):
            parse_job("sweep", {"k_min": "3", "k_max": "1"})

    def test_all_kinds_parse_their_defaults(self):
        for kind in JOB_KINDS:
            job = parse_job(kind, {})
            assert isinstance(job, Job) and job.kind == kind


class TestEndpoints:
    def test_healthz(self, cache):
        async def scenario(svc):
            return await _get(svc, "/healthz")

        status, body = _run_with_service(cache, scenario)
        assert (status, body) == (200, {"status": "ok"})

    def test_expansion_matches_direct_computation(self, cache):
        async def scenario(svc):
            return await _get(svc, "/expansion?scheme=strassen&k=2")

        status, body = _run_with_service(cache, scenario)
        est = cached_estimate("strassen", 2, cache=EngineCache(disk=False))
        assert status == 200
        assert body["method"] == est.method
        assert body["upper"] == pytest.approx(est.upper)
        assert body["lower"] == pytest.approx(est.lower)
        iv = est.interval()
        assert body["interval"]["provenance"] == iv.provenance
        assert body["interval"]["lower"] == pytest.approx(iv.lower)
        assert body["interval"]["upper"] == pytest.approx(iv.upper)
        assert body["interval"]["lower"] <= body["interval"]["upper"]

    def test_cone_only_nan_serializes_as_null(self, cache):
        async def scenario(svc):
            return await _get(svc, "/expansion?scheme=strassen&k=5")

        status, body = _run_with_service(cache, scenario)
        est = cached_estimate("strassen", 5, cache=EngineCache(disk=False))
        assert status == 200 and est.method == "cone-only" and math.isnan(est.lower)
        assert body["lower"] is None  # strict JSON: NaN -> null, never a NaN token
        # The certified interval has no hole: the trivial 0 lower, tagged.
        assert body["interval"] == {
            "lower": 0.0,
            "upper": pytest.approx(est.upper),
            "provenance": "cone",
        }

    def test_bounds_matches_closed_forms(self, cache):
        async def scenario(svc):
            return await _get(svc, "/bounds?n=4096&M=256&p=64")

        status, body = _run_with_service(cache, scenario)
        assert status == 200
        assert body["sequential_io_bound"] == pytest.approx(
            sequential_io_bound(4096.0, 256.0, omega0=LG7)
        )
        assert body["parallel_io_bound"] == pytest.approx(
            parallel_io_bound(4096.0, 256.0, 64, omega0=LG7)
        )
        assert body["memory_independent_bound"] == pytest.approx(
            memory_independent_bound(4096.0, 64, omega0=LG7)
        )
        assert body["binding"] in ("memory-dependent", "memory-independent")

    def test_sweep_runs_and_reports_points(self, cache):
        async def scenario(svc):
            return await _get(svc, "/sweep?schemes=strassen&k_min=1&k_max=2&memories=48")

        status, body = _run_with_service(cache, scenario)
        assert status == 200
        assert body["points"] == 2 == len(body["rows"])
        assert body["spec"]["schemes"] == ["strassen"]

    def test_scaling_runs_and_reports_points(self, cache):
        async def scenario(svc):
            return await _get(svc, "/scaling?n=16&p_max=4&cs=1,2")

        status, body = _run_with_service(cache, scenario)
        assert status == 200
        assert body["points"] == len(body["rows"]) > 0

    def test_plan_returns_ranked_plans(self, cache):
        async def scenario(svc):
            return await _get(svc, "/plan?n=56&topology=fat-tree:4x4")

        status, body = _run_with_service(cache, scenario)
        assert status == 200
        assert body["topology"]["name"] == "fat-tree:4x4"
        rows = body["plans"]
        assert rows
        times = [row["predicted_time"] for row in rows]
        assert times == sorted(times)
        assert {"label", "p", "words", "lower_bound", "binding"} <= set(rows[0])

    def test_plan_bad_topology_400(self, cache):
        async def scenario(svc):
            return await _get(svc, "/plan?n=56&topology=hypercube:8")

        status, body = _run_with_service(cache, scenario)
        assert status == 400 and "topology" in body["error"]

    def test_unknown_route_404(self, cache):
        async def scenario(svc):
            return await _get(svc, "/spectra")

        status, body = _run_with_service(cache, scenario)
        assert status == 404 and "no route" in body["error"]

    def test_domain_error_400(self, cache):
        async def scenario(svc):
            return await _get(svc, "/expansion?scheme=strassen&k=99")

        status, body = _run_with_service(cache, scenario)
        assert status == 400 and "k" in body["error"]

    def test_unknown_scheme_400_not_500(self, cache):
        # KeyError from the scheme registry is the client's fault
        async def scenario(svc):
            return await _get(svc, "/expansion?scheme=nope&k=1")

        status, body = _run_with_service(cache, scenario)
        assert status == 400

    def test_post_405(self, cache):
        async def post(svc):
            return await fetch_json("127.0.0.1", svc.port, "/expansion", method="POST")

        status, body = _run_with_service(cache, post)
        assert status == 405 and "POST" in body["error"]

    def test_malformed_request_line_400(self, cache):
        async def scenario(svc):
            reader, writer = await asyncio.open_connection("127.0.0.1", svc.port)
            try:
                writer.write(b"GARBAGE\r\n\r\n")
                await writer.drain()
                raw = await asyncio.wait_for(reader.read(), timeout=10)
            finally:
                writer.close()
            return raw

        raw = _run_with_service(cache, scenario)
        assert raw.startswith(b"HTTP/1.1 400 ")

    def test_keep_alive_serves_sequential_requests(self, cache):
        async def scenario(svc):
            reader, writer = await asyncio.open_connection("127.0.0.1", svc.port)
            try:
                statuses = []
                for _ in range(2):
                    writer.write(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n")
                    await writer.drain()
                    line = await reader.readuntil(b"\r\n")
                    statuses.append(line.decode().split()[1])
                    head = await reader.readuntil(b"\r\n\r\n")
                    length = next(
                        int(h.split(":", 1)[1])
                        for h in head.decode().lower().split("\r\n")
                        if h.startswith("content-length")
                    )
                    await reader.readexactly(length)
                return statuses
            finally:
                writer.close()

        assert _run_with_service(cache, scenario) == ["200", "200"]

    def test_cache_info_includes_service_block(self, cache):
        async def scenario(svc):
            await _get(svc, "/expansion?scheme=strassen&k=1")
            return await _get(svc, "/cache/info")

        status, body = _run_with_service(cache, scenario)
        assert status == 200
        assert body["service"]["requests"] == 2
        assert body["service"]["workers"] == 0
        assert "disk_degraded" in body and "memory" in body


class TestSingleFlight:
    def test_concurrent_identical_requests_build_once(self, cache):
        """The acceptance criterion: 8 racing clients, one build chain."""
        clients = 8

        async def scenario(svc):
            results = await asyncio.gather(
                *(_get(svc, "/expansion?scheme=strassen&k=2") for _ in range(clients))
            )
            return results

        results = _run_with_service(cache, scenario)
        assert all(status == 200 for status, _ in results)
        bodies = [body for _, body in results]
        assert all(body == bodies[0] for body in bodies)
        # strassen k=2 at auto policy resolves spectrally: dec graph +
        # spectrum + estimate = 3 builds, total — not 3 per client.
        assert cache.stats.builds == 3

    def test_submit_dedup_is_exact(self, cache):
        """Driving handle() directly (no sockets): followers dedup exactly."""
        clients = 8
        request = Request(
            method="GET",
            target="/expansion?scheme=strassen&k=2",
            path="/expansion",
            query={"scheme": "strassen", "k": "2"},
            headers={},
        )

        async def scenario(svc):
            responses = await asyncio.gather(*(svc.handle(request) for _ in range(clients)))
            return responses, svc.deduped, svc.errors

        responses, deduped, errors = _run_with_service(cache, scenario)
        assert [r.status for r in responses] == [200] * clients
        assert errors == 0
        assert deduped == clients - 1  # one leader, everyone else rode along
        assert cache.stats.builds == 3

    def test_warm_key_answers_without_new_flight(self, cache):
        async def scenario(svc):
            first = await _get(svc, "/expansion?scheme=strassen&k=1")
            second = await _get(svc, "/expansion?scheme=strassen&k=1")
            return first, second, svc.deduped, dict(svc._inflight)

        first, second, deduped, inflight = _run_with_service(cache, scenario)
        assert first == second
        assert deduped == 0  # sequential: the second hit the cache, not a flight
        assert inflight == {}  # nothing leaked in the in-flight map

    def test_distinct_keys_do_not_dedup(self, cache):
        async def scenario(svc):
            await asyncio.gather(
                _get(svc, "/expansion?scheme=strassen&k=1"),
                _get(svc, "/expansion?scheme=strassen&k=2"),
            )
            return svc.deduped

        assert _run_with_service(cache, scenario) == 0


class TestWorkerPool:
    def test_process_pool_merges_worker_stats(self, tmp_path):
        cache = EngineCache(tmp_path / "serve-cache")

        async def scenario(svc):
            status, body = await _get(svc, "/expansion?scheme=strassen&k=1")
            info_status, info = await _get(svc, "/cache/info")
            return status, body, info

        status, body, info = _run_with_service(cache, scenario, workers=1)
        assert status == 200 and body["method"] == "exact"
        # the worker's counter delta was merged into the parent's stats
        assert info["stats"]["builds"] >= 1
        assert info["service"]["workers"] == 1


class TestCliWiring:
    def test_serve_flags_construct_config(self, monkeypatch):
        import repro.serve.service as service_mod
        from repro.engine.cli import main

        captured = {}

        def fake_run(config):
            captured["config"] = config
            return 0

        monkeypatch.setattr(service_mod, "run", fake_run)
        rc = main(
            [
                "serve",
                "--port",
                "0",
                "--workers",
                "2",
                "--memory-items",
                "8",
                "--memory-mb",
                "0",
            ]
        )
        assert rc == 0
        config = captured["config"]
        assert config.port == 0 and config.workers == 2
        assert config.memory_items == 8 and config.memory_bytes is None

    def test_run_job_inline_counts_one_build_per_payload(self, cache):
        job = parse_job("bounds", {})
        first = run_job_inline(job, cache)
        builds_after_first = cache.stats.builds
        second = run_job_inline(job, cache)
        assert first == second
        assert builds_after_first == cache.stats.builds  # warm path: no rebuild
