"""Tests for the bilinear-scheme framework (repro.cdag.schemes)."""

import math

import numpy as np
import pytest

from repro.cdag.schemes import (
    BilinearScheme,
    available_schemes,
    classical_rect_scheme,
    classical_scheme,
    compose_schemes,
    get_scheme,
    strassen_scheme,
    winograd_scheme,
)
from repro.util.matgen import integer_matrix


class TestRegistry:
    def test_available_schemes_nonempty(self):
        assert "strassen" in available_schemes()
        assert "classical2" in available_schemes()

    def test_get_scheme_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown scheme"):
            get_scheme("does-not-exist")

    def test_get_scheme_caches(self):
        assert get_scheme("strassen") is get_scheme("strassen")

    def test_dynamic_classical_rect_names(self):
        s = get_scheme("classical2x3x4")
        assert s.shape == (2, 3, 4)
        assert s.t0 == 24
        assert get_scheme("classical2x3x4") is s

    def test_rectangular_registry_entries(self):
        for name in ("classical122", "classical212", "classical221", "strassen122"):
            assert name in available_schemes()

    def test_dynamic_name_volume_capped(self):
        # Brent validation is cubic in m*n*p; huge dynamic names must be a
        # clear error, not an OOM
        with pytest.raises(ValueError, match="volume"):
            get_scheme("classical40x40x40")

    def test_default_rect_name_round_trips(self):
        s = classical_rect_scheme(2, 12, 1)
        assert s.name == "classical2x12x1"
        assert get_scheme(s.name).shape == s.shape

    @pytest.mark.parametrize("name", available_schemes())
    def test_every_registered_scheme_is_brent_exact(self, name):
        assert get_scheme(name).brent_residual() == 0.0


class TestParameters:
    def test_strassen_counts(self):
        s = strassen_scheme()
        assert (s.shape, s.t0) == ((2, 2, 2), 7)
        assert s.is_square
        assert math.isclose(s.omega0, math.log2(7))

    def test_winograd_flat_addition_count(self):
        # Winograd's celebrated 15 additions need common-subexpression
        # reuse; the flat (no-CSE) evaluation the CDAG uses has 24.
        assert winograd_scheme().n_additions == 24

    def test_strassen_addition_count_is_18(self):
        # Strassen's classic 18-addition count is already CSE-free.
        assert strassen_scheme().n_additions == 18

    def test_classical_rank_is_cubed(self):
        for n0 in (2, 3):
            s = classical_scheme(n0)
            assert s.t0 == n0**3
            assert s.omega0 == pytest.approx(3.0)

    def test_rectangular_classical_rank_is_volume(self):
        s = classical_rect_scheme(1, 2, 3)
        assert (s.shape, s.t0) == ((1, 2, 3), 6)
        assert not s.is_square
        assert s.omega0 == pytest.approx(3.0)

    def test_rectangular_block_counts(self):
        s = get_scheme("strassen122")
        assert s.shape == (2, 4, 4)
        assert (s.a_blocks, s.b_blocks, s.c_blocks, s.t0) == (8, 16, 8, 28)

    def test_omega_bounds(self, any_scheme):
        assert 2.0 < any_scheme.omega0 <= 3.0


class TestValidation:
    def test_wrong_shape_u_rejected(self):
        s = strassen_scheme()
        with pytest.raises(ValueError, match="U must be"):
            BilinearScheme("bad", 2, 2, 2, s.U[:, :3], s.V, s.W)

    def test_wrong_shape_w_rejected(self):
        s = strassen_scheme()
        with pytest.raises(ValueError, match="W must be"):
            BilinearScheme("bad", 2, 2, 2, s.U, s.V, s.W.T)

    def test_corrupted_coefficient_rejected(self):
        s = strassen_scheme()
        U = s.U.copy()
        U[0, 0] = -1.0
        with pytest.raises(ValueError, match="Brent"):
            BilinearScheme("bad", 2, 2, 2, U, s.V, s.W)

    def test_validate_false_allows_invalid(self):
        s = strassen_scheme()
        U = s.U.copy()
        U[0, 0] = -1.0
        b = BilinearScheme("bad", 2, 2, 2, U, s.V, s.W, validate=False)
        assert b.brent_residual() > 0


class TestApply:
    def test_apply_matches_numpy(self, any_scheme, rng):
        m0, n0, p0 = any_scheme.shape
        A = rng.integers(-3, 4, (m0, n0)).astype(float)
        B = rng.integers(-3, 4, (n0, p0)).astype(float)
        assert np.array_equal(any_scheme.apply(A, B), A @ B)

    def test_apply_wrong_size_raises(self, any_scheme):
        m0, n0, p0 = any_scheme.shape
        with pytest.raises(ValueError, match="base case"):
            any_scheme.apply(np.zeros((m0 + 1, n0 + 1)), np.zeros((n0 + 1, p0 + 1)))

    def test_apply_blocked_matches_numpy(self, any_scheme, rng):
        m0, n0, p0 = any_scheme.shape
        b = 3
        A = rng.integers(-3, 4, (m0 * b, n0 * b)).astype(float)
        B = rng.integers(-3, 4, (n0 * b, p0 * b)).astype(float)
        Ablocks = [
            A[i * b : (i + 1) * b, j * b : (j + 1) * b]
            for i in range(m0)
            for j in range(n0)
        ]
        Bblocks = [
            B[i * b : (i + 1) * b, j * b : (j + 1) * b]
            for i in range(n0)
            for j in range(p0)
        ]
        Cblocks = any_scheme.apply_blocked(Ablocks, Bblocks, lambda x, y: x @ y)
        C = np.vstack(
            [np.hstack(Cblocks[i * p0 : (i + 1) * p0]) for i in range(m0)]
        )
        assert np.array_equal(C, A @ B)

    def test_apply_identity(self, any_scheme):
        # multiplying by I_{n0 x p0's conformable slice}: use B = [I | 0]
        m0, n0, p0 = any_scheme.shape
        A = np.arange(1, m0 * n0 + 1, dtype=float).reshape(m0, n0)
        B = np.eye(n0, p0)
        assert np.array_equal(any_scheme.apply(A, B), A @ B)

    def test_apply_recursive_exact_on_integers(self, any_scheme, rng):
        s = any_scheme
        for k in (1, 2):
            A = rng.integers(-3, 4, (s.m0**k, s.n0**k)).astype(float)
            B = rng.integers(-3, 4, (s.n0**k, s.p0**k)).astype(float)
            assert np.array_equal(s.apply_recursive(A, B), A @ B)


class TestComposition:
    def test_composed_dimensions(self):
        s = compose_schemes(strassen_scheme(), classical_scheme(2))
        assert s.shape == (4, 4, 4)
        assert s.t0 == 7 * 8

    def test_composed_is_valid(self):
        s = compose_schemes(winograd_scheme(), strassen_scheme())
        assert s.brent_residual() == 0.0

    def test_composition_omega_mixes(self):
        s = compose_schemes(strassen_scheme(), classical_scheme(2))
        assert math.isclose(s.omega0, math.log(56) / math.log(4))

    def test_composed_apply_correct(self):
        s = compose_schemes(strassen_scheme(), strassen_scheme())
        A = integer_matrix(4, seed=1)
        B = integer_matrix(4, seed=2)
        assert np.array_equal(s.apply(A, B), A @ B)

    def test_composition_name_default(self):
        s = compose_schemes(strassen_scheme(), strassen_scheme())
        assert "strassen" in s.name

    def test_triple_composition(self):
        s2 = compose_schemes(strassen_scheme(), strassen_scheme())
        s3 = compose_schemes(s2, classical_scheme(2), "triple")
        assert s3.shape == (8, 8, 8)
        assert s3.t0 == 49 * 8
        assert s3.brent_residual() == 0.0

    def test_rectangular_composition_shapes_multiply(self):
        s = compose_schemes(classical_rect_scheme(1, 2, 2), classical_rect_scheme(2, 1, 2))
        assert s.shape == (2, 2, 4)
        assert s.t0 == 16
        assert s.brent_residual() == 0.0

    def test_rectangular_composition_apply(self, rng):
        s = compose_schemes(strassen_scheme(), classical_rect_scheme(1, 2, 2))
        A = rng.integers(-3, 4, (2, 4)).astype(float)
        B = rng.integers(-3, 4, (4, 4)).astype(float)
        assert np.array_equal(s.apply(A, B), A @ B)
