"""Tests for the bilinear-scheme framework (repro.cdag.schemes)."""

import math

import numpy as np
import pytest

from repro.cdag.schemes import (
    BilinearScheme,
    available_schemes,
    classical_scheme,
    compose_schemes,
    get_scheme,
    strassen_scheme,
    winograd_scheme,
)
from repro.util.matgen import integer_matrix


class TestRegistry:
    def test_available_schemes_nonempty(self):
        assert "strassen" in available_schemes()
        assert "classical2" in available_schemes()

    def test_get_scheme_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown scheme"):
            get_scheme("does-not-exist")

    def test_get_scheme_caches(self):
        assert get_scheme("strassen") is get_scheme("strassen")

    @pytest.mark.parametrize("name", available_schemes())
    def test_every_registered_scheme_is_brent_exact(self, name):
        assert get_scheme(name).brent_residual() == 0.0


class TestParameters:
    def test_strassen_counts(self):
        s = strassen_scheme()
        assert (s.n0, s.m0) == (2, 7)
        assert math.isclose(s.omega0, math.log2(7))

    def test_winograd_flat_addition_count(self):
        # Winograd's celebrated 15 additions need common-subexpression
        # reuse; the flat (no-CSE) evaluation the CDAG uses has 24.
        assert winograd_scheme().n_additions == 24

    def test_strassen_addition_count_is_18(self):
        # Strassen's classic 18-addition count is already CSE-free.
        assert strassen_scheme().n_additions == 18

    def test_classical_m0_is_cubed(self):
        for n0 in (2, 3):
            s = classical_scheme(n0)
            assert s.m0 == n0**3
            assert s.omega0 == pytest.approx(3.0)

    def test_omega_bounds(self, any_scheme):
        assert 2.0 < any_scheme.omega0 <= 3.0


class TestValidation:
    def test_wrong_shape_u_rejected(self):
        s = strassen_scheme()
        with pytest.raises(ValueError, match="U must be"):
            BilinearScheme("bad", 2, s.U[:, :3], s.V, s.W)

    def test_wrong_shape_w_rejected(self):
        s = strassen_scheme()
        with pytest.raises(ValueError, match="W must be"):
            BilinearScheme("bad", 2, s.U, s.V, s.W.T)

    def test_corrupted_coefficient_rejected(self):
        s = strassen_scheme()
        U = s.U.copy()
        U[0, 0] = -1.0
        with pytest.raises(ValueError, match="Brent"):
            BilinearScheme("bad", 2, U, s.V, s.W)

    def test_validate_false_allows_invalid(self):
        s = strassen_scheme()
        U = s.U.copy()
        U[0, 0] = -1.0
        b = BilinearScheme("bad", 2, U, s.V, s.W, validate=False)
        assert b.brent_residual() > 0


class TestApply:
    def test_apply_matches_numpy(self, any_scheme, rng):
        n0 = any_scheme.n0
        A = rng.integers(-3, 4, (n0, n0)).astype(float)
        B = rng.integers(-3, 4, (n0, n0)).astype(float)
        assert np.array_equal(any_scheme.apply(A, B), A @ B)

    def test_apply_wrong_size_raises(self, any_scheme):
        n0 = any_scheme.n0
        with pytest.raises(ValueError, match="base case"):
            any_scheme.apply(np.eye(n0 + 1), np.eye(n0 + 1))

    def test_apply_blocked_matches_numpy(self, any_scheme):
        n0 = any_scheme.n0
        b = 3
        A = integer_matrix(n0 * b, seed=5)
        B = integer_matrix(n0 * b, seed=6)
        Ablocks = [
            A[i * b : (i + 1) * b, j * b : (j + 1) * b]
            for i in range(n0)
            for j in range(n0)
        ]
        Bblocks = [
            B[i * b : (i + 1) * b, j * b : (j + 1) * b]
            for i in range(n0)
            for j in range(n0)
        ]
        Cblocks = any_scheme.apply_blocked(Ablocks, Bblocks, lambda x, y: x @ y)
        C = np.vstack(
            [np.hstack(Cblocks[i * n0 : (i + 1) * n0]) for i in range(n0)]
        )
        assert np.array_equal(C, A @ B)

    def test_apply_identity(self, any_scheme):
        n0 = any_scheme.n0
        A = integer_matrix(n0, seed=3)
        assert np.array_equal(any_scheme.apply(A, np.eye(n0)), A)


class TestComposition:
    def test_composed_dimensions(self):
        s = compose_schemes(strassen_scheme(), classical_scheme(2))
        assert s.n0 == 4
        assert s.m0 == 7 * 8

    def test_composed_is_valid(self):
        s = compose_schemes(winograd_scheme(), strassen_scheme())
        assert s.brent_residual() == 0.0

    def test_composition_omega_mixes(self):
        s = compose_schemes(strassen_scheme(), classical_scheme(2))
        assert math.isclose(s.omega0, math.log(56) / math.log(4))

    def test_composed_apply_correct(self):
        s = compose_schemes(strassen_scheme(), strassen_scheme())
        A = integer_matrix(4, seed=1)
        B = integer_matrix(4, seed=2)
        assert np.array_equal(s.apply(A, B), A @ B)

    def test_composition_name_default(self):
        s = compose_schemes(strassen_scheme(), strassen_scheme())
        assert "strassen" in s.name

    def test_triple_composition(self):
        s2 = compose_schemes(strassen_scheme(), strassen_scheme())
        s3 = compose_schemes(s2, classical_scheme(2), "triple")
        assert s3.n0 == 8
        assert s3.m0 == 49 * 8
        assert s3.brent_residual() == 0.0
