"""Tests for the CDAG data structure (repro.cdag.graph) and builder."""

import numpy as np
import pytest

from repro.cdag.build import GraphBuilder
from repro.cdag.graph import CDAG, VertexKind


class TestConstruction:
    def test_basic_counts(self, diamond_graph):
        assert diamond_graph.n_vertices == 5
        assert diamond_graph.n_edges == 6

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            CDAG(2, np.array([0]), np.array([0]), np.zeros(2, dtype=np.int8))

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            CDAG(2, np.array([0]), np.array([5]), np.zeros(2, dtype=np.int8))

    def test_kinds_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="one entry per vertex"):
            CDAG(3, np.array([0]), np.array([1]), np.zeros(2, dtype=np.int8))

    def test_builder_freeze_roundtrip(self):
        b = GraphBuilder()
        vs = b.add_vertices(3, VertexKind.INPUT)
        w = b.add_vertex(VertexKind.OUTPUT)
        b.add_edges(vs, [w, w, w])
        g = b.freeze()
        assert g.n_vertices == 4
        assert g.in_degree[w] == 3

    def test_builder_rejects_self_loop(self):
        b = GraphBuilder()
        v = b.add_vertex()
        with pytest.raises(ValueError):
            b.add_edge(v, v)

    def test_builder_set_kind(self):
        b = GraphBuilder()
        v = b.add_vertex(VertexKind.ADD)
        b.set_kind(v, VertexKind.OUTPUT)
        assert b.freeze().kinds[v] == VertexKind.OUTPUT


class TestDegrees:
    def test_diamond_degrees(self, diamond_graph):
        assert diamond_graph.in_degree.tolist() == [0, 0, 2, 2, 2]
        assert diamond_graph.out_degree.tolist() == [2, 2, 1, 1, 0]
        assert diamond_graph.max_degree == 3

    def test_degree_counts_multiedges_once(self):
        # duplicate directed edge: undirected simple degree counts it once
        g = CDAG(2, np.array([0, 0]), np.array([1, 1]), np.zeros(2, dtype=np.int8))
        assert g.degree.tolist() == [1, 1]

    def test_inputs_outputs(self, diamond_graph):
        assert set(diamond_graph.inputs.tolist()) == {0, 1}
        assert set(diamond_graph.outputs.tolist()) == {4}

    def test_count_kind(self, diamond_graph):
        assert diamond_graph.count_kind(VertexKind.INPUT) == 2
        assert diamond_graph.count_kind(VertexKind.ADD) == 2


class TestBoundary:
    def test_boundary_single_vertex(self, diamond_graph):
        mask = np.zeros(5, dtype=bool)
        mask[0] = True
        assert diamond_graph.edge_boundary_size(mask) == 2

    def test_boundary_complement_symmetric(self, diamond_graph, rng):
        mask = rng.random(5) < 0.5
        assert diamond_graph.edge_boundary_size(mask) == diamond_graph.edge_boundary_size(~mask)

    def test_boundary_empty_and_full(self, diamond_graph):
        assert diamond_graph.edge_boundary_size(np.zeros(5, dtype=bool)) == 0
        assert diamond_graph.edge_boundary_size(np.ones(5, dtype=bool)) == 0

    def test_boundary_wrong_shape_raises(self, diamond_graph):
        with pytest.raises(ValueError):
            diamond_graph.edge_boundary_size(np.zeros(3, dtype=bool))


class TestTopology:
    def test_topological_order_valid(self, diamond_graph):
        order = diamond_graph.topological_order
        pos = np.empty(5, dtype=int)
        pos[order] = np.arange(5)
        assert np.all(pos[diamond_graph.src] < pos[diamond_graph.dst])

    def test_cycle_detected(self):
        g = CDAG(
            3,
            np.array([0, 1, 2]),
            np.array([1, 2, 0]),
            np.zeros(3, dtype=np.int8),
        )
        with pytest.raises(ValueError, match="cycle"):
            _ = g.topological_order

    def test_longest_path_level(self, path_graph):
        assert path_graph.longest_path_level.tolist() == [0, 1, 2, 3, 4, 5]

    def test_longest_path_diamond(self, diamond_graph):
        assert diamond_graph.longest_path_level.tolist() == [0, 0, 1, 1, 2]

    def test_generations_partition_vertices(self, diamond_graph):
        gens = diamond_graph.topological_generations
        flat = np.concatenate(gens)
        assert sorted(flat.tolist()) == list(range(5))
        assert [g.tolist() for g in gens] == [[0, 1], [2, 3], [4]]

    def test_generations_are_longest_path_levels(self, diamond_graph):
        depth = diamond_graph.longest_path_level
        for level, gen in enumerate(diamond_graph.topological_generations):
            assert np.all(depth[gen] == level)

    def test_longest_path_random_dags_vs_reference(self, rng):
        # vectorized generation peeling vs an edge-by-edge relaxation
        for _ in range(10):
            n = int(rng.integers(2, 40))
            src, dst = [], []
            for i in range(n):
                for j in range(i + 1, n):
                    if rng.random() < 0.15:
                        src.append(i)
                        dst.append(j)
            g = CDAG(n, np.array(src, dtype=np.int64),
                     np.array(dst, dtype=np.int64), np.zeros(n, dtype=np.int8))
            ref = [0] * n
            for v in g.topological_order.tolist():
                for s, d in zip(src, dst):
                    if s == v:
                        ref[d] = max(ref[d], ref[v] + 1)
            assert g.longest_path_level.tolist() == ref

    def test_longest_path_with_multi_edges(self):
        # duplicate directed edges must not break the in-degree accounting
        g = CDAG(3, np.array([0, 0, 1]), np.array([1, 1, 2]),
                 np.zeros(3, dtype=np.int8))
        assert g.longest_path_level.tolist() == [0, 1, 2]

    def test_edgeless_graph(self):
        g = CDAG(4, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                 np.zeros(4, dtype=np.int8))
        assert g.longest_path_level.tolist() == [0, 0, 0, 0]
        assert sorted(g.topological_order.tolist()) == [0, 1, 2, 3]


class TestDerived:
    def test_subgraph_preserves_edges(self, diamond_graph):
        sub, mapping = diamond_graph.subgraph(np.array([0, 1, 2]))
        assert sub.n_vertices == 3
        assert sub.n_edges == 2  # both inputs into 'a'
        assert mapping.tolist() == [0, 1, 2]

    def test_subgraph_duplicate_vertices_rejected(self, diamond_graph):
        # regression: duplicates used to silently corrupt the vertex mapping
        # (the later occurrence overwrote new_index for the earlier one)
        with pytest.raises(ValueError, match="duplicates"):
            diamond_graph.subgraph(np.array([0, 1, 1, 2]))

    def test_reversed_swaps_degrees(self, diamond_graph):
        r = diamond_graph.reversed()
        assert np.array_equal(r.in_degree, diamond_graph.out_degree)

    def test_as_networkx(self, diamond_graph):
        g = diamond_graph.as_networkx()
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 6

    def test_connectivity(self, diamond_graph):
        assert diamond_graph.is_connected_undirected()
        # two disjoint edges -> disconnected
        g = CDAG(4, np.array([0, 2]), np.array([1, 3]), np.zeros(4, dtype=np.int8))
        assert not g.is_connected_undirected()

    def test_validate_binary_ops(self, diamond_graph):
        assert diamond_graph.validate_binary_ops()
        b = GraphBuilder()
        vs = b.add_vertices(3, VertexKind.INPUT)
        w = b.add_vertex()
        b.add_edges(vs, [w] * 3)
        assert not b.freeze().validate_binary_ops()

    def test_adjacency_symmetric(self, diamond_graph):
        A = diamond_graph.adjacency
        assert (A != A.T).nnz == 0
