"""Tests for sequential algorithms: in-core numerics and I/O-explicit runs."""


import numpy as np
import pytest

from repro.algorithms.io_classical import blocked_io, naive_io, recursive_io
from repro.algorithms.io_strassen import (
    canonical_base_size,
    dfs_io,
    dfs_io_model,
    rect_dfs_io_model,
)
from repro.algorithms.strassen import bilinear_multiply, count_flops, strassen_multiply
from repro.cdag.schemes import get_scheme
from repro.util.matgen import hilbert_like, integer_matrix, random_matrix


class TestInCoreNumerics:
    @pytest.mark.parametrize("n", [4, 8, 16, 32, 64])
    def test_strassen_exact_on_integers(self, n):
        A = integer_matrix(n, seed=n)
        B = integer_matrix(n, seed=n + 1)
        C = strassen_multiply(A, B, cutoff=4)
        assert np.array_equal(C, A @ B)

    @pytest.mark.parametrize("variant", ["strassen", "winograd"])
    def test_variants_exact(self, variant):
        A = integer_matrix(32, seed=1)
        B = integer_matrix(32, seed=2)
        assert np.array_equal(strassen_multiply(A, B, cutoff=4, variant=variant), A @ B)

    def test_all_schemes_multiply_correctly(self, any_scheme):
        # two recursion levels of the scheme's own (possibly rectangular) shape
        s = any_scheme
        m, n, p = s.m0**2 * 2, s.n0**2 * 2, s.p0**2 * 2
        rng = np.random.default_rng(34)
        A = rng.integers(-4, 5, (m, n)).astype(float)
        B = rng.integers(-4, 5, (n, p)).astype(float)
        C = bilinear_multiply(A, B, s, cutoff=max(s.m0, s.n0, s.p0))
        assert np.array_equal(C, A @ B)

    def test_float_accuracy_reasonable(self):
        A = random_matrix(64, seed=1)
        B = random_matrix(64, seed=2)
        C = strassen_multiply(A, B, cutoff=8)
        assert np.allclose(C, A @ B, atol=1e-10)

    def test_ill_conditioned_budgeted(self):
        # Strassen loses a constant number of digits vs classical — allow it
        A = hilbert_like(32)
        C = strassen_multiply(A, A, cutoff=4)
        assert np.allclose(C, A @ A, atol=1e-8)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            bilinear_multiply(np.zeros((4, 4)), np.zeros((8, 8)))
        with pytest.raises(ValueError):
            bilinear_multiply(np.zeros((4, 8)), np.zeros((4, 8)))

    def test_indivisible_size_raises(self):
        # 9 is odd and above the cutoff: the pure recursion cannot split it
        A = np.zeros((9, 9))
        with pytest.raises(ValueError, match="not divisible"):
            bilinear_multiply(A, A, "strassen", cutoff=3)

    def test_invalid_variant(self):
        with pytest.raises(ValueError):
            strassen_multiply(np.eye(4), np.eye(4), variant="nope")

    def test_cutoff_larger_than_n_is_classical(self):
        A = integer_matrix(8, seed=7)
        B = integer_matrix(8, seed=8)
        assert np.array_equal(strassen_multiply(A, B, cutoff=16), A @ B)


class TestFlopCounts:
    def test_classical_base_counts(self):
        fc = count_flops(4, "strassen", cutoff=4)
        assert fc.multiplications == 64
        assert fc.additions == 16 * 3

    def test_strassen_reduces_multiplications(self):
        classical = count_flops(64, "classical2", cutoff=1)
        fast = count_flops(64, "strassen", cutoff=1)
        assert fast.multiplications < classical.multiplications

    def test_multiplication_count_formula(self):
        # pure recursion to 1x1: exactly 7^lg n multiplications
        fc = count_flops(16, "strassen", cutoff=1)
        assert fc.multiplications == 7**4

    def test_omega_scaling(self):
        s = get_scheme("strassen")
        f1 = count_flops(64, s, cutoff=1).total
        f2 = count_flops(128, s, cutoff=1).total
        assert 6.5 < f2 / f1 < 7.5  # ~m0 per doubling


class TestCanonicalBase:
    def test_base_fits(self):
        b = canonical_base_size(256, 3 * 16 * 16, 2)
        assert b == 16

    def test_unreachable_base_raises(self):
        with pytest.raises(ValueError):
            canonical_base_size(192, 8, 2)  # 192 -> 96 -> ... -> 3: 3*9>8

    def test_tiny_m_raises(self):
        with pytest.raises(ValueError):
            canonical_base_size(8, 2, 2)


class TestDfsIO:
    def test_model_equals_simulation(self, small_scheme):
        for n, M in ((64, 192), (128, 768)):
            a = dfs_io(n, M, small_scheme)
            b = dfs_io_model(n, M, small_scheme)
            assert a.words == b.words
            assert a.messages == b.messages
            assert a.n_base_multiplies == b.n_base_multiplies

    def test_base_case_count(self):
        rep = dfs_io(64, 3 * 16 * 16, "strassen")
        assert rep.n_base_multiplies == 49  # two recursion levels: 7^2

    def test_recurrence_structure(self):
        # IO(n) = t0 IO(n/2) + streams: check the exact recurrence
        s = get_scheme("strassen")
        M = 768
        io_n = dfs_io_model(128, M, s).words
        io_half = dfs_io_model(64, M, s).words
        sub_words = 64 * 64
        u_nnz = int((s.U != 0).sum())
        v_nnz = int((s.V != 0).sum())
        w_nnz = int((s.W != 0).sum())
        streams = (u_nnz + s.t0) + (v_nnz + s.t0) + (w_nnz + 4)
        assert io_n == s.t0 * io_half + streams * sub_words

    def test_in_memory_case(self):
        # when 3n^2 <= M: just read inputs, write output
        rep = dfs_io(16, 1000, "strassen")
        assert rep.words == 3 * 256

    def test_io_decreases_with_memory(self):
        ios = [dfs_io_model(512, 3 * b * b).words for b in (8, 16, 32, 64)]
        assert ios == sorted(ios, reverse=True)

    def test_custom_base_monotone(self):
        # cutting the recursion deeper than necessary only adds I/O
        M = 3 * 32 * 32
        words = [dfs_io_model(256, M, "strassen", base=b).words for b in (32, 16, 8, 4)]
        assert words == sorted(words)

    def test_infeasible_base_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            dfs_io_model(256, 192, "strassen", base=64)

    def test_unreachable_base_rejected(self):
        with pytest.raises(ValueError, match="not reachable"):
            dfs_io_model(256, 3 * 32 * 32, "strassen", base=24)

    def test_messages_bounded_by_words(self):
        rep = dfs_io_model(256, 768, "strassen")
        assert rep.messages <= rep.words


class TestRectDfsIO:
    def test_square_shapes_reproduce_square_model(self, small_scheme):
        # the rectangular model on (n, n, n) must agree with dfs_io_model
        # word-for-word — the two engines share one accounting
        for n, M in ((64, 192), (128, 768), (256, 3072)):
            sq = dfs_io_model(n, M, small_scheme)
            rect = rect_dfs_io_model(n, n, n, M, small_scheme)
            assert rect.words == sq.words
            assert rect.messages == sq.messages
            assert rect.n_base_multiplies == sq.n_base_multiplies

    def test_rect_recurrence_structure(self):
        # IO(m,n,p) = t0 IO(m/m0, n/n0, p/p0) + per-level streams
        s = get_scheme("strassen122")
        M = 768
        m, n, p = 2**3, 4**3, 4**3
        top = rect_dfs_io_model(m, n, p, M, s).words
        sub = rect_dfs_io_model(m // 2, n // 4, p // 4, M, s).words
        aw = (m // 2) * (n // 4)
        bw = (n // 4) * (p // 4)
        cw = (m // 2) * (p // 4)
        u_nnz = int((s.U != 0).sum())
        v_nnz = int((s.V != 0).sum())
        w_nnz = int((s.W != 0).sum())
        streams = (
            (u_nnz + s.t0) * aw + (v_nnz + s.t0) * bw + (w_nnz + s.c_blocks) * cw
        )
        assert top == s.t0 * sub + streams

    def test_rect_base_case_counts(self):
        # blocks fit: read A and B, write C, one multiply
        rep = rect_dfs_io_model(2, 8, 4, 1000, "strassen122")
        assert rep.words == (2 * 8 + 8 * 4) + 2 * 4
        assert rep.messages == 3
        assert rep.n_base_multiplies == 1

    def test_rect_indivisible_raises(self):
        with pytest.raises(ValueError, match="not divisible"):
            rect_dfs_io_model(3, 5, 7, 3, "strassen122")

    def test_degenerate_unit_scheme_errors_instead_of_looping(self):
        # ⟨1,1,1⟩ (mintable via the dynamic registry) cannot shrink anything:
        # must be a clear error, not unbounded recursion / an infinite loop
        with pytest.raises(ValueError, match="cannot shrink"):
            rect_dfs_io_model(8, 8, 8, 3, "classical1x1x1")
        with pytest.raises(ValueError, match="cannot recurse"):
            dfs_io_model(8, 3, "classical1x1x1")
        # but when the problem already fits, the degenerate scheme is fine
        assert rect_dfs_io_model(2, 2, 2, 1000, "classical1x1x1").words == 12

    def test_square_models_reject_rect_schemes(self):
        with pytest.raises(ValueError, match="rect_dfs_io_model"):
            dfs_io_model(64, 192, "strassen122")
        with pytest.raises(ValueError, match="rect_dfs_io_model"):
            dfs_io(64, 192, "classical122")


class TestClassicalIO:
    def test_blocked_matches_formula(self):
        n, M = 64, 3 * 16 * 16
        io = blocked_io(n, M).words
        b = 16
        t = n // b
        # per C tile: write b² + read 2 t b²; t² tiles
        assert io == t * t * (b * b + 2 * t * b * b)

    def test_blocked_beats_naive(self):
        n, M = 64, 3 * 16 * 16
        assert blocked_io(n, M).words < naive_io(n, M).words

    def test_recursive_matches_blocked_shape(self):
        n, M = 128, 3 * 16 * 16
        rec = recursive_io(n, M).words
        blk = blocked_io(n, M).words
        assert 0.5 < rec / blk < 4.0  # same Θ(n³/√M), constant differs

    def test_recursive_is_cache_adaptive(self):
        # same call, bigger M -> less I/O, no parameter change (oblivious)
        ios = [recursive_io(128, 3 * b * b).words for b in (8, 16, 32)]
        assert ios == sorted(ios, reverse=True)

    def test_naive_cubic_shape(self):
        io32 = naive_io(32, 256).words
        io64 = naive_io(64, 256).words
        assert 6.5 < io64 / io32 < 8.5

    def test_blocked_requires_divisibility(self):
        with pytest.raises(ValueError):
            blocked_io(100, 3 * 16 * 16)

    def test_naive_needs_two_rows(self):
        with pytest.raises(MemoryError):
            naive_io(64, 100)
