"""Tests for collectives: correctness on all group shapes + cost sanity."""

import math

import numpy as np
import pytest

from repro.machine.collectives import (
    allgather,
    broadcast,
    broadcast_many,
    gather,
    reduce,
    reduce_many,
    reduce_scatter,
    scatter,
    shift,
    shift_many,
)
from repro.machine.distributed import Machine

GROUP_SIZES = [2, 3, 4, 5, 7, 8]


def _machine_with(group, key, arrays):
    m = Machine(max(group) + 1)
    for r, a in zip(group, arrays):
        m.put(r, key, a)
    return m


@pytest.mark.parametrize("g", GROUP_SIZES)
class TestBroadcast:
    def test_everyone_receives(self, g, rng):
        group = list(range(1, g + 1))
        data = rng.random(6)
        m = Machine(g + 2)
        root = group[g // 2]
        m.put(root, "x", data)
        broadcast(m, group, root, "x")
        for r in group:
            assert np.array_equal(m.get(r, "x"), data)

    def test_round_count_logarithmic(self, g, rng):
        group = list(range(g))
        m = Machine(g)
        m.put(0, "x", rng.random(4))
        broadcast(m, group, 0, "x")
        assert m.log.n_supersteps == math.ceil(math.log2(g))

    def test_critical_words_per_round(self, g, rng):
        group = list(range(g))
        m = Machine(g)
        m.put(0, "x", rng.random(10))
        broadcast(m, group, 0, "x")
        # each round a rank sends and/or receives one 10-word block
        assert m.critical_words <= 20 * math.ceil(math.log2(g))


@pytest.mark.parametrize("g", GROUP_SIZES)
class TestReduce:
    def test_sum_at_root(self, g, rng):
        group = list(range(g))
        arrays = [rng.random(5) for _ in range(g)]
        m = _machine_with(group, "x", arrays)
        reduce(m, group, 0, "x", "sum")
        assert np.allclose(m.get(0, "sum"), sum(arrays))

    def test_nonzero_root(self, g, rng):
        group = list(range(g))
        arrays = [rng.random(5) for _ in range(g)]
        m = _machine_with(group, "x", arrays)
        root = group[-1]
        reduce(m, group, root, "x", "sum")
        assert np.allclose(m.get(root, "sum"), sum(arrays))

    def test_reduction_flops_charged(self, g, rng):
        group = list(range(g))
        m = _machine_with(group, "x", [rng.random(5) for _ in range(g)])
        reduce(m, group, 0, "x", "sum")
        assert m.flops.sum() == 5 * (g - 1)


@pytest.mark.parametrize("g", GROUP_SIZES)
class TestAllgather:
    def test_concatenation_everywhere(self, g, rng):
        group = list(range(g))
        arrays = [rng.random(3) for _ in range(g)]
        m = _machine_with(group, "x", arrays)
        allgather(m, group, "x", "all")
        expect = np.concatenate(arrays)
        for r in group:
            assert np.allclose(m.get(r, "all"), expect)


@pytest.mark.parametrize("g", GROUP_SIZES)
class TestReduceScatter:
    def test_slab_sums(self, g, rng):
        group = list(range(g))
        full = [rng.random(g * 4) for _ in range(g)]
        m = _machine_with(group, "x", full)
        reduce_scatter(m, group, "x", "part")
        total = sum(full)
        slabs = np.array_split(total, g)
        for i, r in enumerate(group):
            assert np.allclose(m.get(r, "part"), slabs[i])

    def test_bandwidth_optimal_volume(self, g, rng):
        group = list(range(g))
        m = _machine_with(group, "x", [rng.random(g * 4) for _ in range(g)])
        reduce_scatter(m, group, "x", "part")
        # every rank sends (g-1)/g of its data: critical sum over rounds
        per_rank_sent = m.log.per_rank_sent()
        assert all(v == (g - 1) * 4 for v in per_rank_sent.values())


@pytest.mark.parametrize("g", GROUP_SIZES)
class TestScatterGather:
    def test_roundtrip(self, g):
        group = list(range(g))
        m = Machine(g)
        data = np.arange(4.0 * g)
        m.put(0, "big", data)
        scatter(m, group, 0, "big", "piece")
        gather(m, group, 0, "piece", "back")
        assert np.allclose(m.get(0, "back"), data)


@pytest.mark.parametrize("g", GROUP_SIZES)
class TestShift:
    def test_cyclic_rotation(self, g):
        group = list(range(g))
        m = _machine_with(group, "x", [np.full(2, float(i)) for i in range(g)])
        shift(m, group, "x", 1)
        for i in range(g):
            assert np.allclose(m.get(group[(i + 1) % g], "x"), float(i))

    def test_negative_offset(self, g):
        group = list(range(g))
        m = _machine_with(group, "x", [np.full(2, float(i)) for i in range(g)])
        shift(m, group, "x", -1)
        for i in range(g):
            assert np.allclose(m.get(group[(i - 1) % g], "x"), float(i))


def _total_words(m):
    """Aggregate words moved over all supersteps (sender side)."""
    return m.log.total_words


def _total_messages(m):
    """Aggregate point-to-point messages (each is counted at src and dst)."""
    return sum(sum(s.msgs.values()) for s in m.log.steps) // 2


@pytest.mark.parametrize("g", GROUP_SIZES)
class TestCounterInvariants:
    """Words/messages of each collective match its closed-form cost.

    The costs are *derived* from the executed message pattern; these tests
    pin them to the textbook formulas so a regression in the round structure
    (an extra round, a duplicated send) cannot pass silently.
    """

    X = 12  # payload words; divisible by every group size's slab count

    def test_broadcast_moves_g_minus_1_payloads(self, g, rng):
        group = list(range(g))
        m = Machine(g)
        m.put(0, "x", rng.random(self.X))
        broadcast(m, group, 0, "x")
        # binomial tree: every non-root receives the payload exactly once
        assert _total_words(m) == (g - 1) * self.X
        assert _total_messages(m) == g - 1

    def test_reduce_moves_g_minus_1_partials(self, g, rng):
        group = list(range(g))
        m = _machine_with(group, "x", [rng.random(self.X) for _ in range(g)])
        reduce(m, group, 0, "x", "sum")
        # mirror of broadcast: each non-root's partial travels exactly once
        assert _total_words(m) == (g - 1) * self.X
        assert _total_messages(m) == g - 1
        assert int(m.flops.sum()) == (g - 1) * self.X

    def test_allgather_volume_and_messages(self, g, rng):
        group = list(range(g))
        m = _machine_with(group, "x", [rng.random(self.X) for _ in range(g)])
        allgather(m, group, "x", "all")
        # every rank ends with (g-1) remote chunks: total g(g-1)x words,
        # independent of the round structure (doubling and ring agree)
        assert _total_words(m) == g * (g - 1) * self.X
        if g & (g - 1) == 0:
            # recursive doubling: g sends per round, lg g rounds
            assert _total_messages(m) == g * int(math.log2(g))
            assert m.log.n_supersteps == int(math.log2(g))
        else:
            # ring fallback: g sends per round, g-1 rounds
            assert _total_messages(m) == g * (g - 1)
            assert m.log.n_supersteps == g - 1

    def test_reduce_scatter_volume_and_messages(self, g, rng):
        group = list(range(g))
        # slab sizes must be uniform for the closed form: pick x = g * w
        w = 3
        m = _machine_with(group, "x", [rng.random(g * w) for _ in range(g)])
        reduce_scatter(m, group, "x", "part")
        # pairwise exchange: per round every rank sends one w-word slab,
        # g-1 rounds: (g-1) * w words per rank = the bandwidth-optimal volume
        assert _total_words(m) == g * (g - 1) * w
        assert _total_messages(m) == g * (g - 1)
        assert m.log.n_supersteps == g - 1
        assert int(m.flops.sum()) == (g - 1) * g * w

    def test_words_sent_equal_words_received(self, g, rng):
        group = list(range(g))
        m = _machine_with(group, "x", [rng.random(self.X) for _ in range(g)])
        allgather(m, group, "x", "all")
        for s in m.log.steps:
            assert sum(s.sent.values()) == sum(s.recv.values())


class TestAssertDisjoint:
    """Batched collectives must reject overlapping groups."""

    def _machine(self, p=6):
        m = Machine(p)
        for r in range(p):
            m.put(r, "x", np.zeros(2))
        return m

    def test_broadcast_many_rejects_overlap(self):
        m = self._machine()
        with pytest.raises(ValueError, match="disjoint"):
            broadcast_many(m, [([0, 1, 2], 0), ([2, 3, 4], 2)], "x")

    def test_reduce_many_rejects_overlap(self):
        m = self._machine()
        with pytest.raises(ValueError, match="disjoint"):
            reduce_many(m, [([0, 1], 0), ([1, 2], 1)], "x")

    def test_shift_many_rejects_duplicate_within_group(self):
        m = self._machine()
        with pytest.raises(ValueError, match="disjoint"):
            shift_many(m, [[0, 1, 1]], "x", 1)

    def test_disjoint_groups_accepted(self):
        m = self._machine()
        broadcast_many(m, [([0, 1, 2], 0), ([3, 4, 5], 3)], "x")  # no raise


class TestBatchedVariants:
    def test_shift_many_single_superstep(self, rng):
        m = Machine(8)
        groups = [[0, 1, 2, 3], [4, 5, 6, 7]]
        for grp in groups:
            for i, r in enumerate(grp):
                m.put(r, "x", np.full(3, float(i)))
        shift_many(m, groups, "x", 1)
        assert m.log.n_supersteps == 1

    def test_shift_many_rejects_overlap(self):
        m = Machine(4)
        for r in range(4):
            m.put(r, "x", np.zeros(1))
        with pytest.raises(ValueError, match="disjoint"):
            shift_many(m, [[0, 1], [1, 2]], "x", 1)

    def test_broadcast_many_matches_single(self, rng):
        data = [rng.random(5), rng.random(5)]
        m = Machine(8)
        m.put(0, "x", data[0])
        m.put(4, "x", data[1])
        broadcast_many(m, [([0, 1, 2, 3], 0), ([4, 5, 6, 7], 4)], "x")
        for r in range(4):
            assert np.array_equal(m.get(r, "x"), data[0])
        for r in range(4, 8):
            assert np.array_equal(m.get(r, "x"), data[1])
        assert m.log.n_supersteps == 2  # lg 4 rounds, shared across groups

    def test_reduce_many_matches_single(self, rng):
        m = Machine(6)
        arrays = [rng.random(4) for _ in range(6)]
        for r, a in enumerate(arrays):
            m.put(r, "x", a)
        reduce_many(m, [([0, 1, 2], 0), ([3, 4, 5], 3)], "x", "sum")
        assert np.allclose(m.get(0, "sum"), sum(arrays[:3]))
        assert np.allclose(m.get(3, "sum"), sum(arrays[3:]))

    def test_reduce_many_mixed_group_sizes(self, rng):
        m = Machine(7)
        arrays = [rng.random(4) for _ in range(7)]
        for r, a in enumerate(arrays):
            m.put(r, "x", a)
        reduce_many(m, [([0, 1], 0), ([2, 3, 4, 5, 6], 2)], "x", "sum")
        assert np.allclose(m.get(0, "sum"), arrays[0] + arrays[1])
        assert np.allclose(m.get(2, "sum"), sum(arrays[2:]))
