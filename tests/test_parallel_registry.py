"""Tests for the parallel-algorithm registry and the uniform run() driver."""

import numpy as np
import pytest

from repro.parallel import (
    ParallelResult,
    available_parallel,
    cannon_multiply,
    caps_multiply,
    get_parallel,
    run_parallel,
    summa_multiply,
    threed_multiply,
    two5d_multiply,
)
from repro.util.matgen import integer_matrix

#: Every (name, run kwargs) config exercised by the uniform-interface tests;
#: all valid at n = 56.
CONFIGS = [
    ("cannon", dict(p=16)),
    ("summa", dict(p=16)),
    ("3d", dict(p=8)),
    ("2.5d", dict(p=32, c=2)),
    ("caps", dict(p=7)),
]


def _pair(n, s1=11, s2=13):
    return integer_matrix(n, seed=s1), integer_matrix(n, seed=s2)


class TestRegistry:
    def test_all_five_registered(self):
        assert available_parallel() == ["2.5d", "3d", "cannon", "caps", "summa"]

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="unknown parallel algorithm"):
            get_parallel("pancake")

    def test_classification_metadata(self):
        for name in available_parallel():
            a = get_parallel(name)
            assert a.algorithm_class in ("classical", "strassen-like")
            assert a.requirement and a.attains
        assert get_parallel("caps").algorithm_class == "strassen-like"
        assert get_parallel("caps").uses_scheme
        assert get_parallel("2.5d").supports_replication

    def test_omega0(self):
        from repro.cdag.schemes import get_scheme

        assert get_parallel("cannon").omega0() == 3.0
        assert get_parallel("caps").omega0(get_scheme("strassen")) == pytest.approx(
            get_scheme("strassen").omega0
        )


class TestUniformRun:
    @pytest.mark.parametrize("name,kwargs", CONFIGS)
    def test_exact_product_via_registry(self, name, kwargs):
        A, B = _pair(56)
        r = run_parallel(name, A, B, verify=True, **kwargs)
        assert isinstance(r, ParallelResult)
        assert np.array_equal(r.C, A @ B)
        assert r.verified is True
        assert r.p == kwargs["p"]

    @pytest.mark.parametrize("name,kwargs", CONFIGS)
    def test_result_carries_analytic_and_peaks(self, name, kwargs):
        A, B = _pair(56)
        r = run_parallel(name, A, B, **kwargs)
        assert r.analytic is not None and r.analytic.words >= 0
        assert len(r.mem_peaks) == r.p
        assert max(r.mem_peaks) == r.max_mem_peak
        assert r.time(0.0, 1.0) <= r.critical_words  # coupled ≤ separable
        assert r.verified is None  # verify defaults off

    def test_registry_matches_legacy_wrappers(self):
        A, B = _pair(56)
        pairs = [
            (run_parallel("cannon", A, B, p=16), cannon_multiply(A, B, 4)),
            (run_parallel("summa", A, B, p=16), summa_multiply(A, B, 4)),
            (run_parallel("3d", A, B, p=8), threed_multiply(A, B, 2)),
            (run_parallel("2.5d", A, B, p=32, c=2), two5d_multiply(A, B, 4, 2)),
            (run_parallel("caps", A, B, p=7), caps_multiply(A, B, 1)),
        ]
        for via_registry, via_wrapper in pairs:
            assert via_registry.critical_words == via_wrapper.critical_words
            assert via_registry.critical_messages == via_wrapper.critical_messages
            assert via_registry.max_mem_peak == via_wrapper.max_mem_peak
            assert via_registry.algorithm == via_wrapper.algorithm
            assert np.array_equal(via_registry.C, via_wrapper.C)

    def test_memory_limit_passes_through(self):
        A, B = _pair(56)
        lean = run_parallel("caps", A, B, p=49, schedule="DBB").max_mem_peak
        with pytest.raises(MemoryError):
            run_parallel("caps", A, B, p=49, schedule="BB", memory_limit=lean)


class TestValidityPredicates:
    def test_cannon_requires_square_grid(self):
        A, B = _pair(12)
        with pytest.raises(ValueError, match="perfect square"):
            run_parallel("cannon", A, B, p=12)

    def test_threed_requires_cube(self):
        A, B = _pair(12)
        with pytest.raises(ValueError, match="perfect cube"):
            run_parallel("3d", A, B, p=16)

    def test_two5d_requires_layered_square(self):
        A, B = _pair(24)
        with pytest.raises(ValueError, match="q²·c"):
            run_parallel("2.5d", A, B, p=24, c=2)
        with pytest.raises(ValueError, match="divisible by the"):
            run_parallel("2.5d", A, B, p=48, c=3)  # q=4, 4 % 3 != 0

    def test_caps_requires_power_of_rank(self):
        A, B = _pair(56)
        with pytest.raises(ValueError, match="power of the scheme's rank"):
            run_parallel("caps", A, B, p=10)

    def test_replication_rejected_by_non_replicating(self):
        A, B = _pair(16)
        with pytest.raises(ValueError, match="no replication factor"):
            run_parallel("cannon", A, B, p=16, c=2)

    def test_scheme_rejected_by_non_scheme_driven(self):
        A, B = _pair(16)
        with pytest.raises(ValueError, match="not scheme-driven"):
            run_parallel("cannon", A, B, p=16, scheme="strassen")

    def test_unknown_option_rejected(self):
        A, B = _pair(16)
        with pytest.raises(TypeError, match="unexpected option"):
            run_parallel("cannon", A, B, p=16, schedule="BB")
        with pytest.raises(TypeError, match="memory_limt"):
            run_parallel("cannon", A, B, p=16, memory_limt=10)  # typo'd kwarg

    def test_is_valid_predicate(self):
        cannon = get_parallel("cannon")
        assert cannon.is_valid(56, 16)
        assert not cannon.is_valid(56, 15)       # not a square
        assert not cannon.is_valid(10, 9)        # 3 does not divide 10
        caps = get_parallel("caps")
        assert caps.is_valid(56, 49)
        assert not caps.is_valid(8, 7)           # layout divisibility fails

    def test_default_configs_are_valid(self):
        for name in available_parallel():
            algo = get_parallel(name)
            configs = algo.default_configs(56, 64, cs=(1, 2, 4))
            assert configs, f"{name} offers no config at n=56, p<=64"
            for cfg in configs:
                assert cfg["p"] <= 64
                assert algo.is_valid(56, cfg["p"], c=cfg.get("c", 1))


class TestAnalyticCosts:
    @pytest.mark.parametrize("name,kwargs", CONFIGS)
    def test_measured_within_constant_factor(self, name, kwargs):
        A, B = _pair(56)
        r = run_parallel(name, A, B, **kwargs)
        a = r.analytic
        assert a.words > 0
        assert 0.25 <= r.critical_words / a.words <= 4.0
        assert 0.25 <= r.critical_messages / max(a.messages, 1) <= 4.0
        assert 0.25 <= r.max_mem_peak / a.memory <= 4.0

    def test_classical_word_formulas_are_exact(self):
        # the declared formulas are derived from the superstep structure,
        # so for the grid algorithms they are exact, not just Θ-correct
        A, B = _pair(56)
        for name, kwargs in CONFIGS[:4]:
            r = run_parallel(name, A, B, **kwargs)
            assert r.critical_words == r.analytic.words
            assert r.critical_messages == r.analytic.messages

    def test_caps_word_formula_exact_for_schedules(self):
        A, B = _pair(112)
        for sched in ("BB", "DBB", "BDB", "BBD"):
            r = run_parallel("caps", A, B, p=49, schedule=sched)
            assert r.critical_words == r.analytic.words
            assert r.critical_messages == r.analytic.messages

    def test_caps_analytic_rejects_inconsistent_schedule(self):
        caps = get_parallel("caps")
        with pytest.raises(ValueError, match="BFS steps"):
            caps.analytic_costs(56, 7, schedule="BBB")
        with pytest.raises(ValueError, match="BFS steps"):
            caps.analytic_costs(56, 7, schedule="D")
        with pytest.raises(ValueError, match="only 'B'/'D'"):
            caps.analytic_costs(56, 7, schedule="XB")

    def test_analytic_scaling_shapes(self):
        # cannon words = 4n²/√p: quadrupling p halves the words
        c = get_parallel("cannon")
        w1 = c.analytic_costs(64, 16).words
        w2 = c.analytic_costs(64, 64).words
        assert w1 / w2 == pytest.approx(2.0)
        # 2.5d memory grows linearly with c at fixed p
        t = get_parallel("2.5d")
        m1 = t.analytic_costs(64, 64, c=1).memory
        m4 = t.analytic_costs(64, 64, c=4).memory
        assert m4 / m1 == pytest.approx(4.0)
