"""Tests for the parallel-algorithm registry and the planner-first API."""

import warnings

import numpy as np
import pytest

from repro.parallel import (
    ParallelConfig,
    ParallelResult,
    available_parallel,
    get_parallel,
    run_parallel,
)
from repro.util.matgen import integer_matrix

#: Every (name, run kwargs) config exercised by the uniform-interface tests;
#: all valid at n = 56.
CONFIGS = [
    ("cannon", dict(p=16)),
    ("summa", dict(p=16)),
    ("3d", dict(p=8)),
    ("2.5d", dict(p=32, c=2)),
    ("caps", dict(p=7)),
]


def _pair(n, s1=11, s2=13):
    return integer_matrix(n, seed=s1), integer_matrix(n, seed=s2)


class TestRegistry:
    def test_all_five_registered(self):
        assert available_parallel() == ["2.5d", "3d", "cannon", "caps", "summa"]

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="unknown parallel algorithm"):
            get_parallel("pancake")

    def test_classification_metadata(self):
        for name in available_parallel():
            a = get_parallel(name)
            assert a.algorithm_class in ("classical", "strassen-like")
            assert a.requirement and a.attains
        assert get_parallel("caps").algorithm_class == "strassen-like"
        assert get_parallel("caps").uses_scheme
        assert get_parallel("2.5d").supports_replication

    def test_omega0(self):
        from repro.cdag.schemes import get_scheme

        assert get_parallel("cannon").omega0() == 3.0
        assert get_parallel("caps").omega0(get_scheme("strassen")) == pytest.approx(
            get_scheme("strassen").omega0
        )


class TestUniformRun:
    @pytest.mark.parametrize("name,kwargs", CONFIGS)
    def test_exact_product_via_registry(self, name, kwargs):
        A, B = _pair(56)
        r = run_parallel(name, A, B, verify=True, **kwargs)
        assert isinstance(r, ParallelResult)
        assert np.array_equal(r.C, A @ B)
        assert r.verified is True
        assert r.p == kwargs["p"]

    @pytest.mark.parametrize("name,kwargs", CONFIGS)
    def test_result_carries_analytic_and_peaks(self, name, kwargs):
        A, B = _pair(56)
        r = run_parallel(name, A, B, **kwargs)
        assert r.analytic is not None and r.analytic.words >= 0
        assert len(r.mem_peaks) == r.p
        assert max(r.mem_peaks) == r.max_mem_peak
        assert r.time(0.0, 1.0) <= r.critical_words  # coupled ≤ separable
        assert r.verified is None  # verify defaults off

    @pytest.mark.parametrize("name,kwargs", CONFIGS)
    def test_run_shim_matches_execute(self, name, kwargs):
        A, B = _pair(56)
        cfg = ParallelConfig(
            n=56, p=kwargs["p"], c=kwargs.get("c", 1),
            scheme="strassen" if name == "caps" else None,
        )
        via_shim = run_parallel(name, A, B, **kwargs)
        via_execute = get_parallel(name).execute(A, B, cfg)
        assert via_shim.critical_words == via_execute.critical_words
        assert via_shim.critical_messages == via_execute.critical_messages
        assert via_shim.max_mem_peak == via_execute.max_mem_peak
        assert via_shim.algorithm == via_execute.algorithm
        assert np.array_equal(via_shim.C, via_execute.C)

    def test_memory_limit_passes_through(self):
        A, B = _pair(56)
        lean = run_parallel("caps", A, B, p=49, schedule="DBB").max_mem_peak
        with pytest.raises(MemoryError):
            run_parallel("caps", A, B, p=49, schedule="BB", memory_limit=lean)


class TestValidityPredicates:
    def test_cannon_requires_square_grid(self):
        A, B = _pair(12)
        with pytest.raises(ValueError, match="perfect square"):
            run_parallel("cannon", A, B, p=12)

    def test_threed_requires_cube(self):
        A, B = _pair(12)
        with pytest.raises(ValueError, match="perfect cube"):
            run_parallel("3d", A, B, p=16)

    def test_two5d_requires_layered_square(self):
        A, B = _pair(24)
        with pytest.raises(ValueError, match="q²·c"):
            run_parallel("2.5d", A, B, p=24, c=2)
        with pytest.raises(ValueError, match="divisible by the"):
            run_parallel("2.5d", A, B, p=48, c=3)  # q=4, 4 % 3 != 0

    def test_caps_requires_power_of_rank(self):
        A, B = _pair(56)
        with pytest.raises(ValueError, match="power of the scheme's rank"):
            run_parallel("caps", A, B, p=10)

    def test_replication_rejected_by_non_replicating(self):
        A, B = _pair(16)
        with pytest.raises(ValueError, match="no replication factor"):
            run_parallel("cannon", A, B, p=16, c=2)

    def test_scheme_rejected_by_non_scheme_driven(self):
        A, B = _pair(16)
        with pytest.raises(ValueError, match="not scheme-driven"):
            run_parallel("cannon", A, B, p=16, scheme="strassen")

    def test_unknown_option_rejected(self):
        A, B = _pair(16)
        with pytest.raises(TypeError, match="unexpected option"):
            run_parallel("cannon", A, B, p=16, schedule="BB")
        with pytest.raises(TypeError, match="memory_limt"):
            run_parallel("cannon", A, B, p=16, memory_limt=10)  # typo'd kwarg

    def test_is_valid_predicate(self):
        cannon = get_parallel("cannon")
        assert cannon.is_valid(56, 16)
        assert not cannon.is_valid(56, 15)       # not a square
        assert not cannon.is_valid(10, 9)        # 3 does not divide 10
        caps = get_parallel("caps")
        assert caps.is_valid(56, 49)
        assert not caps.is_valid(8, 7)           # layout divisibility fails

    def test_default_configs_are_valid(self):
        for name in available_parallel():
            algo = get_parallel(name)
            configs = algo.default_configs(56, 64, cs=(1, 2, 4))
            assert configs, f"{name} offers no config at n=56, p<=64"
            for cfg in configs:
                assert cfg["p"] <= 64
                assert algo.is_valid(56, cfg["p"], c=cfg.get("c", 1))


class TestAnalyticCosts:
    @pytest.mark.parametrize("name,kwargs", CONFIGS)
    def test_measured_within_constant_factor(self, name, kwargs):
        A, B = _pair(56)
        r = run_parallel(name, A, B, **kwargs)
        a = r.analytic
        assert a.words > 0
        assert 0.25 <= r.critical_words / a.words <= 4.0
        assert 0.25 <= r.critical_messages / max(a.messages, 1) <= 4.0
        assert 0.25 <= r.max_mem_peak / a.memory <= 4.0

    def test_classical_word_formulas_are_exact(self):
        # the declared formulas are derived from the superstep structure,
        # so for the grid algorithms they are exact, not just Θ-correct
        A, B = _pair(56)
        for name, kwargs in CONFIGS[:4]:
            r = run_parallel(name, A, B, **kwargs)
            assert r.critical_words == r.analytic.words
            assert r.critical_messages == r.analytic.messages

    def test_caps_word_formula_exact_for_schedules(self):
        A, B = _pair(112)
        for sched in ("BB", "DBB", "BDB", "BBD"):
            r = run_parallel("caps", A, B, p=49, schedule=sched)
            assert r.critical_words == r.analytic.words
            assert r.critical_messages == r.analytic.messages

    def test_caps_analytic_rejects_inconsistent_schedule(self):
        caps = get_parallel("caps")
        with pytest.raises(ValueError, match="BFS steps"):
            caps.analytic_costs(56, 7, schedule="BBB")
        with pytest.raises(ValueError, match="BFS steps"):
            caps.analytic_costs(56, 7, schedule="D")
        with pytest.raises(ValueError, match="only 'B'/'D'"):
            caps.analytic_costs(56, 7, schedule="XB")

    def test_analytic_scaling_shapes(self):
        # cannon words = 4n²/√p: quadrupling p halves the words
        c = get_parallel("cannon")
        w1 = c.analytic_costs(64, 16).words
        w2 = c.analytic_costs(64, 64).words
        assert w1 / w2 == pytest.approx(2.0)
        # 2.5d memory grows linearly with c at fixed p
        t = get_parallel("2.5d")
        m1 = t.analytic_costs(64, 64, c=1).memory
        m4 = t.analytic_costs(64, 64, c=4).memory
        assert m4 / m1 == pytest.approx(4.0)


class TestEstimate:
    """estimate(): the planner's pure cost probe."""

    @pytest.mark.parametrize("name,kwargs", CONFIGS)
    def test_estimate_matches_executed_analytic(self, name, kwargs):
        A, B = _pair(56)
        cfg = ParallelConfig(
            n=56, p=kwargs["p"], c=kwargs.get("c", 1),
            scheme="strassen" if name == "caps" else None,
        )
        algo = get_parallel(name)
        est = algo.estimate(cfg)
        r = algo.execute(A, B, cfg)
        assert est.words == r.analytic.words
        assert est.messages == r.analytic.messages
        assert est.memory == r.analytic.memory
        assert est.flops == r.analytic.flops > 0

    @pytest.mark.parametrize("name,kwargs", CONFIGS)
    def test_estimate_within_constant_factor_of_measured(self, name, kwargs):
        # the acceptance contract: predicted costs track execute()-measured
        # counters within the declared constant factor on uniform configs
        A, B = _pair(56)
        cfg = ParallelConfig(
            n=56, p=kwargs["p"], c=kwargs.get("c", 1),
            scheme="strassen" if name == "caps" else None,
        )
        algo = get_parallel(name)
        est = algo.estimate(cfg)
        r = algo.execute(A, B, cfg)
        assert 0.25 <= r.critical_words / est.words <= 4.0
        assert 0.25 <= r.critical_messages / max(est.messages, 1) <= 4.0
        assert 0.25 <= r.max_mem_peak / est.memory <= 4.0

    def test_estimate_validates(self):
        with pytest.raises(ValueError, match="perfect square"):
            get_parallel("cannon").estimate(ParallelConfig(n=56, p=12))
        with pytest.raises(ValueError, match="no replication factor"):
            get_parallel("cannon").estimate(ParallelConfig(n=56, p=16, c=2))
        with pytest.raises(TypeError, match="unexpected option"):
            get_parallel("cannon").estimate(
                ParallelConfig(n=56, p=16, schedule="BB")
            )

    def test_estimate_respects_topology_capacity(self):
        from repro.topology import Topology

        topo = Topology.uniform(p=8)
        with pytest.raises(ValueError, match="exceeds the topology"):
            get_parallel("cannon").estimate(ParallelConfig(n=56, p=16), topo)

    def test_plan_configs_are_valid_configs(self):
        for name in available_parallel():
            algo = get_parallel(name)
            configs = algo.plan_configs(56, 64, cs=(1, 2, 4))
            assert configs, f"{name} offers no plan config at n=56, p<=64"
            for cfg in configs:
                assert isinstance(cfg, ParallelConfig)
                assert cfg.p <= 64
                algo.estimate(cfg)  # must not raise


class TestRunShimDeprecation:
    def test_positional_run_warns_once_per_algorithm(self):
        from repro.parallel import base as parallel_base

        A, B = _pair(16)
        algo = get_parallel("cannon")
        parallel_base._positional_run_warned.discard("cannon")
        with pytest.warns(DeprecationWarning, match="positional arguments"):
            r1 = algo.run(A, B, 16)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would fail
            r2 = algo.run(A, B, 16)
        assert np.array_equal(r1.C, r2.C)

    def test_positional_p_conflicts_with_keyword(self):
        A, B = _pair(16)
        algo = get_parallel("cannon")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError, match="both positionally and by keyword"):
                algo.run(A, B, 16, p=16)

    def test_run_requires_p(self):
        A, B = _pair(16)
        with pytest.raises(TypeError, match="missing required argument"):
            get_parallel("cannon").run(A, B)
