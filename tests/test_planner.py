"""Tests for the topology-aware auto-scheduler (repro.engine.planner).

The planner's optimality invariants (the ISSUE's satellite 3):

* on the uniform machine the chosen plan's regime matches the Table-I
  ``scaling_regime`` classifier evaluated at the plan's own footprint;
* no searched plan's predicted words undercut the memory-independent
  lower bound;
* predicted costs track execute()-measured counters within the declared
  constant factor on every searched uniform configuration.
"""

import json
import math
from pathlib import Path

import pytest

from repro.core.bounds import memory_independent_bound, scaling_regime
from repro.engine.cache import EngineCache
from repro.engine.planner import (
    default_memory_ladder,
    enumerate_plans,
    plan,
    plan_report,
)
from repro.parallel import get_parallel
from repro.topology import Topology
from repro.util.matgen import integer_matrix

GOLDEN = Path(__file__).parent / "data" / "plan_golden.json"


class TestEnumerate:
    def test_ranked_by_predicted_time(self):
        plans, searched = enumerate_plans(56, p_max=16)
        assert searched >= len(plans) > 0
        times = [pl.predicted_time for pl in plans]
        assert times == sorted(times)

    def test_memory_limit_prunes(self):
        all_plans, _ = enumerate_plans(56, p_max=16)
        tight, _ = enumerate_plans(56, p_max=16, memory_limit=800)
        assert len(tight) < len(all_plans)
        assert all(pl.memory <= 800 for pl in tight)

    def test_algos_filter(self):
        plans, _ = enumerate_plans(56, p_max=16, algos=("cannon",))
        assert {pl.algorithm for pl in plans} == {"cannon"}

    def test_topology_capacity_caps_p(self):
        plans, _ = enumerate_plans(56, topology=Topology.uniform(p=8))
        assert all(pl.p <= 8 for pl in plans)

    def test_caps_schedules_in_search_space(self):
        plans, _ = enumerate_plans(56, p_max=49)
        schedules = {pl.schedule for pl in plans if pl.algorithm == "caps"}
        assert len(schedules) > 1  # BFS and DFS-prefixed variants compete


class TestOptimalityInvariants:
    """Satellite 3: the planner agrees with the paper's Table-I classifier."""

    def test_uniform_regime_matches_table1_classifier(self):
        # the winner under a tight memory limit sits in the memory-dependent
        # regime; with memory unconstrained the memory-independent floor binds
        n = 4096
        tight_limit, _, _ = default_memory_ladder(n, 64)
        tight = plan(n, memory_limit=tight_limit, cache=None)
        free = plan(n, cache=None)
        assert tight[0].binding == "memory-dependent"
        assert free[0].binding == "memory-independent"
        assert tight[0].algorithm != free[0].algorithm  # the regime flip

    def test_plan_binding_is_scaling_regime_at_own_footprint(self):
        plans, _ = enumerate_plans(4096)
        for pl in plans:
            regime = scaling_regime(pl.n, pl.p, max(1, math.ceil(pl.memory)), pl.omega0)
            assert pl.binding == regime.binding
            assert pl.lower_bound == regime.bound

    def test_no_plan_undercuts_memory_independent_bound(self):
        for n in (56, 4096):
            plans, _ = enumerate_plans(n)
            assert plans
            for pl in plans:
                floor = memory_independent_bound(n, pl.p, pl.omega0)
                assert pl.words >= 0.99 * floor, (
                    f"{pl.label} at p={pl.p} undercuts the memory-independent floor"
                )

    def test_predicted_time_at_least_comm_lower_bound_term(self):
        # β=1, α=1 uniform: predicted time is at least the binding bound's
        # word term (the planner can never promise beating the paper)
        plans, _ = enumerate_plans(4096)
        for pl in plans:
            assert pl.predicted_time >= 0.99 * pl.lower_bound


class TestEstimateAgainstExecution:
    def test_predictions_track_measured_counters(self):
        # acceptance: within the declared constant factor on every searched
        # uniform configuration (n=56 keeps the simulation cheap)
        A = integer_matrix(56, seed=11)
        B = integer_matrix(56, seed=13)
        plans, _ = enumerate_plans(56, p_max=49)
        assert plans
        for pl in plans:
            r = get_parallel(pl.algorithm).execute(A, B, pl.config())
            assert 0.25 <= r.critical_words / max(pl.words, 1) <= 4.0
            assert 0.25 <= r.critical_messages / max(pl.messages, 1) <= 4.0
            assert 0.25 <= r.max_mem_peak / max(pl.memory, 1) <= 4.0


class TestPlanCache:
    def test_warm_call_builds_nothing(self, tmp_path):
        cache = EngineCache(tmp_path / "cache")
        first = plan(56, topology=Topology.parse("fat-tree:4x4"), cache=cache)
        snap = cache.stats.as_dict()
        second = plan(56, topology=Topology.parse("fat-tree:4x4"), cache=cache)
        delta = cache.stats.delta_since(snap)
        assert delta["builds"] == 0
        assert delta["hits"] >= 1
        assert [pl.as_dict() for pl in first] == [pl.as_dict() for pl in second]

    def test_distinct_topologies_distinct_entries(self, tmp_path):
        cache = EngineCache(tmp_path / "cache")
        ft = plan(56, topology=Topology.parse("fat-tree:4x4"), cache=cache)
        tor = plan(56, topology=Topology.parse("torus:4x4"), cache=cache)
        assert cache.stats.builds == 2
        assert [p.label for p in ft] != [p.label for p in tor] or (
            [p.predicted_time for p in ft] != [p.predicted_time for p in tor]
        )

    def test_disk_roundtrip_preserves_ranking(self, tmp_path):
        root = tmp_path / "cache"
        first = plan(56, cache=EngineCache(root))
        reread = plan(56, cache=EngineCache(root))  # fresh memory tier
        assert [pl.as_dict() for pl in first] == [pl.as_dict() for pl in reread]


class TestPlanReport:
    def test_fat_tree_winner_flips_across_ladder(self, tmp_path):
        report = plan_report(
            4096,
            topology=Topology.parse("fat-tree:16x4"),
            cache=EngineCache(tmp_path / "cache"),
        )
        assert report["flips"] is True
        assert len(set(report["winners"].values())) >= 2

    def test_report_is_json_ready(self, tmp_path):
        report = plan_report(56, cache=EngineCache(tmp_path / "cache"))
        json.dumps(report, allow_nan=False)
        assert report["tables"]
        assert "unlimited" in report["winners"]


class TestGoldenRanking:
    """The pinned plan table the plan-smoke CI leg replays."""

    def test_matches_golden(self, tmp_path):
        doc = json.loads(GOLDEN.read_text())
        spec = doc["spec"]
        plans = plan(
            spec["n"],
            scheme=spec["scheme"],
            topology=Topology.parse(spec["topology"]),
            memory_limit=spec["memory_limit"],
            p_max=spec["p_max"],
            cache=EngineCache(tmp_path / "cache"),
        )
        got = [
            {
                "label": pl.label,
                "p": pl.p,
                "schedule": pl.schedule,
                "predicted_time": round(pl.predicted_time, 6),
                "words": pl.words,
                "messages": pl.messages,
                "binding": pl.binding,
            }
            for pl in plans
        ]
        assert got == doc["plans"]


class TestMemoryLadder:
    def test_ladder_shape(self):
        tight, mid, top = default_memory_ladder(4096, 64)
        assert tight < mid
        assert top is None

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            default_memory_ladder(0, 64)
