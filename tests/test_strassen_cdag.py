"""Tests for the recursive CDAG construction (§4.1.1) across schemes."""

import numpy as np
import pytest

from repro.cdag.analysis import layer_profile
from repro.cdag.graph import VertexKind
from repro.cdag.schemes import get_scheme
from repro.cdag.strassen_cdag import (
    dec1_graph,
    dec_graph,
    dec_level_sizes,
    dec_vertex_count,
    enc_graph,
    h_graph,
    recursion_tree_partition,
)

KS = [1, 2, 3]


class TestDecGraph:
    @pytest.mark.parametrize("k", KS)
    def test_strassen_vertex_counts(self, k):
        # |V| = sum 4^t 7^(k-t) — 11, 93, 715 for k = 1, 2, 3
        expected = {1: 11, 2: 93, 3: 715}[k]
        assert dec_graph("strassen", k).n_vertices == expected

    @pytest.mark.parametrize("k", KS)
    def test_level_sizes_fact_4_6(self, small_scheme, k):
        g = dec_graph(small_scheme, k)
        prof = layer_profile(g)
        assert np.array_equal(prof.level_sizes, dec_level_sizes(small_scheme, k))

    @pytest.mark.parametrize("k", KS)
    def test_edge_count_is_nnz_scaled(self, small_scheme, k):
        # between levels t, t+1 there are nnz(W) edges per Dec1C copy
        g = dec_graph(small_scheme, k)
        nnz = int((small_scheme.W != 0).sum())
        c0, t0 = small_scheme.c_blocks, small_scheme.t0
        expected = sum(nnz * c0**t * t0 ** (k - t - 1) for t in range(k))
        assert g.n_edges == expected

    def test_dec0_is_single_level(self):
        g = dec_graph("strassen", 0)
        assert g.n_vertices == 1
        assert g.n_edges == 0

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            dec_graph("strassen", -1)

    @pytest.mark.parametrize("k", KS)
    def test_degree_bound_fact_4_2(self, k):
        # Strassen: out-degree <= 4, in-degree <= 2 wrt Dec1, total <= 6
        g = dec_graph("strassen", k)
        assert g.max_degree <= 6

    @pytest.mark.parametrize("k", KS)
    def test_strassen_dec_connected(self, k):
        assert dec_graph("strassen", k).is_connected_undirected()

    def test_classical_dec1_disconnected(self):
        assert not dec1_graph("classical2").is_connected_undirected()

    def test_winograd_dec1_connected(self):
        assert dec1_graph("winograd").is_connected_undirected()

    @pytest.mark.parametrize("k", KS)
    def test_kinds_by_level(self, k):
        g = dec_graph("strassen", k)
        assert np.all(g.kinds[g.levels == 0] == VertexKind.MULT)
        assert np.all(g.kinds[g.levels == k] == VertexKind.OUTPUT)
        if k > 1:
            assert np.all(g.kinds[(g.levels > 0) & (g.levels < k)] == VertexKind.ADD)

    def test_vertex_count_helper(self, small_scheme):
        for k in KS:
            assert dec_vertex_count(small_scheme, k) == dec_graph(small_scheme, k).n_vertices

    def test_expand_trees_restores_binary(self):
        g = dec_graph("strassen", 2, expand_trees=True)
        assert g.validate_binary_ops()

    def test_expand_trees_preserves_io_counts(self):
        g0 = dec_graph("strassen", 2)
        g1 = dec_graph("strassen", 2, expand_trees=True)
        assert len(g1.inputs) == len(g0.inputs)
        assert len(g1.outputs) == len(g0.outputs)

    def test_expand_trees_keeps_connectivity(self):
        assert dec_graph("strassen", 2, expand_trees=True).is_connected_undirected()

    def test_dec_is_dag(self, small_scheme):
        g = dec_graph(small_scheme, 2)
        _ = g.topological_order  # raises on cycles


class TestEncGraph:
    @pytest.mark.parametrize("k", KS)
    def test_enc_input_count(self, small_scheme, k):
        g = enc_graph(small_scheme, k, side="A")
        # inputs are exactly a_blocks^k (aliased forms are not new inputs)
        assert np.count_nonzero(g.kinds == VertexKind.INPUT) == small_scheme.a_blocks**k

    def test_enc_output_forms_count_strassen(self):
        # Enc_1 A for Strassen: 4 inputs + 5 non-identity forms = 9 vertices
        g = enc_graph("strassen", 1, side="A")
        assert g.n_vertices == 9

    def test_enc_b_side_uses_v(self):
        # winograd U and V both have 3 forwarding rows (8 vertices each),
        # but their edge multisets differ; strassen U has only 2 forwards.
        ga = enc_graph("winograd", 1, side="A")
        gb = enc_graph("winograd", 1, side="B")
        assert ga.n_vertices == gb.n_vertices == 8
        ea = sorted(zip(ga.src.tolist(), ga.dst.tolist()))
        eb = sorted(zip(gb.src.tolist(), gb.dst.tolist()))
        assert ea != eb
        assert enc_graph("strassen", 1, side="A").n_vertices == 9

    def test_enc_outdegree_grows_with_k(self):
        degs = []
        for k in (1, 2, 3):
            H = h_graph("strassen", k)
            degs.append(int(H.cdag.out_degree[H.a_inputs].max()))
        assert degs[0] < degs[1] < degs[2]  # the Θ(lg n) growth (§4.1)


class TestHGraph:
    @pytest.mark.parametrize("k", [1, 2])
    def test_h_structure_counts(self, small_scheme, k):
        H = h_graph(small_scheme, k)
        assert len(H.a_inputs) == small_scheme.a_blocks**k
        assert len(H.b_inputs) == small_scheme.b_blocks**k
        assert len(H.mult_ids) == small_scheme.t0**k
        assert len(H.output_ids) == small_scheme.c_blocks**k

    def test_mult_vertices_have_two_encoder_inputs(self):
        H = h_graph("strassen", 2)
        indeg = H.cdag.in_degree[H.mult_ids]
        assert np.all(indeg == 2)

    def test_dec_fraction_at_least_one_third(self):
        # §4.1: at least one third of H's vertices lie in Dec C
        for k in (2, 3, 4):
            H = h_graph("strassen", k)
            assert H.dec_fraction >= 1 / 3

    def test_outputs_are_graph_sinks(self):
        H = h_graph("strassen", 2)
        assert np.all(H.cdag.out_degree[H.output_ids] == 0)

    def test_inputs_are_graph_sources(self):
        H = h_graph("strassen", 2)
        assert np.all(H.cdag.in_degree[H.a_inputs] == 0)
        assert np.all(H.cdag.in_degree[H.b_inputs] == 0)

    def test_dec_subgraph_isomorphic_size(self):
        H = h_graph("strassen", 3)
        sub = H.dec_subgraph()
        assert sub.n_vertices == dec_graph("strassen", 3).n_vertices
        assert sub.n_edges == dec_graph("strassen", 3).n_edges

    def test_h_is_dag(self):
        _ = h_graph("strassen", 2).cdag.topological_order

    def test_h_connected(self):
        assert h_graph("strassen", 2).cdag.is_connected_undirected()


class TestRectangularCdag:
    """Rectangular schemes flow through the same recursive construction."""

    @pytest.mark.parametrize("name", ["classical122", "classical221", "strassen122"])
    @pytest.mark.parametrize("k", [1, 2])
    def test_level_sizes(self, name, k):
        s = get_scheme(name)
        g = dec_graph(s, k)
        sizes = dec_level_sizes(s, k)
        assert g.n_vertices == int(sizes.sum())
        assert sizes[0] == s.t0**k
        assert sizes[-1] == s.c_blocks**k

    @pytest.mark.parametrize("name", ["classical122", "strassen122"])
    def test_h_structure(self, name):
        s = get_scheme(name)
        H = h_graph(s, 2)
        assert len(H.a_inputs) == s.a_blocks**2
        assert len(H.b_inputs) == s.b_blocks**2
        assert len(H.mult_ids) == s.t0**2
        assert len(H.output_ids) == s.c_blocks**2
        _ = H.cdag.topological_order  # raises on cycles

    @pytest.mark.parametrize("name", ["classical122", "classical212", "strassen122"])
    def test_recursion_tree_partitions(self, name):
        s = get_scheme(name)
        tree = recursion_tree_partition(s, 2)
        g = dec_graph(s, 2)
        ids = np.concatenate([lvl.ravel() for lvl in tree])
        assert len(ids) == g.n_vertices
        assert len(np.unique(ids)) == g.n_vertices


class TestRecursionTree:
    @pytest.mark.parametrize("k", KS)
    def test_partition_covers_exactly(self, small_scheme, k):
        tree = recursion_tree_partition(small_scheme, k)
        g = dec_graph(small_scheme, k)
        ids = np.concatenate([lvl.ravel() for lvl in tree])
        assert len(ids) == g.n_vertices
        assert len(np.unique(ids)) == g.n_vertices

    def test_tree_level_shapes(self):
        tree = recursion_tree_partition("strassen", 3)
        # bottom level: 4^3 leaves of size 1; root: 1 node of size 7^3
        assert tree[0].shape == (64, 1)
        assert tree[-1].shape == (1, 343)

    def test_tree_levels_match_graph_levels(self):
        g = dec_graph("strassen", 3)
        tree = recursion_tree_partition("strassen", 3)
        for i, lvl in enumerate(tree, start=1):
            t = 3 - i + 1
            assert np.all(g.levels[lvl.ravel()] == t)
