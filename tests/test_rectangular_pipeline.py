"""End-to-end: a rectangular registry scheme through the full pipeline.

The PR's acceptance path: ``get_scheme`` → recursive CDAG build →
``estimate_expansion`` → rectangular I/O bound → a warm ``engine`` grid
sweep via the CLI — with ``apply`` matching ``A @ B`` exactly on integer
inputs at every tested recursion depth.
"""

import json
import math

import numpy as np
import pytest

from repro.cdag.schemes import get_scheme
from repro.cdag.strassen_cdag import dec_graph, dec_level_sizes, h_graph
from repro.core.bounds import rect_omega0, rect_sequential_io_bound
from repro.core.expansion import (
    decode_cone_upper_bound,
    estimate_expansion,
    expansion_of_cut,
)
from repro.engine import EngineCache, GridSpec, run_grid
from repro.engine.cli import main

SCHEME = "strassen122"  # strassen ⊗ classical⟨1,2,2⟩ = ⟨2,4,4; 28⟩


@pytest.fixture(scope="module")
def scheme():
    return get_scheme(SCHEME)


class TestSchemeLayer:
    def test_shape_and_rank(self, scheme):
        assert scheme.shape == (2, 4, 4)
        assert scheme.t0 == 28
        assert not scheme.is_square

    def test_omega0_matches_rect_formula(self, scheme):
        assert scheme.omega0 == pytest.approx(rect_omega0(2, 4, 4, 28))
        assert scheme.omega0 == pytest.approx(3 * math.log(28) / math.log(32))

    @pytest.mark.parametrize("k", [1, 2])
    def test_apply_exact_at_every_depth(self, scheme, k):
        rng = np.random.default_rng(2026 + k)
        A = rng.integers(-5, 6, (scheme.m0**k, scheme.n0**k)).astype(float)
        B = rng.integers(-5, 6, (scheme.n0**k, scheme.p0**k)).astype(float)
        assert np.array_equal(scheme.apply_recursive(A, B), A @ B)


class TestCdagLayer:
    @pytest.mark.parametrize("k", [1, 2])
    def test_dec_graph_level_structure(self, scheme, k):
        g = dec_graph(scheme, k)
        sizes = dec_level_sizes(scheme, k)
        assert g.n_vertices == int(sizes.sum())
        assert sizes[0] == 28**k          # products
        assert sizes[-1] == 8**k          # C blocks: m0*p0 = 8

    def test_h_graph_regions(self, scheme):
        H = h_graph(scheme, 2)
        assert len(H.a_inputs) == (2 * 4) ** 2
        assert len(H.b_inputs) == (4 * 4) ** 2
        assert len(H.mult_ids) == 28**2
        assert len(H.output_ids) == (2 * 4) ** 2
        _ = H.cdag.topological_order  # DAG check


class TestExpansionLayer:
    def test_estimate_runs_and_cone_witness_exists(self, scheme):
        g = dec_graph(scheme, 2)
        est = estimate_expansion(g, scheme, 2)
        # strassen122 inherits classical<1,2,2>'s disconnected Dec1C, so the
        # certified sandwich must contain 0 — the §5.1.1 dichotomy measured
        # on a rectangular scheme.
        assert est.lower <= est.upper
        assert est.upper == pytest.approx(0.0)
        cone_ratio, cone_mask = decode_cone_upper_bound(g, scheme, 2)
        assert cone_ratio >= 0.0
        assert expansion_of_cut(g, cone_mask) == pytest.approx(cone_ratio)

    def test_section_5_1_1_dichotomy_extends_to_rect(self):
        # Every classical-family scheme (square or rectangular) has a
        # disconnected Dec1C; Strassen-like schemes are connected.  The
        # measurement must agree on the rectangular members.
        from repro.cdag.analysis import check_dec1_connected

        assert check_dec1_connected("strassen")
        for name in ("classical122", "classical212", "classical221", "strassen122"):
            assert not check_dec1_connected(name)


class TestBoundsLayer:
    def test_rect_bound_reduces_to_square_form(self):
        # for m = n = p the geometric mean is n: same expansion term
        val = rect_sequential_io_bound(64, 64, 64, 192, 2.81)
        assert val == pytest.approx((64 / math.sqrt(192)) ** 2.81 * 192)

    def test_rect_bound_uses_geometric_mean(self, scheme):
        m, n, p = 2**4, 4**4, 4**4
        M = 48
        bound = rect_sequential_io_bound(m, n, p, M, scheme.omega0)
        n_eff = (m * n * p) ** (1 / 3)
        expansion_term = (n_eff / math.sqrt(M)) ** scheme.omega0 * M
        trivial = m * n + n * p + m * p
        assert expansion_term > trivial  # memory-bound regime for this point
        assert bound == pytest.approx(expansion_term)

    def test_rect_bound_floors_at_trivial_io(self):
        # below the memory-bound regime the inputs+output floor applies
        assert rect_sequential_io_bound(2, 4, 4, 10**6) == 2 * 4 + 4 * 4 + 2 * 4


class TestEngineLayer:
    def test_grid_sweep_warm_cache(self, tmp_path):
        cache = EngineCache(tmp_path / "cache")
        spec = GridSpec(schemes=(SCHEME,), ks=(1, 2), memories=(48, 192))
        cold = run_grid(spec, cache=cache)
        assert cold.rebuilds > 0
        warm = run_grid(spec, cache=cache)
        assert warm.rebuilds == 0
        for row in warm.rows:
            assert row["scheme"] == SCHEME
            assert row["shape"] == f"{2**row['k']}x{4**row['k']}x{4**row['k']}"
            assert row["io_lower_bound"] > 0
            assert row["measured_words"] > 0
            assert row["measured_words"] >= row["io_lower_bound"] * 0.01

    def test_cli_sweep_json_with_rect_scheme(self, tmp_path, capsys):
        argv = [
            "--cache-dir",
            str(tmp_path / "c"),
            "sweep",
            "--schemes",
            SCHEME,
            "classical122",
            "--k-max",
            "2",
            "--memories",
            "48",
            "--json",
        ]
        assert main(argv) == 0
        decoded = json.loads(capsys.readouterr().out)
        schemes_seen = {r["scheme"] for r in decoded["rows"]}
        assert schemes_seen == {SCHEME, "classical122"}

    def test_cli_expansion_with_dynamic_rect_name(self, tmp_path, capsys):
        argv = [
            "--cache-dir",
            str(tmp_path / "c"),
            "expansion",
            "--scheme",
            "classical1x2x3",
            "--k",
            "2",
        ]
        assert main(argv) == 0
        decoded = json.loads(capsys.readouterr().out)
        assert decoded["upper"] >= 0.0
