"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cdag.build import GraphBuilder
from repro.cdag.graph import CDAG, VertexKind
from repro.cdag.schemes import available_schemes, get_scheme
from repro.engine.cache import EngineCache, set_default_cache


@pytest.fixture(autouse=True, scope="session")
def _hermetic_engine_cache(tmp_path_factory):
    """Point the process-default engine cache at a per-session temp dir.

    Tests must never read stale artifacts from (or leak megabytes into) the
    user's persistent ~/.cache/repro-engine.
    """
    cache = EngineCache(tmp_path_factory.mktemp("engine-cache"))
    previous = set_default_cache(cache)
    yield
    set_default_cache(previous)

FAST_SCHEMES = ["strassen", "winograd"]
ALL_SCHEMES = available_schemes()
SMALL_SCHEMES = ["strassen", "winograd", "classical2"]


@pytest.fixture(params=ALL_SCHEMES)
def any_scheme(request):
    """Every registered scheme."""
    return get_scheme(request.param)


@pytest.fixture(params=SMALL_SCHEMES)
def small_scheme(request):
    """Schemes with n0=2 (cheap to recurse deeply in tests)."""
    return get_scheme(request.param)


@pytest.fixture
def diamond_graph() -> CDAG:
    """in0, in1 -> a, b -> out : the smallest interesting DAG."""
    b = GraphBuilder()
    i0 = b.add_vertex(VertexKind.INPUT)
    i1 = b.add_vertex(VertexKind.INPUT)
    a = b.add_vertex(VertexKind.ADD)
    c = b.add_vertex(VertexKind.ADD)
    out = b.add_vertex(VertexKind.OUTPUT)
    b.add_edge(i0, a)
    b.add_edge(i1, a)
    b.add_edge(i0, c)
    b.add_edge(i1, c)
    b.add_edge(a, out)
    b.add_edge(c, out)
    return b.freeze()


@pytest.fixture
def path_graph() -> CDAG:
    """A 6-vertex path (chain of dependent ops)."""
    b = GraphBuilder()
    prev = b.add_vertex(VertexKind.INPUT)
    for i in range(5):
        v = b.add_vertex(VertexKind.OUTPUT if i == 4 else VertexKind.ADD)
        b.add_edge(prev, v)
        prev = v
    return b.freeze()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
