"""Tests for the §5.2 uniform non-stationary class."""

import numpy as np
import pytest

from repro.algorithms.io_strassen import dfs_io
from repro.algorithms.nonstationary import (
    nonstationary_flops,
    nonstationary_io,
    nonstationary_multiply,
    strassen_with_cutoff_levels,
)
from repro.util.matgen import integer_matrix


class TestNumerics:
    @pytest.mark.parametrize("schemes", [
        ["strassen"],
        ["strassen", "winograd"],
        ["winograd", "strassen", "classical2"],
        ["strassen", "classical2", "strassen"],
        ["hybrid4", "strassen"],
    ])
    def test_exact_product(self, schemes):
        n = 16
        A = integer_matrix(n, seed=1)
        B = integer_matrix(n, seed=2)
        C = nonstationary_multiply(A, B, schemes)
        assert np.array_equal(C, A @ B)

    def test_empty_list_is_classical(self):
        A = integer_matrix(8, seed=3)
        B = integer_matrix(8, seed=4)
        assert np.array_equal(nonstationary_multiply(A, B, []), A @ B)

    def test_indivisible_level_falls_back(self):
        # n=12: strassen level (12->6), then 3x3 classical level (6->2),
        # then fallback — mixing base sizes is the point of the class
        A = integer_matrix(12, seed=5)
        B = integer_matrix(12, seed=6)
        C = nonstationary_multiply(A, B, ["strassen", "classical3"])
        assert np.array_equal(C, A @ B)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            nonstationary_multiply(np.zeros((4, 6)), np.zeros((4, 6)), ["strassen"])


class TestIO:
    def test_pure_strassen_matches_stationary(self):
        # a long-enough all-strassen list reproduces dfs_io exactly
        n, M = 128, 768
        rep_ns = nonstationary_io(n, M, ["strassen"] * 3)
        rep_st = dfs_io(n, M, "strassen")
        assert rep_ns.words == rep_st.words
        assert rep_ns.n_base_multiplies == rep_st.n_base_multiplies

    def test_switch_to_classical_costs_more(self):
        # strassen+classical2 below does more I/O than strassen+strassen
        n, M = 128, 192
        fast = nonstationary_io(n, M, ["strassen"] * 4).words
        hybrid = nonstationary_io(n, M, ["strassen"] + ["classical2"] * 3).words
        assert fast < hybrid

    def test_exhausted_list_raises(self):
        with pytest.raises(ValueError, match="exhausted"):
            nonstationary_io(128, 192, ["strassen"])

    def test_indivisible_raises(self):
        # 10 -> 5 above the base; 5 is not divisible by the next level's n0
        with pytest.raises(ValueError, match="divisible"):
            nonstationary_io(10, 48, ["strassen", "strassen"])

    def test_base_multiplies_product_of_m0(self):
        rep = nonstationary_io(64, 3 * 16 * 16, ["strassen", "classical2"])
        assert rep.n_base_multiplies == 7 * 8

    def test_interpolates_between_omegas(self):
        # more strassen levels => less I/O, monotonically
        n, M = 256, 192
        words = []
        for k in range(0, 4):
            schemes = ["strassen"] * k + ["classical2"] * (5 - k)
            words.append(nonstationary_io(n, M, schemes).words)
        assert words == sorted(words, reverse=True)


class TestFlops:
    def test_classical_count(self):
        assert nonstationary_flops(8, []) == 2 * 512 - 64

    def test_strassen_level_reduces_flops_at_scale(self):
        n = 1024
        f0 = nonstationary_flops(n, [])
        f3 = nonstationary_flops(n, ["strassen"] * 3)
        assert f3 < f0

    def test_cutoff_helper(self):
        assert strassen_with_cutoff_levels(4, 3) == ["strassen"] * 3
        with pytest.raises(ValueError):
            strassen_with_cutoff_levels(4, -1)
