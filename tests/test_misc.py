"""Tests for utilities, schedules, classical CDAGs, dominators, experiments."""

import numpy as np
import pytest

from repro.cdag.classical_cdag import classical_matmul_cdag, matvec_cdag
from repro.cdag.schedule import (
    bfs_topological_order,
    dfs_topological_order,
    is_topological,
)
from repro.core.dominator import minimum_dominator_size
from repro.experiments.report import format_value, render_table
from repro.util.matgen import hilbert_like, integer_matrix, random_matrix, structured_matrix
from repro.util.numutil import (
    fit_power_law,
    ilog,
    is_power_of,
    next_power_of,
    relative_error,
)


class TestNumUtil:
    def test_is_power_of(self):
        assert is_power_of(49, 7)
        assert is_power_of(1, 2)
        assert not is_power_of(48, 7)
        assert not is_power_of(0, 2)

    def test_ilog_exact(self):
        assert ilog(7**9, 7) == 9
        assert ilog(1, 5) == 0

    def test_ilog_rejects_non_powers(self):
        with pytest.raises(ValueError):
            ilog(50, 7)
        with pytest.raises(ValueError):
            ilog(0, 2)

    def test_next_power_of(self):
        assert next_power_of(50, 7) == 343
        assert next_power_of(1, 2) == 1

    def test_relative_error(self):
        assert relative_error(11, 10) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0

    def test_fit_power_law_recovers(self):
        xs = [2, 4, 8, 16]
        ys = [3 * x**2.5 for x in xs]
        e, c = fit_power_law(xs, ys)
        assert e == pytest.approx(2.5)
        assert c == pytest.approx(3.0)

    def test_fit_power_law_validates(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, -2], [1, 2])


class TestMatGen:
    def test_random_deterministic(self):
        assert np.array_equal(random_matrix(8, seed=1), random_matrix(8, seed=1))

    def test_integer_products_exact(self):
        A = integer_matrix(8, seed=1)
        assert np.array_equal(A, np.round(A))

    def test_structured_kinds(self):
        assert structured_matrix(4, kind="index")[1, 2] == 6.0
        assert np.array_equal(structured_matrix(3, kind="identity"), np.eye(3))
        with pytest.raises(ValueError):
            structured_matrix(4, kind="nope")
        with pytest.raises(ValueError):
            structured_matrix(3, 4, kind="identity")

    def test_hilbert_values(self):
        H = hilbert_like(3)
        assert H[0, 0] == 1.0
        assert H[2, 2] == pytest.approx(1 / 5)


class TestClassicalCDAG:
    def test_vertex_count(self):
        # n=2: 8 inputs + 8 mults + 4 adds (chains of 2 products: 1 add each)
        g = classical_matmul_cdag(2)
        assert g.n_vertices == 20

    def test_chain_vs_tree_same_size(self):
        gc = classical_matmul_cdag(4, reduction="chain")
        gt = classical_matmul_cdag(4, reduction="tree")
        assert gc.n_vertices == gt.n_vertices

    def test_tree_reduces_depth(self):
        gc = classical_matmul_cdag(8, reduction="chain")
        gt = classical_matmul_cdag(8, reduction="tree")
        assert gt.longest_path_level.max() < gc.longest_path_level.max()

    def test_outputs_count(self):
        g = classical_matmul_cdag(3)
        assert len(g.outputs) == 9

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            classical_matmul_cdag(0)
        with pytest.raises(ValueError):
            classical_matmul_cdag(2, reduction="magic")

    def test_matvec_structure(self):
        g = matvec_cdag(3)
        assert len(g.inputs) == 12
        assert len(g.outputs) == 3

    def test_binary_ops(self):
        assert classical_matmul_cdag(3).validate_binary_ops()
        assert matvec_cdag(3).validate_binary_ops()


class TestSchedules:
    def test_dfs_order_on_classical(self):
        g = classical_matmul_cdag(3)
        assert is_topological(g, dfs_topological_order(g))

    def test_bfs_order_on_classical(self):
        g = classical_matmul_cdag(3)
        assert is_topological(g, bfs_topological_order(g))

    def test_is_topological_rejects_permutation_gaps(self, diamond_graph):
        assert not is_topological(diamond_graph, np.array([0, 0, 1, 2, 3]))

    def test_is_topological_rejects_backward_edge(self, diamond_graph):
        assert not is_topological(diamond_graph, np.array([4, 3, 2, 1, 0]))


class TestDominator:
    def test_diamond_dominator(self, diamond_graph):
        # both inputs dominate the output; min dominator cuts 2 vertices
        # (the output itself is a 1-vertex dominator!)
        d = minimum_dominator_size(diamond_graph, np.array([4]))
        assert d == 1

    def test_wide_targets_need_wide_dominators(self):
        g = classical_matmul_cdag(2)
        d = minimum_dominator_size(g, g.outputs)
        assert d >= 4  # 4 outputs, disjoint support beyond shared inputs

    def test_no_sources_means_zero(self, diamond_graph):
        d = minimum_dominator_size(diamond_graph, np.array([4]), sources=np.array([], dtype=int))
        assert d == 0

    def test_empty_targets(self, diamond_graph):
        assert minimum_dominator_size(diamond_graph, np.array([], dtype=int)) == 0


class TestReport:
    def test_render_basic(self):
        txt = render_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}], title="T")
        assert "T" in txt and "a" in txt and "10" in txt

    def test_render_empty(self):
        assert "empty" in render_table([])

    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(1234567.0) == "1.235e+06"
        assert format_value(0.5) == "0.5"
        assert format_value("x") == "x"

    def test_column_selection(self):
        txt = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in txt.splitlines()[0]


class TestExperimentsSmoke:
    """Each experiment driver runs and returns well-formed rows (small sizes)."""

    def test_seq_io_n_sweep(self):
        from repro.experiments.seq_io import n_sweep

        r = n_sweep(M=192, t_range=range(3, 6), simulate_upto=64)
        assert len(r["rows"]) == 3
        assert abs(r["fit_exponent"] - r["expected_exponent"]) < 0.45

    def test_expansion_decay_shape(self):
        from repro.experiments.expansion_exp import expansion_decay

        r = expansion_decay(k_max=3, spectral_upto=3)
        uppers = [row["upper"] for row in r["rows"]]
        assert uppers == sorted(uppers, reverse=True)

    def test_structure_reports(self):
        from repro.experiments.structure_exp import (
            dec1_connectivity_table,
            figure2_report,
            figure3_tree_report,
        )

        assert figure2_report("strassen", 2)["deck"]["V"] == 93
        assert figure3_tree_report("strassen", 2)["partition_ok"]
        rows = dec1_connectivity_table()
        assert any(r["dec1_connected"] for r in rows)
        assert any(not r["dec1_connected"] for r in rows)

    def test_table1_summary_rows(self):
        from repro.experiments.table1 import table1_summary

        rows = table1_summary(n=32)
        assert len(rows) == 6
        assert all(row["measured_words"] > 0 for row in rows)

    def test_latency_rows(self):
        from repro.experiments.latency_exp import sequential_latency

        r = sequential_latency(M=768, ns=(128, 256))
        for row in r["rows"]:
            assert row["measured_messages"] >= row["latency_bound"]
