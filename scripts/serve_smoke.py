#!/usr/bin/env python
"""CI smoke test for ``python -m repro serve``: boot, hammer, verify, stop.

Boots the real CLI entry point as a subprocess on a free port, fires a
concurrent request mix (an identical-``/expansion`` wave to exercise
single-flight, plus ``/bounds``, ``/sweep`` and ``/healthz``), and checks
every response plus the ``/cache/info`` counters.  Exits non-zero on any
failure; prints one summary line on success.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [--workers N]
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve.http import fetch_json  # noqa: E402

CLIENTS = 8


def free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return int(s.getsockname()[1])


def wait_until_up(port: int, proc: subprocess.Popen, deadline_s: float = 30.0) -> None:
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        if proc.poll() is not None:
            raise SystemExit(f"serve process exited early with rc={proc.returncode}")
        try:
            status, body = asyncio.run(fetch_json("127.0.0.1", port, "/healthz", timeout=5.0))
        except OSError:
            time.sleep(0.2)
            continue
        if status == 200 and body == {"status": "ok"}:
            return
        raise SystemExit(f"unexpected /healthz answer: {status} {body!r}")
    raise SystemExit("service did not come up within the deadline")


async def hammer(port: int) -> dict:
    expansion = "/expansion?scheme=strassen&k=2"
    mix = [expansion] * CLIENTS  # the identical wave: single-flight's job
    mix += [
        "/bounds?n=4096&M=256&p=64",
        "/sweep?schemes=strassen&k_min=1&k_max=2&memories=48",
        expansion,
        "/healthz",
    ]
    results = await asyncio.gather(*(fetch_json("127.0.0.1", port, t) for t in mix))
    failures = [(t, s) for t, (s, _) in zip(mix, results) if s != 200]
    if failures:
        raise SystemExit(f"non-200 responses: {failures}")
    bodies = [body for _, body in results[:CLIENTS]]
    if any(body != bodies[0] for body in bodies):
        raise SystemExit("identical /expansion requests returned differing payloads")
    status, info = await fetch_json("127.0.0.1", port, "/cache/info")
    if status != 200:
        raise SystemExit(f"/cache/info answered {status}")
    return info


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=0, help="serve --workers value")
    args = parser.parse_args()

    port = free_port()
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as cache_dir:
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "--cache-dir",
                cache_dir,
                "serve",
                "--port",
                str(port),
                "--workers",
                str(args.workers),
            ],
            env=env,
        )
        try:
            wait_until_up(port, proc)
            info = asyncio.run(hammer(port))
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()

    service = info["service"]
    stats = info["stats"]
    if service["errors"] != 0:
        raise SystemExit(f"service counted {service['errors']} errors")
    if args.workers == 0 and stats["builds"] == 0:
        raise SystemExit("expected at least one build through the shared cache")
    print(
        f"serve smoke ok: {service['requests']} requests, "
        f"{service['deduped']} deduped, builds={stats['builds']}, "
        f"workers={service['workers']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
