#!/usr/bin/env python
"""CI smoke test for ``python -m repro plan``: run, compare, gate.

Runs the real CLI entry point (``python -m repro plan --json``) against a
hermetic cache on the pinned spec in ``tests/data/plan_golden.json`` and
checks three things:

* the ranking (labels, p, schedules, predicted times, counters, regime
  classifications) matches the golden file exactly;
* the top plan flips algorithms somewhere along the default memory
  ladder on the acceptance topology (the auto-scheduler's raison d'être);
* a warm re-run of the same command rebuilds nothing (builds == 0).

``--regen`` rewrites the golden file from the current code instead of
comparing (for intentional cost-model changes; review the diff).

Usage::

    PYTHONPATH=src python scripts/plan_smoke.py [--regen]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
GOLDEN = os.path.join(REPO_ROOT, "tests", "data", "plan_golden.json")

PIN_FIELDS = ("label", "p", "schedule", "predicted_time", "words", "messages", "binding")


def run_plan_cli(spec: dict, cache_dir: str) -> dict:
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "plan",
        "--n",
        str(spec["n"]),
        "--scheme",
        spec["scheme"],
        "--topology",
        spec["topology"],
        "--json",
    ]
    if spec["memory_limit"] is not None:
        cmd += ["--memory-limits", str(spec["memory_limit"])]
    if spec["p_max"] is not None:
        cmd += ["--p-max", str(spec["p_max"])]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["REPRO_CACHE_DIR"] = cache_dir
    proc = subprocess.run(
        cmd, cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=300
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"`{' '.join(cmd)}` exited {proc.returncode}\n{proc.stderr[-2000:]}"
        )
    return json.loads(proc.stdout)


def pinned_rows(report: dict, memory_limit) -> list[dict]:
    for table in report["tables"]:
        if table["memory_limit"] == memory_limit:
            return [
                {k: row[k] if k != "predicted_time" else round(row[k], 6) for k in PIN_FIELDS}
                for row in table["rows"]
            ]
    raise SystemExit(f"no plan table for memory_limit={memory_limit!r} in the report")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--regen", action="store_true", help="rewrite the golden file")
    args = ap.parse_args()

    doc = json.loads(open(GOLDEN).read())
    spec = doc["spec"]

    with tempfile.TemporaryDirectory(prefix="plan-smoke-") as cache_dir:
        report = run_plan_cli(spec, cache_dir)
        got = pinned_rows(report, spec["memory_limit"])

        if args.regen:
            doc["plans"] = got
            with open(GOLDEN, "w") as fh:
                json.dump(doc, fh, indent=2, allow_nan=False)
                fh.write("\n")
            print(f"plan-smoke: regenerated {GOLDEN} ({len(got)} plans)")
            return 0

        if got != doc["plans"]:
            want, have = doc["plans"], got
            print("plan-smoke: ranking drifted from the golden file", file=sys.stderr)
            for i, (w, h) in enumerate(zip(want, have)):
                if w != h:
                    print(f"  row {i}: want {w}\n          have {h}", file=sys.stderr)
            if len(want) != len(have):
                print(f"  row count: want {len(want)}, have {len(have)}", file=sys.stderr)
            return 1

        # The acceptance flip: the default ladder changes the winner.
        winners = report["winners"]
        if len(set(winners.values())) < 2:
            print(f"plan-smoke: no regime flip across the ladder ({winners})", file=sys.stderr)
            return 1

        # Warm re-run: the plan table must come off the cache.
        warm = run_plan_cli(spec, cache_dir)
        builds = warm["stats"]["builds"]
        if builds != 0:
            print(f"plan-smoke: warm re-run rebuilt {builds} artifact(s)", file=sys.stderr)
            return 1

    print(
        f"plan-smoke: OK — {len(got)} pinned plans on {spec['topology']}, "
        f"winners {winners}, warm builds=0"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
