"""Sequential I/O study: Theorem 1.1/1.3 measured across n, M and schemes.

The workload the paper's introduction motivates: multiply matrices far too
large for fast memory, and count every word that crosses the memory
boundary under different algorithms.

Run:  python examples/sequential_io_study.py
"""

from repro.algorithms.io_classical import blocked_io, recursive_io
from repro.algorithms.io_strassen import dfs_io_model
from repro.core.bounds import sequential_io_bound
from repro.cdag.schemes import get_scheme
from repro.experiments.report import render_table
from repro.experiments.seq_io import m_sweep, n_sweep, omega_sweep


def main() -> None:
    # Theorem 1.1 in n.
    res = n_sweep("strassen", M=192, t_range=range(4, 10), simulate_upto=256)
    print(render_table(res["rows"], title="DF-Strassen: IO(n) at M=192"))
    print(f"  n-exponent: measured {res['fit_exponent']:.4f}, "
          f"omega0 = {res['expected_exponent']:.4f}\n")

    # Theorem 1.1 in M.
    res = m_sweep("strassen", n=4096)
    print(render_table(res["rows"], title="DF-Strassen: IO(M) at n=4096"))
    print(f"  M-exponent: measured {res['fit_exponent']:.4f}, "
          f"1 - omega0/2 = {res['expected_exponent']:.4f}\n")

    # Theorem 1.3 across the scheme family.
    res = omega_sweep(M=192, depth=9)
    print(render_table(res["rows"], title="Strassen-like family: exponent vs omega0"))

    # Fast vs classical head-to-head at one configuration.
    n, M = 1024, 768
    rows = [
        {"algorithm": "DF-Strassen", "words": dfs_io_model(n, M, "strassen").words},
        {"algorithm": "DF-Winograd", "words": dfs_io_model(n, M, "winograd").words},
        {"algorithm": "classical blocked", "words": blocked_io(n, M).words},
        {"algorithm": "classical cache-oblivious", "words": recursive_io(n, M).words},
    ]
    for r in rows:
        w = get_scheme("strassen").omega0 if "Strassen" in r["algorithm"] or "Winograd" in r["algorithm"] else 3.0
        r["lower_bound(omega)"] = sequential_io_bound(n, M, w)
        r["ratio"] = r["words"] / r["lower_bound(omega)"]
    print(render_table(rows, title=f"head to head at n={n}, M={M}"))
    fast = rows[0]["words"]
    slow = rows[2]["words"]
    print(f"  Strassen moves {fast / slow:.2f}x the words of blocked classical "
          f"at this size (crossover favors Strassen as n/sqrt(M) grows)")


if __name__ == "__main__":
    main()
