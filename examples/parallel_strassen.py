"""Parallel study: Table I's algorithms side by side on the simulated machine.

Runs Cannon, SUMMA, 3D, 2.5D and CAPS on the same problem, verifies every
result against numpy, and prints the measured critical-path communication
next to each algorithm's Table I cell.

Run:  python examples/parallel_strassen.py
"""

import math

from repro.core.bounds import LG7, parallel_io_bound, table1_cell
from repro.experiments.report import render_table
from repro.parallel.cannon import cannon_multiply
from repro.parallel.caps import caps_multiply
from repro.parallel.summa import summa_multiply
from repro.parallel.threed import threed_multiply
from repro.parallel.two5d import two5d_multiply
from repro.util.matgen import integer_matrix


def main() -> None:
    n = 64
    A = integer_matrix(n, seed=1)
    B = integer_matrix(n, seed=2)
    ref = A @ B
    rows = []

    def record(r, regime, cls, c=1.0):
        cell = table1_cell(regime, cls, n if r.n == n else r.n, r.p, c)
        rows.append(
            {
                "algorithm": r.algorithm,
                "p": r.p,
                "words": r.critical_words,
                "messages": r.critical_messages,
                "mem_peak": r.max_mem_peak,
                "table1_cell": cell.bound,
                "ratio": r.critical_words / cell.bound,
                "exact": bool((r.C == (A @ B if r.n == n else REF7)).all()),
            }
        )

    r = cannon_multiply(A, B, 8)
    record(r, "2D", "classical")
    r = summa_multiply(A, B, 8)
    record(r, "2D", "classical")
    r = threed_multiply(A, B, 4)
    record(r, "3D", "classical")
    r = two5d_multiply(A, B, 8, 2)
    record(r, "2.5D", "classical", c=2)

    # CAPS needs its own n (divisibility): p = 49, n = 112
    n7 = 112
    A7 = integer_matrix(n7, seed=3)
    B7 = integer_matrix(n7, seed=4)
    global REF7
    REF7 = A7 @ B7
    for sched in ("BB", "DBB"):
        r = caps_multiply(A7, B7, 2, schedule=sched)
        cell_bound = parallel_io_bound(n7, r.max_mem_peak, 49, LG7)
        rows.append(
            {
                "algorithm": r.algorithm,
                "p": r.p,
                "words": r.critical_words,
                "messages": r.critical_messages,
                "mem_peak": r.max_mem_peak,
                "table1_cell": cell_bound,
                "ratio": r.critical_words / cell_bound,
                "exact": bool((r.C == REF7).all()),
            }
        )

    print(render_table(rows, title=f"parallel algorithms (classical at n={n}, CAPS at n={n7})"))
    assert all(row["exact"] for row in rows), "all parallel runs must be exact"
    print("all results verified bit-exact against numpy's A @ B")


if __name__ == "__main__":
    main()
