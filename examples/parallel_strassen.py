"""Parallel study: Table I's algorithms side by side, via the registry.

Runs every registered parallel algorithm (Cannon, SUMMA, 3D, 2.5D, CAPS)
on the same problem through the planner-first ``execute(A, B, cfg)`` entry
point, verifies each result against numpy, and prints the measured
critical-path communication next to the algorithm's declared analytic cost
and its Table I cell.

Run:  python examples/parallel_strassen.py
"""

from repro.core.bounds import LG7, parallel_io_bound, table1_cell
from repro.experiments.report import render_table
from repro.parallel import ParallelConfig, get_parallel
from repro.util.matgen import integer_matrix


def main() -> None:
    n = 64
    A = integer_matrix(n, seed=1)
    B = integer_matrix(n, seed=2)

    # (registry name, config, Table I cell) for the classical column.
    classical = [
        ("cannon", ParallelConfig(n=n, p=64), ("2D", 1.0)),
        ("summa", ParallelConfig(n=n, p=64), ("2D", 1.0)),
        ("3d", ParallelConfig(n=n, p=64), ("3D", 1.0)),
        ("2.5d", ParallelConfig(n=n, p=128, c=2), ("2.5D", 2.0)),
    ]
    ref = A @ B
    rows = []
    for name, cfg, (regime, c) in classical:
        r = get_parallel(name).execute(A, B, cfg)
        cell = table1_cell(regime, "classical", n, r.p, c)
        rows.append(_row(r, cell.bound, ref))

    # CAPS needs its own n (divisibility): p = 49, n = 112.
    n7 = 112
    A7 = integer_matrix(n7, seed=3)
    B7 = integer_matrix(n7, seed=4)
    ref7 = A7 @ B7
    caps = get_parallel("caps")
    for sched in ("BB", "DBB"):
        cfg = ParallelConfig(n=n7, p=49, scheme="strassen", schedule=sched)
        r = caps.execute(A7, B7, cfg)
        rows.append(_row(r, parallel_io_bound(n7, r.max_mem_peak, 49, LG7), ref7))

    print(render_table(rows, title=f"parallel registry (classical at n={n}, CAPS at n={n7})"))
    assert all(row["exact"] for row in rows), "all parallel runs must be exact"
    print("all results verified bit-exact against numpy's A @ B")


def _row(r, bound: float, ref) -> dict:
    return {
        "algorithm": r.algorithm,
        "p": r.p,
        "words": r.critical_words,
        "analytic": r.analytic.words,
        "messages": r.critical_messages,
        "mem_peak": r.max_mem_peak,
        "table1_cell": bound,
        "ratio": r.critical_words / bound,
        # bit-exact, not allclose: integer inputs make exactness the test
        "exact": bool((r.C == ref).all()),
    }


if __name__ == "__main__":
    main()
