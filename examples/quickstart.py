"""Quickstart: the paper's main objects in ~40 lines.

Builds Strassen's computation graph, measures the expansion of its decode
part (Lemma 4.3), runs the depth-first implementation against the two-level
machine (Theorem 1.1), and checks a parallel run against Corollary 1.2.

Run:  python examples/quickstart.py
"""

from repro import (
    LG7,
    dec_graph,
    dfs_io,
    estimate_expansion,
    h_graph,
    parallel_io_bound,
    run_parallel,
    sequential_io_bound,
)
from repro.util.matgen import integer_matrix


def main() -> None:
    # 1. The computation graph of Strassen on 16x16 matrices (k = lg 16 = 4).
    H = h_graph("strassen", k=4)
    print(f"H_4: {H.cdag.n_vertices} vertices, {H.cdag.n_edges} edges; "
          f"{len(H.mult_ids)} multiplications (= 7^4); "
          f"decode part holds {H.dec_fraction:.1%} of the graph")

    # 2. Lemma 4.3: the decode graph's edge expansion decays like (4/7)^k.
    for k in (2, 3, 4):
        g = dec_graph("strassen", k)
        est = estimate_expansion(g, "strassen", k)
        print(f"Dec_{k}C: h in [{est.lower:.4f}, {est.upper:.4f}]  "
              f"vs (4/7)^{k} = {(4/7)**k:.4f}")

    # 3. Theorem 1.1: measured I/O of the depth-first implementation sits a
    #    constant factor above the lower-bound expression.
    n, M = 256, 3 * 16 * 16
    rep = dfs_io(n, M)
    bound = sequential_io_bound(n, M)
    print(f"DF-Strassen n={n}, M={M}: {rep.words} words moved "
          f"(lower-bound form {bound:.0f}; ratio {rep.words / bound:.1f})")

    # 4. Corollary 1.2: a real parallel Strassen (CAPS) on 7 simulated
    #    processors via the registry, verified against numpy, measured
    #    against the bound.
    A = integer_matrix(56, seed=1)
    B = integer_matrix(56, seed=2)
    r = run_parallel("caps", A, B, p=7)
    assert (r.C == A @ B).all(), "parallel result must be exact"
    pbound = parallel_io_bound(56, r.max_mem_peak, 7, LG7)
    print(f"CAPS p=7, n=56: {r.critical_words} words on the critical path "
          f"(Cor 1.2 form at measured memory: {pbound:.0f})")


if __name__ == "__main__":
    main()
