"""Expansion study: reproduce Lemma 4.3's decay curve and its witnesses.

Prints the two-sided sandwich for h(Dec_k C) across k and schemes, shows the
concrete minimizing-cut structure (the decode cone of one outermost
recursion branch), and verifies the small-set profile behind Corollary 4.4.

Run:  python examples/expansion_study.py
"""

import numpy as np

from repro.cdag.schemes import get_scheme
from repro.cdag.strassen_cdag import dec_graph
from repro.core.expansion import (
    decode_cone_upper_bound,
    expansion_of_cut,
)
from repro.experiments.expansion_exp import expansion_decay, small_set_profile
from repro.experiments.report import render_table


def main() -> None:
    for scheme in ("strassen", "winograd"):
        result = expansion_decay(scheme, k_max=5, spectral_upto=4)
        print(render_table(result["rows"], title=f"h(Dec_k C) for {scheme}"))
        print(f"  decay/level (fit): {result['fitted_decay_per_level']:.4f}  "
              f"expected c0/t0 = {result['expected_decay']:.4f}\n")

    # Anatomy of the witness: the decode cone of branch M7 (whose W-column
    # has a single nonzero) — everything Strassen computes exclusively from
    # subproblem M7's products before the final combine.
    s = get_scheme("strassen")
    k = 4
    g = dec_graph(s, k)
    ratio, mask = decode_cone_upper_bound(g, s, k)
    print(f"best decode cone at k={k}: |S| = {int(mask.sum())} of {g.n_vertices} "
          f"vertices, boundary = {g.edge_boundary_size(mask)} edges, "
          f"h(cut) = {ratio:.5f} = {ratio / (4/7)**k:.3f} x (4/7)^{k}")

    # The same set restricted level by level: the h_s profile.
    prof = small_set_profile("strassen", k=5)
    print()
    print(render_table(prof["rows"], title="small-set expansion profile (Cor 4.4)"))

    # Sanity: an arbitrary random set expands far more than the witness.
    rng = np.random.default_rng(0)
    rand_mask = np.zeros(g.n_vertices, dtype=bool)
    rand_mask[rng.choice(g.n_vertices, int(mask.sum()), replace=False)] = True
    print(f"random set of equal size: h = {expansion_of_cut(g, rand_mask):.4f} "
          f"(vs cone's {ratio:.5f}) — structure matters")


if __name__ == "__main__":
    main()
