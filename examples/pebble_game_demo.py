"""Pebble-game demo: lower bounds meeting upper bounds on small CDAGs.

Shows the full §3 chain on graphs small enough to certify end to end:
exhaustive optimal red–blue pebbling, Belady/LRU schedule simulation, and
the partition-argument lower bound — with the promised ordering
``partition ≤ optimum ≤ Belady ≤ LRU`` visible in the numbers.

Run:  python examples/pebble_game_demo.py
"""

from repro.cdag.classical_cdag import classical_matmul_cdag, matvec_cdag
from repro.cdag.pebble import exhaustive_min_io, schedule_io
from repro.cdag.schedule import (
    bfs_topological_order,
    dfs_topological_order,
    random_topological_order,
)
from repro.core.partition import best_partition_bound
from repro.experiments.report import render_table


def main() -> None:
    # Tiny graph: certify the whole chain including the true optimum.
    g = matvec_cdag(2)
    M = 4
    order = dfs_topological_order(g)
    chain = {
        "partition_bound": best_partition_bound(g, order, M)[0],
        "true_optimum": exhaustive_min_io(g, M),
        "belady": schedule_io(g, order, M=M, policy="belady").total,
        "lru": schedule_io(g, order, M=M, policy="lru").total,
    }
    print(f"matvec(2), M={M}:  {chain}")
    assert (
        chain["partition_bound"]
        <= chain["true_optimum"]
        <= chain["belady"]
        <= chain["lru"]
    )

    # Larger graph: the schedule (player one of §3.2) decides the constant.
    g = classical_matmul_cdag(5)
    M = 12
    rows = []
    for name, fn in (
        ("dfs", dfs_topological_order),
        ("bfs", bfs_topological_order),
        ("kahn", lambda gg: gg.topological_order),
        ("random", lambda gg: random_topological_order(gg, seed=1)),
    ):
        order = fn(g)
        io = schedule_io(g, order, M=M, policy="belady")
        bound, seg = best_partition_bound(g, order, M)
        rows.append(
            {
                "order": name,
                "measured_io": io.total,
                "loads": io.loads,
                "stores": io.stores,
                "partition_bound": bound,
                "best_segment": seg,
            }
        )
    print()
    print(render_table(rows, title=f"classical matmul n=5 CDAG, M={M}: order matters"))
    dfs_row = next(r for r in rows if r["order"] == "dfs")
    bfs_row = next(r for r in rows if r["order"] == "bfs")
    print(f"depth-first saves {1 - dfs_row['measured_io']/bfs_row['measured_io']:.0%} "
          f"of the I/O of breadth-first — the footnote-5 phenomenon")


if __name__ == "__main__":
    main()
