"""E1/E2 — sequential I/O of depth-first Strassen-like multiplication.

Regenerates the paper's headline quantities: Eq. (1)'s upper bound is
attained, Theorem 1.1's lower-bound shape is matched in both n and M, and
Theorem 1.3's ω₀ dependence holds across schemes.
"""

import pytest

from repro.experiments.report import render_table
from repro.experiments.seq_io import (
    classical_comparison,
    cutoff_ablation,
    m_sweep,
    n_sweep,
    omega_sweep,
)


def test_e1_strassen_n_scaling(benchmark, emit):
    """Theorem 1.1: IO(n) at fixed M grows as n^(lg 7) (measured fit)."""
    result = benchmark.pedantic(
        lambda: n_sweep("strassen", M=192, t_range=range(4, 10), simulate_upto=256),
        rounds=1,
        iterations=1,
    )
    emit(render_table(result["rows"], title="[E1] DF-Strassen I/O vs n (M=192)"))
    emit(
        f"fitted n-exponent = {result['fit_exponent']:.4f}  "
        f"(omega0 = {result['expected_exponent']:.4f})"
    )
    benchmark.extra_info["fit_exponent"] = result["fit_exponent"]
    assert abs(result["fit_exponent"] - result["expected_exponent"]) < 0.06
    # tightness: measured/lower settles into a constant band
    ratios = [r["measured/lower"] for r in result["rows"][-4:]]
    assert max(ratios) / min(ratios) < 1.5


def test_e1_strassen_m_scaling(benchmark, emit):
    """Theorem 1.1 in M: IO(M) at fixed n decays as M^(1 − lg7/2)."""
    result = benchmark.pedantic(lambda: m_sweep("strassen", n=4096), rounds=1, iterations=1)
    emit(render_table(result["rows"], title="[E1] DF-Strassen I/O vs M (n=4096)"))
    emit(
        f"fitted M-exponent = {result['fit_exponent']:.4f}  "
        f"(1 - omega0/2 = {result['expected_exponent']:.4f})"
    )
    benchmark.extra_info["fit_exponent"] = result["fit_exponent"]
    assert abs(result["fit_exponent"] - result["expected_exponent"]) < 0.06


def test_e2_omega_sweep(benchmark, emit):
    """Theorem 1.3: the measured exponent tracks ω₀ for every scheme."""
    result = benchmark.pedantic(lambda: omega_sweep(M=192, depth=9), rounds=1, iterations=1)
    emit(render_table(result["rows"], title="[E2] Strassen-like omega0 sweep (Thm 1.3)"))
    for row in result["rows"]:
        assert row["error"] < 0.05, f"{row['scheme']}: {row['fit_exponent']} vs {row['omega0']}"
    # ordering: smaller omega0 => smaller measured exponent
    fast = [r for r in result["rows"] if r["scheme"] == "strassen"][0]
    slow = [r for r in result["rows"] if r["scheme"] == "classical2"][0]
    mid = [r for r in result["rows"] if r["scheme"] == "hybrid4"][0]
    assert fast["fit_exponent"] < mid["fit_exponent"] < slow["fit_exponent"]


def test_e1_classical_reference(benchmark, emit):
    """Hong–Kung reference: classical implementations match n³/√M."""
    result = benchmark.pedantic(lambda: classical_comparison(M=192, n=128), rounds=1, iterations=1)
    emit(render_table(result["rows"], title="[E1] classical implementations vs n^3/sqrt(M)"))
    for row in result["rows"]:
        assert 0.5 < row["ratio"] < 10.0


def test_e1_cutoff_ablation(benchmark, emit):
    """Design-choice ablation: the largest feasible base case minimizes I/O."""
    result = benchmark.pedantic(lambda: cutoff_ablation(n=512, M=3 * 32 * 32), rounds=1, iterations=1)
    emit(render_table(result["rows"], title="[E1-ablation] recursion cutoff vs I/O"))
    words = [r["measured_words"] for r in result["rows"]]
    assert result["best_base"] == max(r["base"] for r in result["rows"])
    assert words == sorted(words)  # monotone: deeper cutoff only hurts


def test_e2b_nonstationary_hybrid(benchmark, emit):
    """§5.2: the hybrid class interpolates between ω₀'s (E2 extension).

    'k Strassen levels then classical' — the practical cutoff family the
    paper cites [Douglas et al. 94; Huss-Lederman et al. 96] — must move
    monotonically fewer words as k grows, approaching pure Strassen.
    """
    from repro.algorithms.nonstationary import nonstationary_io

    def run():
        n, M = 512, 192
        rows = []
        for k in range(0, 7):
            schemes = ["strassen"] * k + ["classical2"] * (6 - k)
            rep = nonstationary_io(n, M, schemes)
            rows.append(
                {
                    "strassen_levels": k,
                    "measured_words": rep.words,
                    "base_multiplies": rep.n_base_multiplies,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_table(rows, title="[E2b] non-stationary hybrids (§5.2): k Strassen levels"))
    words = [r["measured_words"] for r in rows]
    # Each added Strassen level helps until the last one, where its larger
    # per-level streaming constant is no longer amortized — the measured
    # interior optimum *is* the classical-cutoff phenomenon that motivates
    # the §5.2 class in practice.
    k_best = words.index(min(words))
    emit(f"measured optimal cutoff: k = {k_best} Strassen levels")
    assert 3 <= k_best <= 6
    assert words[:k_best + 1] == sorted(words[:k_best + 1], reverse=True)
    assert min(words) < 0.7 * words[0]
