"""E1/E2 — sequential I/O of depth-first Strassen-like multiplication.

Thin wrappers over the ``seq_io_sweep`` / ``seq_io_models`` /
``seq_io_simulate`` registry workloads.  The payloads regenerate the
paper's headline quantities: Eq. (1)'s upper bound is attained, Theorem
1.1's lower-bound shape is matched in both n and M, and Theorem 1.3's ω₀
dependence holds across schemes.

``seq_io_models`` bundles every closed-form recurrence (M-sweep, ω₀-sweep,
cutoff ablation, classical reference, hybrids); it is *timed* once (in
``test_e1_strassen_m_scaling``) and the other tests assert against a
module-scoped copy of its payload instead of re-running the bundle.
"""

import pytest

from repro.engine.bench import get_bench
from repro.experiments.report import render_table


@pytest.fixture(scope="module")
def models_payload():
    """One shared evaluation of the seq_io_models bundle for the assertions."""
    return get_bench("seq_io_models").call()


def test_e1_strassen_n_scaling(benchmark, emit):
    """Theorem 1.1: IO(n) at fixed M grows as n^(lg 7) (measured fit)."""
    w = get_bench("seq_io_sweep")
    payload = benchmark.pedantic(lambda: w.call(), rounds=1, iterations=1)
    result = payload["n_sweep"]
    emit(render_table(result["rows"], title="[E1] DF-Strassen I/O vs n (M=192)"))
    emit(
        f"fitted n-exponent = {result['fit_exponent']:.4f}  "
        f"(omega0 = {result['expected_exponent']:.4f})"
    )
    benchmark.extra_info["fit_exponent"] = result["fit_exponent"]
    assert abs(result["fit_exponent"] - result["expected_exponent"]) < 0.06
    # tightness: measured/lower settles into a constant band
    ratios = [r["measured/lower"] for r in result["rows"][-4:]]
    assert max(ratios) / min(ratios) < 1.5


def test_e1_strassen_m_scaling(benchmark, emit):
    """Theorem 1.1 in M: IO(M) at fixed n decays as M^(1 − lg7/2).

    This is the one *timed* run of the seq_io_models bundle; the sibling
    tests below reuse the module fixture's payload.
    """
    w = get_bench("seq_io_models")
    payload = benchmark.pedantic(lambda: w.call(), rounds=1, iterations=1)
    result = payload["m_sweep"]
    emit(render_table(result["rows"], title="[E1] DF-Strassen I/O vs M (n=4096)"))
    emit(
        f"fitted M-exponent = {result['fit_exponent']:.4f}  "
        f"(1 - omega0/2 = {result['expected_exponent']:.4f})"
    )
    benchmark.extra_info["fit_exponent"] = result["fit_exponent"]
    assert abs(result["fit_exponent"] - result["expected_exponent"]) < 0.06


def test_e2_omega_sweep(models_payload, emit):
    """Theorem 1.3: the measured exponent tracks ω₀ for every scheme."""
    result = models_payload["omega_sweep"]
    emit(render_table(result["rows"], title="[E2] Strassen-like omega0 sweep (Thm 1.3)"))
    for row in result["rows"]:
        assert row["error"] < 0.05, f"{row['scheme']}: {row['fit_exponent']} vs {row['omega0']}"
    # ordering: smaller omega0 => smaller measured exponent
    fast = [r for r in result["rows"] if r["scheme"] == "strassen"][0]
    slow = [r for r in result["rows"] if r["scheme"] == "classical2"][0]
    mid = [r for r in result["rows"] if r["scheme"] == "hybrid4"][0]
    assert fast["fit_exponent"] < mid["fit_exponent"] < slow["fit_exponent"]


def test_e1_classical_reference(models_payload, emit):
    """Hong–Kung reference: classical implementations match n³/√M."""
    result = models_payload["classical"]
    emit(render_table(result["rows"], title="[E1] classical implementations vs n^3/sqrt(M)"))
    for row in result["rows"]:
        assert 0.5 < row["ratio"] < 10.0


def test_e1_cutoff_ablation(models_payload, emit):
    """Design-choice ablation: the largest feasible base case minimizes I/O."""
    result = models_payload["cutoff"]
    emit(render_table(result["rows"], title="[E1-ablation] recursion cutoff vs I/O"))
    words = [r["measured_words"] for r in result["rows"]]
    assert result["best_base"] == max(r["base"] for r in result["rows"])
    assert words == sorted(words)  # monotone: deeper cutoff only hurts


def test_e1_simulation_path(benchmark, emit):
    """The full FastMemory simulation agrees with the closed-form model."""
    from repro.algorithms.io_strassen import dfs_io_model

    w = get_bench("seq_io_simulate")
    payload = benchmark.pedantic(lambda: w.call(), rounds=1, iterations=1)
    rep = payload["report"]
    model = dfs_io_model(rep.n, rep.M, "strassen")
    emit(
        f"[E1] dfs_io(n={rep.n}, M={rep.M}): {rep.words} words, "
        f"{rep.messages} messages (model agrees: {model.words == rep.words})"
    )
    assert rep.words == model.words
    assert rep.messages == model.messages


def test_e2b_nonstationary_hybrid(models_payload, emit):
    """§5.2: the hybrid class interpolates between ω₀'s (E2 extension).

    'k Strassen levels then classical' — the practical cutoff family the
    paper cites [Douglas et al. 94; Huss-Lederman et al. 96] — must move
    monotonically fewer words as k grows, approaching pure Strassen.
    """
    rows = models_payload["hybrid_rows"]
    emit(render_table(rows, title="[E2b] non-stationary hybrids (§5.2): k Strassen levels"))
    words = [r["measured_words"] for r in rows]
    # Each added Strassen level helps until the last one, where its larger
    # per-level streaming constant is no longer amortized — the measured
    # interior optimum *is* the classical-cutoff phenomenon that motivates
    # the §5.2 class in practice.
    k_best = words.index(min(words))
    emit(f"measured optimal cutoff: k = {k_best} Strassen levels")
    assert 3 <= k_best <= 6
    assert words[:k_best + 1] == sorted(words[:k_best + 1], reverse=True)
    assert min(words) < 0.7 * words[0]
