"""P1 — the persistent worker-pool runtime: cold spawn vs warm dispatch.

Thin wrapper over the ``pool_cold_vs_warm`` registry workload (shared with
``python -m repro bench``): one ``workers=4`` grid sweep from a shut-down
pool (pays interpreter + numpy spawn per worker), then the identical sweep
on the now-warm pool.  The assertions pin the tentpole's acceptance
criteria — the warm sweep spawns **zero** new processes and, where a pool
actually runs, finishes at least 3x faster than the cold one.
"""

from repro.engine import pool as pool_runtime
from repro.engine.bench import get_bench


def test_pool_cold_vs_warm(benchmark, emit):
    w = get_bench("pool_cold_vs_warm")
    payload = benchmark.pedantic(lambda: w.call(quick=True), rounds=1, iterations=1)
    check = payload["check"]
    metrics = payload["metrics"]
    emit(
        f"[P1] pool: {check['points']} grid points x4 workers — "
        f"cold {metrics['cold_seconds']:.3f}s, warm {metrics['warm_seconds']:.3f}s "
        f"({metrics['cold_over_warm']:.1f}x), "
        f"warm spawns={check['warm_new_processes']} "
        f"pooled={metrics['pooled']}"
    )
    assert check["rows_identical"]
    assert check["warm_new_processes"] == 0
    assert check["warm_pool_starts"] == 0
    if metrics["pooled"] and pool_runtime.serial_fallback_reason() is None:
        # the acceptance floor: a warm pool amortizes its spawns away
        assert metrics["cold_over_warm"] >= 3.0, metrics
