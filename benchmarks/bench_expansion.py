"""E3 — Lemma 4.3: the edge expansion of Dec_k C decays as (4/7)^k.

The paper's Main Lemma, measured: a certified sandwich around h(Dec_k C)
whose upper side is a concrete cut and whose decay per level approaches
c₀/m₀ = 4/7, plus the small-set profile behind Corollary 4.4.

The experiments run through the engine cache; each benchmark warms the
cache once (the cold pass builds graphs and runs eigensolves) and then
times the steady-state path the sweeps actually exercise.
"""

import pytest

from repro.engine import EngineCache, GridSpec, run_grid
from repro.experiments.expansion_exp import expansion_decay, small_set_profile
from repro.experiments.report import render_table


def test_e3_expansion_decay_strassen(benchmark, emit):
    result = benchmark.pedantic(
        lambda: expansion_decay("strassen", k_max=5, spectral_upto=4),
        rounds=1,
        iterations=1,
        warmup_rounds=1,
    )
    emit(render_table(result["rows"], title="[E3] h(Dec_k C) sandwich (Lemma 4.3)"))
    rows = result["rows"]
    uppers = [r["upper"] for r in rows]
    # strictly decaying, with per-level ratio approaching 4/7
    assert all(uppers[i + 1] < uppers[i] for i in range(len(uppers) - 1))
    last_ratio = uppers[-1] / uppers[-2]
    emit(f"last decay ratio = {last_ratio:.4f} (expected -> {result['expected_decay']:.4f})")
    benchmark.extra_info["last_decay_ratio"] = last_ratio
    assert abs(last_ratio - result["expected_decay"]) < 0.1
    # the normalized constant upper/(4/7)^k settles into a band
    consts = [r["upper/(c0/t0)^k"] for r in rows[1:]]
    assert max(consts) / min(consts) < 1.5
    # lower bounds never exceed uppers
    for r in rows:
        if r["lower"] == r["lower"]:  # not NaN
            assert r["lower"] <= r["upper"] + 1e-12


def test_e3_expansion_decay_winograd(benchmark, emit):
    """§5.1.2: the lemma is scheme-generic — Winograd decays identically."""
    result = benchmark.pedantic(
        lambda: expansion_decay("winograd", k_max=4, spectral_upto=3),
        rounds=1,
        iterations=1,
        warmup_rounds=1,
    )
    emit(render_table(result["rows"], title="[E3] h(Dec_k C) for Winograd"))
    uppers = [r["upper"] for r in result["rows"]]
    assert all(uppers[i + 1] < uppers[i] for i in range(len(uppers) - 1))


def test_e3_small_set_cones(benchmark, emit):
    """Corollary 4.4's engine: size-m₀^j sets with expansion ~(4/7)^j."""
    result = benchmark.pedantic(
        lambda: small_set_profile("strassen", k=5),
        rounds=1,
        iterations=1,
        warmup_rounds=1,
    )
    emit(render_table(result["rows"], title="[E3] small-set decode cones (h_s profile)"))
    hs = [r["h_of_cut"] for r in result["rows"]]
    assert all(hs[i + 1] < hs[i] for i in range(len(hs) - 1))


def test_e3_engine_grid_warm_cache(benchmark, emit, tmp_path):
    """The acceptance sweep: 2 schemes × k ≤ 6 × 4 memory sizes, zero rebuilds.

    The warmup round populates a hermetic cache; the timed round must report
    ``builds == 0`` — every graph, spectrum, and estimate is a cache hit.
    """
    spec = GridSpec.from_ranges(
        schemes=("strassen", "winograd"),
        k_max=6,
        memories=(48, 192, 768, 3072),
    )
    cache = EngineCache(tmp_path / "engine-cache")
    result = benchmark.pedantic(
        lambda: run_grid(spec, cache=cache),
        rounds=1,
        iterations=1,
        warmup_rounds=1,
    )
    emit(
        render_table(
            [r for r in result.rows if r["M"] == 192],
            columns=["scheme", "k", "M", "V", "h_upper", "method",
                     "io_lower_bound", "measured/lower"],
            title="[E3] engine sweep (M=192 slice of 48 grid points)",
        )
    )
    emit(
        f"warm sweep: {len(result.rows)} points in {result.wall_time:.3f}s, "
        f"builds={result.rebuilds} hits={result.stats['hits']}"
    )
    benchmark.extra_info["rebuilds"] = result.rebuilds
    assert len(result.rows) == 2 * 6 * 4
    assert result.rebuilds == 0, "warm-cache sweep must not rebuild anything"
