"""E3 — Lemma 4.3: the edge expansion of Dec_k C decays as (4/7)^k.

Thin wrappers over the engine bench registry: the timed bodies are the
registered ``expansion_decay`` / ``grid_sweep_warm`` workloads (shared with
``python -m repro bench``), and the scientific assertions run against the
payloads those workloads return.
"""

import pytest

from repro.engine.bench import get_bench
from repro.engine.cache import EngineCache
from repro.experiments.report import render_table


@pytest.fixture(scope="module")
def decay_state():
    """A warmed cache plus one evaluation of the strassen decay bundle."""
    cache = EngineCache(disk=False)
    payload = get_bench("expansion_decay").call(cache=cache)
    return cache, payload


def test_e3_expansion_decay_strassen(benchmark, emit, decay_state):
    cache, _ = decay_state
    w = get_bench("expansion_decay")
    # the fixture warmed the cache, so this times the steady-state path
    payload = benchmark.pedantic(lambda: w.call(cache=cache), rounds=1, iterations=1)
    result = payload["decay"]
    emit(render_table(result["rows"], title="[E3] h(Dec_k C) sandwich (Lemma 4.3)"))
    rows = result["rows"]
    uppers = [r["upper"] for r in rows]
    # strictly decaying, with per-level ratio approaching 4/7
    assert all(uppers[i + 1] < uppers[i] for i in range(len(uppers) - 1))
    last_ratio = uppers[-1] / uppers[-2]
    emit(f"last decay ratio = {last_ratio:.4f} (expected -> {result['expected_decay']:.4f})")
    benchmark.extra_info["last_decay_ratio"] = last_ratio
    assert abs(last_ratio - result["expected_decay"]) < 0.1
    # the normalized constant upper/(4/7)^k settles into a band
    consts = [r["upper/(c0/t0)^k"] for r in rows[1:]]
    assert max(consts) / min(consts) < 1.5
    # lower bounds never exceed uppers
    for r in rows:
        if r["lower"] == r["lower"]:  # not NaN
            assert r["lower"] <= r["upper"] + 1e-12


def test_e3_expansion_decay_winograd(benchmark, emit):
    """§5.1.2: the lemma is scheme-generic — Winograd decays identically."""
    cache = EngineCache(disk=False)
    w = get_bench("expansion_decay")
    payload = benchmark.pedantic(
        lambda: w.call(cache=cache, scheme="winograd", k_max=4, spectral_upto=3),
        rounds=1,
        iterations=1,
        warmup_rounds=1,
    )
    result = payload["decay"]
    emit(render_table(result["rows"], title="[E3] h(Dec_k C) for Winograd"))
    uppers = [r["upper"] for r in result["rows"]]
    assert all(uppers[i + 1] < uppers[i] for i in range(len(uppers) - 1))


def test_e3_small_set_cones(decay_state, emit):
    """Corollary 4.4's engine: size-m₀^j sets with expansion ~(4/7)^j."""
    _, payload = decay_state
    result = payload["small_set"]
    emit(render_table(result["rows"], title="[E3] small-set decode cones (h_s profile)"))
    hs = [r["h_of_cut"] for r in result["rows"]]
    assert all(hs[i + 1] < hs[i] for i in range(len(hs) - 1))


def test_e3_engine_grid_warm_cache(benchmark, emit):
    """The acceptance sweep through the registry: warm rounds rebuild nothing.

    The warmup round populates a hermetic cache; the timed round must report
    ``builds == 0`` — every graph, spectrum, and estimate is a cache hit.
    """
    cache = EngineCache(disk=False)
    w = get_bench("grid_sweep_warm")
    payload = benchmark.pedantic(
        lambda: w.call(cache=cache),
        rounds=1,
        iterations=1,
        warmup_rounds=1,
    )
    result = payload["report"]
    emit(
        render_table(
            [r for r in result.rows if r["M"] == 192],
            columns=["scheme", "k", "M", "V", "h_upper", "method",
                     "io_lower_bound", "measured/lower"],
            title="[E3] engine sweep (M=192 slice of the grid)",
        )
    )
    emit(
        f"warm sweep: {len(result.rows)} points in {result.wall_time:.3f}s, "
        f"builds={result.rebuilds} hits={result.stats['hits']}"
    )
    benchmark.extra_info["rebuilds"] = result.rebuilds
    assert len(result.rows) == 2 * 5 * 4
    assert result.rebuilds == 0, "warm-cache sweep must not rebuild anything"
