"""E3″ — the native exact backend and the certified-interval pipeline.

Thin wrappers over the ``exact_native`` / ``certify_interval`` registry
workloads (shared with ``python -m repro bench``): the timed bodies run the
compiled C kernel on the 28-vertex bench circulant (bitset fallback when the
build is unavailable) and produce the ``(lower, upper, provenance)``
certificates the engine's ``auto`` policy now carries.
"""

from repro.engine.bench import get_bench
from repro.engine.cache import EngineCache


def test_exact_native_28_vertices(benchmark, emit):
    w = get_bench("exact_native")
    payload = benchmark.pedantic(
        lambda: w.call(cache=EngineCache(disk=False)), rounds=1, iterations=1
    )
    check = payload["check"]
    emit(
        f"[E3\"] exact n={check['V']} backend={payload['backend']}: "
        f"h={check['h']:.6f} witness={check['witness']}"
    )
    assert check["V"] == 28
    assert check["h"] > 0
    assert 1 <= check["witness"] <= 14  # Eq. 4's |U| <= |V|/2


def test_certify_interval_ladder(benchmark, emit):
    w = get_bench("certify_interval")
    payload = benchmark.pedantic(
        lambda: w.call(cache=EngineCache(disk=False)), rounds=1, iterations=1
    )
    check = payload["check"]
    emit(
        f"[E3\"] certify k=1..{len(check['provenances'])}: "
        f"{list(zip(check['provenances'], check['uppers']))}"
    )
    # k=1 solves exactly; deeper ks climb the certified-method ladder
    assert check["provenances"][0] == "exact"
    assert check["lowers"][0] == check["uppers"][0]
    for lo, hi in zip(check["lowers"], check["uppers"]):
        assert 0.0 <= lo <= hi
