"""E10 — §6.1: memory regimes interpolate; the ω₀-free numerator.

Two sweeps: the 2.5D replication knob against its bound, and the §6.1
observation that improving ω₀ changes only the *power of p*, never the n²
numerator (checked on the bound formulas and on measured CAPS runs).
"""

import math

import pytest

from repro.core.bounds import LG7, table1_cell
from repro.experiments.report import render_table
from repro.experiments.table1 import caps_memory_sweep, two5d_c_sweep


def test_e10_regime_interpolation(benchmark, emit):
    """2.5D walks from the 2D cell to the 3D cell as c grows."""
    result = benchmark.pedantic(
        lambda: two5d_c_sweep(n=64, q=8, cs=(1, 2, 4, 8)), rounds=1, iterations=1
    )
    rows = result["rows"]
    emit(render_table(rows, title="[E10] 2.5D: memory regime interpolation"))
    # memory regime grows with c while measured words shrink
    mems = [r["M_regime"] for r in rows]
    words = [r["measured_words"] for r in rows]
    assert mems == sorted(mems)
    assert words[-1] < words[0]


def test_e10_numerator_omega_free(benchmark, emit):
    """§6.1: Table I numerators do not depend on ω₀ — only p's power does."""

    def run():
        rows = []
        n, p, c = 256, 64, 2
        for w in (2.1, 2.5, LG7, 3.0):
            for regime in ("2D", "3D", "2.5D"):
                cell = table1_cell(regime, "strassen-like", n, p, c, omega0=w)
                # reconstruct the numerator: bound * p^exponent * c-part
                if regime == "2.5D":
                    c_part = c ** (w / 2 - 1)
                else:
                    c_part = 1.0
                numerator = cell.bound * (p**cell.exponent_of_p) * c_part
                rows.append(
                    {
                        "omega0": w,
                        "regime": regime,
                        "bound": cell.bound,
                        "p_exponent": cell.exponent_of_p,
                        "reconstructed_numerator": numerator,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_table(rows, title="[E10] numerator is omega0-free (§6.1)"))
    n = 256
    for row in rows:
        assert row["reconstructed_numerator"] == pytest.approx(n * n, rel=1e-9)


def test_e10_caps_frontier_follows_bound_curve(benchmark, emit):
    """Measured CAPS (words, memory) pairs run parallel to (n/√M)^ω₀·M/p."""
    result = benchmark.pedantic(lambda: caps_memory_sweep(n=112, ell=2), rounds=1, iterations=1)
    rows = sorted(result["rows"], key=lambda r: r["mem_peak"])
    emit(render_table(rows, title="[E10] CAPS frontier vs Cor 1.2 curve"))
    # along the frontier, measured words decrease as memory increases,
    # exactly the direction the bound curve prescribes
    words = [r["measured_words"] for r in rows]
    assert words == sorted(words, reverse=True)
