"""E10 — §6.1: memory regimes interpolate; the ω₀-free numerator.

Thin wrappers over the ``memory_sweep`` and ``caps_tradeoff`` registry
workloads (each evaluated once per session via conftest fixtures): the
2.5D replication knob against its bound, the §6.1 observation that
improving ω₀ changes only the *power of p* (never the n² numerator), and
the measured CAPS frontier.
"""

import pytest

from repro.experiments.report import render_table


def test_e10_regime_interpolation(memory_sweep_payload, emit):
    """2.5D walks from the 2D cell to the 3D cell as c grows."""
    rows = memory_sweep_payload["c_sweep"]["rows"]
    emit(render_table(rows, title="[E10] 2.5D: memory regime interpolation"))
    # memory regime grows with c while measured words shrink
    mems = [r["M_regime"] for r in rows]
    words = [r["measured_words"] for r in rows]
    assert mems == sorted(mems)
    assert words[-1] < words[0]


def test_e10_numerator_omega_free(memory_sweep_payload, emit):
    """§6.1: Table I numerators do not depend on ω₀ — only p's power does."""
    rows = memory_sweep_payload["numerator_rows"]
    emit(render_table(rows, title="[E10] numerator is omega0-free (§6.1)"))
    n = memory_sweep_payload["numerator_n"]
    for row in rows:
        assert row["reconstructed_numerator"] == pytest.approx(n * n, rel=1e-9)


def test_e10_caps_frontier_follows_bound_curve(caps_tradeoff_payload, emit):
    """Measured CAPS (words, memory) pairs run parallel to (n/√M)^ω₀·M/p."""
    rows = sorted(caps_tradeoff_payload["sweep"]["rows"], key=lambda r: r["mem_peak"])
    emit(render_table(rows, title="[E10] CAPS frontier vs Cor 1.2 curve"))
    # along the frontier, measured words decrease as memory increases,
    # exactly the direction the bound curve prescribes
    words = [r["measured_words"] for r in rows]
    assert words == sorted(words, reverse=True)
