"""E3′ — the exact-expansion engine v2 at its raised limit.

Thin wrappers over the ``exact_v2`` / ``small_set_exact`` registry
workloads (shared with ``python -m repro bench``): the timed bodies solve
graphs beyond the pre-v2 22-vertex ceiling — a 26-vertex full enumeration,
the 28-vertex ``Dec_2`` of a ⟨1,2,2⟩-type scheme under the "auto" policy,
and exact ``h_s`` of a 40-vertex graph via the size-restricted walk.
"""

import pytest

from repro.engine.bench import get_bench
from repro.engine.cache import EngineCache


def test_exact_v2_raised_limit(benchmark, emit):
    w = get_bench("exact_v2")
    payload = benchmark.pedantic(
        lambda: w.call(cache=EngineCache(disk=False)), rounds=1, iterations=1
    )
    check = payload["check"]
    emit(
        f"[E3'] exact v2: h(n=22)={check['h_head']:.6f} "
        f"h(n=26)={check['h_deep']:.6f} "
        f"Dec2<1,2,2> method={check['dec2_method']} h={check['dec2_h']}"
    )
    # beyond the old EXACT_LIMIT=22 regime, solved exactly
    assert check["dec2_method"] == "exact"
    assert check["h_deep"] > 0
    # witnesses obey Eq. 4's size constraint
    assert 1 <= check["head_witness"] <= 11
    assert 1 <= check["deep_witness"] <= 13


def test_small_set_exact_40_vertices(benchmark, emit):
    w = get_bench("small_set_exact")
    payload = benchmark.pedantic(
        lambda: w.call(cache=EngineCache(disk=False)), rounds=1, iterations=1
    )
    check = payload["check"]
    emit(f"[E3'] exact h_s on V={check['V']}: {check['h_s']}")
    assert check["V"] == 40
    hs = check["h_s"]
    # a larger size budget can only find a sparser cut
    assert all(hs[i + 1] <= hs[i] for i in range(len(hs) - 1))
    assert hs[-1] == pytest.approx(min(hs))
