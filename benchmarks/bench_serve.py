"""S1 — the serving layer under concurrent load.

Thin wrapper over the ``serve_load`` registry workload (shared with
``python -m repro bench``): boots the asyncio HTTP service on a free
port, fires a wave of identical ``/expansion`` requests from every
client at once, then a mixed ``/bounds`` + ``/healthz`` rotation.  The
assertions pin the single-flight invariant — however many clients race
the same question, the cache builds its artifact chain exactly once.
"""

from repro.engine.bench import get_bench
from repro.engine.cache import EngineCache


def test_serve_load_single_flight(benchmark, emit):
    w = get_bench("serve_load")
    cache = EngineCache(disk=False)
    payload = benchmark.pedantic(lambda: w.call(cache=cache, quick=True), rounds=1, iterations=1)
    check = payload["check"]
    metrics = payload["metrics"]
    emit(
        f"[S1] serve: {metrics['requests']} requests "
        f"@ {metrics['requests_per_s']:.0f} req/s "
        f"p50={metrics['latency_p50_ms']:.2f}ms "
        f"p99={metrics['latency_p99_ms']:.2f}ms builds={check['builds']}"
    )
    assert check["errors"] == 0
    assert check["responses_ok"] == metrics["requests"]
    # 8 clients raced the identical /expansion; single-flight means one
    # build chain (dec graph + spectrum + estimate) total, not one each
    assert check["builds"] == 3
