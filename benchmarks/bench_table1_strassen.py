"""E7/E10 — Table I, Strassen-like column: CAPS vs Corollary 1.2.

Thin wrappers over the ``table1_scaling``, ``caps_tradeoff``, and
``table1`` registry workloads.
"""

from repro.engine.bench import get_bench
from repro.experiments.report import render_table


def test_e7_caps_unlimited_memory(table1_scaling_payload, emit):
    """All-BFS CAPS vs the unlimited-memory shape n²/p^(2/ω₀)."""
    result = table1_scaling_payload["caps"]
    emit(render_table(result["rows"], title="[E7] CAPS all-BFS vs n^2/p^(2/omega0)"))
    rows = result["rows"]
    assert all(r["verified"] for r in rows)
    # the normalized ratio grows at most ~log p (the paper's O(log p) slack)
    assert rows[1]["measured/shape"] / rows[0]["measured/shape"] < 2.5


def test_e7_caps_memory_bandwidth_tradeoff(caps_tradeoff_payload, emit):
    """Corollary 1.2 as a frontier: schedules trade memory for bandwidth."""
    result = caps_tradeoff_payload["sweep"]
    emit(render_table(result["rows"], title="[E7] CAPS schedules: words vs memory (p=49)"))
    rows = {r["schedule"]: r for r in result["rows"]}
    assert all(r["verified"] for r in result["rows"])
    # monotone frontier: BB (max memory, min words) ... DDBB (min memory, max words)
    assert rows["BB"]["mem_peak"] > rows["DBB"]["mem_peak"] > rows["DDBB"]["mem_peak"]
    assert (
        rows["BB"]["measured_words"]
        < rows["DBB"]["measured_words"]
        < rows["DDBB"]["measured_words"]
    )
    # soundness against Cor 1.2 evaluated at each run's own peak memory
    assert all(r["measured/bound"] >= 1.0 for r in result["rows"])
    # tightness band: within a bounded constant of the bound across the
    # whole frontier (the paper: attained up to O(log p))
    ratios = [r["measured/bound"] for r in result["rows"]]
    assert max(ratios) / min(ratios) < 2.5


def test_e6_e7_table1_complete(benchmark, emit):
    """The full six-cell Table I with measured words beside every bound."""
    w = get_bench("table1")
    payload = benchmark.pedantic(lambda: w.call(), rounds=1, iterations=1)
    rows = payload["rows"]
    emit(render_table(rows, title="[E6/E7] Table I — all cells, measured vs bound"))
    assert len(rows) == 6
    for row in rows:
        assert row["measured_words"] >= row["bound"] * 0.99  # soundness
    # the Strassen-like bounds are strictly below classical per regime
    by = {(r["regime"], r["class"]): r for r in rows}
    for regime in ("2D", "3D", "2.5D"):
        assert (
            by[(regime, "strassen-like")]["p_exponent"] >= by[(regime, "classical")]["p_exponent"]
        )
