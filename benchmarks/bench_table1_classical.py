"""E6 — Table I, classical column: Cannon (2D), 3D, 2.5D on the simulator."""

import pytest

from repro.experiments.report import render_table
from repro.experiments.table1 import (
    classical_2d_scaling,
    threed_scaling,
    two5d_c_sweep,
)


def test_e6_2d_row(benchmark, emit):
    """Row 1: Ω(n²/√p), attained by Cannon (flat measured/bound ratio)."""
    result = benchmark.pedantic(
        lambda: classical_2d_scaling(n=64, qs=(2, 4, 8, 16)), rounds=1, iterations=1
    )
    emit(render_table(result["rows"], title="[E6] Table I row 1 (2D classical)"))
    emit(f"cannon p-exponent = {result['cannon_p_exponent']:.4f} (bound: -0.5)")
    benchmark.extra_info["cannon_p_exponent"] = result["cannon_p_exponent"]
    assert abs(result["cannon_p_exponent"] - (-0.5)) < 0.02
    cannon_ratios = [
        r["measured/bound"] for r in result["rows"] if r["algorithm"] == "cannon"
    ]
    assert max(cannon_ratios) / min(cannon_ratios) < 1.05  # attains the bound
    assert all(r["verified"] for r in result["rows"])


def test_e6_3d_row(benchmark, emit):
    """Row 2: Ω(n²/p^(2/3)), attained by the 3D algorithm (up to lg p)."""
    result = benchmark.pedantic(lambda: threed_scaling(n=64, qs=(2, 4, 8)), rounds=1, iterations=1)
    emit(render_table(result["rows"], title="[E6] Table I row 2 (3D classical)"))
    emit(f"3d p-exponent = {result['p_exponent']:.4f} (bound: -0.667; lg-factor softens it)")
    benchmark.extra_info["p_exponent"] = result["p_exponent"]
    # within the lg-p slack: between -0.75 and -0.35
    assert -0.8 < result["p_exponent"] < -0.3
    assert all(r["verified"] for r in result["rows"])


def test_e6_25d_row(benchmark, emit):
    """Row 3: Ω(n²/√(c·p)) — the c-sweep at fixed grid (§6.1's regime knob)."""
    result = benchmark.pedantic(
        lambda: two5d_c_sweep(n=64, q=8, cs=(1, 2, 4, 8)), rounds=1, iterations=1
    )
    emit(render_table(result["rows"], title="[E6] Table I row 3 (2.5D classical)"))
    emit(f"(c·p)-exponent = {result['cp_exponent']:.4f} (bound: -0.5; replication adds Θ(M·lg c))")
    rows = result["rows"]
    # more replication never increases the measured words at fixed q
    words = [r["measured_words"] for r in rows]
    assert words[-1] < words[0]
    assert all(r["verified"] for r in rows)
    # soundness: measured >= bound everywhere
    assert all(r["measured/bound"] >= 1.0 for r in rows)
