"""E6 — Table I, classical column: Cannon (2D), 3D, 2.5D on the simulator.

Thin wrappers over the ``table1_scaling`` and ``memory_sweep`` registry
workloads; each bundle is evaluated once per session (conftest fixtures)
and asserted on here, while ``python -m repro bench`` owns the timings.
"""

from repro.experiments.report import render_table


def test_e6_2d_row(table1_scaling_payload, emit):
    """Row 1: Ω(n²/√p), attained by Cannon (flat measured/bound ratio)."""
    result = table1_scaling_payload["2d"]
    emit(render_table(result["rows"], title="[E6] Table I row 1 (2D classical)"))
    emit(f"cannon p-exponent = {result['cannon_p_exponent']:.4f} (bound: -0.5)")
    assert abs(result["cannon_p_exponent"] - (-0.5)) < 0.02
    cannon_ratios = [
        r["measured/bound"] for r in result["rows"] if r["algorithm"] == "cannon"
    ]
    assert max(cannon_ratios) / min(cannon_ratios) < 1.05  # attains the bound
    assert all(r["verified"] for r in result["rows"])


def test_e6_3d_row(table1_scaling_payload, emit):
    """Row 2: Ω(n²/p^(2/3)), attained by the 3D algorithm (up to lg p)."""
    result = table1_scaling_payload["3d"]
    emit(render_table(result["rows"], title="[E6] Table I row 2 (3D classical)"))
    emit(f"3d p-exponent = {result['p_exponent']:.4f} (bound: -0.667; lg-factor softens it)")
    # within the lg-p slack: between -0.75 and -0.35
    assert -0.8 < result["p_exponent"] < -0.3
    assert all(r["verified"] for r in result["rows"])


def test_e6_25d_row(memory_sweep_payload, emit):
    """Row 3: Ω(n²/√(c·p)) — the c-sweep at fixed grid (§6.1's regime knob)."""
    result = memory_sweep_payload["c_sweep"]
    emit(render_table(result["rows"], title="[E6] Table I row 3 (2.5D classical)"))
    emit(f"(c·p)-exponent = {result['cp_exponent']:.4f} (bound: -0.5; replication adds Θ(M·lg c))")
    rows = result["rows"]
    # more replication never increases the measured words at fixed q
    words = [r["measured_words"] for r in rows]
    assert words[-1] < words[0]
    assert all(r["verified"] for r in rows)
    # soundness: measured >= bound everywhere
    assert all(r["measured/bound"] >= 1.0 for r in rows)
