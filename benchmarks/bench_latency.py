"""E8 — latency (footnote 8): messages ≥ bandwidth-bound / M, everywhere."""

import pytest

from repro.experiments.latency_exp import parallel_latency, sequential_latency
from repro.experiments.report import render_table


def test_e8_sequential_latency(benchmark, emit):
    result = benchmark.pedantic(
        lambda: sequential_latency("strassen", M=768, ns=(128, 256, 512, 1024)),
        rounds=1,
        iterations=1,
    )
    emit(render_table(result["rows"], title="[E8] DF-Strassen messages vs bound/M"))
    for row in result["rows"]:
        assert row["measured_messages"] >= row["latency_bound"]
    # the measured/bound ratio stays in a constant band (same exponent)
    ratios = [r["measured/bound"] for r in result["rows"]]
    assert max(ratios) / min(ratios) < 1.3


def test_e8_parallel_latency(benchmark, emit):
    result = benchmark.pedantic(lambda: parallel_latency(n=64), rounds=1, iterations=1)
    emit(render_table(result["rows"], title="[E8] parallel message counts vs bound/M"))
    for row in result["rows"]:
        assert row["measured_messages"] >= row["latency_bound"]
