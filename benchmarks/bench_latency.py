"""E8 — latency (footnote 8): messages ≥ bandwidth-bound / M, everywhere.

Thin wrappers over the ``latency`` registry workload, evaluated once per
session (conftest fixture) and shared by both assertions.
"""

from repro.experiments.report import render_table


def test_e8_sequential_latency(latency_payload, emit):
    result = latency_payload["sequential"]
    emit(render_table(result["rows"], title="[E8] DF-Strassen messages vs bound/M"))
    for row in result["rows"]:
        assert row["measured_messages"] >= row["latency_bound"]
    # the measured/bound ratio stays in a constant band (same exponent)
    ratios = [r["measured/bound"] for r in result["rows"]]
    assert max(ratios) / min(ratios) < 1.3


def test_e8_parallel_latency(latency_payload, emit):
    result = latency_payload["parallel"]
    emit(render_table(result["rows"], title="[E8] parallel message counts vs bound/M"))
    for row in result["rows"]:
        assert row["measured_messages"] >= row["latency_bound"]
