"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables/figures (experiment ids
E1–E11 in DESIGN.md §4) and prints the measured-vs-bound table it produced.
The benchmark timer measures the harness run; the scientific payload is the
printed table plus the shape assertions, recorded in EXPERIMENTS.md.
"""

import pytest


def pytest_configure(config):
    # Benchmarks print their tables; -s is implied by how we run them in CI
    # (pytest benchmarks/ --benchmark-only -s), but capturing stays on
    # harmlessly otherwise.
    pass


@pytest.fixture(autouse=True, scope="session")
def _hermetic_engine_cache(tmp_path_factory):
    """Per-session temp default cache for the benchmarks.

    Each benchmark's warmup round populates it, so the timed rounds still
    measure the warm path — but a stale persistent cache can never leak old
    artifacts into the measured tables.
    """
    from repro.engine.cache import EngineCache, set_default_cache

    cache = EngineCache(tmp_path_factory.mktemp("engine-cache"))
    previous = set_default_cache(cache)
    yield
    set_default_cache(previous)


@pytest.fixture
def emit():
    """Print a rendered experiment table under capture-friendly markers."""

    def _emit(text: str) -> None:
        print("\n" + text)

    return _emit


def _workload_payload(name: str):
    from repro.engine.bench import get_bench

    return get_bench(name).call()


# One shared evaluation per multi-part registry workload: the pytest layer
# asserts on these payloads (pytest-benchmark timings, where kept, cover
# workloads evaluated exactly once); `python -m repro bench` owns the
# authoritative timing of every workload.


@pytest.fixture(scope="session")
def table1_scaling_payload():
    """table1_scaling bundle (2D/3D/CAPS fits; its CAPS leg runs n = 224)."""
    return _workload_payload("table1_scaling")


@pytest.fixture(scope="session")
def memory_sweep_payload():
    """memory_sweep bundle (2.5D c-sweep + ω₀-free numerator rows)."""
    return _workload_payload("memory_sweep")


@pytest.fixture(scope="session")
def caps_tradeoff_payload():
    """caps_tradeoff bundle (all CAPS schedules at n = 112, p = 49)."""
    return _workload_payload("caps_tradeoff")


@pytest.fixture(scope="session")
def plan_tournament_payload():
    """plan_tournament bundle (auto-scheduler winners per topology × memory)."""
    return _workload_payload("plan_tournament")


@pytest.fixture(scope="session")
def latency_payload():
    """latency bundle (sequential + parallel message counts)."""
    return _workload_payload("latency")


@pytest.fixture(scope="session")
def partition_payload():
    """partition_bound bundle (Eq. 6 vs Belady + the tiny true optimum)."""
    return _workload_payload("partition_bound")
