"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables/figures (experiment ids
E1–E11 in DESIGN.md §4) and prints the measured-vs-bound table it produced.
The benchmark timer measures the harness run; the scientific payload is the
printed table plus the shape assertions, recorded in EXPERIMENTS.md.
"""

import pytest


def pytest_configure(config):
    # Benchmarks print their tables; -s is implied by how we run them in CI
    # (pytest benchmarks/ --benchmark-only -s), but capturing stays on
    # harmlessly otherwise.
    pass


@pytest.fixture(autouse=True, scope="session")
def _hermetic_engine_cache(tmp_path_factory):
    """Per-session temp default cache for the benchmarks.

    Each benchmark's warmup round populates it, so the timed rounds still
    measure the warm path — but a stale persistent cache can never leak old
    artifacts into the measured tables.
    """
    from repro.engine.cache import EngineCache, set_default_cache

    cache = EngineCache(tmp_path_factory.mktemp("engine-cache"))
    previous = set_default_cache(cache)
    yield
    set_default_cache(previous)


@pytest.fixture
def emit():
    """Print a rendered experiment table under capture-friendly markers."""

    def _emit(text: str) -> None:
        print("\n" + text)

    return _emit
