"""E4/E5/E11 — Figures 2 and 3 and the §5.1.1 dichotomy, as measurements.

Structural reports build through the engine cache; each benchmark warms the
cache once and times the steady-state path (the cold pass is the one-time
build cost the cache amortizes across every downstream experiment).
"""

import pytest

from repro.experiments.report import render_table
from repro.experiments.structure_exp import (
    dec1_connectivity_table,
    figure2_report,
    figure3_tree_report,
)


def test_e4_figure2_panels(benchmark, emit):
    """Figure 2: Dec₁C, H₁, Dec_k C, H_k — all labeled properties hold."""
    rep = benchmark.pedantic(
        lambda: figure2_report("strassen", 5), rounds=1, iterations=1, warmup_rounds=1
    )
    emit(f"[E4] Figure 2 structural report (strassen, k=5):\n{rep}")
    assert rep["dec1"]["V"] == 11
    assert rep["dec1"]["connected"]
    assert rep["deck"]["max_degree"] <= 6          # Fact 4.2
    assert rep["hk"]["dec_fraction"] >= 1 / 3      # §4.1's α = 1/3
    # Enc out-degree grows with k (the reason Dec is analyzed instead)
    assert rep["hk"]["max_input_outdeg"] >= 5
    assert rep["hk"]["n_mults"] == 7**5


def test_e5_figure3_tree(benchmark, emit):
    """Figure 3: the recursion tree T_k partitions Dec_k C correctly."""
    rep = benchmark.pedantic(
        lambda: figure3_tree_report("strassen", 5), rounds=1, iterations=1, warmup_rounds=1
    )
    emit(render_table(rep["rows"], title="[E5] recursion tree T_k levels (Fig. 3)"))
    assert rep["partition_ok"]
    for row in rep["rows"]:
        assert row["n_nodes"] == row["expected_nodes"]
        assert row["|V_u|"] == row["expected_size"]


def test_e11_dec1_connectivity(benchmark, emit):
    """§5.1.1: Dec₁C connectivity separates Strassen-like from classical."""
    rows = benchmark.pedantic(
        dec1_connectivity_table, rounds=1, iterations=1, warmup_rounds=1
    )
    emit(render_table(rows, title="[E11] Dec1C connectivity (critical assumption)"))
    by_name = {r["scheme"]: r for r in rows}
    assert by_name["strassen"]["dec1_connected"]
    assert by_name["winograd"]["dec1_connected"]
    assert by_name["strassen2x"]["dec1_connected"]
    assert not by_name["classical2"]["dec1_connected"]
    assert not by_name["classical3"]["dec1_connected"]
