"""E4/E5/E11 — Figures 2 and 3 and the §5.1.1 dichotomy, as measurements.

Thin wrappers over the ``cdag_structure`` and ``cdag_build`` registry
workloads: one shared definition serves pytest-benchmark and
``python -m repro bench``; the assertions here pin the labeled structural
properties on the payloads.

The ``cdag_structure`` bundle (fig2 + fig3 + connectivity) is *timed* once
on the warm-cache path (``test_e4_figure2_panels``); the sibling tests
assert against the module fixture's payload instead of re-running it.
"""

import pytest

from repro.engine.bench import get_bench
from repro.engine.cache import EngineCache
from repro.experiments.report import render_table


@pytest.fixture(scope="module")
def structure_state():
    """A warmed cache plus one evaluation of the cdag_structure bundle."""
    cache = EngineCache(disk=False)
    payload = get_bench("cdag_structure").call(cache=cache)
    return cache, payload


def test_e4_figure2_panels(benchmark, emit, structure_state):
    """Figure 2: Dec₁C, H₁, Dec_k C, H_k — all labeled properties hold."""
    cache, _ = structure_state
    w = get_bench("cdag_structure")
    # the fixture warmed the cache, so this times the steady-state path
    payload = benchmark.pedantic(lambda: w.call(cache=cache), rounds=1, iterations=1)
    rep = payload["fig2"]
    emit(f"[E4] Figure 2 structural report (strassen, k=5):\n{rep}")
    assert rep["dec1"]["V"] == 11
    assert rep["dec1"]["connected"]
    assert rep["deck"]["max_degree"] <= 6          # Fact 4.2
    assert rep["hk"]["dec_fraction"] >= 1 / 3      # §4.1's α = 1/3
    # Enc out-degree grows with k (the reason Dec is analyzed instead)
    assert rep["hk"]["max_input_outdeg"] >= 5
    assert rep["hk"]["n_mults"] == 7**5


def test_e5_figure3_tree(structure_state, emit):
    """Figure 3: the recursion tree T_k partitions Dec_k C correctly."""
    _, payload = structure_state
    rep = payload["fig3"]
    emit(render_table(rep["rows"], title="[E5] recursion tree T_k levels (Fig. 3)"))
    assert rep["partition_ok"]
    for row in rep["rows"]:
        assert row["n_nodes"] == row["expected_nodes"]
        assert row["|V_u|"] == row["expected_size"]


def test_e11_dec1_connectivity(structure_state, emit):
    """§5.1.1: Dec₁C connectivity separates Strassen-like from classical."""
    _, payload = structure_state
    rows = payload["connectivity"]
    emit(render_table(rows, title="[E11] Dec1C connectivity (critical assumption)"))
    by_name = {r["scheme"]: r for r in rows}
    assert by_name["strassen"]["dec1_connected"]
    assert by_name["winograd"]["dec1_connected"]
    assert by_name["strassen2x"]["dec1_connected"]
    assert not by_name["classical2"]["dec1_connected"]
    assert not by_name["classical3"]["dec1_connected"]


def test_e4_cdag_build_cold(benchmark, emit):
    """The cold build path: Dec_k C and H_k constructed from scratch."""
    w = get_bench("cdag_build")
    payload = benchmark.pedantic(lambda: w.call(), rounds=1, iterations=1)
    g, hg = payload["dec"], payload["h"]
    emit(
        f"[E4] built Dec_6 C (V={g.n_vertices}, E={g.n_edges}) and H_6 "
        f"(V={hg.cdag.n_vertices}, E={hg.cdag.n_edges})"
    )
    # independently pinned sizes for strassen k=6: V = Σ 4^t·7^(6−t)
    # (Fact 4.6) and E = nnz(W)=12 edges per Dec₁C copy
    assert (g.n_vertices, g.n_edges) == (269053, 454212)
    assert (hg.cdag.n_vertices, hg.cdag.n_edges) == (655755, 1446530)
