"""Auto-scheduler tournament: planner winners across topologies and memory.

Thin wrappers over the ``plan_tournament`` registry workload (evaluated
once per session via the conftest fixture): on every topology the planner
must rank at least one feasible plan per memory rung, the top plan must
flip algorithms somewhere along the ladder (Table I's regime claim made
constructive), and no ranked plan may undercut the memory-independent
lower bound.
"""

from repro.experiments.report import render_table


def test_plan_winner_flips_across_memory_ladder(plan_tournament_payload, emit):
    """The top-ranked algorithm changes between memory rungs on each topology."""
    rows = []
    for spec, report in plan_tournament_payload["reports"].items():
        rows.append({"topology": spec, **report["winners"], "flips": report["flips"]})
    emit(render_table(rows, title="[plan] tournament winners per topology"))
    flips = [report["flips"] for report in plan_tournament_payload["reports"].values()]
    assert any(flips), "no topology showed a regime flip across the memory ladder"


def test_plan_rankings_respect_lower_bounds(plan_tournament_payload):
    """Every ranked plan's predicted words sit on or above its lower bound."""
    for spec, report in plan_tournament_payload["reports"].items():
        for table in report["tables"]:
            for row in table["rows"]:
                assert row["words"] >= 0.99 * row["lower_bound"], (
                    f"{spec}: plan {row['label']} undercuts its lower bound"
                )


def test_plan_tables_sorted_by_predicted_time(plan_tournament_payload):
    """Rankings are genuinely sorted (the tournament's ordering invariant)."""
    for report in plan_tournament_payload["reports"].values():
        for table in report["tables"]:
            times = [row["predicted_time"] for row in table["rows"]]
            assert times == sorted(times)
