"""E9 — the §3 partition argument validated against real executions.

Thin wrappers over the ``partition_bound`` registry workload (evaluated
once per session via the conftest fixture): for CDAGs of real algorithms
and real schedules, the certified Eq. 6 lower bound must sit below the
measured (Belady-optimal) schedule I/O — and for tiny graphs, below the
true optimum from exhaustive pebbling.
"""

from repro.experiments.report import render_table


def test_e9_partition_vs_measured(partition_payload, emit):
    rows = partition_payload["rows"]
    emit(render_table(rows, title="[E9] partition bound (Eq. 6) vs measured I/O"))
    for row in rows:
        assert row["partition_bound"] <= row["measured_io"]
    # the bound is non-vacuous on the memory-starved runs
    assert any(row["partition_bound"] > 0 for row in rows)


def test_e9_partition_vs_true_optimum(partition_payload, emit):
    """On a tiny graph the bound sits below the *provable* optimum."""
    r = partition_payload["tiny"]
    emit(
        f"[E9] matvec(2), M=4: partition bound {r['bound']} <= true optimum "
        f"{r['optimum']} <= Belady {r['belady']}"
    )
    assert r["bound"] <= r["optimum"] <= r["belady"]
