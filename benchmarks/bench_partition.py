"""E9 — the §3 partition argument validated against real executions.

For CDAGs of real algorithms and real schedules, the certified Eq. 6 lower
bound must sit below the measured (Belady-optimal) schedule I/O — and for
tiny graphs, below the true optimum from exhaustive pebbling.
"""

import pytest

from repro.cdag.classical_cdag import classical_matmul_cdag, matvec_cdag
from repro.cdag.pebble import exhaustive_min_io, schedule_io
from repro.cdag.schedule import bfs_topological_order, dfs_topological_order
from repro.cdag.strassen_cdag import h_graph
from repro.experiments.report import render_table


def _partition_rows():
    from repro.core.partition import best_partition_bound

    rows = []
    cases = [
        ("classical n=4", classical_matmul_cdag(4), 8),
        ("classical n=5", classical_matmul_cdag(5), 12),
        ("matvec n=6", matvec_cdag(6), 6),
        ("strassen H_2", h_graph("strassen", 2).cdag, 8),
        ("strassen H_3", h_graph("strassen", 3).cdag, 16),
        ("winograd H_2", h_graph("winograd", 2).cdag, 8),
    ]
    for name, g, M in cases:
        for order_name, order_fn in (
            ("dfs", dfs_topological_order),
            ("bfs", bfs_topological_order),
        ):
            order = order_fn(g)
            measured = schedule_io(g, order, M=M, policy="belady").total
            bound, seg = best_partition_bound(g, order, M)
            rows.append(
                {
                    "graph": name,
                    "order": order_name,
                    "M": M,
                    "partition_bound": bound,
                    "measured_io": measured,
                    "gap": measured / bound if bound else float("inf"),
                    "segment": seg,
                }
            )
    return rows


def test_e9_partition_vs_measured(benchmark, emit):
    rows = benchmark.pedantic(_partition_rows, rounds=1, iterations=1)
    emit(render_table(rows, title="[E9] partition bound (Eq. 6) vs measured I/O"))
    for row in rows:
        assert row["partition_bound"] <= row["measured_io"]
    # the bound is non-vacuous on the memory-starved runs
    assert any(row["partition_bound"] > 0 for row in rows)


def test_e9_partition_vs_true_optimum(benchmark, emit):
    """On a tiny graph the bound sits below the *provable* optimum."""

    def run():
        from repro.core.partition import best_partition_bound

        g = matvec_cdag(2)
        M = 4
        opt = exhaustive_min_io(g, M)
        order = dfs_topological_order(g)
        bound, _ = best_partition_bound(g, order, M)
        belady = schedule_io(g, order, M=M, policy="belady").total
        return {"bound": bound, "optimum": opt, "belady": belady}

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"[E9] matvec(2), M=4: partition bound {r['bound']} <= true optimum "
        f"{r['optimum']} <= Belady {r['belady']}"
    )
    assert r["bound"] <= r["optimum"] <= r["belady"]
