"""Structural analysis of computation graphs against the paper's claims.

Each function here is an *executable version of a statement in the paper*:
it returns measured quantities and (where the paper makes a sharp claim)
raises ``AssertionError`` with a precise message when the structure
disagrees.  The test suite and the Figure 2/3 benchmarks drive these.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cdag.graph import CDAG
from repro.cdag.schemes import BilinearScheme, get_scheme
from repro.cdag.strassen_cdag import dec_graph, dec_level_sizes, h_graph

__all__ = [
    "LayerProfile",
    "layer_profile",
    "check_fact_4_2",
    "check_fact_4_6",
    "check_dec1_connected",
    "check_claim_5_1",
    "degree_histogram",
    "structure_report",
]


@dataclass(frozen=True)
class LayerProfile:
    """Per-level vertex counts and cross-level edge counts of a layered CDAG."""

    level_sizes: np.ndarray          # vertices per level
    cross_edges: np.ndarray          # edges between level t and t+1
    n_levels: int


def layer_profile(g: CDAG) -> LayerProfile:
    """Measure the layer structure of a layered graph (levels from ``g.levels``)."""
    if np.any(g.levels < 0):
        raise ValueError("graph is not layered (levels unset)")
    n_levels = int(g.levels.max()) + 1
    sizes = np.bincount(g.levels, minlength=n_levels)
    lev_src = g.levels[g.src]
    lev_dst = g.levels[g.dst]
    if np.any(np.abs(lev_dst - lev_src) != 1):
        raise ValueError("layered graph has an edge skipping a level")
    lo = np.minimum(lev_src, lev_dst)
    cross = np.bincount(lo, minlength=max(n_levels - 1, 1))[: n_levels - 1]
    return LayerProfile(level_sizes=sizes, cross_edges=cross, n_levels=n_levels)


def check_fact_4_2(
    scheme: BilinearScheme | str,
    k: int,
    g: CDAG | None = None,
    g1: CDAG | None = None,
) -> int:
    """Fact 4.2: all vertices of ``Dec_k C`` have degree at most a constant.

    For Strassen the constant is 6 (out-degree ≤ 4, in-degree ≤ 2).  Returns
    the measured max degree; raises if it exceeds the scheme's own bound
    ``max_out + max_in`` derived from ``Dec₁C``.  Prebuilt graphs may be
    passed to avoid rebuilding (the engine's cached path).
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    if g1 is None:
        g1 = dec_graph(scheme, 1)
    bound = int(g1.out_degree.max() + g1.in_degree.max())
    if g is None:
        g = dec_graph(scheme, k)
    measured = g.max_degree
    assert measured <= bound, (
        f"Fact 4.2 violated: Dec_{k}C max degree {measured} exceeds "
        f"Dec_1C-derived bound {bound}"
    )
    return measured


def check_fact_4_6(
    scheme: BilinearScheme | str,
    k: int,
    g: CDAG | None = None,
    prof: LayerProfile | None = None,
) -> dict:
    """Fact 4.6: level sizes and the 3/7-style mass ratios of ``Dec_k C``.

    Verifies ``|l_i| = c₀^(k−i+1) · t₀^(i−1)`` (in the paper's numbering) and
    the bounds on ``|l_{k+1}|/|V|`` and ``|l_1|/|V|``.  Returns the measured
    ratios.  The generic-scheme form replaces 4/7 with c₀/t₀ (§5.1.2), with
    ``c₀ = m₀·p₀`` for rectangular schemes.  A prebuilt graph and its
    profile may be passed to avoid rebuilding.
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    c0 = scheme.c_blocks
    t0 = scheme.t0
    if g is None:
        g = dec_graph(scheme, k)
    if prof is None:
        prof = layer_profile(g)
    expected = dec_level_sizes(scheme, k)
    assert np.array_equal(prof.level_sizes, expected), (
        f"Fact 4.6 violated: level sizes {prof.level_sizes} != {expected}"
    )
    V = g.n_vertices
    rho = c0 / t0
    top_ratio = t0**k / V                       # |l_{k+1}| / |V|
    bottom_ratio = c0**k / V                    # |l_1| / |V|
    if c0 == t0:
        # Degenerate rank-= -output schemes (e.g. classical<2,1,2>): every
        # level has the same size, so each holds exactly 1/(k+1) of the mass.
        exact = 1.0 / (k + 1)
        lo = exact
        correction = 1.0
    else:
        lo = (1 - rho) / 1.0                    # = 3/7 for Strassen
        # Exact identity: |V| = t0^k (1 - rho^{k+1}) / (1 - rho), so the mass
        # ratio is (1 - rho)/(1 - rho^{k+1}).  (The paper's display writes the
        # correction with exponent k+2 — a harmless slip in a Θ-level fact;
        # the geometric sum over k+1 levels gives k+1.)
        exact = (1 - rho) / (1 - rho ** (k + 1))
        correction = 1.0 / (1.0 - rho ** (k + 1))
    assert abs(top_ratio - exact) < 1e-9, (
        f"Fact 4.6 violated: top mass ratio {top_ratio} != exact {exact}"
    )
    assert lo * (1 - 1e-12) <= top_ratio <= lo * correction * (1 + 1e-12)
    assert abs(bottom_ratio - exact * rho**k) < 1e-9
    return {
        "top_ratio": top_ratio,
        "bottom_ratio": bottom_ratio,
        "lower": lo,
        "upper": lo * correction,
    }


def check_dec1_connected(scheme: BilinearScheme | str, g1: CDAG | None = None) -> bool:
    """The §5.1.1 critical technical assumption: is ``Dec₁C`` connected?

    Returns the measured connectivity (True/False) rather than asserting —
    classical schemes are *supposed* to fail this check.
    """
    if g1 is None:
        g1 = dec_graph(scheme, 1)
    return g1.is_connected_undirected()


def check_claim_5_1(scheme: BilinearScheme | str, g: CDAG | None = None) -> bool:
    """Claim 5.1: input and output vertex sets of ``Dec₁C`` are disjoint.

    The paper proves this from irreducibility of the output bilinear forms;
    structurally it means no row of W is a "forwarding" row, so the decode
    graph of any valid scheme keeps its levels disjoint.  Returns True when
    disjoint (and asserts, since every valid scheme must satisfy it).
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    if g is None:
        g = dec_graph(scheme, 1)
    inputs = set(np.flatnonzero(g.levels == 0).tolist())
    outputs = set(np.flatnonzero(g.levels == 1).tolist())
    disjoint = not (inputs & outputs)
    assert disjoint, "Claim 5.1 violated: Dec1C has a vertex that is input and output"
    # The deeper statement: outputs are true inner products, so every output
    # must depend on at least two products for n0 >= 2 (an output with a
    # single W nonzero would mean one multiplication computes an entire
    # inner product — impossible for a bilinear form of rank > 1; for
    # n0 = 1 a single product is the whole answer).
    if scheme.n0 >= 2:
        indeg = g.in_degree[np.flatnonzero(g.levels == 1)]
        assert int(indeg.min()) >= 1
    return disjoint


def degree_histogram(g: CDAG) -> dict[int, int]:
    """Histogram {degree: count} of undirected degrees."""
    vals, counts = np.unique(g.degree, return_counts=True)
    return {int(v): int(c) for v, c in zip(vals, counts)}


def structure_report(scheme_name: str, k: int, build_dec=None, build_h=None) -> dict:
    """One-stop structural summary used by the Figure 2 benchmark (E4).

    Builds ``Dec₁C``, ``H₁``, ``Dec_k C``, ``H_k`` (the four panels of
    Fig. 2) and returns their vital statistics plus the paper checks.
    ``build_dec`` / ``build_h`` override the graph constructors — the engine
    passes its cached builders here; each graph is built exactly once.
    """
    if build_dec is None:
        build_dec = dec_graph
    if build_h is None:
        build_h = h_graph
    scheme = get_scheme(scheme_name)
    dec1 = build_dec(scheme, 1)
    h1 = build_h(scheme, 1)
    deck = build_dec(scheme, k)
    hk = build_h(scheme, k)
    deck_profile = layer_profile(deck)
    return {
        "scheme": scheme_name,
        "k": k,
        "dec1": {"V": dec1.n_vertices, "E": dec1.n_edges,
                 "connected": dec1.is_connected_undirected()},
        "h1": {"V": h1.cdag.n_vertices, "E": h1.cdag.n_edges},
        "deck": {
            "V": deck.n_vertices,
            "E": deck.n_edges,
            "max_degree": check_fact_4_2(scheme, k, g=deck, g1=dec1),
            "level_sizes": deck_profile.level_sizes.tolist(),
            "mass_ratios": check_fact_4_6(scheme, k, g=deck, prof=deck_profile),
        },
        "hk": {
            "V": hk.cdag.n_vertices,
            "E": hk.cdag.n_edges,
            "dec_fraction": hk.dec_fraction,
            "max_input_outdeg": int(hk.cdag.out_degree[hk.a_inputs].max()),
            "n_mults": len(hk.mult_ids),
        },
    }
