"""Incremental CDAG builder.

A tiny append-only tape of vertices and edges; the recursive constructors in
:mod:`repro.cdag.strassen_cdag` and the tracing machinery use it and then
``freeze()`` into the immutable :class:`~repro.cdag.graph.CDAG`.
"""

from __future__ import annotations

import numpy as np

from repro.cdag.graph import CDAG, VertexKind

__all__ = ["GraphBuilder", "layered_circulant_cdag"]


def layered_circulant_cdag(n: int, offsets: tuple[int, ...] = (1, 3, 7)) -> CDAG:
    """A deterministic ``n``-vertex benchmark DAG: edges ``i → i+δ``.

    The acyclic analogue of a circulant graph — connected (via ``δ=1``),
    near-regular, and parameterized purely by ``n``, so the exact-expansion
    benchmarks can pin check values on graphs of *any* size instead of being
    restricted to the vertex counts the ``Dec_k C`` family happens to hit.
    """
    if n < 2:
        raise ValueError("need at least 2 vertices")
    b = GraphBuilder()
    b.add_vertices(n, VertexKind.ADD)
    src, dst = [], []
    for delta in offsets:
        for i in range(n - delta):
            src.append(i)
            dst.append(i + delta)
    b.add_edges(src, dst)
    return b.freeze()


class GraphBuilder:
    """Append-only builder for :class:`CDAG`.

    Vertices are dense integers in creation order.  Scalar appends go to
    Python lists (amortized O(1)); bulk edge batches are kept as the numpy
    arrays they arrive as and only concatenated once at ``freeze`` time, so
    large vectorized constructions never round-trip through Python lists.
    """

    def __init__(self) -> None:
        self._kinds: list[int] = []
        self._levels: list[int] = []
        # Edge tape: scalar appends buffer in _src/_dst and are flushed into
        # _edge_chunks before any bulk batch, preserving append order.
        self._src: list[int] = []
        self._dst: list[int] = []
        self._edge_chunks: list[tuple[np.ndarray, np.ndarray]] = []
        self._n_edges = 0

    # ------------------------------------------------------------------ #

    @property
    def n_vertices(self) -> int:
        return len(self._kinds)

    @property
    def n_edges(self) -> int:
        return self._n_edges

    def add_vertex(self, kind: int = VertexKind.ADD, level: int = -1) -> int:
        """Append one vertex; returns its index."""
        self._kinds.append(kind)
        self._levels.append(level)
        return len(self._kinds) - 1

    def add_vertices(self, count: int, kind: int, level: int = -1) -> np.ndarray:
        """Append ``count`` vertices of one kind; returns their indices."""
        start = len(self._kinds)
        self._kinds.extend([kind] * count)
        self._levels.extend([level] * count)
        return np.arange(start, start + count, dtype=np.int64)

    def add_edge(self, u: int, v: int) -> None:
        """Append directed edge ``u -> v`` (producer to consumer)."""
        if u == v:
            raise ValueError("self-loop")
        self._src.append(int(u))
        self._dst.append(int(v))
        self._n_edges += 1

    def add_edges(self, us, vs) -> None:
        """Append many edges at once from two equal-length sequences."""
        us = np.asarray(us, dtype=np.int64).ravel()
        vs = np.asarray(vs, dtype=np.int64).ravel()
        if us.shape != vs.shape:
            raise ValueError("endpoint arrays must have equal length")
        if np.any(us == vs):
            raise ValueError("self-loop")
        self._flush_scalars()
        self._edge_chunks.append((us.copy(), vs.copy()))
        self._n_edges += len(us)

    def _flush_scalars(self) -> None:
        if self._src:
            self._edge_chunks.append(
                (
                    np.asarray(self._src, dtype=np.int64),
                    np.asarray(self._dst, dtype=np.int64),
                )
            )
            self._src = []
            self._dst = []

    def set_kind(self, v: int, kind: int) -> None:
        """Re-tag a vertex (e.g. mark a decode sink as OUTPUT after wiring)."""
        self._kinds[v] = kind

    def set_level(self, v: int, level: int) -> None:
        self._levels[v] = level

    def freeze(self) -> CDAG:
        """Build the immutable CDAG."""
        self._flush_scalars()
        if self._edge_chunks:
            src = np.concatenate([c[0] for c in self._edge_chunks])
            dst = np.concatenate([c[1] for c in self._edge_chunks])
        else:
            src = np.empty(0, dtype=np.int64)
            dst = np.empty(0, dtype=np.int64)
        return CDAG(
            n_vertices=len(self._kinds),
            src=src,
            dst=dst,
            kinds=np.asarray(self._kinds, dtype=np.int8),
            levels=np.asarray(self._levels, dtype=np.int32),
        )
