"""Bilinear matrix-multiplication base cases ("Strassen-like" schemes, §5.1).

A scheme ⟨n₀, m₀⟩ multiplies two ``n₀ × n₀`` matrices with ``m₀`` scalar
multiplications.  It is encoded by three coefficient matrices

* ``U`` (m₀ × n₀²): row ``r`` gives the left linear form
  ``L_r = Σ U[r, i] · vec(A)_i``,
* ``V`` (m₀ × n₀²): row ``r`` gives the right linear form
  ``R_r = Σ V[r, j] · vec(B)_j``,
* ``W`` (n₀² × m₀): ``vec(C)_k = Σ W[k, r] · (L_r · R_r)``,

with row-major ``vec``.  Recursive application multiplies ``n × n`` matrices
in ``Θ(n^ω₀)`` operations with ``ω₀ = log_{n₀} m₀`` (§5.1).

The registry carries the schemes used throughout the paper and our
experiments:

=================  =====  =====  ==========  =============================
name               n₀     m₀     ω₀          role
=================  =====  =====  ==========  =============================
``strassen``       2      7      lg 7        the paper's main subject
``winograd``       2      7      lg 7        15-addition variant (§1.4.2)
``classical2``     2      8      3           cubic recursion, disconnected
                                             Dec₁C (§5.1.1 contrast)
``classical3``     3      27     3           cubic with 3×3 base
``strassen2x``     4      49     lg 7        Strassen ⊗ Strassen
``hybrid4``        4      56     log₄ 56     Strassen ⊗ classical2 — a
                                             genuinely different ω₀ ≈ 2.904
=================  =====  =====  ==========  =============================

Every scheme is validated against the Brent equations (exactly, on basis
matrices) when constructed, so a wrong coefficient cannot survive import.

A 3×3/23-multiplication (Laderman) scheme is deliberately *not* shipped:
its coefficient tables cannot be re-derived from first principles here, and
we only include schemes whose correctness the library itself can prove.
The composed schemes (``hybrid4`` in particular) already provide a
genuinely different ω₀ for the Theorem 1.3 exponent sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

__all__ = [
    "BilinearScheme",
    "strassen_scheme",
    "winograd_scheme",
    "classical_scheme",
    "compose_schemes",
    "get_scheme",
    "available_schemes",
]


@dataclass(frozen=True)
class BilinearScheme:
    """A validated ⟨n₀, m₀⟩ bilinear matrix-multiplication base case."""

    name: str
    n0: int
    U: np.ndarray
    V: np.ndarray
    W: np.ndarray
    validate: bool = field(default=True, repr=False)

    def __post_init__(self):
        n0sq = self.n0 * self.n0
        U = np.asarray(self.U, dtype=np.float64)
        V = np.asarray(self.V, dtype=np.float64)
        W = np.asarray(self.W, dtype=np.float64)
        object.__setattr__(self, "U", U)
        object.__setattr__(self, "V", V)
        object.__setattr__(self, "W", W)
        if U.shape != (self.m0, n0sq):
            raise ValueError(f"U must be (m0, n0^2); got {U.shape}")
        if V.shape != (self.m0, n0sq):
            raise ValueError(f"V must be (m0, n0^2); got {V.shape}")
        if W.shape != (n0sq, self.m0):
            raise ValueError(f"W must be (n0^2, m0); got {W.shape}")
        if self.validate and not self.brent_residual() == 0.0:
            raise ValueError(
                f"scheme {self.name!r} does not satisfy the Brent equations "
                f"(residual {self.brent_residual()})"
            )

    # ------------------------------------------------------------------ #

    @property
    def m0(self) -> int:
        """Number of scalar multiplications of the base case."""
        return self.U.shape[0]

    @property
    def omega0(self) -> float:
        """The arithmetic exponent ``ω₀ = log_{n₀} m₀`` (§5.1)."""
        return math.log(self.m0) / math.log(self.n0)

    @property
    def n_additions(self) -> int:
        """Flat linear-stage addition count (nnz − 1 per nonempty form).

        This evaluates every linear form independently, with no reuse of
        common subexpressions: Strassen's classic "18 additions" is already
        flat, while Winograd's "15 additions" relies on CSE (its flat count
        is 24 — S₁ = A₂₁+A₂₂ etc. are shared between forms).  The CDAG
        construction and the I/O accounting both use the flat evaluation,
        which changes constants only.
        """
        total = 0
        for mat in (self.U, self.V):
            nnz_per_row = (mat != 0).sum(axis=1)
            total += int((np.maximum(nnz_per_row - 1, 0)).sum())
        nnz_per_row = (self.W != 0).sum(axis=1)
        total += int((np.maximum(nnz_per_row - 1, 0)).sum())
        return total

    # ------------------------------------------------------------------ #

    def brent_residual(self) -> float:
        """Max abs deviation from the Brent equations.

        Checked exactly on all basis pairs: for ``A = E_{ij}``, ``B = E_{kl}``
        the product is ``δ_{jk} E_{il}``.  All our schemes have small-integer
        coefficients, so the float computation is exact and a correct scheme
        returns exactly 0.0.
        """
        n0 = self.n0
        n0sq = n0 * n0
        # L[r, a] * R[r, b] summed with W gives the bilinear map on basis
        # vectors:   C_vec[k; a, b] = sum_r W[k, r] U[r, a] V[r, b].
        # Compare against the exact matrix-multiplication tensor.
        T = np.einsum("kr,ra,rb->kab", self.W, self.U, self.V)
        T_true = np.zeros((n0sq, n0sq, n0sq))
        for i in range(n0):
            for j in range(n0):
                for k in range(n0):
                    for l in range(n0):
                        if j == k:
                            T_true[i * n0 + l, i * n0 + j, k * n0 + l] = 1.0
        return float(np.max(np.abs(T - T_true)))

    def apply(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """One non-recursive application to ``n₀ × n₀`` numeric matrices."""
        n0 = self.n0
        if A.shape != (n0, n0) or B.shape != (n0, n0):
            raise ValueError("apply() is the base case: matrices must be n0 x n0")
        a = A.reshape(-1)
        b = B.reshape(-1)
        products = (self.U @ a) * (self.V @ b)
        return (self.W @ products).reshape(n0, n0)

    def apply_blocked(self, Ablocks: list, Bblocks: list, multiply) -> list:
        """One blocked application: ``Ablocks``/``Bblocks`` are the n₀² blocks
        in row-major order; ``multiply(X, Y)`` is the recursive product.

        Returns the n₀² blocks of C.  This is *the* recursion step of every
        Strassen-like algorithm (sequential, I/O-explicit, and parallel code
        paths all funnel through it), so it is written once here.
        """
        left = [_linear_combination(self.U[r], Ablocks) for r in range(self.m0)]
        right = [_linear_combination(self.V[r], Bblocks) for r in range(self.m0)]
        prods = [multiply(left[r], right[r]) for r in range(self.m0)]
        return [_linear_combination(self.W[k], prods) for k in range(self.n0 * self.n0)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BilinearScheme({self.name!r}, n0={self.n0}, m0={self.m0}, "
            f"omega0={self.omega0:.4f})"
        )


def _linear_combination(coeffs: np.ndarray, blocks: list):
    """``Σ coeffs[i] · blocks[i]`` skipping zeros (blocks are numpy arrays)."""
    out = None
    for c, blk in zip(coeffs, blocks):
        if c == 0:
            continue
        term = blk if c == 1 else c * blk
        out = term.copy() if out is None and c == 1 else (term if out is None else out + term)
    if out is None:
        out = np.zeros_like(blocks[0])
    return out


# ---------------------------------------------------------------------- #
# concrete schemes                                                        #
# ---------------------------------------------------------------------- #


def strassen_scheme() -> BilinearScheme:
    """Strassen's original 7-multiplication scheme (Appendix A, Algorithm 1)."""
    # vec order: [A11, A12, A21, A22]
    U = np.array(
        [
            [1, 0, 0, 1],    # M1 = (A11 + A22) ...
            [0, 0, 1, 1],    # M2 = (A21 + A22) ...
            [1, 0, 0, 0],    # M3 = A11 ...
            [0, 0, 0, 1],    # M4 = A22 ...
            [1, 1, 0, 0],    # M5 = (A11 + A12) ...
            [-1, 0, 1, 0],   # M6 = (A21 - A11) ...
            [0, 1, 0, -1],   # M7 = (A12 - A22) ...
        ],
        dtype=np.float64,
    )
    V = np.array(
        [
            [1, 0, 0, 1],    # ... (B11 + B22)
            [1, 0, 0, 0],    # ... B11
            [0, 1, 0, -1],   # ... (B12 - B22)
            [-1, 0, 1, 0],   # ... (B21 - B11)
            [0, 0, 0, 1],    # ... B22
            [1, 1, 0, 0],    # ... (B11 + B12)
            [0, 0, 1, 1],    # ... (B21 + B22)
        ],
        dtype=np.float64,
    )
    W = np.array(
        [
            [1, 0, 0, 1, -1, 0, 1],   # C11 = M1 + M4 - M5 + M7
            [0, 0, 1, 0, 1, 0, 0],    # C12 = M3 + M5
            [0, 1, 0, 1, 0, 0, 0],    # C21 = M2 + M4
            [1, -1, 1, 0, 0, 1, 0],   # C22 = M1 - M2 + M3 + M6
        ],
        dtype=np.float64,
    )
    return BilinearScheme("strassen", 2, U, V, W)


def winograd_scheme() -> BilinearScheme:
    """Winograd's variant: 7 multiplications, 15 additions [Winograd 1971].

    The paper singles it out as the most used fast algorithm in practice
    (§1.4.2) and as a member of the Strassen-like class (§5.1.1).
    """
    U = np.array(
        [
            [1, 0, 0, 0],     # M1 = A11 ...
            [0, 1, 0, 0],     # M2 = A12 ...
            [1, 1, -1, -1],   # M3 = (A11 + A12 - A21 - A22) ...
            [0, 0, 0, 1],     # M4 = A22 ...
            [0, 0, 1, 1],     # M5 = (A21 + A22) ...
            [-1, 0, 1, 1],    # M6 = (A21 + A22 - A11) ...
            [1, 0, -1, 0],    # M7 = (A11 - A21) ...
        ],
        dtype=np.float64,
    )
    V = np.array(
        [
            [1, 0, 0, 0],     # ... B11
            [0, 0, 1, 0],     # ... B21
            [0, 0, 0, 1],     # ... B22
            [1, -1, -1, 1],   # ... (B11 - B12 - B21 + B22)
            [-1, 1, 0, 0],    # ... (B12 - B11)
            [1, -1, 0, 1],    # ... (B11 - B12 + B22)
            [0, -1, 0, 1],    # ... (B22 - B12)
        ],
        dtype=np.float64,
    )
    W = np.array(
        [
            [1, 1, 0, 0, 0, 0, 0],    # C11 = M1 + M2
            [1, 0, 1, 0, 1, 1, 0],    # C12 = M1 + M3 + M5 + M6
            [1, 0, 0, -1, 0, 1, 1],   # C21 = M1 - M4 + M6 + M7
            [1, 0, 0, 0, 1, 1, 1],    # C22 = M1 + M5 + M6 + M7
        ],
        dtype=np.float64,
    )
    return BilinearScheme("winograd", 2, U, V, W)


def classical_scheme(n0: int) -> BilinearScheme:
    """The classical ⟨n₀, n₀³⟩ scheme: one multiplication per (i, j, k) triple.

    Its ``Dec₁C`` decomposes into n₀² disconnected stars — the paper's §5.1.1
    example of an algorithm *outside* the Strassen-like class.
    """
    n0sq = n0 * n0
    m0 = n0 ** 3
    U = np.zeros((m0, n0sq))
    V = np.zeros((m0, n0sq))
    W = np.zeros((n0sq, m0))
    r = 0
    for i in range(n0):
        for j in range(n0):
            for k in range(n0):
                # multiplication r computes A[i, k] * B[k, j]
                U[r, i * n0 + k] = 1.0
                V[r, k * n0 + j] = 1.0
                W[i * n0 + j, r] = 1.0
                r += 1
    return BilinearScheme(f"classical{n0}", n0, U, V, W)


def compose_schemes(s1: BilinearScheme, s2: BilinearScheme, name: str | None = None) -> BilinearScheme:
    """Tensor (Kronecker) composition: a ⟨n₁n₂, m₁m₂⟩ scheme from two schemes.

    Multiplying ``n₁n₂ × n₁n₂`` matrices by viewing them as ``n₁ × n₁`` blocks
    of ``n₂ × n₂`` matrices and running ``s1`` with ``s2`` as the block
    multiplier.  This is how the uniform recursive family of §5.1 composes,
    and it manufactures *validated* schemes with new exponents, e.g.
    strassen ⊗ classical2 has ``ω₀ = log₄ 56 ≈ 2.904``.
    """
    n1, n2 = s1.n0, s2.n0
    n = n1 * n2
    # Permutation from block-major (i1, j1, i2, j2) to row-major (i, j) vec.
    # blockmajor index = (i1*n1 + j1) * n2^2 + (i2*n2 + j2)
    # rowmajor  index = (i1*n2 + i2) * n + (j1*n2 + j2)
    perm = np.empty(n * n, dtype=np.int64)  # perm[rowmajor] = blockmajor
    for i1 in range(n1):
        for j1 in range(n1):
            for i2 in range(n2):
                for j2 in range(n2):
                    bm = (i1 * n1 + j1) * (n2 * n2) + (i2 * n2 + j2)
                    rm = (i1 * n2 + i2) * n + (j1 * n2 + j2)
                    perm[rm] = bm
    U = np.kron(s1.U, s2.U)[:, perm]
    V = np.kron(s1.V, s2.V)[:, perm]
    W = np.kron(s1.W, s2.W)[perm, :]
    return BilinearScheme(name or f"{s1.name}*{s2.name}", n, U, V, W)


# ---------------------------------------------------------------------- #
# registry                                                                #
# ---------------------------------------------------------------------- #

_FACTORIES = {
    "strassen": strassen_scheme,
    "winograd": winograd_scheme,
    "classical2": lambda: classical_scheme(2),
    "classical3": lambda: classical_scheme(3),
    "strassen2x": lambda: compose_schemes(strassen_scheme(), strassen_scheme(), "strassen2x"),
    "hybrid4": lambda: compose_schemes(strassen_scheme(), classical_scheme(2), "hybrid4"),
}


@lru_cache(maxsize=None)
def get_scheme(name: str) -> BilinearScheme:
    """Fetch a validated scheme from the registry by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    return factory()


def available_schemes() -> list[str]:
    """Names of all registered schemes."""
    return sorted(_FACTORIES)
