"""Bilinear matrix-multiplication base cases ("Strassen-like" schemes, §5.1).

A *rectangular* scheme ⟨m₀, n₀, p₀; t₀⟩ multiplies an ``m₀ × n₀`` matrix by
an ``n₀ × p₀`` matrix with ``t₀`` scalar multiplications (the generality of
Ballard–Demmel–Holtz–Lipshitz–Schwartz, arXiv:1209.2184).  It is encoded by
three coefficient matrices

* ``U`` (t₀ × m₀n₀): row ``r`` gives the left linear form
  ``L_r = Σ U[r, i] · vec(A)_i``,
* ``V`` (t₀ × n₀p₀): row ``r`` gives the right linear form
  ``R_r = Σ V[r, j] · vec(B)_j``,
* ``W`` (m₀p₀ × t₀): ``vec(C)_k = Σ W[k, r] · (L_r · R_r)``,

with row-major ``vec``.  Recursive application multiplies
``m₀^k × n₀^k`` by ``n₀^k × p₀^k`` matrices in ``Θ(t₀^k)`` multiplications;
the arithmetic exponent is ``ω₀ = 3·log_{m₀n₀p₀} t₀`` (for square schemes
``m₀ = n₀ = p₀`` this reduces to the paper's ``log_{n₀} t₀``, §5.1).

The registry carries the schemes used throughout the paper and our
experiments:

=================  ===========  =====  ==========  ==========================
name               ⟨m₀,n₀,p₀⟩   t₀     ω₀          role
=================  ===========  =====  ==========  ==========================
``strassen``       ⟨2,2,2⟩      7      lg 7        the paper's main subject
``winograd``       ⟨2,2,2⟩      7      lg 7        15-addition variant
                                                   (§1.4.2)
``classical2``     ⟨2,2,2⟩      8      3           cubic recursion,
                                                   disconnected Dec₁C
                                                   (§5.1.1 contrast)
``classical3``     ⟨3,3,3⟩      27     3           cubic with 3×3 base
``strassen2x``     ⟨4,4,4⟩      49     lg 7        Strassen ⊗ Strassen
``hybrid4``        ⟨4,4,4⟩      56     log₄ 56     Strassen ⊗ classical2,
                                                   ω₀ ≈ 2.904
``classical122``   ⟨1,2,2⟩      4      3           outer-product row panel
``classical212``   ⟨2,1,2⟩      4      3           rank-1 update panel
``classical221``   ⟨2,2,1⟩      4      3           matrix–vector panel
``strassen122``    ⟨2,4,4⟩      28     ≈2.885      Strassen ⊗
                                                   classical⟨1,2,2⟩ — the
                                                   composed rectangular
                                                   pipeline exemplar
=================  ===========  =====  ==========  ==========================

Beyond the static registry, :func:`get_scheme` understands dynamic names of
the form ``classical<m>x<n>x<p>`` (e.g. ``classical1x3x2``) and builds the
corresponding classical rectangular scheme on demand.

Every scheme is validated against the rectangular Brent equations (exactly,
on basis matrices) when constructed, so a wrong coefficient cannot survive
import.

A 3×3/23-multiplication (Laderman) scheme is deliberately *not* shipped:
its coefficient tables cannot be re-derived from first principles here, and
we only include schemes whose correctness the library itself can prove.
The composed schemes (``hybrid4``/``strassen122`` in particular) already
provide genuinely different ω₀ and shapes for the exponent sweeps.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

__all__ = [
    "BilinearScheme",
    "strassen_scheme",
    "winograd_scheme",
    "classical_scheme",
    "classical_rect_scheme",
    "compose_schemes",
    "get_scheme",
    "available_schemes",
]


@dataclass(frozen=True)
class BilinearScheme:
    """A validated ⟨m₀, n₀, p₀; t₀⟩ bilinear matrix-multiplication base case.

    ``m₀ × n₀`` times ``n₀ × p₀`` in ``t₀`` scalar multiplications; the
    square schemes of the paper are the ``m₀ = n₀ = p₀`` special case.
    """

    name: str
    m0: int
    n0: int
    p0: int
    U: np.ndarray
    V: np.ndarray
    W: np.ndarray
    validate: bool = field(default=True, repr=False)

    def __post_init__(self):
        for dim, label in ((self.m0, "m0"), (self.n0, "n0"), (self.p0, "p0")):
            if not (isinstance(dim, (int, np.integer)) and dim >= 1):
                raise ValueError(f"{label} must be a positive integer; got {dim!r}")
        U = np.asarray(self.U, dtype=np.float64)
        V = np.asarray(self.V, dtype=np.float64)
        W = np.asarray(self.W, dtype=np.float64)
        object.__setattr__(self, "U", U)
        object.__setattr__(self, "V", V)
        object.__setattr__(self, "W", W)
        if U.ndim != 2 or U.shape[1] != self.m0 * self.n0:
            raise ValueError(f"U must be (t0, m0*n0); got {U.shape}")
        t0 = U.shape[0]
        if V.shape != (t0, self.n0 * self.p0):
            raise ValueError(f"V must be (t0, n0*p0); got {V.shape}")
        if W.shape != (self.m0 * self.p0, t0):
            raise ValueError(f"W must be (m0*p0, t0); got {W.shape}")
        if self.validate and not self.brent_residual() == 0.0:
            raise ValueError(
                f"scheme {self.name!r} does not satisfy the Brent equations "
                f"(residual {self.brent_residual()})"
            )

    # ------------------------------------------------------------------ #

    @property
    def t0(self) -> int:
        """Number of scalar multiplications (the scheme's bilinear rank)."""
        return self.U.shape[0]

    @property
    def shape(self) -> tuple[int, int, int]:
        """The base-case problem shape ``(m₀, n₀, p₀)``."""
        return (self.m0, self.n0, self.p0)

    @property
    def is_square(self) -> bool:
        """True for the paper's square case ``m₀ = n₀ = p₀``."""
        return self.m0 == self.n0 == self.p0

    @property
    def a_blocks(self) -> int:
        """Number of A operand blocks, ``m₀·n₀`` (= columns of U)."""
        return self.m0 * self.n0

    @property
    def b_blocks(self) -> int:
        """Number of B operand blocks, ``n₀·p₀`` (= columns of V)."""
        return self.n0 * self.p0

    @property
    def c_blocks(self) -> int:
        """Number of C output blocks, ``m₀·p₀`` (= rows of W)."""
        return self.m0 * self.p0

    @property
    def omega0(self) -> float:
        """The arithmetic exponent ``ω₀ = 3·log_{m₀n₀p₀} t₀``.

        Equals the paper's ``log_{n₀} t₀`` when the scheme is square.  The
        degenerate ⟨1,1,1;1⟩ scheme is assigned ω₀ = 3 by convention.
        """
        volume = self.m0 * self.n0 * self.p0
        if volume == 1 or self.t0 == volume:
            # classical rank: exactly 3 (avoid float slop like 3.0000000004,
            # which would trip the omega0 ∈ [2, 3] bound checks downstream)
            return 3.0
        return 3.0 * math.log(self.t0) / math.log(volume)

    @property
    def n_additions(self) -> int:
        """Flat linear-stage addition count (nnz − 1 per nonempty form).

        This evaluates every linear form independently, with no reuse of
        common subexpressions: Strassen's classic "18 additions" is already
        flat, while Winograd's "15 additions" relies on CSE (its flat count
        is 24 — S₁ = A₂₁+A₂₂ etc. are shared between forms).  The CDAG
        construction and the I/O accounting both use the flat evaluation,
        which changes constants only.
        """
        total = 0
        for mat in (self.U, self.V):
            nnz_per_row = (mat != 0).sum(axis=1)
            total += int((np.maximum(nnz_per_row - 1, 0)).sum())
        nnz_per_row = (self.W != 0).sum(axis=1)
        total += int((np.maximum(nnz_per_row - 1, 0)).sum())
        return total

    # ------------------------------------------------------------------ #

    def brent_residual(self) -> float:
        """Max abs deviation from the rectangular Brent equations.

        Checked exactly on all basis pairs: for ``A = E_{ij}`` (m₀×n₀) and
        ``B = E_{kl}`` (n₀×p₀) the product is ``δ_{jk} E_{il}`` (m₀×p₀).
        All our schemes have small-integer coefficients, so the float
        computation is exact and a correct scheme returns exactly 0.0.
        """
        m0, n0, p0 = self.m0, self.n0, self.p0
        # L[r, a] * R[r, b] summed with W gives the bilinear map on basis
        # vectors:   C_vec[k; a, b] = sum_r W[k, r] U[r, a] V[r, b].
        # Compare against the exact matrix-multiplication tensor.
        T = np.einsum("kr,ra,rb->kab", self.W, self.U, self.V)
        T_true = np.zeros((m0 * p0, m0 * n0, n0 * p0))
        for i in range(m0):
            for j in range(n0):
                for pp in range(p0):
                    T_true[i * p0 + pp, i * n0 + j, j * p0 + pp] = 1.0
        return float(np.max(np.abs(T - T_true)))

    def apply(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """One non-recursive application to ``m₀×n₀`` and ``n₀×p₀`` matrices."""
        if A.shape != (self.m0, self.n0) or B.shape != (self.n0, self.p0):
            raise ValueError(
                "apply() is the base case: A must be m0 x n0 and B must be n0 x p0"
            )
        a = A.reshape(-1)
        b = B.reshape(-1)
        products = (self.U @ a) * (self.V @ b)
        return (self.W @ products).reshape(self.m0, self.p0)

    def apply_blocked(self, Ablocks: list, Bblocks: list, multiply) -> list:
        """One blocked application: ``Ablocks`` are the m₀n₀ blocks of A and
        ``Bblocks`` the n₀p₀ blocks of B, each in row-major order;
        ``multiply(X, Y)`` is the recursive product.

        Returns the m₀p₀ blocks of C.  This is *the* recursion step of every
        Strassen-like algorithm (sequential, I/O-explicit, and parallel code
        paths all funnel through it), so it is written once here.
        """
        if len(Ablocks) != self.a_blocks or len(Bblocks) != self.b_blocks:
            raise ValueError(
                f"apply_blocked needs {self.a_blocks} A blocks and "
                f"{self.b_blocks} B blocks; got {len(Ablocks)}/{len(Bblocks)}"
            )
        left = [_linear_combination(self.U[r], Ablocks) for r in range(self.t0)]
        right = [_linear_combination(self.V[r], Bblocks) for r in range(self.t0)]
        prods = [multiply(left[r], right[r]) for r in range(self.t0)]
        return [_linear_combination(self.W[k], prods) for k in range(self.c_blocks)]

    def apply_recursive(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """Full recursive application: splits by ⟨m₀,n₀,p₀⟩ while the shapes
        divide evenly, and finishes with the plain product at the base.

        ``A`` must be ``m × n`` and ``B`` ``n × p``; the recursion depth is
        however many times ``(m, n, p)`` divides componentwise by the scheme
        shape.  Exact on integer inputs with the registry's coefficients.
        """
        A = np.asarray(A, dtype=np.float64)
        B = np.asarray(B, dtype=np.float64)
        if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
            raise ValueError("apply_recursive needs conformable 2-d matrices")
        m, n = A.shape
        p = B.shape[1]
        divisible = m % self.m0 == 0 and n % self.n0 == 0 and p % self.p0 == 0
        at_base = (m, n, p) == (1, 1, 1) or self.shape == (1, 1, 1)
        if not divisible or at_base:
            return A @ B
        Ablocks = _grid_blocks(A, self.m0, self.n0)
        Bblocks = _grid_blocks(B, self.n0, self.p0)
        Cblocks = self.apply_blocked(Ablocks, Bblocks, self.apply_recursive)
        rows = [
            np.hstack(Cblocks[i * self.p0 : (i + 1) * self.p0])
            for i in range(self.m0)
        ]
        return np.vstack(rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BilinearScheme({self.name!r}, shape={self.shape}, t0={self.t0}, "
            f"omega0={self.omega0:.4f})"
        )


def _grid_blocks(X: np.ndarray, rows: int, cols: int) -> list[np.ndarray]:
    """The ``rows × cols`` sub-blocks of X in row-major order (views)."""
    br = X.shape[0] // rows
    bc = X.shape[1] // cols
    return [
        X[i * br : (i + 1) * br, j * bc : (j + 1) * bc]
        for i in range(rows)
        for j in range(cols)
    ]


def _linear_combination(coeffs: np.ndarray, blocks: list):
    """``Σ coeffs[i] · blocks[i]`` skipping zeros (blocks are numpy arrays)."""
    out = None
    for c, blk in zip(coeffs, blocks):
        if c == 0:
            continue
        term = blk if c == 1 else c * blk
        out = term.copy() if out is None and c == 1 else (term if out is None else out + term)
    if out is None:
        out = np.zeros_like(blocks[0])
    return out


# ---------------------------------------------------------------------- #
# concrete schemes                                                        #
# ---------------------------------------------------------------------- #


def strassen_scheme() -> BilinearScheme:
    """Strassen's original 7-multiplication scheme (Appendix A, Algorithm 1)."""
    # vec order: [A11, A12, A21, A22]
    U = np.array(
        [
            [1, 0, 0, 1],    # M1 = (A11 + A22) ...
            [0, 0, 1, 1],    # M2 = (A21 + A22) ...
            [1, 0, 0, 0],    # M3 = A11 ...
            [0, 0, 0, 1],    # M4 = A22 ...
            [1, 1, 0, 0],    # M5 = (A11 + A12) ...
            [-1, 0, 1, 0],   # M6 = (A21 - A11) ...
            [0, 1, 0, -1],   # M7 = (A12 - A22) ...
        ],
        dtype=np.float64,
    )
    V = np.array(
        [
            [1, 0, 0, 1],    # ... (B11 + B22)
            [1, 0, 0, 0],    # ... B11
            [0, 1, 0, -1],   # ... (B12 - B22)
            [-1, 0, 1, 0],   # ... (B21 - B11)
            [0, 0, 0, 1],    # ... B22
            [1, 1, 0, 0],    # ... (B11 + B12)
            [0, 0, 1, 1],    # ... (B21 + B22)
        ],
        dtype=np.float64,
    )
    W = np.array(
        [
            [1, 0, 0, 1, -1, 0, 1],   # C11 = M1 + M4 - M5 + M7
            [0, 0, 1, 0, 1, 0, 0],    # C12 = M3 + M5
            [0, 1, 0, 1, 0, 0, 0],    # C21 = M2 + M4
            [1, -1, 1, 0, 0, 1, 0],   # C22 = M1 - M2 + M3 + M6
        ],
        dtype=np.float64,
    )
    return BilinearScheme("strassen", 2, 2, 2, U, V, W)


def winograd_scheme() -> BilinearScheme:
    """Winograd's variant: 7 multiplications, 15 additions [Winograd 1971].

    The paper singles it out as the most used fast algorithm in practice
    (§1.4.2) and as a member of the Strassen-like class (§5.1.1).
    """
    U = np.array(
        [
            [1, 0, 0, 0],     # M1 = A11 ...
            [0, 1, 0, 0],     # M2 = A12 ...
            [1, 1, -1, -1],   # M3 = (A11 + A12 - A21 - A22) ...
            [0, 0, 0, 1],     # M4 = A22 ...
            [0, 0, 1, 1],     # M5 = (A21 + A22) ...
            [-1, 0, 1, 1],    # M6 = (A21 + A22 - A11) ...
            [1, 0, -1, 0],    # M7 = (A11 - A21) ...
        ],
        dtype=np.float64,
    )
    V = np.array(
        [
            [1, 0, 0, 0],     # ... B11
            [0, 0, 1, 0],     # ... B21
            [0, 0, 0, 1],     # ... B22
            [1, -1, -1, 1],   # ... (B11 - B12 - B21 + B22)
            [-1, 1, 0, 0],    # ... (B12 - B11)
            [1, -1, 0, 1],    # ... (B11 - B12 + B22)
            [0, -1, 0, 1],    # ... (B22 - B12)
        ],
        dtype=np.float64,
    )
    W = np.array(
        [
            [1, 1, 0, 0, 0, 0, 0],    # C11 = M1 + M2
            [1, 0, 1, 0, 1, 1, 0],    # C12 = M1 + M3 + M5 + M6
            [1, 0, 0, -1, 0, 1, 1],   # C21 = M1 - M4 + M6 + M7
            [1, 0, 0, 0, 1, 1, 1],    # C22 = M1 + M5 + M6 + M7
        ],
        dtype=np.float64,
    )
    return BilinearScheme("winograd", 2, 2, 2, U, V, W)


def _classical_uvw(m0: int, n0: int, p0: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Coefficients of the classical ⟨m₀,n₀,p₀; m₀n₀p₀⟩ scheme."""
    t0 = m0 * n0 * p0
    U = np.zeros((t0, m0 * n0))
    V = np.zeros((t0, n0 * p0))
    W = np.zeros((m0 * p0, t0))
    r = 0
    for i in range(m0):
        for pp in range(p0):
            for j in range(n0):
                # multiplication r computes A[i, j] * B[j, pp]
                U[r, i * n0 + j] = 1.0
                V[r, j * p0 + pp] = 1.0
                W[i * p0 + pp, r] = 1.0
                r += 1
    return U, V, W


def classical_scheme(n0: int) -> BilinearScheme:
    """The classical square ⟨n₀,n₀,n₀; n₀³⟩ scheme: one multiplication per
    (i, j, k) triple.

    Its ``Dec₁C`` decomposes into n₀² disconnected stars — the paper's §5.1.1
    example of an algorithm *outside* the Strassen-like class.
    """
    U, V, W = _classical_uvw(n0, n0, n0)
    return BilinearScheme(f"classical{n0}", n0, n0, n0, U, V, W)


def classical_rect_scheme(m0: int, n0: int, p0: int, name: str | None = None) -> BilinearScheme:
    """The classical rectangular ⟨m₀,n₀,p₀; m₀n₀p₀⟩ scheme.

    One multiplication per (i, j, l) triple; ω₀ = 3 for every shape.  These
    are the self-provable building blocks the composed rectangular schemes
    are made from (e.g. strassen ⊗ classical⟨1,2,2⟩).  The default name is
    the unambiguous ``classical<m>x<n>x<p>`` form, which round-trips through
    :func:`get_scheme`.
    """
    U, V, W = _classical_uvw(m0, n0, p0)
    return BilinearScheme(name or f"classical{m0}x{n0}x{p0}", m0, n0, p0, U, V, W)


def _vec_interleave_perm(r1: int, c1: int, r2: int, c2: int) -> np.ndarray:
    """``perm[rowmajor] = blockmajor`` for an (r₁r₂ × c₁c₂) matrix viewed as
    an r₁×c₁ grid of r₂×c₂ blocks.

    blockmajor index = (i1*c1 + j1) * (r2*c2) + (i2*c2 + j2)
    rowmajor  index = (i1*r2 + i2) * (c1*c2) + (j1*c2 + j2)
    """
    perm = np.empty(r1 * r2 * c1 * c2, dtype=np.int64)
    for i1 in range(r1):
        for j1 in range(c1):
            for i2 in range(r2):
                for j2 in range(c2):
                    bm = (i1 * c1 + j1) * (r2 * c2) + (i2 * c2 + j2)
                    rm = (i1 * r2 + i2) * (c1 * c2) + (j1 * c2 + j2)
                    perm[rm] = bm
    return perm


def compose_schemes(
    s1: BilinearScheme, s2: BilinearScheme, name: str | None = None
) -> BilinearScheme:
    """Tensor (Kronecker) composition: ⟨m₁m₂, n₁n₂, p₁p₂; t₁t₂⟩ from two
    schemes — shapes multiply componentwise.

    Multiplying ``m₁m₂ × n₁n₂`` by ``n₁n₂ × p₁p₂`` matrices by viewing them
    as ``m₁ × n₁`` (resp. ``n₁ × p₁``) grids of blocks and running ``s1``
    with ``s2`` as the block multiplier.  This is how the uniform recursive
    family of §5.1 composes, and it manufactures *validated* schemes with
    new exponents and shapes, e.g. strassen ⊗ classical2 has
    ``ω₀ = log₄ 56 ≈ 2.904`` and strassen ⊗ classical⟨1,2,2⟩ is the
    rectangular ⟨2,4,4; 28⟩ scheme.
    """
    m = s1.m0 * s2.m0
    n = s1.n0 * s2.n0
    p = s1.p0 * s2.p0
    perm_a = _vec_interleave_perm(s1.m0, s1.n0, s2.m0, s2.n0)
    perm_b = _vec_interleave_perm(s1.n0, s1.p0, s2.n0, s2.p0)
    perm_c = _vec_interleave_perm(s1.m0, s1.p0, s2.m0, s2.p0)
    U = np.kron(s1.U, s2.U)[:, perm_a]
    V = np.kron(s1.V, s2.V)[:, perm_b]
    W = np.kron(s1.W, s2.W)[perm_c, :]
    return BilinearScheme(name or f"{s1.name}*{s2.name}", m, n, p, U, V, W)


# ---------------------------------------------------------------------- #
# registry                                                                #
# ---------------------------------------------------------------------- #

_FACTORIES = {
    "strassen": strassen_scheme,
    "winograd": winograd_scheme,
    "classical2": lambda: classical_scheme(2),
    "classical3": lambda: classical_scheme(3),
    "strassen2x": lambda: compose_schemes(strassen_scheme(), strassen_scheme(), "strassen2x"),
    "hybrid4": lambda: compose_schemes(strassen_scheme(), classical_scheme(2), "hybrid4"),
    "classical122": lambda: classical_rect_scheme(1, 2, 2, name="classical122"),
    "classical212": lambda: classical_rect_scheme(2, 1, 2, name="classical212"),
    "classical221": lambda: classical_rect_scheme(2, 2, 1, name="classical221"),
    "strassen122": lambda: compose_schemes(
        strassen_scheme(), classical_rect_scheme(1, 2, 2), "strassen122"
    ),
}

#: Dynamic registry names: ``classical<m>x<n>x<p>`` builds the classical
#: rectangular scheme for any shape on demand (e.g. ``classical1x3x2``).
_CLASSICAL_RECT_RE = re.compile(r"classical(\d+)x(\d+)x(\d+)\Z")

#: Largest m₀·n₀·p₀ accepted for dynamic names: Brent validation builds a
#: dense (m₀p₀ × m₀n₀ × n₀p₀) tensor, cubic in the volume, and get_scheme's
#: lru_cache pins every constructed scheme — so unbounded shapes would turn
#: a typo'd CLI flag into an OOM instead of an error.
_DYNAMIC_VOLUME_LIMIT = 1024


@lru_cache(maxsize=None)
def get_scheme(name: str) -> BilinearScheme:
    """Fetch a validated scheme from the registry by name.

    Accepts the static registry names plus dynamic classical rectangular
    names of the form ``classical<m>x<n>x<p>``.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        m = _CLASSICAL_RECT_RE.match(name)
        if m:
            dims = tuple(int(d) for d in m.groups())
            if min(dims) < 1:
                raise ValueError(f"scheme {name!r} has a zero dimension") from None
            volume = dims[0] * dims[1] * dims[2]
            if volume > _DYNAMIC_VOLUME_LIMIT:
                raise ValueError(
                    f"scheme {name!r} has volume m*n*p = {volume} > "
                    f"{_DYNAMIC_VOLUME_LIMIT}; validation of larger shapes is "
                    f"cubic in the volume — construct via classical_rect_scheme "
                    f"explicitly if you really need it"
                ) from None
            return classical_rect_scheme(*dims, name=name)
        raise KeyError(
            f"unknown scheme {name!r}; available: {sorted(_FACTORIES)} "
            f"(or classical<m>x<n>x<p>)"
        ) from None
    return factory()


def available_schemes() -> list[str]:
    """Names of all statically registered schemes."""
    return sorted(_FACTORIES)
