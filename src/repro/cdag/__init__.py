"""Computation-DAG substrate: graphs, schemes, constructions, pebbling."""

from repro.cdag.graph import CDAG, VertexKind
from repro.cdag.build import GraphBuilder
from repro.cdag.schemes import (
    BilinearScheme,
    available_schemes,
    classical_scheme,
    compose_schemes,
    get_scheme,
    strassen_scheme,
    winograd_scheme,
)
from repro.cdag.strassen_cdag import (
    HGraph,
    dec1_graph,
    dec_graph,
    dec_level_sizes,
    dec_vertex_count,
    enc_graph,
    h_graph,
    recursion_tree_partition,
)
from repro.cdag.classical_cdag import classical_matmul_cdag, matvec_cdag
from repro.cdag.pebble import ScheduleIO, exhaustive_min_io, schedule_io
from repro.cdag.schedule import (
    bfs_topological_order,
    dfs_topological_order,
    is_topological,
    random_topological_order,
    topological_order,
)

__all__ = [
    "CDAG",
    "VertexKind",
    "GraphBuilder",
    "BilinearScheme",
    "available_schemes",
    "classical_scheme",
    "compose_schemes",
    "get_scheme",
    "strassen_scheme",
    "winograd_scheme",
    "HGraph",
    "dec1_graph",
    "dec_graph",
    "dec_level_sizes",
    "dec_vertex_count",
    "enc_graph",
    "h_graph",
    "recursion_tree_partition",
    "classical_matmul_cdag",
    "matvec_cdag",
    "ScheduleIO",
    "exhaustive_min_io",
    "schedule_io",
    "bfs_topological_order",
    "dfs_topological_order",
    "is_topological",
    "random_topological_order",
    "topological_order",
]
