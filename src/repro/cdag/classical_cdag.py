"""CDAG of the classical Θ(n³) matrix-multiplication algorithm.

Used for three purposes in the reproduction:

* the §5.1.1 contrast — the classical base case has a *disconnected*
  ``Dec₁C`` (n₀² independent inner-product stars), which is why the paper's
  technique does not apply to it and Hong–Kung's does;
* cross-checks of the partition argument and the red–blue pebble game
  against the known `Ω(n³/√M)` classical bound [Hong & Kung 1981];
* small exactly-analyzable graphs for the test suite.

Two constructions are provided: the recursive one (via
:func:`repro.cdag.strassen_cdag.dec_graph` with a classical scheme) and the
direct flat one here, which matches how the classical algorithm is usually
drawn: a multiplication vertex per ``(i, j, l)`` triple and a binary
summation tree (or chain) per output ``(i, j)``.
"""

from __future__ import annotations


from repro.cdag.build import GraphBuilder
from repro.cdag.graph import CDAG, VertexKind

__all__ = ["classical_matmul_cdag", "matvec_cdag"]


def classical_matmul_cdag(n: int, reduction: str = "chain") -> CDAG:
    """CDAG of the classical n×n matrix multiplication.

    Parameters
    ----------
    n:
        Matrix dimension (vertices grow as ``n³`` — intended for small n).
    reduction:
        ``"chain"`` sums each inner product left-to-right (the natural
        sequential order, depth n); ``"tree"`` uses a balanced binary tree
        (depth lg n).  Both have the same vertex count and I/O behaviour in
        the Hong–Kung analysis; the option exists to exercise schedule- and
        pebble-game code on graphs of different depths.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if reduction not in ("chain", "tree"):
        raise ValueError("reduction must be 'chain' or 'tree'")
    b = GraphBuilder()
    a_ids = b.add_vertices(n * n, VertexKind.INPUT, level=0).reshape(n, n)
    b_ids = b.add_vertices(n * n, VertexKind.INPUT, level=0).reshape(n, n)
    for i in range(n):
        for j in range(n):
            prods = []
            for kk in range(n):
                m = b.add_vertex(VertexKind.MULT, level=1)
                b.add_edge(int(a_ids[i, kk]), m)
                b.add_edge(int(b_ids[kk, j]), m)
                prods.append(m)
            out = _reduce(b, prods, reduction)
            b.set_kind(out, VertexKind.OUTPUT)
    return b.freeze()


def _reduce(b: GraphBuilder, terms: list[int], reduction: str) -> int:
    """Combine product vertices into one output vertex; returns its id."""
    if len(terms) == 1:
        # Single term: introduce an explicit copy vertex so the output is an
        # arithmetic-op vertex distinct from the multiplication (keeps kinds
        # unambiguous for 1x1 matrices).
        v = b.add_vertex(VertexKind.ADD, level=2)
        b.add_edge(terms[0], v)
        return v
    if reduction == "chain":
        acc = terms[0]
        depth = 2
        for t in terms[1:]:
            v = b.add_vertex(VertexKind.ADD, level=depth)
            b.add_edge(acc, v)
            b.add_edge(t, v)
            acc = v
            depth += 1
        return acc
    # balanced tree
    level = 2
    while len(terms) > 1:
        nxt = []
        for i in range(0, len(terms) - 1, 2):
            v = b.add_vertex(VertexKind.ADD, level=level)
            b.add_edge(terms[i], v)
            b.add_edge(terms[i + 1], v)
            nxt.append(v)
        if len(terms) % 2:
            nxt.append(terms[-1])
        terms = nxt
        level += 1
    return terms[0]


def matvec_cdag(n: int) -> CDAG:
    """CDAG of a dense matrix–vector product (n² mults, n sum chains).

    A convenient low-expansion graph: Hong–Kung show matrix–vector has
    I/O Θ(n²) (no reuse), so it serves as a contrast case in the partition
    and pebble tests.
    """
    b = GraphBuilder()
    a_ids = b.add_vertices(n * n, VertexKind.INPUT, level=0).reshape(n, n)
    x_ids = b.add_vertices(n, VertexKind.INPUT, level=0)
    for i in range(n):
        prods = []
        for j in range(n):
            m = b.add_vertex(VertexKind.MULT, level=1)
            b.add_edge(int(a_ids[i, j]), m)
            b.add_edge(int(x_ids[j]), m)
            prods.append(m)
        out = _reduce(b, prods, "chain")
        b.set_kind(out, VertexKind.OUTPUT)
    return b.freeze()
