"""The computation-DAG (CDAG) data structure.

The paper models an algorithm's computation as a DAG with a vertex per input
element / arithmetic operation and an edge per direct dependency (§1.2, §3.1).
This module provides an immutable, numpy-backed representation sized for the
graphs we actually build: ``Dec_k C`` has ``Θ(7^k)`` vertices, so ``k`` up to
7 (~1M vertices) must stay cheap.  Adjacency is stored as flat edge arrays
plus lazily-built CSR indices; all per-vertex statistics are vectorized.

Conventions from the paper that the structure implements directly:

* **Undirected view** (§3.3, footnote 11): expansion arguments treat edges as
  undirected; ``edge_boundary`` and the expansion code work on the
  undirected simple graph.
* **Loop regularization** (§2.0.2): a non-regular graph of max degree ``d``
  is made ``d``-regular by adding loops, a loop adding 1 to the degree.
  Loops never contribute to any edge boundary, so the structure only records
  the *regular degree*; no physical loop edges are stored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np
import scipy.sparse as sp

__all__ = ["VertexKind", "CDAG"]


class VertexKind:
    """Integer codes for vertex roles (stored in ``CDAG.kinds`` as int8)."""

    INPUT = 0      # an input element (no predecessors)
    ADD = 1        # a linear arithmetic op (addition/subtraction/scaling)
    MULT = 2       # a scalar multiplication joining the two encodings
    OUTPUT = 3     # an output element (also an arithmetic op vertex)

    NAMES = {INPUT: "input", ADD: "add", MULT: "mult", OUTPUT: "output"}


@dataclass(frozen=True)
class CDAG:
    """Immutable computation DAG.

    Parameters
    ----------
    n_vertices:
        Number of vertices, numbered ``0 .. n_vertices-1``.
    src, dst:
        Edge arrays: directed edge ``src[i] -> dst[i]`` (dependency flows
        from producer to consumer, "edges going up" in a total order, §3.2).
    kinds:
        int8 array of :class:`VertexKind` codes, one per vertex.
    levels:
        Optional layer index per vertex for layered graphs (``Dec_k C`` is
        layered by recursion step, §4.1.2).  -1 when not layered.
    """

    n_vertices: int
    src: np.ndarray
    dst: np.ndarray
    kinds: np.ndarray
    levels: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        object.__setattr__(self, "src", np.asarray(self.src, dtype=np.int64))
        object.__setattr__(self, "dst", np.asarray(self.dst, dtype=np.int64))
        object.__setattr__(self, "kinds", np.asarray(self.kinds, dtype=np.int8))
        if self.levels is None:
            object.__setattr__(
                self, "levels", np.full(self.n_vertices, -1, dtype=np.int32)
            )
        else:
            object.__setattr__(
                self, "levels", np.asarray(self.levels, dtype=np.int32)
            )
        if len(self.kinds) != self.n_vertices:
            raise ValueError("kinds must have one entry per vertex")
        if len(self.src) != len(self.dst):
            raise ValueError("src/dst length mismatch")
        if len(self.src) and (
            self.src.min() < 0
            or self.dst.min() < 0
            or self.src.max() >= self.n_vertices
            or self.dst.max() >= self.n_vertices
        ):
            raise ValueError("edge endpoint out of range")
        if np.any(self.src == self.dst):
            raise ValueError("self-loops are not allowed in a CDAG")

    # ------------------------------------------------------------------ #
    # basic statistics                                                    #
    # ------------------------------------------------------------------ #

    @property
    def n_edges(self) -> int:
        """Number of directed edges."""
        return len(self.src)

    @cached_property
    def in_degree(self) -> np.ndarray:
        """In-degree per vertex (number of operands; ≤ 2 for binary-op CDAGs)."""
        return np.bincount(self.dst, minlength=self.n_vertices).astype(np.int64)

    @cached_property
    def out_degree(self) -> np.ndarray:
        """Out-degree per vertex (number of consumers; unbounded in general, §3.1)."""
        return np.bincount(self.src, minlength=self.n_vertices).astype(np.int64)

    @cached_property
    def degree(self) -> np.ndarray:
        """Total (undirected) degree per vertex, counting multi-edges once."""
        u, v = self._undirected_simple_edges()
        d = np.bincount(u, minlength=self.n_vertices)
        d += np.bincount(v, minlength=self.n_vertices)
        return d.astype(np.int64)

    @property
    def max_degree(self) -> int:
        """Maximum undirected degree — the ``d`` used for loop regularization."""
        return int(self.degree.max()) if self.n_vertices else 0

    @cached_property
    def inputs(self) -> np.ndarray:
        """Vertices with no incoming edges (graph sources)."""
        return np.flatnonzero(self.in_degree == 0)

    @cached_property
    def outputs(self) -> np.ndarray:
        """Vertices with no outgoing edges (graph sinks)."""
        return np.flatnonzero(self.out_degree == 0)

    def count_kind(self, kind: int) -> int:
        """Number of vertices with the given :class:`VertexKind` code."""
        return int(np.count_nonzero(self.kinds == kind))

    # ------------------------------------------------------------------ #
    # undirected view                                                     #
    # ------------------------------------------------------------------ #

    def _undirected_simple_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Deduplicated undirected edges as (u, v) with u < v."""
        if self.n_edges == 0:
            e = np.empty(0, dtype=np.int64)
            return e, e.copy()
        u = np.minimum(self.src, self.dst)
        v = np.maximum(self.src, self.dst)
        key = u * self.n_vertices + v
        _, idx = np.unique(key, return_index=True)
        return u[idx], v[idx]

    @cached_property
    def undirected_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Public accessor for the deduplicated undirected edge list."""
        return self._undirected_simple_edges()

    @cached_property
    def adjacency(self) -> sp.csr_matrix:
        """Symmetric 0/1 adjacency matrix of the undirected simple graph."""
        u, v = self.undirected_edges
        n = self.n_vertices
        data = np.ones(2 * len(u), dtype=np.float64)
        rows = np.concatenate([u, v])
        cols = np.concatenate([v, u])
        return sp.csr_matrix((data, (rows, cols)), shape=(n, n))

    def edge_boundary_size(self, mask: np.ndarray) -> int:
        """``|E(S, V\\S)|`` in the undirected simple graph for ``S = mask``.

        ``mask`` is a boolean array over vertices.  Loops added by
        regularization never cross a cut, so they are correctly ignored.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_vertices,):
            raise ValueError("mask must be a boolean vector over vertices")
        u, v = self.undirected_edges
        return int(np.count_nonzero(mask[u] != mask[v]))

    def is_connected_undirected(self) -> bool:
        """Connectivity of the undirected view (assumption §5.1.1 checks this)."""
        if self.n_vertices <= 1:
            return True
        ncomp, _ = sp.csgraph.connected_components(self.adjacency, directed=False)
        return ncomp == 1

    # ------------------------------------------------------------------ #
    # DAG structure                                                       #
    # ------------------------------------------------------------------ #

    @cached_property
    def topological_order(self) -> np.ndarray:
        """A topological order (Kahn's algorithm, vectorized frontier peeling)."""
        indeg = self.in_degree.copy()
        order = np.empty(self.n_vertices, dtype=np.int64)
        # CSR out-adjacency for fast frontier expansion.
        csr = sp.csr_matrix(
            (np.ones(self.n_edges, dtype=np.int8), (self.src, self.dst)),
            shape=(self.n_vertices, self.n_vertices),
        )
        frontier = np.flatnonzero(indeg == 0)
        pos = 0
        while len(frontier):
            order[pos : pos + len(frontier)] = frontier
            pos += len(frontier)
            # Decrement in-degrees of all successors of the frontier at once.
            succ_counts = np.asarray(
                csr[frontier].sum(axis=0)
            ).ravel()
            indeg = indeg - succ_counts.astype(indeg.dtype)
            newly_zero = (indeg == 0) & (succ_counts > 0)
            frontier = np.flatnonzero(newly_zero)
        if pos != self.n_vertices:
            raise ValueError("graph has a directed cycle")
        return order

    @cached_property
    def longest_path_level(self) -> np.ndarray:
        """Longest-path depth of each vertex from the sources (0 for inputs)."""
        depth = np.zeros(self.n_vertices, dtype=np.int64)
        order = self.topological_order
        # Process edges grouped by source in topological order.
        src_sorted = np.argsort(self.src, kind="stable") if self.n_edges else None
        out_csr = sp.csr_matrix(
            (np.arange(self.n_edges), (self.src, self.dst)),
            shape=(self.n_vertices, self.n_vertices),
        ) if self.n_edges else None
        if self.n_edges == 0:
            return depth
        indptr = out_csr.indptr  # type: ignore[union-attr]
        indices = out_csr.indices  # type: ignore[union-attr]
        for v in order:
            lo, hi = indptr[v], indptr[v + 1]
            if lo != hi:
                succ = indices[lo:hi]
                np.maximum.at(depth, succ, depth[v] + 1)
        return depth

    # ------------------------------------------------------------------ #
    # derived graphs                                                      #
    # ------------------------------------------------------------------ #

    def subgraph(self, vertices: np.ndarray) -> tuple["CDAG", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns ``(sub, mapping)`` where ``mapping[i]`` is the original index
        of the subgraph's vertex ``i``.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        keep = np.zeros(self.n_vertices, dtype=bool)
        keep[vertices] = True
        new_index = np.full(self.n_vertices, -1, dtype=np.int64)
        new_index[vertices] = np.arange(len(vertices))
        emask = keep[self.src] & keep[self.dst]
        sub = CDAG(
            n_vertices=len(vertices),
            src=new_index[self.src[emask]],
            dst=new_index[self.dst[emask]],
            kinds=self.kinds[vertices],
            levels=self.levels[vertices],
        )
        return sub, vertices

    def reversed(self) -> "CDAG":
        """The CDAG with every edge reversed (used by dominator analysis)."""
        return CDAG(
            n_vertices=self.n_vertices,
            src=self.dst.copy(),
            dst=self.src.copy(),
            kinds=self.kinds.copy(),
            levels=self.levels.copy(),
        )

    def as_networkx(self):
        """Directed networkx graph (small graphs only — O(V+E) python objects)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(
            (int(i), {"kind": VertexKind.NAMES[int(k)], "level": int(l)})
            for i, (k, l) in enumerate(zip(self.kinds, self.levels))
        )
        g.add_edges_from(zip(self.src.tolist(), self.dst.tolist()))
        return g

    # ------------------------------------------------------------------ #
    # misc                                                                #
    # ------------------------------------------------------------------ #

    def validate_binary_ops(self) -> bool:
        """Check in-degree ≤ 2 everywhere (arithmetic ops are binary, §3.1)."""
        return bool(np.all(self.in_degree <= 2))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CDAG(V={self.n_vertices}, E={self.n_edges}, "
            f"inputs={len(self.inputs)}, outputs={len(self.outputs)}, "
            f"max_deg={self.max_degree})"
        )
