"""The computation-DAG (CDAG) data structure.

The paper models an algorithm's computation as a DAG with a vertex per input
element / arithmetic operation and an edge per direct dependency (§1.2, §3.1).
This module provides an immutable, numpy-backed representation sized for the
graphs we actually build: ``Dec_k C`` has ``Θ(7^k)`` vertices, so ``k`` up to
7 (~1M vertices) must stay cheap.  Adjacency is stored as flat edge arrays
plus lazily-built CSR indices; all per-vertex statistics are vectorized.

Conventions from the paper that the structure implements directly:

* **Undirected view** (§3.3, footnote 11): expansion arguments treat edges as
  undirected; ``edge_boundary`` and the expansion code work on the
  undirected simple graph.
* **Loop regularization** (§2.0.2): a non-regular graph of max degree ``d``
  is made ``d``-regular by adding loops, a loop adding 1 to the degree.
  Loops never contribute to any edge boundary, so the structure only records
  the *regular degree*; no physical loop edges are stored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np
import scipy.sparse as sp

__all__ = ["VertexKind", "CDAG"]


def _gather_ranges(values: np.ndarray, starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``values[starts[i] : starts[i] + counts[i]]`` for all ``i``.

    The vectorized multi-slice gather used by the frontier-peeling loops:
    builds the flat index ``starts[i] + j`` for every in-range ``j`` with
    ``repeat``/``cumsum`` arithmetic instead of a Python loop over rows.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return values[:0]
    rep_starts = np.repeat(starts, counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return values[rep_starts + within]


class VertexKind:
    """Integer codes for vertex roles (stored in ``CDAG.kinds`` as int8)."""

    INPUT = 0      # an input element (no predecessors)
    ADD = 1        # a linear arithmetic op (addition/subtraction/scaling)
    MULT = 2       # a scalar multiplication joining the two encodings
    OUTPUT = 3     # an output element (also an arithmetic op vertex)

    NAMES = {INPUT: "input", ADD: "add", MULT: "mult", OUTPUT: "output"}


@dataclass(frozen=True)
class CDAG:
    """Immutable computation DAG.

    Parameters
    ----------
    n_vertices:
        Number of vertices, numbered ``0 .. n_vertices-1``.
    src, dst:
        Edge arrays: directed edge ``src[i] -> dst[i]`` (dependency flows
        from producer to consumer, "edges going up" in a total order, §3.2).
    kinds:
        int8 array of :class:`VertexKind` codes, one per vertex.
    levels:
        Optional layer index per vertex for layered graphs (``Dec_k C`` is
        layered by recursion step, §4.1.2).  -1 when not layered.
    """

    n_vertices: int
    src: np.ndarray
    dst: np.ndarray
    kinds: np.ndarray
    levels: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        object.__setattr__(self, "src", np.asarray(self.src, dtype=np.int64))
        object.__setattr__(self, "dst", np.asarray(self.dst, dtype=np.int64))
        object.__setattr__(self, "kinds", np.asarray(self.kinds, dtype=np.int8))
        if self.levels is None:
            object.__setattr__(
                self, "levels", np.full(self.n_vertices, -1, dtype=np.int32)
            )
        else:
            object.__setattr__(
                self, "levels", np.asarray(self.levels, dtype=np.int32)
            )
        if len(self.kinds) != self.n_vertices:
            raise ValueError("kinds must have one entry per vertex")
        if len(self.src) != len(self.dst):
            raise ValueError("src/dst length mismatch")
        if len(self.src) and (
            self.src.min() < 0
            or self.dst.min() < 0
            or self.src.max() >= self.n_vertices
            or self.dst.max() >= self.n_vertices
        ):
            raise ValueError("edge endpoint out of range")
        if np.any(self.src == self.dst):
            raise ValueError("self-loops are not allowed in a CDAG")

    # ------------------------------------------------------------------ #
    # basic statistics                                                    #
    # ------------------------------------------------------------------ #

    @property
    def n_edges(self) -> int:
        """Number of directed edges."""
        return len(self.src)

    @cached_property
    def in_degree(self) -> np.ndarray:
        """In-degree per vertex (number of operands; ≤ 2 for binary-op CDAGs)."""
        return np.bincount(self.dst, minlength=self.n_vertices).astype(np.int64)

    @cached_property
    def out_degree(self) -> np.ndarray:
        """Out-degree per vertex (number of consumers; unbounded in general, §3.1)."""
        return np.bincount(self.src, minlength=self.n_vertices).astype(np.int64)

    @cached_property
    def degree(self) -> np.ndarray:
        """Total (undirected) degree per vertex, counting multi-edges once."""
        u, v = self.undirected_edges
        d = np.bincount(u, minlength=self.n_vertices)
        d += np.bincount(v, minlength=self.n_vertices)
        return d.astype(np.int64)

    @property
    def max_degree(self) -> int:
        """Maximum undirected degree — the ``d`` used for loop regularization."""
        return int(self.degree.max()) if self.n_vertices else 0

    @cached_property
    def inputs(self) -> np.ndarray:
        """Vertices with no incoming edges (graph sources)."""
        return np.flatnonzero(self.in_degree == 0)

    @cached_property
    def outputs(self) -> np.ndarray:
        """Vertices with no outgoing edges (graph sinks)."""
        return np.flatnonzero(self.out_degree == 0)

    def count_kind(self, kind: int) -> int:
        """Number of vertices with the given :class:`VertexKind` code."""
        return int(np.count_nonzero(self.kinds == kind))

    # ------------------------------------------------------------------ #
    # undirected view                                                     #
    # ------------------------------------------------------------------ #

    def _undirected_simple_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Deduplicated undirected edges as (u, v) with u < v, key-sorted.

        One argsort of the composite key followed by a flag-diff dedup (keep
        the first of each run of equal keys) — same output as ``np.unique``
        on the key, without its second sort-and-gather pass or the
        ``return_index`` temporary.  Every undirected consumer (``degree``,
        ``adjacency``, the expansion kernels) goes through the cached
        :attr:`undirected_edges`, so this runs exactly once per graph.
        """
        if self.n_edges == 0:
            e = np.empty(0, dtype=np.int64)
            return e, e.copy()
        u = np.minimum(self.src, self.dst)
        v = np.maximum(self.src, self.dst)
        key = u * self.n_vertices + v
        key.sort(kind="stable")  # key is a fresh temporary: sort in place
        keep = np.empty(len(key), dtype=bool)
        keep[0] = True
        np.not_equal(key[1:], key[:-1], out=keep[1:])
        uniq = key[keep]
        return uniq // self.n_vertices, uniq % self.n_vertices

    @cached_property
    def undirected_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Public accessor for the deduplicated undirected edge list."""
        return self._undirected_simple_edges()

    @cached_property
    def adjacency_bits(self) -> np.ndarray:
        """Bitset-packed undirected adjacency: an ``(n, ⌈n/64⌉)`` uint64 array.

        Row ``i`` holds the neighborhood of vertex ``i`` as packed words
        (bit ``j`` of word ``j // 64`` set iff ``{i, j}`` is an edge), so the
        exact-expansion kernels intersect neighborhoods with word-ANDs and
        popcounts instead of scanning the edge list.
        """
        n = self.n_vertices
        words = max(1, -(-n // 64))
        bits = np.zeros((n, words), dtype=np.uint64)
        u, v = self.undirected_edges
        np.bitwise_or.at(bits, (u, v >> 6), np.uint64(1) << (v & 63).astype(np.uint64))
        np.bitwise_or.at(bits, (v, u >> 6), np.uint64(1) << (u & 63).astype(np.uint64))
        return bits

    @cached_property
    def adjacency(self) -> sp.csr_matrix:
        """Symmetric 0/1 adjacency matrix of the undirected simple graph."""
        u, v = self.undirected_edges
        n = self.n_vertices
        data = np.ones(2 * len(u), dtype=np.float64)
        rows = np.concatenate([u, v])
        cols = np.concatenate([v, u])
        return sp.csr_matrix((data, (rows, cols)), shape=(n, n))

    def edge_boundary_size(self, mask: np.ndarray) -> int:
        """``|E(S, V\\S)|`` in the undirected simple graph for ``S = mask``.

        ``mask`` is a boolean array over vertices.  Loops added by
        regularization never cross a cut, so they are correctly ignored.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_vertices,):
            raise ValueError("mask must be a boolean vector over vertices")
        u, v = self.undirected_edges
        return int(np.count_nonzero(mask[u] != mask[v]))

    def is_connected_undirected(self) -> bool:
        """Connectivity of the undirected view (assumption §5.1.1 checks this)."""
        if self.n_vertices <= 1:
            return True
        ncomp, _ = sp.csgraph.connected_components(self.adjacency, directed=False)
        return ncomp == 1

    # ------------------------------------------------------------------ #
    # DAG structure                                                       #
    # ------------------------------------------------------------------ #

    @cached_property
    def _out_adjacency_flat(self) -> tuple[np.ndarray, np.ndarray]:
        """Out-adjacency in CSR form: ``(indptr, successors)``.

        Multi-edges are kept (one entry per directed edge) so that in-degree
        decrements during frontier peeling stay exact.
        """
        counts = np.bincount(self.src, minlength=self.n_vertices)
        indptr = np.zeros(self.n_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(self.src, kind="stable")
        return indptr, self.dst[order]

    @cached_property
    def topological_generations(self) -> list[np.ndarray]:
        """Vertices grouped by longest-path depth (vectorized Kahn peeling).

        Generation ``t`` holds exactly the vertices whose longest path from a
        source has ``t`` edges: a vertex's in-degree reaches zero in the round
        after its last predecessor was peeled.  Raises on directed cycles.
        """
        indptr, successors = self._out_adjacency_flat
        indeg = self.in_degree.copy()
        frontier = np.flatnonzero(indeg == 0)
        generations: list[np.ndarray] = []
        seen = 0
        while frontier.size:
            generations.append(frontier)
            seen += frontier.size
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            succ = _gather_ranges(successors, starts, counts)
            if succ.size == 0:
                break
            dec = np.bincount(succ, minlength=self.n_vertices)
            indeg -= dec
            frontier = np.flatnonzero((dec > 0) & (indeg == 0))
        if seen != self.n_vertices:
            raise ValueError("graph has a directed cycle")
        return generations

    @cached_property
    def topological_order(self) -> np.ndarray:
        """A topological order (concatenated topological generations)."""
        if self.n_vertices == 0:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(self.topological_generations)

    @cached_property
    def longest_path_level(self) -> np.ndarray:
        """Longest-path depth of each vertex from the sources (0 for inputs)."""
        depth = np.zeros(self.n_vertices, dtype=np.int64)
        if self.n_edges == 0:
            return depth
        indptr, successors = self._out_adjacency_flat
        for gen in self.topological_generations:
            starts = indptr[gen]
            counts = indptr[gen + 1] - starts
            succ = _gather_ranges(successors, starts, counts)
            if succ.size:
                np.maximum.at(depth, succ, np.repeat(depth[gen] + 1, counts))
        return depth

    # ------------------------------------------------------------------ #
    # derived graphs                                                      #
    # ------------------------------------------------------------------ #

    def subgraph(self, vertices: np.ndarray) -> tuple["CDAG", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns ``(sub, mapping)`` where ``mapping[i]`` is the original index
        of the subgraph's vertex ``i``.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if len(np.unique(vertices)) != len(vertices):
            raise ValueError(
                "subgraph vertices contain duplicates; the old->new vertex "
                "mapping would be corrupt"
            )
        keep = np.zeros(self.n_vertices, dtype=bool)
        keep[vertices] = True
        new_index = np.full(self.n_vertices, -1, dtype=np.int64)
        new_index[vertices] = np.arange(len(vertices))
        emask = keep[self.src] & keep[self.dst]
        sub = CDAG(
            n_vertices=len(vertices),
            src=new_index[self.src[emask]],
            dst=new_index[self.dst[emask]],
            kinds=self.kinds[vertices],
            levels=self.levels[vertices],
        )
        return sub, vertices

    def reversed(self) -> "CDAG":
        """The CDAG with every edge reversed (used by dominator analysis)."""
        return CDAG(
            n_vertices=self.n_vertices,
            src=self.dst.copy(),
            dst=self.src.copy(),
            kinds=self.kinds.copy(),
            levels=self.levels.copy(),
        )

    def as_networkx(self):
        """Directed networkx graph (small graphs only — O(V+E) python objects)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(
            (int(i), {"kind": VertexKind.NAMES[int(k)], "level": int(lvl)})
            for i, (k, lvl) in enumerate(zip(self.kinds, self.levels))
        )
        g.add_edges_from(zip(self.src.tolist(), self.dst.tolist()))
        return g

    # ------------------------------------------------------------------ #
    # misc                                                                #
    # ------------------------------------------------------------------ #

    def validate_binary_ops(self) -> bool:
        """Check in-degree ≤ 2 everywhere (arithmetic ops are binary, §3.1)."""
        return bool(np.all(self.in_degree <= 2))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CDAG(V={self.n_vertices}, E={self.n_edges}, "
            f"inputs={len(self.inputs)}, outputs={len(self.outputs)}, "
            f"max_deg={self.max_degree})"
        )
