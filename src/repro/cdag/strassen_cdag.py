"""Recursive construction of the Strassen(-like) computation graph (§4, §4.1.1).

The paper builds ``H_{lg n}`` (the CDAG of Strassen's algorithm on n×n
matrices) from three parts:

* ``Enc_k A`` — weighted sums of elements of A (left linear forms),
* ``Enc_k B`` — same for B,
* ``Dec_k C`` — weighted sums of the 7^k element-wise products that produce C,

connected by one multiplication vertex per product (§4, Fig. 2).  The
construction below is the paper's top-down recursion (§4.1.1) implemented
*iteratively over levels with vectorized index arithmetic*, generic over any
:class:`~repro.cdag.schemes.BilinearScheme` ⟨m₀, n₀, p₀; t₀⟩ — the paper's
``4`` and ``7`` become ``c₀ = m₀·p₀`` (the number of C blocks) and ``t₀``
(the rank), so rectangular schemes flow through the same code (§5.1.2 and
the rectangular generalization of arXiv:1209.2184).

Vertex/level layout of ``Dec_k C`` (the graph of Lemma 4.3):

* level ``t = 0`` holds the ``t₀^k`` product vertices (the paper's top level
  ``l_{k+1}``),
* level ``t`` holds ``c₀^t · t₀^(k−t)`` vertices (the paper's ``l_{k+1−t}``,
  Fact 4.6),
* level ``t = k`` holds the ``c₀^k`` output vertices (the paper's ``l_1``),
* between consecutive levels sit edge-disjoint copies of ``Dec₁C`` — exactly
  the decomposition used by Claim 2.1 / Corollary 4.4 and by the recursion
  tree ``T_k`` of the Main Lemma's proof (Fig. 3).

``Enc_k A`` follows the same recursion on ``U`` with one twist the paper
points out (§4.1): base-case rows that simply *forward* an input (a single
``+1`` coefficient, e.g. ``M₃ = A11·(B12−B22)`` forwards ``A11``) do not
create a new vertex — the form *is* the input.  This aliasing is what gives
``Enc_{lg n} A`` vertices of out-degree Θ(lg n) while ``Dec_{lg n} C`` keeps
constant degree (Fact 4.2), the reason the paper analyses ``Dec`` and not
``H`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cdag.graph import CDAG, VertexKind
from repro.cdag.schemes import BilinearScheme, get_scheme

__all__ = [
    "dec_graph",
    "enc_graph",
    "h_graph",
    "HGraph",
    "dec_level_sizes",
    "dec_vertex_count",
    "dec1_graph",
    "recursion_tree_partition",
]


# ---------------------------------------------------------------------- #
# Dec_k C                                                                 #
# ---------------------------------------------------------------------- #


def dec_level_sizes(scheme: BilinearScheme, k: int) -> np.ndarray:
    """Level sizes of ``Dec_k C``: ``size[t] = c₀^t · t₀^(k−t)`` (Fact 4.6)."""
    c0 = scheme.c_blocks
    t0 = scheme.t0
    return np.array([c0**t * t0 ** (k - t) for t in range(k + 1)], dtype=np.int64)


def dec_vertex_count(scheme: BilinearScheme, k: int) -> int:
    """Total number of vertices of ``Dec_k C``."""
    return int(dec_level_sizes(scheme, k).sum())


def _dec_edges(scheme: BilinearScheme, k: int):
    """Vectorized edge arrays of Dec_k C plus level offsets.

    A level-``t`` vertex is ``off[t] + ρ·c₀^t + s`` where ``ρ ∈ [t₀^(k−t)]``
    is the not-yet-decoded product prefix and ``s ∈ [c₀^t]`` the decoded
    output suffix.  One decode step consumes the *last* digit ``r`` of ``ρ``
    and produces digit ``q`` of the suffix for every nonzero ``W[q, r]`` —
    one ``Dec₁C`` copy per ``(prefix, suffix)`` pair.

    All nnz(W) wirings of a level are emitted by one broadcast add written
    straight into the preallocated edge arrays (the edge count is closed
    form), so no Python-level edge loop, per-pair temporaries, or final
    concatenation copy remain — the graphs reach ~10⁶ vertices (k = 7) and
    this construction is the whole cost of a cold ``dec_graph`` build.
    """
    c0 = scheme.c_blocks
    t0 = scheme.t0
    sizes = dec_level_sizes(scheme, k)
    off = np.concatenate([[0], np.cumsum(sizes)])[:-1]
    qs, rs = np.nonzero(scheme.W)
    nnz = len(qs)
    # One (q, r) pair contributes one edge per (prefix, suffix) slot of the
    # level, so level t holds exactly nnz · t₀^(k−t−1) · c₀^t edges.
    counts = [nnz * t0 ** (k - t - 1) * c0**t for t in range(k)]
    src = np.empty(int(sum(counts)), dtype=np.int64)
    dst = np.empty(int(sum(counts)), dtype=np.int64)
    r_add = rs.astype(np.int64)[:, None, None]
    q_add = qs.astype(np.int64)[:, None, None]
    lo = 0
    for t in range(k):
        n_prefix = t0 ** (k - t - 1)
        n_suffix = c0**t
        P = np.arange(n_prefix, dtype=np.int64)[:, None]
        S = np.arange(n_suffix, dtype=np.int64)[None, :]
        base_src = off[t] + (P * t0) * n_suffix + S          # + r * n_suffix
        base_dst = off[t + 1] + P * (n_suffix * c0) + S      # + q * n_suffix
        hi = lo + counts[t]
        np.add(
            base_src[None, :, :],
            r_add * n_suffix,
            out=src[lo:hi].reshape(nnz, n_prefix, n_suffix),
        )
        np.add(
            base_dst[None, :, :],
            q_add * n_suffix,
            out=dst[lo:hi].reshape(nnz, n_prefix, n_suffix),
        )
        lo = hi
    return src, dst, off, sizes


def dec_graph(
    scheme: BilinearScheme | str = "strassen",
    k: int = 1,
    expand_trees: bool = False,
) -> CDAG:
    """Build ``Dec_k C`` for a scheme (Strassen by default).

    Parameters
    ----------
    scheme:
        A :class:`BilinearScheme` or registry name.
    k:
        Recursion depth; the graph has ``Θ(t₀^k)`` vertices.
    expand_trees:
        If True, apply Comment 4.1: vertices of in-degree > 2 are replaced by
        binary addition trees, restoring the in-degree ≤ 2 invariant of real
        binary-arithmetic CDAGs (changes expansion by a constant factor only).
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    if k < 0:
        raise ValueError("recursion depth k must be >= 0")
    src, dst, off, sizes = _dec_edges(scheme, k)
    n = int(sizes.sum())
    kinds = np.full(n, VertexKind.ADD, dtype=np.int8)
    kinds[: sizes[0]] = VertexKind.MULT            # level 0: the products
    kinds[off[k] :] = VertexKind.OUTPUT            # level k: entries of C
    levels = np.repeat(np.arange(k + 1, dtype=np.int32), sizes)
    g = CDAG(n_vertices=n, src=src, dst=dst, kinds=kinds, levels=levels)
    if expand_trees:
        g = _expand_high_indegree(g)
    return g


def dec1_graph(scheme: BilinearScheme | str = "strassen", expand_trees: bool = False) -> CDAG:
    """``Dec₁C`` — the base-case decode graph (Fig. 2 top-left)."""
    return dec_graph(scheme, 1, expand_trees=expand_trees)


def _expand_high_indegree(g: CDAG) -> CDAG:
    """Replace in-degree > 2 vertices with balanced binary addition trees.

    New internal vertices are ADDs inheriting the level of the target vertex.
    The number of inputs/outputs is unchanged (Comment 4.1).
    """
    indeg = g.in_degree
    heavy = np.flatnonzero(indeg > 2)
    if len(heavy) == 0:
        return g
    src = list(g.src)
    dst = list(g.dst)
    kinds = list(g.kinds)
    levels = list(g.levels)
    # Group incoming edges by target once.
    order = np.argsort(g.dst, kind="stable")
    sorted_dst = g.dst[order]
    sorted_src = g.src[order]
    starts = np.searchsorted(sorted_dst, heavy, side="left")
    ends = np.searchsorted(sorted_dst, heavy, side="right")
    keep = np.ones(g.n_edges, dtype=bool)
    next_id = g.n_vertices
    for v, lo, hi in zip(heavy, starts, ends):
        keep[order[lo:hi]] = False
        operands = list(sorted_src[lo:hi])
        # Pairwise-combine operands until two remain; they feed v directly.
        while len(operands) > 2:
            nxt = []
            for i in range(0, len(operands) - 1, 2):
                kinds.append(VertexKind.ADD)
                levels.append(levels[v])
                src.extend([operands[i], operands[i + 1]])
                dst.extend([next_id, next_id])
                nxt.append(next_id)
                next_id += 1
            if len(operands) % 2:
                nxt.append(operands[-1])
            operands = nxt
        for u in operands:
            src.append(u)
            dst.append(v)
    old_src = g.src[keep]
    old_dst = g.dst[keep]
    new_src = np.concatenate([old_src, np.asarray(src[g.n_edges :], dtype=np.int64)])
    new_dst = np.concatenate([old_dst, np.asarray(dst[g.n_edges :], dtype=np.int64)])
    return CDAG(
        n_vertices=next_id,
        src=new_src,
        dst=new_dst,
        kinds=np.asarray(kinds, dtype=np.int8),
        levels=np.asarray(levels, dtype=np.int32),
    )


# ---------------------------------------------------------------------- #
# Enc_k (A or B)                                                          #
# ---------------------------------------------------------------------- #


def _identity_rows(M: np.ndarray) -> dict[int, int]:
    """Rows of a linear-form matrix that merely forward one input.

    Returns ``{row: column}`` for rows with a single nonzero equal to +1;
    such forms are aliased to their operand vertex (§4.1: vertices that are
    both input and output of ``Enc₁``).
    """
    out: dict[int, int] = {}
    for r in range(M.shape[0]):
        nz = np.flatnonzero(M[r])
        if len(nz) == 1 and M[r, nz[0]] == 1.0:
            out[r] = int(nz[0])
    return out


@dataclass(frozen=True)
class _EncPart:
    """Intermediate result of building one encoder inside a larger graph."""

    input_ids: np.ndarray     # c0^k input vertex ids
    form_ids: np.ndarray      # t0^k final linear-form vertex ids (may alias inputs)
    n_vertices: int           # total ids consumed (incl. the caller's base offset)
    src: np.ndarray
    dst: np.ndarray
    kinds: np.ndarray         # kinds of the *new* vertices allocated here
    levels: np.ndarray


def _build_enc(M: np.ndarray, k: int, base: int) -> _EncPart:
    """Build ``Enc_k`` for linear-form matrix ``M`` (U or V), ids from ``base``.

    Level ``t`` nominal slots are pairs ``(ρ ∈ [t₀^t], e ∈ [c₀^(k−t)])``
    holding the value of form ``ρ`` applied at sub-position ``e``; the slot
    array maps to actual vertex ids, with identity rows aliased.  The
    per-operand vec shape ``c₀`` is the number of operand blocks — ``m₀n₀``
    for U (the A side), ``n₀p₀`` for V (the B side) — read off the matrix
    itself, so rectangular schemes need no special casing.
    """
    t0, c0 = M.shape
    ident = _identity_rows(M)
    kinds: list[np.ndarray] = []
    levels: list[np.ndarray] = []
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    next_id = base

    n_inputs = c0**k
    input_ids = np.arange(next_id, next_id + n_inputs, dtype=np.int64)
    next_id += n_inputs
    kinds.append(np.full(n_inputs, VertexKind.INPUT, dtype=np.int8))
    levels.append(np.zeros(n_inputs, dtype=np.int32))

    vid = input_ids  # level-t slot -> vertex id, shape (t0^t * c0^(k-t),)
    for t in range(1, k + 1):
        n_rho = t0 ** (t - 1)
        n_pos = c0 ** (k - t)          # positions after consuming one digit
        prev = vid.reshape(n_rho, c0 * n_pos)
        new_vid = np.empty((n_rho, t0, n_pos), dtype=np.int64)
        for r in range(t0):
            if r in ident:
                i = ident[r]
                new_vid[:, r, :] = prev[:, i * n_pos : (i + 1) * n_pos]
                continue
            count = n_rho * n_pos
            ids = np.arange(next_id, next_id + count, dtype=np.int64).reshape(
                n_rho, n_pos
            )
            next_id += count
            kinds.append(np.full(count, VertexKind.ADD, dtype=np.int8))
            levels.append(np.full(count, t, dtype=np.int32))
            new_vid[:, r, :] = ids
            for i in np.flatnonzero(M[r]):
                src_parts.append(prev[:, i * n_pos : (i + 1) * n_pos].ravel())
                dst_parts.append(ids.ravel())
        vid = new_vid.reshape(-1)

    return _EncPart(
        input_ids=input_ids,
        form_ids=vid,
        n_vertices=next_id,
        src=np.concatenate(src_parts) if src_parts else np.empty(0, np.int64),
        dst=np.concatenate(dst_parts) if dst_parts else np.empty(0, np.int64),
        kinds=np.concatenate(kinds),
        levels=np.concatenate(levels),
    )


def enc_graph(scheme: BilinearScheme | str = "strassen", k: int = 1, side: str = "A") -> CDAG:
    """Standalone ``Enc_k A`` (or ``Enc_k B`` with ``side='B'``)."""
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    M = scheme.U if side.upper() == "A" else scheme.V
    part = _build_enc(M, k, base=0)
    return CDAG(
        n_vertices=part.n_vertices,
        src=part.src,
        dst=part.dst,
        kinds=part.kinds,
        levels=part.levels,
    )


# ---------------------------------------------------------------------- #
# H_k — the full computation graph                                        #
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class HGraph:
    """The composed CDAG ``H_k`` with named vertex regions (Fig. 2 bottom-right).

    Attributes
    ----------
    cdag:
        The full graph.
    a_inputs, b_inputs:
        Vertex ids of the entries of A (``(m₀n₀)^k``) and B (``(n₀p₀)^k``).
    mult_ids:
        The ``t₀^k`` multiplication vertices (= level-0 vertices of Dec).
    output_ids:
        The ``(m₀p₀)^k`` entries of C.
    dec_ids:
        All vertices of the embedded ``Dec_k C`` (including ``mult_ids``) —
        the subgraph ``G'`` used by Lemma 3.3 / Theorem 1.1.
    k, scheme_name:
        Construction parameters.
    """

    cdag: CDAG
    a_inputs: np.ndarray
    b_inputs: np.ndarray
    mult_ids: np.ndarray
    output_ids: np.ndarray
    dec_ids: np.ndarray
    k: int
    scheme_name: str

    @property
    def dec_fraction(self) -> float:
        """|V(Dec_k C)| / |V(H_k)| — the α of Claim 3.2 (≥ 1/3 for Strassen)."""
        return len(self.dec_ids) / self.cdag.n_vertices

    def dec_subgraph(self) -> CDAG:
        """Extract the embedded ``Dec_k C`` as its own CDAG."""
        sub, _ = self.cdag.subgraph(self.dec_ids)
        return sub


def h_graph(scheme: BilinearScheme | str = "strassen", k: int = 1) -> HGraph:
    """Build the full Strassen-like computation graph ``H_k`` (§4.1.1).

    Encode A, encode B, join with one multiplication vertex per product,
    decode C.  Multiplication vertices receive in-edges from the two final
    linear forms and serve as the inputs of the decode stage.
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)

    enc_a = _build_enc(scheme.U, k, base=0)
    enc_b = _build_enc(scheme.V, k, base=enc_a.n_vertices)

    n_mult = scheme.t0**k
    mult_base = enc_b.n_vertices
    mult_ids = np.arange(mult_base, mult_base + n_mult, dtype=np.int64)

    # Dec_k C: its level-0 vertices *are* the multiplication vertices, so we
    # shift its internal ids by mult_base (level 0 occupies [0, t0^k) there).
    dsrc, ddst, doff, dsizes = _dec_edges(scheme, k)
    dec_total = int(dsizes.sum())
    dec_kinds = np.full(dec_total, VertexKind.ADD, dtype=np.int8)
    dec_kinds[:n_mult] = VertexKind.MULT
    dec_kinds[doff[k] :] = VertexKind.OUTPUT
    dec_levels = np.repeat(np.arange(k + 1, dtype=np.int32), dsizes) + (k + 1)

    src = np.concatenate(
        [
            enc_a.src,
            enc_b.src,
            enc_a.form_ids,          # left operand -> mult
            enc_b.form_ids,          # right operand -> mult
            dsrc + mult_base,
        ]
    )
    dst = np.concatenate(
        [
            enc_a.dst,
            enc_b.dst,
            mult_ids,
            mult_ids,
            ddst + mult_base,
        ]
    )
    kinds = np.concatenate([enc_a.kinds, enc_b.kinds, dec_kinds])
    levels = np.concatenate(
        [enc_a.levels, enc_b.levels + 0, dec_levels]
    )
    n_vertices = mult_base + dec_total
    cdag = CDAG(n_vertices=n_vertices, src=src, dst=dst, kinds=kinds, levels=levels)
    output_ids = np.arange(mult_base + doff[k], mult_base + dec_total, dtype=np.int64)
    dec_ids = np.arange(mult_base, mult_base + dec_total, dtype=np.int64)
    return HGraph(
        cdag=cdag,
        a_inputs=enc_a.input_ids,
        b_inputs=enc_b.input_ids,
        mult_ids=mult_ids,
        output_ids=output_ids,
        dec_ids=dec_ids,
        k=k,
        scheme_name=scheme.name,
    )


# ---------------------------------------------------------------------- #
# the recursion tree T_k (Fig. 3)                                         #
# ---------------------------------------------------------------------- #


def recursion_tree_partition(scheme: BilinearScheme | str, k: int) -> list[np.ndarray]:
    """The vertex sets ``V_u`` of the recursion tree ``T_k`` (§4.1.2, Fig. 3).

    ``T_k`` is the (c₀-ary) tree whose root corresponds to the largest level
    ``l_{k+1}`` of ``Dec_k C`` and whose depth-``i`` nodes correspond to the
    largest levels of the sub-``Dec`` graphs after peeling ``i`` levels.
    Returns a list of tree levels ``t_1 .. t_{k+1}`` (bottom-up like the
    paper): element ``i`` is an array of shape ``(c₀^(k+1−i), t₀^(i−1))``
    whose row ``u`` holds the ``Dec_k C`` vertex ids of ``V_u``.

    Together the ``V_u`` partition ``V(Dec_k C)``, ``|V_u| = t₀^(i−1)`` for
    ``u ∈ t_i``, and each internal node has ``c₀`` children — every claim is
    exercised by the tests and by Fact 4.9's leaf statement.
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    c0 = scheme.c_blocks
    t0 = scheme.t0
    sizes = dec_level_sizes(scheme, k)
    off = np.concatenate([[0], np.cumsum(sizes)])[:-1]
    levels_out: list[np.ndarray] = []
    # Tree level t_i (i = 1 bottom) collects, for each suffix s ∈ [c0^(k-i+1)],
    # the graph level t = k-i+1 vertices sharing that suffix: ids
    # off[t] + rho * c0^t + s for rho ∈ [t0^(k-t)] — |V_u| = t0^(i-1).
    for i in range(1, k + 2):
        t = k - i + 1
        n_suffix = c0**t
        n_rho = t0 ** (k - t)
        S = np.arange(n_suffix, dtype=np.int64)[:, None]
        R = np.arange(n_rho, dtype=np.int64)[None, :]
        ids = off[t] + R * n_suffix + S
        levels_out.append(ids)
    return levels_out
