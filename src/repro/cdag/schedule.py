"""Total orderings of CDAGs (§3.2's "player one").

The partition argument works for *any* order respecting the DAG; the order
determines how good the resulting I/O is.  This module generates the orders
the experiments exercise:

* :func:`topological_order` — the builder's natural Kahn order;
* :func:`dfs_topological_order` — depth-first order (the recursion-friendly
  order that makes Strassen attain Eq. (1));
* :func:`bfs_topological_order` — breadth-first / level order (the
  communication-hostile order: whole levels are live simultaneously);
* :func:`random_topological_order` — randomized Kahn tie-breaking, used by
  the property tests to check order-independence of the lower bounds.
"""

from __future__ import annotations

import numpy as np

from repro.cdag.graph import CDAG

__all__ = [
    "topological_order",
    "dfs_topological_order",
    "bfs_topological_order",
    "random_topological_order",
    "is_topological",
]


def topological_order(g: CDAG) -> np.ndarray:
    """The graph's default (Kahn frontier) topological order."""
    return g.topological_order


def is_topological(g: CDAG, order: np.ndarray) -> bool:
    """Check that every edge goes forward in the order ("edges go up", §3.2)."""
    order = np.asarray(order, dtype=np.int64)
    if sorted(order.tolist()) != list(range(g.n_vertices)):
        return False
    pos = np.empty(g.n_vertices, dtype=np.int64)
    pos[order] = np.arange(g.n_vertices)
    return bool(np.all(pos[g.src] < pos[g.dst]))


def dfs_topological_order(g: CDAG) -> np.ndarray:
    """Depth-first order: iterative post-order over the reversed DAG.

    Starting from each output, emit a vertex once all of its predecessors
    have been emitted, preferring to complete one operand subtree before
    starting the next.  For the recursive matrix-multiplication CDAGs this
    reproduces the depth-first traversal of the recursion tree that the
    upper bound (Eq. 1, footnote 5) relies on.
    """
    n = g.n_vertices
    preds: list[list[int]] = [[] for _ in range(n)]
    for s, d in zip(g.src.tolist(), g.dst.tolist()):
        preds[d].append(s)
    emitted = np.zeros(n, dtype=bool)
    order: list[int] = []
    roots = g.outputs.tolist() + [v for v in range(n) if g.out_degree[v] == 0]
    seen_root = set()
    for root in roots:
        if root in seen_root:
            continue
        seen_root.add(root)
        stack: list[tuple[int, int]] = [(root, 0)]
        while stack:
            v, pi = stack[-1]
            if emitted[v]:
                stack.pop()
                continue
            ps = preds[v]
            advanced = False
            while pi < len(ps):
                p = ps[pi]
                pi += 1
                if not emitted[p]:
                    stack[-1] = (v, pi)
                    stack.append((p, 0))
                    advanced = True
                    break
            if advanced:
                continue
            emitted[v] = True
            order.append(v)
            stack.pop()
    if len(order) != n:
        # vertices unreachable from any sink (shouldn't happen in valid CDAGs)
        rest = [v for v in range(n) if not emitted[v]]
        order.extend(rest)
    return np.asarray(order, dtype=np.int64)


def bfs_topological_order(g: CDAG) -> np.ndarray:
    """Level order: all of level 0, then level 1, ... (longest-path levels).

    This is the order of a breadth-first traversal of the recursion — the
    memory-hungry extreme whose working set is a whole graph level.
    """
    depth = g.longest_path_level
    return np.argsort(depth, kind="stable").astype(np.int64)


def random_topological_order(g: CDAG, seed: int = 0) -> np.ndarray:
    """Kahn's algorithm with uniformly random ready-vertex selection."""
    rng = np.random.default_rng(seed)
    n = g.n_vertices
    indeg = g.in_degree.copy()
    succs: list[list[int]] = [[] for _ in range(n)]
    for s, d in zip(g.src.tolist(), g.dst.tolist()):
        succs[s].append(d)
    ready = list(np.flatnonzero(indeg == 0))
    order = np.empty(n, dtype=np.int64)
    for i in range(n):
        j = int(rng.integers(len(ready)))
        ready[j], ready[-1] = ready[-1], ready[j]
        v = ready.pop()
        order[i] = v
        for w in succs[v]:
            indeg[w] -= 1
            if indeg[w] == 0:
                ready.append(w)
    return order
