"""Red–blue pebble game and schedule-driven I/O simulation on CDAGs.

Hong & Kung's red–blue pebble game [Hong & Kung 1981] is the classical model
behind I/O lower bounds (§1.5 discusses it as the sibling of the paper's
expansion approach):

* a *red* pebble = a word in fast memory (at most ``M`` red pebbles),
* a *blue* pebble = a word in slow memory (unbounded),
* moves: **load** (blue→red), **store** (red→blue), **compute** (place red
  on a vertex whose predecessors all carry red pebbles), **delete** a red.
* the I/O cost is the number of load + store moves.

Three engines are provided:

* :func:`schedule_io` — the I/O of a *given* total order under LRU or
  Belady (furthest-next-use) replacement.  With Belady this is the optimal
  I/O achievable for that order (no recomputation), which is exactly the
  quantity the paper's partition argument (§3.2) lower-bounds.
* :func:`exhaustive_min_io` — true optimal play (over orders too) by
  memoized search; exponential, for ≤ ~14-vertex graphs in tests.
* :class:`PebbleState` — the raw rules, reusable by custom strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cdag.graph import CDAG

__all__ = ["PebbleState", "ScheduleIO", "schedule_io", "exhaustive_min_io"]


@dataclass
class ScheduleIO:
    """Result of simulating a schedule: I/O counts and residency stats."""

    loads: int
    stores: int
    peak_red: int
    order: np.ndarray
    policy: str

    @property
    def total(self) -> int:
        """Total I/O (words moved) — loads plus stores."""
        return self.loads + self.stores


def _next_use_table(g: CDAG, order: np.ndarray) -> list[list[int]]:
    """For each vertex, the positions (in schedule order) of its consumers."""
    pos = np.empty(g.n_vertices, dtype=np.int64)
    pos[order] = np.arange(g.n_vertices)
    uses: list[list[int]] = [[] for _ in range(g.n_vertices)]
    use_pos = pos[g.dst]
    src_order = np.argsort(use_pos, kind="stable")
    for e in src_order:
        uses[g.src[e]].append(int(use_pos[e]))
    # reversed so .pop() yields the earliest remaining use
    for lst in uses:
        lst.reverse()
    return uses


def schedule_io(
    g: CDAG,
    order: np.ndarray | None = None,
    M: int = 8,
    policy: str = "belady",
    outputs_to_slow: bool = True,
) -> ScheduleIO:
    """Simulate the red–blue game for a fixed compute order.

    Parameters
    ----------
    g:
        The computation DAG.  Input vertices start with blue pebbles (the
        paper's model: inputs reside in slow memory, §1.1).
    order:
        Total order over vertices respecting the DAG (defaults to
        ``g.topological_order``).  Input vertices in the order are loads.
    M:
        Fast-memory capacity in words (red pebble budget).
    policy:
        ``"belady"`` (evict furthest next use — optimal for a fixed order)
        or ``"lru"``.
    outputs_to_slow:
        Count a final store for every output vertex (the algorithm must
        deliver C to slow memory), matching the upper-bound accounting of
        Eq. (1).
    """
    if order is None:
        order = g.topological_order
    order = np.asarray(order, dtype=np.int64)
    if len(order) != g.n_vertices:
        raise ValueError("order must cover all vertices")
    if M < 2:
        raise ValueError("need at least 2 red pebbles to compute binary ops")
    uses = _next_use_table(g, order)
    is_input = np.zeros(g.n_vertices, dtype=bool)
    is_input[g.inputs] = True
    # Group predecessor lists once.
    pred_sorted = np.argsort(g.dst, kind="stable")
    pred_dst = g.dst[pred_sorted]
    pred_src = g.src[pred_sorted]
    starts = np.searchsorted(pred_dst, np.arange(g.n_vertices), side="left")
    ends = np.searchsorted(pred_dst, np.arange(g.n_vertices), side="right")

    red: set[int] = set()
    blue: set[int] = set(int(v) for v in g.inputs)
    lru_clock = 0
    last_touch: dict[int, int] = {}
    loads = stores = 0
    peak = 0

    def next_use(v: int, now: int) -> int:
        lst = uses[v]
        while lst and lst[-1] <= now:
            lst.pop()
        return lst[-1] if lst else np.iinfo(np.int64).max

    def evict_one(now: int, protected: set[int]) -> None:
        nonlocal stores
        candidates = [v for v in red if v not in protected]
        if not candidates:
            raise MemoryError(
                f"fast memory M={M} too small for a compute step with "
                f"{len(protected)} live operands"
            )
        if policy == "belady":
            victim = max(candidates, key=lambda v: (next_use(v, now), v))
        elif policy == "lru":
            victim = min(candidates, key=lambda v: (last_touch.get(v, -1), v))
        else:
            raise ValueError(f"unknown policy {policy!r}")
        if next_use(victim, now) != np.iinfo(np.int64).max and victim not in blue:
            stores += 1
            blue.add(victim)
        red.discard(victim)

    def ensure_red(v: int, now: int, protected: set[int]) -> None:
        nonlocal loads, lru_clock, peak
        if v in red:
            last_touch[v] = lru_clock
            return
        if v not in blue:
            raise RuntimeError(f"value {v} needed but neither red nor blue")
        while len(red) >= M:
            evict_one(now, protected)
        red.add(v)
        loads += 1
        last_touch[v] = lru_clock
        peak = max(peak, len(red))

    for now, v in enumerate(order.tolist()):
        lru_clock += 1
        if is_input[v]:
            # Inputs are loaded lazily when first consumed; scheduling an
            # input vertex is a no-op (it already holds a blue pebble).
            continue
        preds = [int(p) for p in pred_src[starts[v] : ends[v]]]
        protected = set(preds)
        for p in preds:
            ensure_red(p, now, protected)
        protected.add(v)
        while len(red) >= M:
            evict_one(now, protected - {v})
        red.add(v)
        last_touch[v] = lru_clock
        peak = max(peak, len(red))

    if outputs_to_slow:
        for v in g.outputs.tolist():
            if v not in blue:
                stores += 1
                blue.add(v)
    return ScheduleIO(loads=loads, stores=stores, peak_red=peak, order=order, policy=policy)


# ---------------------------------------------------------------------- #
# exact optimal play (tiny graphs)                                        #
# ---------------------------------------------------------------------- #


@dataclass
class PebbleState:
    """Immutable-ish search node for exhaustive play (internal)."""

    computed: frozenset
    red: frozenset
    blue: frozenset
    cost: int = 0
    field_order: tuple = field(default_factory=tuple)


def exhaustive_min_io(g: CDAG, M: int, io_upper: int | None = None) -> int:
    """Optimal red–blue I/O by memoized branch & bound (no recomputation).

    Dominance reductions keep the search tractable (still exponential —
    intended for ≤ ~16-vertex graphs in the test suite):

    * evictions happen only when the red set is full and something else
      needs the slot (delaying a delete never costs more);
    * a store happens only as part of an eviction of a still-needed value
      (storing earlier is equivalent, storing useless values is dominated);
    * an admissible heuristic prunes: every untouched input with a pending
      consumer must still be loaded, and every unwritten output stored.

    Certifies in tests that :func:`schedule_io` (Belady) and the partition
    bound bracket the true optimum.
    """
    n = g.n_vertices
    if n > 20:
        raise ValueError("exhaustive search limited to tiny graphs")
    preds: list[tuple[int, ...]] = [() for _ in range(n)]
    for s, d in zip(g.src.tolist(), g.dst.tolist()):
        preds[d] = preds[d] + (s,)
    succs: list[tuple[int, ...]] = [() for _ in range(n)]
    for s, d in zip(g.src.tolist(), g.dst.tolist()):
        succs[s] = succs[s] + (d,)
    inputs = frozenset(int(v) for v in g.inputs)
    outputs = frozenset(int(v) for v in g.outputs)
    targets = frozenset(range(n)) - inputs

    if io_upper is None:
        io_upper = schedule_io(g, M=M, policy="belady").total
    best = io_upper
    seen: dict[tuple[frozenset, frozenset, frozenset], int] = {}

    def heuristic(computed: frozenset, red: frozenset, blue: frozenset) -> int:
        h = 0
        for v in inputs:
            if v not in red and any(s not in computed for s in succs[v]):
                h += 1
        for v in outputs:
            if v not in blue:
                h += 1
        return h

    def needed(v: int, computed: frozenset) -> bool:
        return (v in outputs) or any(s not in computed for s in succs[v])

    def with_room(computed, red, blue, cost, incoming, protected):
        """Place `incoming` into red, evicting (with optional store) if full."""
        nonlocal best
        if len(red) < M:
            yield red | {incoming}, blue, cost
            return
        for victim in red:
            if victim in protected:
                continue
            nred = red - {victim}
            if victim in blue or not needed(victim, computed):
                yield nred | {incoming}, blue, cost
            else:
                yield nred | {incoming}, blue | {victim}, cost + 1
        return

    def search(computed: frozenset, red: frozenset, blue: frozenset, cost: int) -> None:
        nonlocal best
        if cost + heuristic(computed, red, blue) >= best:
            return
        if targets <= computed:
            extra = sum(1 for v in outputs if v not in blue)
            if cost + extra < best:
                best = cost + extra
            return
        key = (computed, red, blue)
        prev = seen.get(key)
        if prev is not None and prev <= cost:
            return
        seen[key] = cost
        # Compute moves (free): any ready vertex.
        progressed = False
        for v in sorted(targets - computed):
            ps = preds[v]
            if all(p in red for p in ps):
                progressed = True
                for nred, nblue, ncost in with_room(computed, red, blue, cost, v, set(ps)):
                    search(computed | {v}, nred, nblue, ncost)
        # Load moves (cost 1): any useful blue value.
        for v in sorted(blue - red):
            if needed(v, computed) and (v in inputs or v in blue):
                for nred, nblue, ncost in with_room(computed, red, blue, cost, v, set()):
                    search(computed, nred, nblue, ncost + 1)
        _ = progressed

    search(frozenset(), frozenset(), inputs, 0)
    return best
