"""Uniform non-stationary algorithms (§5.2): a different scheme per level.

The paper's second class: the recursion uses scheme ``schemes[0]`` at the
outermost level, ``schemes[1]`` below it, and so on — uniformly across each
level (all subproblems of a level use the same scheme).  This captures the
practically important hybrids the paper cites ([Douglas et al. 94;
Huss-Lederman et al. 96]): run Strassen for a few levels, then switch to
the classical algorithm; or mix base cases to fit awkward sizes.

§5.2 states the I/O lower bound generalizes to this class; here we provide
the matching *upper-bound implementations* (in-core and I/O-explicit) and
the arithmetic/count machinery, so the experiments can measure how the
exponent interpolates between the constituent ω₀'s.

The I/O recurrence for a level list ``[s₁, s₂, …]`` is

    IO(n, [s₁, rest…]) = t₀(s₁)·IO(n/n₀(s₁), rest) + Θ((n/n₀(s₁))²)

bottoming out in the 3-blocks-resident base case when the subproblem fits.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.io_strassen import StrassenIOReport
from repro.cdag.schemes import BilinearScheme, get_scheme
from repro.machine.cache import FastMemory

__all__ = [
    "nonstationary_multiply",
    "nonstationary_io",
    "nonstationary_flops",
    "strassen_with_cutoff_levels",
]


def _resolve(schemes) -> list[BilinearScheme]:
    resolved = [get_scheme(s) if isinstance(s, str) else s for s in schemes]
    for s in resolved:
        if not s.is_square:
            raise ValueError(
                f"non-stationary recursion splits square blocks; scheme "
                f"{s.name!r} has shape {s.shape}"
            )
    return resolved


def nonstationary_multiply(A: np.ndarray, B: np.ndarray, schemes) -> np.ndarray:
    """Multiply with a per-level scheme list; classical below the last level.

    ``schemes`` is a sequence of registry names / scheme objects applied
    outermost-first.  When the list is exhausted (or the current size is
    not divisible by the level's n₀), numpy's classical product finishes
    the job — the "switch to classical" hybrid of §5.2.
    """
    schemes = _resolve(schemes)
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    if A.ndim != 2 or A.shape != B.shape or A.shape[0] != A.shape[1]:
        raise ValueError("A and B must be equal square matrices")
    return _rec(A, B, schemes, 0)


def _rec(A, B, schemes, level):
    n = A.shape[0]
    if level >= len(schemes) or n % schemes[level].n0 != 0:
        return A @ B
    s = schemes[level]
    n0 = s.n0
    b = n // n0
    Ablocks = [
        A[i * b : (i + 1) * b, j * b : (j + 1) * b]
        for i in range(n0)
        for j in range(n0)
    ]
    Bblocks = [
        B[i * b : (i + 1) * b, j * b : (j + 1) * b]
        for i in range(n0)
        for j in range(n0)
    ]
    Cblocks = s.apply_blocked(Ablocks, Bblocks, lambda X, Y: _rec(X, Y, schemes, level + 1))
    C = np.empty_like(A)
    for i in range(n0):
        for j in range(n0):
            C[i * b : (i + 1) * b, j * b : (j + 1) * b] = Cblocks[i * n0 + j]
    return C


def nonstationary_io(n: int, M: int, schemes) -> StrassenIOReport:
    """I/O of the depth-first non-stationary recursion (exact counts).

    Mirrors :func:`repro.algorithms.io_strassen.dfs_io`'s accounting level
    by level; the level list must be long enough to reach a base that fits
    (``3·s² ≤ M``), otherwise ``ValueError``.

    The recursion is *uniform*: every subproblem at one level has the same
    size and streams against an empty fast memory, so sibling subtrees
    charge identical counter deltas (the same fact ``dfs_io_model`` exploits
    wholesale).  Each distinct ``(size, level)`` subtree is therefore
    simulated once and its counter delta replayed for the remaining
    ``t₀ − 1`` siblings — bit-identical totals in O(depth) simulated nodes
    instead of Θ(t₀^depth).
    """
    schemes = _resolve(schemes)
    fm = FastMemory(M)
    nnz = [
        (
            [int((row != 0).sum()) for row in s.U],
            [int((row != 0).sum()) for row in s.V],
            [int((row != 0).sum()) for row in s.W],
        )
        for s in schemes
    ]
    memo: dict[tuple[int, int], tuple[int, int, int, int, int]] = {}

    def go(size: int, level: int) -> int:
        key = (size, level)
        hit = memo.get(key)
        c = fm.counter
        if hit is not None:
            wr, mr, ww, mw, mults = hit
            c.words_read += wr
            c.messages_read += mr
            c.words_written += ww
            c.messages_written += mw
            return mults
        before = (c.words_read, c.messages_read, c.words_written, c.messages_written)
        mults = _go(size, level)
        memo[key] = (
            c.words_read - before[0],
            c.messages_read - before[1],
            c.words_written - before[2],
            c.messages_written - before[3],
            mults,
        )
        return mults

    def _go(size: int, level: int) -> int:
        if 3 * size * size <= M:
            a = f"A@{level}/{size}"
            b = f"B@{level}/{size}"
            c = f"C@{level}/{size}"
            # names must be unique per call; FastMemory regions are dropped
            # immediately so a counter suffix suffices
            a, b, c = _unique(a), _unique(b), _unique(c)
            fm.new_slow(a, size * size)
            fm.new_slow(b, size * size)
            fm.load(a)
            fm.load(b)
            fm.alloc_fast(c, size * size)
            fm.store(c)
            for name in (a, b, c):
                fm.free(name)
                fm.drop(name)
            return 1
        if level >= len(schemes):
            raise ValueError(
                f"scheme list exhausted at size {size} with 3·{size}² > M={M}"
            )
        s = schemes[level]
        if size % s.n0 != 0:
            raise ValueError(f"size {size} not divisible by level-{level} n0={s.n0}")
        sub = size // s.n0
        sw = sub * sub
        u_nnz, v_nnz, w_nnz = nnz[level]
        total = 0
        for r in range(s.t0):
            fm.stream(read_sizes=[sw] * u_nnz[r], write_sizes=[sw])
            fm.stream(read_sizes=[sw] * v_nnz[r], write_sizes=[sw])
            total += go(sub, level + 1)
        for q in range(s.c_blocks):
            fm.stream(read_sizes=[sw] * w_nnz[q], write_sizes=[sw])
        return total

    mults = go(n, 0)
    label = "+".join(s.name for s in schemes)
    return StrassenIOReport(
        n=n,
        M=M,
        scheme=f"nonstat[{label}]",
        counter=fm.counter,
        base_size=-1,
        n_base_multiplies=mults,
    )


_counter = [0]


def _unique(prefix: str) -> str:
    _counter[0] += 1
    return f"{prefix}#{_counter[0]}"


def nonstationary_flops(n: int, schemes) -> int:
    """Total arithmetic count of the non-stationary recursion (classical
    below the last level)."""
    schemes = _resolve(schemes)

    def go(size: int, level: int) -> int:
        if level >= len(schemes) or size % schemes[level].n0 != 0:
            return 2 * size**3 - size * size
        s = schemes[level]
        sub = size // s.n0
        return s.t0 * go(sub, level + 1) + s.n_additions * sub * sub

    return go(n, 0)


def strassen_with_cutoff_levels(n: int, levels: int) -> list[str]:
    """The classic practical hybrid: ``levels`` Strassen steps, classical
    after (returned as a scheme list for the functions above)."""
    if levels < 0:
        raise ValueError("levels must be >= 0")
    return ["strassen"] * levels
