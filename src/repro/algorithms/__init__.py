"""Sequential algorithms: in-core bilinear recursion and I/O-explicit variants."""

from repro.algorithms.strassen import (
    FlopCount,
    bilinear_multiply,
    count_flops,
    strassen_multiply,
)
from repro.algorithms.io_strassen import (
    StrassenIOReport,
    canonical_base_size,
    dfs_io,
    dfs_io_model,
)
from repro.algorithms.io_classical import (
    blocked_io,
    classical_io_bound_shape,
    naive_io,
    recursive_io,
)
from repro.algorithms.nonstationary import (
    nonstationary_flops,
    nonstationary_io,
    nonstationary_multiply,
    strassen_with_cutoff_levels,
)

__all__ = [
    "FlopCount",
    "bilinear_multiply",
    "count_flops",
    "strassen_multiply",
    "StrassenIOReport",
    "canonical_base_size",
    "dfs_io",
    "dfs_io_model",
    "blocked_io",
    "classical_io_bound_shape",
    "naive_io",
    "recursive_io",
    "nonstationary_flops",
    "nonstationary_io",
    "nonstationary_multiply",
    "strassen_with_cutoff_levels",
]
