"""In-core Strassen-like matrix multiplication (numerics + arithmetic counts).

The recursion of §5.1, generalized to rectangular ⟨m₀,n₀,p₀; t₀⟩ schemes:
split A into an m₀×n₀ grid and B into an n₀×p₀ grid, take the scheme's
linear combinations, recurse on the t₀ products, recombine into the m₀×p₀
grid of C.  Below the cutoff the classical algorithm runs (the standard
practical optimization, and a member of the paper's "uniform
non-stationary" class §5.2 — switching schemes between levels).

Numerics are served by numpy throughout; ``count_flops`` reproduces the
arithmetic-cost recurrence ``T = t₀·T(sub) + Θ(blocks)`` so tests can pin
``T = Θ(n^ω₀)`` (the quantity ω₀ is defined by).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cdag.schemes import BilinearScheme, _grid_blocks, get_scheme

__all__ = ["strassen_multiply", "bilinear_multiply", "count_flops", "FlopCount"]


@dataclass(frozen=True)
class FlopCount:
    """Arithmetic-operation tallies of one bilinear-recursion run."""

    multiplications: int
    additions: int

    @property
    def total(self) -> int:
        return self.multiplications + self.additions


def bilinear_multiply(
    A: np.ndarray,
    B: np.ndarray,
    scheme: BilinearScheme | str = "strassen",
    cutoff: int = 32,
) -> np.ndarray:
    """Multiply conformable matrices with a bilinear scheme's recursion.

    ``A`` is ``m × n`` and ``B`` is ``n × p``; each dimension must be the
    corresponding scheme dimension to some power times a residual handled by
    the classical base case once every dimension is at or below ``cutoff``.
    Raises for shapes the pure recursion cannot split evenly (no padding is
    silently applied — padding changes communication counts, so callers opt
    in explicitly).
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
        raise ValueError("bilinear_multiply requires conformable 2-d matrices")
    return _recurse(A, B, scheme, max(cutoff, scheme.m0, scheme.n0, scheme.p0))


def _recurse(A: np.ndarray, B: np.ndarray, scheme: BilinearScheme, cutoff: int) -> np.ndarray:
    m, n = A.shape
    p = B.shape[1]
    divisible = m % scheme.m0 == 0 and n % scheme.n0 == 0 and p % scheme.p0 == 0
    # Only dimensions the scheme actually splits count against the cutoff:
    # a unit scheme dimension (e.g. n₀ = 1 in classical<2,1,2>) never shrinks.
    split_dims = [
        d for d, s0 in ((m, scheme.m0), (n, scheme.n0), (p, scheme.p0)) if s0 > 1
    ]
    above_cutoff = bool(split_dims) and max(split_dims) > cutoff
    if not above_cutoff or not divisible:
        if above_cutoff and not divisible:
            raise ValueError(
                f"shape ({m},{n},{p}) not divisible by scheme shape "
                f"{scheme.shape} above the cutoff; choose dims = scheme "
                f"dims^t * c with c <= cutoff"
            )
        return A @ B
    Ablocks = _grid_blocks(A, scheme.m0, scheme.n0)
    Bblocks = _grid_blocks(B, scheme.n0, scheme.p0)
    Cblocks = scheme.apply_blocked(
        Ablocks, Bblocks, lambda X, Y: _recurse(X, Y, scheme, cutoff)
    )
    bm = m // scheme.m0
    bp = p // scheme.p0
    C = np.empty((m, p), dtype=np.result_type(A, B))
    for i in range(scheme.m0):
        for j in range(scheme.p0):
            C[i * bm : (i + 1) * bm, j * bp : (j + 1) * bp] = Cblocks[i * scheme.p0 + j]
    return C


def strassen_multiply(
    A: np.ndarray, B: np.ndarray, cutoff: int = 32, variant: str = "strassen"
) -> np.ndarray:
    """Strassen's algorithm (or Winograd's variant) with a classical cutoff."""
    if variant not in ("strassen", "winograd"):
        raise ValueError("variant must be 'strassen' or 'winograd'")
    return bilinear_multiply(A, B, variant, cutoff)


def count_flops(
    n: int | tuple[int, int, int],
    scheme: BilinearScheme | str = "strassen",
    cutoff: int = 1,
) -> FlopCount:
    """Exact arithmetic counts of the recursion (without running it).

    Mirrors ``_recurse``: above the cutoff, one level costs the scheme's
    linear-stage additions on the sub-block sizes plus t₀ recursive calls;
    at the base, the classical count mnp mults and mp(n−1) adds.  ``n`` may
    be an int (the square problem) or an ``(m, n, p)`` shape tuple.
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    m, n, p = (n, n, n) if isinstance(n, int) else n
    cutoff = max(cutoff, 1)
    divisible = m % scheme.m0 == 0 and n % scheme.n0 == 0 and p % scheme.p0 == 0
    split_dims = [
        d for d, s0 in ((m, scheme.m0), (n, scheme.n0), (p, scheme.p0)) if s0 > 1
    ]
    if not split_dims or max(split_dims) <= cutoff or not divisible:
        return FlopCount(multiplications=m * n * p, additions=m * p * (n - 1))
    bm, bn, bp = m // scheme.m0, n // scheme.n0, p // scheme.p0
    sub = count_flops((bm, bn, bp), scheme, cutoff)
    # Flat linear-stage additions, per block size: U rows combine bm*bn
    # blocks, V rows bn*bp, W rows bm*bp.
    def _adds(mat, words):
        nnz = (mat != 0).sum(axis=1)
        return int(np.maximum(nnz - 1, 0).sum()) * words

    adds_here = (
        _adds(scheme.U, bm * bn) + _adds(scheme.V, bn * bp) + _adds(scheme.W, bm * bp)
    )
    return FlopCount(
        multiplications=scheme.t0 * sub.multiplications,
        additions=scheme.t0 * sub.additions + adds_here,
    )
