"""In-core Strassen-like matrix multiplication (numerics + arithmetic counts).

The recursion of §5.1: split into n₀² blocks, take the scheme's linear
combinations, recurse on the m₀ products, recombine.  Below the cutoff the
classical algorithm runs (the standard practical optimization, and a member
of the paper's "uniform non-stationary" class §5.2 — switching schemes
between levels).

Numerics are served by numpy throughout; ``count_flops`` reproduces the
arithmetic-cost recurrence ``T(n) = m₀·T(n/n₀) + Θ(n²)`` so tests can pin
``T(n) = Θ(n^ω₀)`` (the quantity ω₀ is defined by).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cdag.schemes import BilinearScheme, get_scheme

__all__ = ["strassen_multiply", "bilinear_multiply", "count_flops", "FlopCount"]


@dataclass(frozen=True)
class FlopCount:
    """Arithmetic-operation tallies of one bilinear-recursion run."""

    multiplications: int
    additions: int

    @property
    def total(self) -> int:
        return self.multiplications + self.additions


def _split_blocks(X: np.ndarray, n0: int) -> list[np.ndarray]:
    """The n₀² sub-blocks of X in row-major order (views, not copies)."""
    n = X.shape[0]
    b = n // n0
    return [
        X[i * b : (i + 1) * b, j * b : (j + 1) * b]
        for i in range(n0)
        for j in range(n0)
    ]


def bilinear_multiply(
    A: np.ndarray,
    B: np.ndarray,
    scheme: BilinearScheme | str = "strassen",
    cutoff: int = 32,
) -> np.ndarray:
    """Multiply square matrices with a bilinear scheme's recursion.

    ``n`` must be ``n₀^t · c`` with ``c ≤ cutoff`` reachable by the
    recursion; in practice: a multiple of a power of n₀ with the residual
    handled by the classical base case.  Raises for shapes the pure
    recursion cannot split evenly (no padding is silently applied — padding
    changes communication counts, so callers opt in explicitly).
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    if A.ndim != 2 or A.shape[0] != A.shape[1] or A.shape != B.shape:
        raise ValueError("bilinear_multiply requires equal square matrices")
    return _recurse(A, B, scheme, max(cutoff, scheme.n0))


def _recurse(A: np.ndarray, B: np.ndarray, scheme: BilinearScheme, cutoff: int) -> np.ndarray:
    n = A.shape[0]
    n0 = scheme.n0
    if n <= cutoff or n % n0 != 0:
        if n > cutoff and n % n0 != 0:
            raise ValueError(
                f"matrix size {n} not divisible by n0={n0} above the cutoff; "
                f"choose n = n0^t * c with c <= cutoff"
            )
        return A @ B
    Ablocks = _split_blocks(A, n0)
    Bblocks = _split_blocks(B, n0)
    Cblocks = scheme.apply_blocked(
        Ablocks, Bblocks, lambda X, Y: _recurse(X, Y, scheme, cutoff)
    )
    b = n // n0
    C = np.empty_like(A)
    for i in range(n0):
        for j in range(n0):
            C[i * b : (i + 1) * b, j * b : (j + 1) * b] = Cblocks[i * n0 + j]
    return C


def strassen_multiply(A: np.ndarray, B: np.ndarray, cutoff: int = 32, variant: str = "strassen") -> np.ndarray:
    """Strassen's algorithm (or Winograd's variant) with a classical cutoff."""
    if variant not in ("strassen", "winograd"):
        raise ValueError("variant must be 'strassen' or 'winograd'")
    return bilinear_multiply(A, B, variant, cutoff)


def count_flops(n: int, scheme: BilinearScheme | str = "strassen", cutoff: int = 1) -> FlopCount:
    """Exact arithmetic counts of the recursion (without running it).

    Mirrors ``_recurse``: above the cutoff, one level costs the scheme's
    linear-stage additions on (n/n₀)²-sized blocks plus m₀ recursive calls;
    at the base, the classical count n³ mults and n²(n−1) adds.
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    n0 = scheme.n0
    cutoff = max(cutoff, 1)
    if n <= cutoff or n % n0 != 0:
        return FlopCount(multiplications=n**3, additions=n * n * (n - 1))
    b = n // n0
    sub = count_flops(b, scheme, cutoff)
    adds_here = scheme.n_additions * b * b
    return FlopCount(
        multiplications=scheme.m0 * sub.multiplications,
        additions=scheme.m0 * sub.additions + adds_here,
    )
