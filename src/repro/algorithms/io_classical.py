"""I/O-explicit classical matrix multiplication on the two-level machine.

Three implementations with very different communication behaviour, all
charging every word they move to a :class:`~repro.machine.cache.FastMemory`:

* :func:`naive_io` — row-times-column with no blocking: Θ(n³) words.
* :func:`blocked_io` — square tiling with ``b = √(M/3)``:
  Θ(n³/√M) words, attaining Hong–Kung's classical lower bound.
* :func:`recursive_io` — the cache-oblivious recursion [Frigo et al. 99]:
  also Θ(n³/√M) *without knowing M*, the §6.2 discussion point.

These are cost simulations of honest implementations: the block/recursion
structure is executed for real (every load, store, and free happens), only
the floating-point payload is elided since the numerics of the classical
algorithm are not under test here.
"""

from __future__ import annotations

import math
from itertools import count

from repro.machine.cache import FastMemory
from repro.machine.counters import IOCounter

__all__ = ["naive_io", "blocked_io", "recursive_io", "classical_io_bound_shape"]

_uid = count()


def _fresh(prefix: str) -> str:
    return f"{prefix}#{next(_uid)}"


def naive_io(n: int, M: int) -> IOCounter:
    """Row-times-column with only the current row cached.

    For each output row, keep A's row resident and stream every column of B
    past it: ``n² + n³ + n²`` words — the no-reuse baseline.
    """
    fm = FastMemory(M)
    if M < 2 * n + 1:
        raise MemoryError("naive_io needs at least two rows plus a scalar")
    for i in range(n):
        arow = _fresh("Arow")
        fm.new_slow(arow, n)
        fm.load(arow)
        for j in range(n):
            bcol = _fresh("Bcol")
            fm.new_slow(bcol, n)
            fm.load(bcol)
            cij = _fresh("c")
            fm.alloc_fast(cij, 1)
            fm.store(cij)
            fm.free(cij)
            fm.drop(cij)
            fm.free(bcol)
            fm.drop(bcol)
        fm.free(arow)
        fm.drop(arow)
    return fm.counter


def blocked_io(n: int, M: int, b: int | None = None) -> IOCounter:
    """Square-tiled classical multiplication with tile size ``b = √(M/3)``.

    For each C tile: allocate it in fast memory, stream the n/b pairs of A
    and B tiles through, write C once:  ``n² + 2·(n/b)·n² ≈ 2√3·n³/√M``.
    """
    if b is None:
        b = max(int(math.isqrt(M // 3)), 1)
    if 3 * b * b > M:
        raise MemoryError(f"tile {b} too large for M={M}")
    if n % b != 0:
        raise ValueError(f"n={n} must be a multiple of the tile size b={b}")
    fm = FastMemory(M)
    t = n // b
    for i in range(t):
        for j in range(t):
            cblk = _fresh("C")
            fm.alloc_fast(cblk, b * b)
            for k in range(t):
                ablk, bblk = _fresh("A"), _fresh("B")
                fm.new_slow(ablk, b * b)
                fm.new_slow(bblk, b * b)
                fm.load(ablk)
                fm.load(bblk)
                fm.touch_dirty(cblk)       # C += A_ik B_kj
                fm.free(ablk)
                fm.drop(ablk)
                fm.free(bblk)
                fm.drop(bblk)
            fm.store(cblk)
            fm.free(cblk)
            fm.drop(cblk)
    return fm.counter


def recursive_io(n: int, M: int, base: int | None = None) -> IOCounter:
    """Cache-oblivious recursive classical multiplication (C += A·B form).

    Splits into quadrants and makes 8 recursive calls; a call whose three
    operands fit in fast memory loads them, computes, and writes C back.
    The recursion itself never consults M — only the base-case predicate
    does, which is exactly the cache-oblivious property: the *same* code
    is optimal for every M (§6.2's observation for matrix multiplication).
    """
    fm = FastMemory(M)
    # The base predicate mimics hardware: a subproblem runs in-cache when
    # its working set fits; the recursion does not otherwise use M or base.
    if base is None:
        base = max(int(math.isqrt(M // 3)), 1)

    def recurse(size: int) -> None:
        if 3 * size * size <= M and (size <= base or size % 2 != 0):
            _base_case(fm, size)
            return
        if size % 2 != 0:
            raise ValueError(f"odd size {size} above the base case")
        half = size // 2
        for _ in range(8):
            recurse(half)

    def _base_case(fm: FastMemory, size: int) -> None:
        a, b_, c = _fresh("A"), _fresh("B"), _fresh("C")
        fm.new_slow(a, size * size)
        fm.new_slow(b_, size * size)
        fm.new_slow(c, size * size)
        fm.load(a)
        fm.load(b_)
        fm.load(c)            # C accumulates, so it is read and written
        fm.touch_dirty(c)
        fm.store(c)
        for name in (a, b_, c):
            fm.free(name)
            fm.drop(name)

    if 3 * n * n <= M:
        _base_case(fm, n)
    else:
        recurse(n)
    return fm.counter


def classical_io_bound_shape(n: float, M: float) -> float:
    """The classical lower-bound expression ``n³/√M`` (constant-1 form),
    i.e. Theorem 1.3 with ω₀ = 3 — the [Hong & Kung 1981] shape."""
    return n**3 / math.sqrt(M)
