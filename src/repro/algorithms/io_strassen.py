"""I/O-explicit depth-first Strassen-like multiplication (the Eq. 1 upper bound).

This is the implementation §1.4.1 describes: run the recursion depth-first
(footnote 5); once a subproblem's three blocks fit in fast memory, read the
two inputs, multiply in-core, write the result.  Above the base case, the
linear stages *stream*: each S_r / T_r / C_q combination reads its operands
from slow memory chunk-wise and writes the result back, costing Θ((n/n₀)²)
words per form — the ``O(n²)`` term of ``IO(n) ≤ m₀·IO(n/n₀) + O(n²)``.

Generic over any registered scheme, so the same harness measures the
ω₀-sweep of Theorem 1.3 (E2): Strassen (lg 7), hybrid4 (log₄ 56),
classical2 (3) all run through identical code.

Two engines with *identical accounting*:

* :func:`dfs_io` — the full simulation against
  :class:`~repro.machine.cache.FastMemory` (every region load/store/free
  really happens, capacity enforced);
* :func:`dfs_io_model` — a memoized recurrence producing bit-identical
  counts (the recursion is uniform, so sibling subtrees cost the same);
  used for deep sweeps where m₀^t simulation nodes would be prohibitive.
  The test suite pins model == simulation across the overlapping range.

The ``base`` parameter exposes the recursion-cutoff ablation: the canonical
choice is the largest ``s ≤ √(M/3)`` reachable from n, and cutting deeper
only adds streaming levels (E1's ablation quantifies the penalty).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count

from repro.cdag.schemes import BilinearScheme, get_scheme
from repro.machine.cache import FastMemory
from repro.machine.counters import IOCounter

__all__ = [
    "dfs_io",
    "dfs_io_model",
    "rect_dfs_io_model",
    "StrassenIOReport",
    "canonical_base_size",
]

_uid = count()


def _fresh(prefix: str) -> str:
    return f"{prefix}#{next(_uid)}"


@dataclass(frozen=True)
class StrassenIOReport:
    """Measured I/O of one depth-first run plus its bookkeeping."""

    n: int
    M: int
    scheme: str
    counter: IOCounter
    base_size: int
    n_base_multiplies: int
    #: problem shape (m, n, p); equals (n, n, n) for square runs.
    shape: tuple[int, int, int] | None = None

    @property
    def words(self) -> int:
        return self.counter.words

    @property
    def messages(self) -> int:
        return self.counter.messages


def _nnz_rows(mat) -> list[int]:
    return [int((row != 0).sum()) for row in mat]


def _stream_counts(size_words: int, n_reads: int, free_words: int) -> tuple[int, int, int, int]:
    """(words_read, msgs_read, words_written, msgs_written) of one stream —
    mirrors FastMemory.stream with chunk = free // (n_reads + 1).  Shared by
    the square and rectangular I/O models so their accounting cannot drift.
    """
    chunk = max(free_words // (n_reads + 1), 1)
    full, rem = divmod(size_words, chunk)
    msgs_per_stream = full + (1 if rem else 0)
    return (
        size_words * n_reads,
        msgs_per_stream * n_reads,
        size_words,
        msgs_per_stream,
    )


def canonical_base_size(n: int, M: int, n0: int) -> int:
    """Largest recursion size whose 3 blocks fit in M, reached from n by /n₀."""
    size = n
    while 3 * size * size > M:
        if n0 < 2:
            # a ⟨1,1,1⟩-style scheme cannot shrink the problem at all
            raise ValueError(
                f"n={n} does not fit (3·{size}² > M={M}) and n0={n0} cannot "
                f"recurse it smaller"
            )
        if size % n0 != 0:
            raise ValueError(
                f"n={n} cannot recurse below size {size} (not divisible by "
                f"n0={n0}) yet 3·{size}² > M={M}"
            )
        size //= n0
    if size < 1:
        raise ValueError("M too small to hold even a 1x1 base case")
    return size


def _check_base(n: int, M: int, n0: int, base: int | None) -> int:
    canonical = canonical_base_size(n, M, n0)
    if base is None:
        return canonical
    if 3 * base * base > M:
        raise ValueError(f"base {base} does not fit: 3·{base}² > M={M}")
    # base must be reachable from n by repeated division by n0
    size = n
    while size > base and size % n0 == 0:
        size //= n0
    if size != base:
        raise ValueError(f"base {base} not reachable from n={n} by /{n0}")
    return base


def dfs_io(
    n: int,
    M: int,
    scheme: BilinearScheme | str = "strassen",
    base: int | None = None,
) -> StrassenIOReport:
    """Depth-first Strassen-like multiplication against a FastMemory machine.

    Every level above the base writes its m₀ pairs of encoded operands to
    slow memory and reads the m₀ products back for decoding; the base case
    holds 3 blocks resident.  Raises ``ValueError`` when n is not a power
    of n₀ times a feasible base (no silent padding).
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    if not scheme.is_square:
        raise ValueError(
            "dfs_io runs the square recursion; use rect_dfs_io_model for "
            f"rectangular scheme {scheme.name!r}"
        )
    base = _check_base(n, M, scheme.n0, base)
    fm = FastMemory(M)
    u_nnz = _nnz_rows(scheme.U)
    v_nnz = _nnz_rows(scheme.V)
    w_nnz = _nnz_rows(scheme.W)
    n_base = _dfs(fm, n, scheme, base, u_nnz, v_nnz, w_nnz)
    return StrassenIOReport(
        n=n,
        M=M,
        scheme=scheme.name,
        counter=fm.counter,
        base_size=base,
        n_base_multiplies=n_base,
        shape=(n, n, n),
    )


def _dfs(fm, size, scheme, base, u_nnz, v_nnz, w_nnz) -> int:
    """Recursive worker; returns the number of base multiplications done."""
    if size <= base:
        # Read A-block and B-block, multiply in fast memory, write C-block.
        a, b, c = _fresh("A"), _fresh("B"), _fresh("C")
        fm.new_slow(a, size * size)
        fm.new_slow(b, size * size)
        fm.load(a)
        fm.load(b)
        fm.alloc_fast(c, size * size)
        fm.store(c)
        for name in (a, b, c):
            fm.free(name)
            fm.drop(name)
        return 1
    sub = size // scheme.n0
    sub_words = sub * sub
    total = 0
    for r in range(scheme.t0):
        # S_r = Σ U[r,i]·A_i  and  T_r = Σ V[r,j]·B_j, streamed to slow.
        fm.stream(read_sizes=[sub_words] * u_nnz[r], write_sizes=[sub_words])
        fm.stream(read_sizes=[sub_words] * v_nnz[r], write_sizes=[sub_words])
        total += _dfs(fm, sub, scheme, base, u_nnz, v_nnz, w_nnz)
    for q in range(scheme.c_blocks):
        # C_q = Σ W[q,r]·Q_r, streamed.
        fm.stream(read_sizes=[sub_words] * w_nnz[q], write_sizes=[sub_words])
    return total


def dfs_io_model(
    n: int,
    M: int,
    scheme: BilinearScheme | str = "strassen",
    base: int | None = None,
) -> StrassenIOReport:
    """Exact counts of :func:`dfs_io` via the uniform-recursion recurrence.

    The simulation's cost at a node depends only on the subproblem size, so
    one evaluation per distinct size suffices; this runs in O(depth) and
    lets the experiments sweep to sizes where the tree has billions of
    nodes.  Tests assert word- and message-exact agreement with dfs_io.
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    if not scheme.is_square:
        raise ValueError(
            "dfs_io_model runs the square recursion; use rect_dfs_io_model "
            f"for rectangular scheme {scheme.name!r}"
        )
    base = _check_base(n, M, scheme.n0, base)
    u_nnz = _nnz_rows(scheme.U)
    v_nnz = _nnz_rows(scheme.V)
    w_nnz = _nnz_rows(scheme.W)

    cache: dict[int, tuple[int, int, int, int, int]] = {}

    def go(size: int) -> tuple[int, int, int, int, int]:
        """(wr, mr, ww, mw, base_mults) for one subproblem of this size."""
        if size in cache:
            return cache[size]
        if size <= base:
            res = (2 * size * size, 2, size * size, 1, 1)
            cache[size] = res
            return res
        sub = size // scheme.n0
        sw = sub * sub
        wr = mr = ww = mw = mults = 0
        sub_res = go(sub)
        for r in range(scheme.t0):
            for nnz in (u_nnz[r], v_nnz[r]):
                a, b, c, d = _stream_counts(sw, nnz, M)
                wr += a
                mr += b
                ww += c
                mw += d
            wr += sub_res[0]
            mr += sub_res[1]
            ww += sub_res[2]
            mw += sub_res[3]
            mults += sub_res[4]
        for q in range(scheme.c_blocks):
            a, b, c, d = _stream_counts(sw, w_nnz[q], M)
            wr += a
            mr += b
            ww += c
            mw += d
        res = (wr, mr, ww, mw, mults)
        cache[size] = res
        return res

    wr, mr, ww, mw, mults = go(n)
    counter = IOCounter(
        words_read=wr, words_written=ww, messages_read=mr, messages_written=mw
    )
    return StrassenIOReport(
        n=n,
        M=M,
        scheme=scheme.name,
        counter=counter,
        base_size=base,
        n_base_multiplies=mults,
        shape=(n, n, n),
    )


def rect_dfs_io_model(
    m: int,
    n: int,
    p: int,
    M: int,
    scheme: BilinearScheme | str = "strassen122",
) -> StrassenIOReport:
    """Exact depth-first I/O counts for a rectangular ⟨m₀,n₀,p₀;t₀⟩ recursion.

    The shape ``(m, n, p)`` shrinks componentwise by the scheme shape until
    the three blocks fit in fast memory (``mn + np + mp ≤ M``); above the
    base every linear form streams its operand blocks exactly as in
    :func:`dfs_io_model`, with the A/B/C block sizes now differing.  Applied
    to a square scheme and shape this reproduces ``dfs_io_model``'s counts
    word-for-word (the tests pin this).  Raises when a dimension stops being
    divisible before the blocks fit — no silent padding.
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    u_nnz = _nnz_rows(scheme.U)
    v_nnz = _nnz_rows(scheme.V)
    w_nnz = _nnz_rows(scheme.W)

    cache: dict[tuple[int, int, int], tuple[int, int, int, int, int]] = {}
    base_shape: list[tuple[int, int, int]] = []

    def go(mm: int, nn: int, pp: int) -> tuple[int, int, int, int, int]:
        key = (mm, nn, pp)
        if key in cache:
            return cache[key]
        if mm * nn + nn * pp + mm * pp <= M:
            # Read the A and B blocks, multiply in-core, write the C block.
            if not base_shape:
                base_shape.append(key)
            res = (mm * nn + nn * pp, 2, mm * pp, 1, 1)
            cache[key] = res
            return res
        if mm % scheme.m0 or nn % scheme.n0 or pp % scheme.p0:
            raise ValueError(
                f"shape ({mm},{nn},{pp}) not divisible by scheme shape "
                f"{scheme.shape} yet its blocks exceed M={M}"
            )
        sm, sn, sp = mm // scheme.m0, nn // scheme.n0, pp // scheme.p0
        if (sm, sn, sp) == (mm, nn, pp):
            # degenerate ⟨1,1,1⟩ scheme: the recursion makes no progress
            raise ValueError(
                f"shape ({mm},{nn},{pp}) exceeds M={M} but scheme shape "
                f"{scheme.shape} cannot shrink it"
            )
        aw, bw, cw = sm * sn, sn * sp, sm * sp
        wr = mr = ww = mw = mults = 0
        sub_res = go(sm, sn, sp)
        for r in range(scheme.t0):
            for nnz, words in ((u_nnz[r], aw), (v_nnz[r], bw)):
                a, b, c, d = _stream_counts(words, nnz, M)
                wr += a
                mr += b
                ww += c
                mw += d
            wr += sub_res[0]
            mr += sub_res[1]
            ww += sub_res[2]
            mw += sub_res[3]
            mults += sub_res[4]
        for q in range(scheme.c_blocks):
            a, b, c, d = _stream_counts(cw, w_nnz[q], M)
            wr += a
            mr += b
            ww += c
            mw += d
        res = (wr, mr, ww, mw, mults)
        cache[key] = res
        return res

    wr, mr, ww, mw, mults = go(m, n, p)
    counter = IOCounter(
        words_read=wr, words_written=ww, messages_read=mr, messages_written=mw
    )
    return StrassenIOReport(
        n=max(m, n, p),
        M=M,
        scheme=scheme.name,
        counter=counter,
        base_size=max(base_shape[0]) if base_shape else -1,
        n_base_multiplies=mults,
        shape=(m, n, p),
    )
