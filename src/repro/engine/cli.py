"""``python -m repro`` — the sweeps the example/benchmark scripts do by hand.

Subcommands:

* ``sweep``     — cached (scheme × k × M × policy) grid, optionally parallel
* ``scaling``   — cached strong-scaling sweep (parallel registry × p × c)
* ``plan``      — topology-aware auto-scheduler: ranked plans per memory limit
* ``bench``     — run the registered benchmark workloads, write
  ``BENCH_<tag>.json``, optionally gate against a baseline
* ``expansion`` — one ``h(Dec_k C)`` estimate through the cache
* ``structure`` — the Figure 2 structural report for one (scheme, k)
* ``schemes``   — the validated scheme registry
* ``algorithms``— the parallel-algorithm registry
* ``cache``     — inspect or clear the on-disk artifact cache
* ``serve``     — long-running concurrent HTTP/JSON service over the cache
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import TextIO

from repro.engine.builders import POLICIES, cached_estimate
from repro.engine.cache import EngineCache, default_cache
from repro.engine.grid import GridSpec, run_grid
from repro.util.jsonutil import jsonable

__all__ = ["main", "build_parser"]

_SWEEP_COLUMNS = [
    "scheme",
    "shape",
    "k",
    "M",
    "V",
    "E",
    "h_lower",
    "h_upper",
    "provenance",
    "method",
    "io_lower_bound",
    "measured_words",
    "measured/lower",
]

_SCALING_COLUMNS = [
    "label",
    "class",
    "p",
    "c",
    "measured_words",
    "analytic_words",
    "mem_peak",
    "memory_dependent_bound",
    "memory_independent_bound",
    "binding",
    "measured/lower",
    "verified",
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Cached, parallel experiment engine for the graph-expansion "
            "reproduction (Ballard, Demmel, Holtz & Schwartz, SPAA 2011)."
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro-engine)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk cache (memory-only)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser(
        "sweep", help="run a (scheme x k x M x policy) grid through the cache"
    )
    sweep.add_argument(
        "--schemes",
        nargs="+",
        default=["strassen", "winograd"],
        metavar="NAME",
        help=(
            "registry names, including rectangular entries (strassen122, "
            "classical122, ...) and dynamic classical<m>x<n>x<p> shapes"
        ),
    )
    sweep.add_argument("--k-min", type=int, default=1)
    sweep.add_argument("--k-max", type=int, default=5)
    sweep.add_argument(
        "--memories", nargs="+", type=int, default=[48, 192, 768, 3072], metavar="M"
    )
    sweep.add_argument("--policies", nargs="+", default=["auto"], choices=POLICIES)
    sweep.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = serial)"
    )
    sweep.add_argument("--json", action="store_true", help="emit the full report as JSON")

    scaling = sub.add_parser(
        "scaling",
        help="strong-scaling sweep: registry algorithms x p-grid x replication c",
    )
    scaling.add_argument(
        "--algos",
        nargs="+",
        default=["all"],
        metavar="NAME",
        help="parallel-algorithm registry names, or 'all' (cannon summa 3d 2.5d caps)",
    )
    scaling.add_argument("--n", type=int, default=56, help="matrix size (default 56)")
    scaling.add_argument(
        "--p-max", type=int, default=64, help="processor budget per algorithm"
    )
    scaling.add_argument(
        "--cs",
        nargs="+",
        type=int,
        default=[1, 2, 4],
        metavar="C",
        help="replication factors offered to 2.5D-style algorithms",
    )
    scaling.add_argument(
        "--scheme", default="strassen", help="scheme for scheme-driven algorithms (CAPS)"
    )
    scaling.add_argument("--alpha", type=float, default=1.0, help="per-message latency")
    scaling.add_argument("--beta", type=float, default=1.0, help="per-word cost")
    scaling.add_argument(
        "--topology",
        default=None,
        metavar="SPEC",
        help=(
            "cost the sweep on a machine topology instead of the flat "
            "(alpha, beta) model: uniform | fat-tree:SxH | torus:AxB[x..] | "
            "gpu:NxG"
        ),
    )
    scaling.add_argument(
        "--workers", type=int, default=1, help="pool workers for the sweep (1 = serial)"
    )
    scaling.add_argument("--json", action="store_true", help="emit the full report as JSON")

    plan_cmd = sub.add_parser(
        "plan",
        help="auto-scheduler: rank registry configurations on a topology",
    )
    plan_cmd.add_argument("--n", type=int, default=4096, help="matrix size (default 4096)")
    plan_cmd.add_argument(
        "--topology",
        default="uniform",
        metavar="SPEC",
        help="uniform[:P] | fat-tree:SxH | torus:AxB[x..] | gpu:NxG (default uniform)",
    )
    plan_cmd.add_argument(
        "--scheme", default="strassen", help="scheme for scheme-driven algorithms (CAPS)"
    )
    plan_cmd.add_argument("--alpha", type=float, default=1.0, help="base per-message latency")
    plan_cmd.add_argument("--beta", type=float, default=1.0, help="base per-word cost")
    plan_cmd.add_argument(
        "--p-max", type=int, default=None, help="processor budget (default: topology capacity)"
    )
    plan_cmd.add_argument(
        "--cs",
        nargs="+",
        type=int,
        default=[1, 2, 4],
        metavar="C",
        help="replication factors offered to 2.5D-style algorithms",
    )
    plan_cmd.add_argument(
        "--memory-limits",
        nargs="+",
        type=int,
        default=None,
        metavar="M",
        help=(
            "per-rank word budgets to rank under (0 = unlimited); default: "
            "a tight->roomy->unlimited ladder that walks the Table-I regimes"
        ),
    )
    plan_cmd.add_argument(
        "--algos",
        nargs="+",
        default=None,
        metavar="NAME",
        help="restrict the search to these registry names (default: all)",
    )
    plan_cmd.add_argument(
        "--top", type=int, default=5, help="rows shown per memory limit (default 5)"
    )
    plan_cmd.add_argument("--json", action="store_true", help="emit the full report as JSON")

    bench = sub.add_parser(
        "bench",
        help="run registered benchmark workloads and write BENCH_<tag>.json",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="use the reduced parameter sets (same workload selection)",
    )
    bench.add_argument(
        "--workloads",
        nargs="+",
        default=None,
        metavar="NAME",
        help="subset of registry names (default: every registered workload)",
    )
    bench.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="override the per-workload timed-round counts",
    )
    bench.add_argument("--tag", default="local", help="run label (default: local)")
    bench.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output path (default: BENCH_<tag>.json in the working directory)",
    )
    bench.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="baseline BENCH_*.json to gate against (non-zero exit on regression)",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="slowdown ratio that counts as a regression (default: 1.5)",
    )
    bench.add_argument(
        "--metric",
        default="min",
        choices=["min", "mean", "p50", "p90", "max"],
        help="seconds statistic compared against the baseline (default: min)",
    )
    bench.add_argument(
        "--no-strict-checks",
        action="store_true",
        help="report science-output drift vs the baseline without failing",
    )
    bench.add_argument(
        "--list", action="store_true", help="list the registered workloads and exit"
    )
    bench.add_argument("--json", action="store_true", help="print the document to stdout")

    expansion = sub.add_parser("expansion", help="estimate h(Dec_k C) for one point")
    expansion.add_argument("--scheme", default="strassen")
    expansion.add_argument("--k", type=int, default=4)
    expansion.add_argument("--policy", default="auto", choices=POLICIES)
    expansion.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for the exact subset search (default 1: "
            "serial and deterministic in CI; any value returns identical "
            "results)"
        ),
    )

    structure = sub.add_parser(
        "structure", help="Figure 2 structural report for one (scheme, k)"
    )
    structure.add_argument("--scheme", default="strassen")
    structure.add_argument("--k", type=int, default=5)

    sub.add_parser("schemes", help="list the validated scheme registry")

    sub.add_parser("algorithms", help="list the parallel-algorithm registry")

    cache_cmd = sub.add_parser("cache", help="inspect or clear the artifact cache")
    cache_cmd.add_argument("action", choices=["info", "clear"])

    serve = sub.add_parser(
        "serve",
        help=(
            "serve /expansion /bounds /sweep /scaling /plan over HTTP "
            "(asyncio + worker pool)"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default loopback)")
    serve.add_argument(
        "--port", type=int, default=8077, help="TCP port (0 picks a free one; default 8077)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "build executor: 0 (default) runs builds on in-process threads "
            "sharing one cache; N > 0 spawns N worker processes over the "
            "same cache directory"
        ),
    )
    serve.add_argument(
        "--memory-items",
        type=int,
        default=64,
        help="decoded-object LRU entry cap for the serving cache (default 64)",
    )
    serve.add_argument(
        "--memory-mb",
        type=int,
        default=512,
        help="decoded-object LRU byte cap in MiB; 0 disables the cap (default 512)",
    )

    check = sub.add_parser(
        "check", help="run the domain-invariant static-analysis checkers"
    )
    check.add_argument(
        "--paths",
        nargs="+",
        default=None,
        help="files or directories to analyze (default: src/ under the repo root)",
    )
    check.add_argument(
        "--select",
        nargs="+",
        default=None,
        metavar="CHECKER",
        help="checker names or RC codes to run (default: all registered)",
    )
    check.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="findings rendering (default: text)",
    )
    check.add_argument(
        "--no-baseline",
        action="store_true",
        help="report grandfathered findings too, instead of filtering them",
    )
    check.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the committed baseline to grandfather current findings",
    )
    check.add_argument(
        "--repin",
        action="store_true",
        help="re-record the RC102 module-digest pins at the current CACHE_VERSION",
    )
    check.add_argument(
        "--list", action="store_true", help="list registered checkers and exit"
    )

    return parser


def _make_cache(args: argparse.Namespace) -> EngineCache:
    if args.no_cache:
        return EngineCache(disk=False)
    if args.cache_dir is not None:
        return EngineCache(args.cache_dir)
    return default_cache()


def _cmd_sweep(args: argparse.Namespace, cache: EngineCache, out: TextIO) -> int:
    from repro.experiments.report import render_table

    spec = GridSpec.from_ranges(
        schemes=args.schemes,
        k_min=args.k_min,
        k_max=args.k_max,
        memories=args.memories,
        policies=args.policies,
    )
    report = run_grid(spec, workers=args.workers, cache=cache)
    if args.json:
        print(report.to_json(indent=2), file=out)
    else:
        print(
            render_table(
                report.rows,
                columns=_SWEEP_COLUMNS,
                title=f"[engine] sweep over {len(report.rows)} grid points",
            ),
            file=out,
        )
        s = report.stats
        print(
            f"wall {report.wall_time:.3f}s  workers={report.workers}  "
            f"builds={s['builds']}  hits={s['hits']}  misses={s['misses']}  "
            f"(warm cache => builds=0)",
            file=out,
        )
    return 0


def _cmd_scaling(args: argparse.Namespace, cache: EngineCache, out: TextIO) -> int:
    from repro.experiments.report import render_table
    from repro.engine.scaling import ScalingSpec, scaling_sweep
    from repro.parallel.base import available_parallel

    algos = available_parallel() if args.algos == ["all"] else args.algos
    topology = None
    if args.topology is not None:
        from repro.topology import Topology

        topology = Topology.parse(args.topology, args.alpha, args.beta)
    spec = ScalingSpec(
        algos=tuple(algos),
        n=args.n,
        p_max=args.p_max,
        cs=tuple(args.cs),
        scheme=args.scheme,
        alpha=args.alpha,
        beta=args.beta,
        topology=topology,
    )
    report = scaling_sweep(spec, cache=cache, workers=args.workers)
    if args.json:
        print(report.to_json(indent=2), file=out)
    else:
        print(
            render_table(
                report.rows,
                columns=_SCALING_COLUMNS,
                title=(
                    f"[engine] strong scaling at n={args.n}: "
                    f"{len(report.rows)} (algorithm, p, c) points"
                ),
            ),
            file=out,
        )
        s = report.stats
        print(
            f"wall {report.wall_time:.3f}s  builds={s['builds']}  "
            f"hits={s['hits']}  misses={s['misses']}  (warm cache => builds=0)",
            file=out,
        )
    return 0


_PLAN_COLUMNS = [
    "label",
    "p",
    "c",
    "schedule",
    "predicted_time",
    "words",
    "messages",
    "memory",
    "lower_bound",
    "binding",
]


def _cmd_plan(args: argparse.Namespace, cache: EngineCache, out: TextIO) -> int:
    from repro.engine.planner import plan_report
    from repro.experiments.report import render_table
    from repro.topology import Topology

    topology = Topology.parse(args.topology, args.alpha, args.beta)
    memory_limits = None
    if args.memory_limits is not None:
        memory_limits = [None if m == 0 else m for m in args.memory_limits]
    report = plan_report(
        args.n,
        scheme=args.scheme,
        topology=topology,
        memory_limits=memory_limits,
        p_max=args.p_max,
        cs=tuple(args.cs),
        algos=args.algos,
        cache=cache,
    )
    if args.json:
        print(json.dumps(jsonable(report), indent=2, allow_nan=False), file=out)
        return 0
    for table in report["tables"]:
        limit = table["memory_limit"]
        label = "unlimited" if limit is None else f"{limit} words/rank"
        rows = table["rows"][: args.top]
        if not rows:
            print(f"[plan] M={label}: no feasible configuration", file=out)
            continue
        print(
            render_table(
                rows,
                columns=_PLAN_COLUMNS,
                title=(
                    f"[plan] n={args.n} on {topology.name}, M={label}: "
                    f"top {len(rows)} of {len(table['rows'])} feasible plans"
                ),
            ),
            file=out,
        )
    print(f"winners across the memory ladder: {report['winners']}", file=out)
    s = report["stats"]
    print(
        f"wall {report['wall_time']:.3f}s  builds={s['builds']}  "
        f"hits={s['hits']}  misses={s['misses']}  (warm cache => builds=0)",
        file=out,
    )
    return 0


def _cmd_bench(args: argparse.Namespace, out: TextIO) -> int:
    from repro.engine.bench import (
        compare_benchmarks,
        get_bench,
        load_bench_file,
        render_comparison,
        run_suite,
        selected_benches,
        write_bench_file,
    )
    from repro.experiments.report import render_table

    if args.list:
        rows = []
        for name in selected_benches(args.workloads, quick=args.quick):
            w = get_bench(name)
            rows.append(
                {
                    "workload": name,
                    "group": w.group,
                    "rounds": w.quick_rounds if args.quick else w.rounds,
                    "warmup": w.warmup,
                    "cold": w.cold,
                    "description": w.description,
                }
            )
        print(render_table(rows, title="registered benchmark workloads"), file=out)
        return 0

    doc = run_suite(
        names=args.workloads,
        quick=args.quick,
        rounds=args.rounds,
        tag=args.tag,
        progress=lambda name: print(f"[bench] running {name} ...", file=sys.stderr),
    )
    path = args.out if args.out is not None else f"BENCH_{args.tag}.json"
    write_bench_file(doc, path)
    if args.json:
        print(json.dumps(jsonable(doc), indent=2, allow_nan=False), file=out)
    else:
        rows = [
            {
                "workload": name,
                "group": rec["group"],
                "rounds": rec["rounds"],
                "min_s": round(rec["seconds"]["min"], 4),
                "p50_s": round(rec["seconds"]["p50"], 4),
                "p90_s": round(rec["seconds"]["p90"], 4),
                "builds": rec["cache"]["builds"],
                "hits": rec["cache"]["hits"],
            }
            for name, rec in doc["workloads"].items()
        ]
        print(
            render_table(rows, title=f"[bench] {len(rows)} workloads -> {path}"),
            file=out,
        )
    if args.compare is None:
        return 0
    baseline = load_bench_file(args.compare)
    cmp = compare_benchmarks(
        doc,
        baseline,
        threshold=args.threshold,
        metric=args.metric,
    )
    print(render_comparison(cmp), file=out)
    return 1 if cmp.failed(strict_checks=not args.no_strict_checks) else 0


def _cmd_expansion(args: argparse.Namespace, cache: EngineCache, out: TextIO) -> int:
    est = cached_estimate(
        args.scheme, args.k, policy=args.policy, cache=cache, jobs=args.jobs
    )
    # Strict-JSON invariant (same as the sweep report): NaN → null.
    payload = {
        "scheme": args.scheme,
        "k": args.k,
        "policy": args.policy,
        "lower": est.lower,
        "upper": est.upper,
        "witness_size": est.witness_size,
        "witness_boundary": est.witness_boundary,
        "degree": est.degree,
        "method": est.method,
        "interval": est.interval().as_dict(),
    }
    print(json.dumps(jsonable(payload), indent=2, allow_nan=False), file=out)
    return 0


def _cmd_structure(args: argparse.Namespace, cache: EngineCache, out: TextIO) -> int:
    from repro.experiments.structure_exp import figure2_report

    print(
        json.dumps(
            jsonable(figure2_report(args.scheme, args.k, cache=cache)),
            indent=2,
            allow_nan=False,
        ),
        file=out,
    )
    return 0


def _cmd_schemes(out: TextIO) -> int:
    from repro.cdag.schemes import available_schemes, get_scheme
    from repro.experiments.report import render_table

    rows = []
    for name in available_schemes():
        s = get_scheme(name)
        rows.append(
            {
                "scheme": name,
                "m0": s.m0,
                "n0": s.n0,
                "p0": s.p0,
                "t0": s.t0,
                "square": s.is_square,
                "omega0": s.omega0,
                "flat_additions": s.n_additions,
            }
        )
    print(render_table(rows, title="registered bilinear schemes"), file=out)
    return 0


def _cmd_algorithms(out: TextIO) -> int:
    from repro.experiments.report import render_table
    from repro.parallel.base import available_parallel, get_parallel

    rows = []
    for name in available_parallel():
        a = get_parallel(name)
        rows.append(
            {
                "algorithm": name,
                "class": a.algorithm_class,
                "regime": a.regime,
                "replication": a.supports_replication,
                "scheme-driven": a.uses_scheme,
                "requires": a.requirement,
                "attains": a.attains,
            }
        )
    print(render_table(rows, title="registered parallel algorithms"), file=out)
    return 0


def _cmd_cache(args: argparse.Namespace, cache: EngineCache, out: TextIO) -> int:
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached artifacts from {cache.root}", file=out)
    else:
        print(json.dumps(jsonable(cache.info()), indent=2, allow_nan=False), file=out)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.service import ServeConfig, run

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=args.cache_dir,
        disk=not args.no_cache,
        memory_items=args.memory_items,
        memory_bytes=args.memory_mb * 1024 * 1024 if args.memory_mb > 0 else None,
    )
    return run(config)


def _cmd_check(args: argparse.Namespace, out: TextIO) -> int:
    from pathlib import Path

    from repro.analysis import (
        available_checkers,
        get_checker,
        render_findings,
        run_check,
        write_baseline,
    )
    from repro.analysis.baseline import DEFAULT_BASELINE_NAME
    from repro.analysis.checkers.cache_fingerprint import write_pins

    root = Path.cwd()
    if args.list:
        for name in available_checkers():
            checker = get_checker(name)
            print(f"{checker.code}  {checker.name:<18} {checker.description}", file=out)
        return 0
    if args.repin:
        pins = write_pins(root)
        print(f"pinned result-module digests -> {pins}", file=out)
    select = None
    if args.select:
        by_code = {get_checker(n).code: n for n in available_checkers()}
        select = [by_code.get(s, s) for s in args.select]
    report = run_check(
        paths=args.paths,
        select=select,
        root=root,
        use_baseline=not args.no_baseline,
    )
    if args.update_baseline:
        baseline = write_baseline(
            report.findings + report.baselined, root / DEFAULT_BASELINE_NAME
        )
        print(
            f"baselined {len(report.findings) + len(report.baselined)} "
            f"finding(s) -> {baseline}",
            file=out,
        )
        return 0
    if args.format == "json":
        print(report.to_json(), file=out)
    else:
        print(render_findings(report), file=out)
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    cache = _make_cache(args)
    out = sys.stdout
    try:
        if args.command == "sweep":
            return _cmd_sweep(args, cache, out)
        if args.command == "scaling":
            return _cmd_scaling(args, cache, out)
        if args.command == "plan":
            return _cmd_plan(args, cache, out)
        if args.command == "bench":
            return _cmd_bench(args, out)
        if args.command == "expansion":
            return _cmd_expansion(args, cache, out)
        if args.command == "structure":
            return _cmd_structure(args, cache, out)
        if args.command == "schemes":
            return _cmd_schemes(out)
        if args.command == "algorithms":
            return _cmd_algorithms(out)
        if args.command == "cache":
            return _cmd_cache(args, cache, out)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "check":
            return _cmd_check(args, out)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly, and point
        # stdout at devnull so interpreter shutdown doesn't re-raise.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except (KeyError, ValueError) as exc:
        # Domain errors (unknown scheme, infeasible policy/graph size) get a
        # one-line message instead of a traceback.
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")
