"""The benchmark subsystem: registered workloads, measured runs, baselines.

The repo's performance story used to live in ad-hoc ``pytest-benchmark``
scripts that printed tables and discarded every timing.  This module makes
the workloads first-class objects, mirroring the parallel-algorithm
registry: a :func:`register_bench` decorator collects named workloads
(CDAG builds, spectral/exact expansion, sequential-IO sweeps, cold/warm
grid sweeps, the strong-scaling sweep), one harness times them, and the
result is a machine-readable ``BENCH_<tag>.json`` that
``python -m repro bench --compare`` can gate regressions against.  The
``benchmarks/bench_*.py`` pytest files are thin wrappers over the same
registry, so the CLI and pytest-benchmark share one workload definition.

``BENCH_*.json`` schema (``BENCH_SCHEMA_VERSION = 3``)
------------------------------------------------------

Top level::

    schema_version   int    — this format's version (bump on shape changes)
    tag              str    — run label ("ci", "local", a commit sha, ...)
    quick            bool   — whether --quick parameter sets were used
    created_unix     float  — time.time() at run start
    host             object — platform fingerprint:
        platform, machine, python, numpy, scipy, cpus
    workloads        object — one entry per workload, keyed by name:

Per workload::

    group            str    — registry group (cdag | expansion | io |
                              engine | parallel | serve)
    params           object — the exact parameter set the run used
    rounds           int    — number of *timed* rounds
    warmup           bool   — one untimed warm-up call ran first
    cold             bool   — every round saw a fresh (empty) engine cache
    seconds          object — wall-clock stats over the timed rounds:
        raw (list, round order), min, max, mean, p50, p90
    peak_rss_kb      int    — process high-water RSS after the workload
                              (ru_maxrss; monotone across the process, so
                              comparable only within one run's ordering)
    cache            object — engine-cache counter increments during the
                              timed rounds: hits, misses, stores, builds,
                              disk_errors, evictions (v2: two new counters)
    pool             object — worker-pool counter increments during the
                              timed rounds (v3; see ``repro.engine.pool``):
                              pool_starts, workers_spawned, tasks_dispatched,
                              warm_dispatches, respawns, serial_tasks
    metrics          object — optional workload-reported numbers (the serve
                              load test's requests/sec and p50/p99 latency
                              land here); informational, never gated
    check            object — scalar "science" outputs of the workload
                              (JSON numbers/strings/bools, possibly nested
                              in lists/objects).  --compare verifies these
                              against the baseline: timings may drift,
                              results must not.

Regression gating: :func:`compare_benchmarks` joins two such documents on
workload name and flags ``current.seconds[metric] / baseline.seconds[metric]
> threshold`` as a regression (and check-value drift as a mismatch); the CLI
exits non-zero when any gate fails.
"""

from __future__ import annotations

import json
import math
import os
import platform
import sys
import time

try:
    import resource
except ImportError:  # non-POSIX platforms: RSS reporting degrades to 0
    resource = None
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Sequence

if TYPE_CHECKING:
    from repro.engine.grid import GridReport, GridSpec

import numpy as np

from repro.engine import pool as pool_runtime
from repro.engine.cache import CacheStats, EngineCache
from repro.util.jsonutil import jsonable as _jsonable

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchWorkload",
    "ComparisonRow",
    "BenchComparison",
    "register_bench",
    "get_bench",
    "available_benches",
    "bench_groups",
    "selected_benches",
    "run_bench",
    "run_suite",
    "host_fingerprint",
    "write_bench_file",
    "load_bench_file",
    "compare_benchmarks",
    "render_comparison",
]

#: Version of the BENCH_*.json document layout (see the module docstring).
#: v2: the per-workload ``cache`` block gained the ``disk_errors`` and
#: ``evictions`` counters, and workloads may attach an ungated ``metrics``
#: object (the serve load test's throughput/latency numbers).
#: v3: every workload record carries a ``pool`` block — the shared
#: worker-pool runtime's counter increments over the timed rounds.
BENCH_SCHEMA_VERSION = 3

#: The groups a workload may declare, in display order.
BENCH_GROUPS = ("cdag", "expansion", "io", "engine", "parallel", "serve")


@dataclass(frozen=True)
class BenchWorkload:
    """One registered benchmark workload.

    ``func(cache, **params)`` must be deterministic and return a payload
    dict containing at least ``"check"`` (scalar science outputs; see the
    schema notes above).  ``cold`` workloads get a fresh engine cache every
    round; ``warmup`` workloads get one untimed call first, so the timed
    rounds measure the steady (warm-cache) path.
    """

    name: str
    group: str
    description: str
    func: Callable[..., dict]
    params: dict[str, Any] = field(default_factory=dict)
    quick_params: dict[str, Any] = field(default_factory=dict)
    rounds: int = 3
    quick_rounds: int = 2
    warmup: bool = False
    cold: bool = False

    def resolve_params(self, quick: bool = False) -> dict[str, Any]:
        """The parameter set a run uses: quick overrides layered on full."""
        if not quick:
            return dict(self.params)
        return {**self.params, **self.quick_params}

    def call(
        self,
        cache: EngineCache | None = None,
        quick: bool = False,
        **overrides: Any,
    ) -> dict:
        """Run the workload once (untimed) and return its payload.

        This is the entry point the ``benchmarks/bench_*.py`` pytest
        wrappers use: the same function, parameterized the same way, with
        per-test overrides allowed (e.g. a different scheme).
        """
        if cache is None:
            cache = EngineCache(disk=False)
        params = {**self.resolve_params(quick), **overrides}
        return self.func(cache, **params)


_BENCHES: dict[str, BenchWorkload] = {}


def register_bench(
    name: str,
    group: str,
    *,
    params: dict[str, Any] | None = None,
    quick_params: dict[str, Any] | None = None,
    rounds: int = 3,
    quick_rounds: int = 2,
    warmup: bool = False,
    cold: bool = False,
) -> Callable[[Callable[..., dict]], Callable[..., dict]]:
    """Class-less registry decorator (mirrors ``@register_parallel``).

    The decorated function keeps working as a plain function; the registry
    entry wraps it with its canonical parameters and harness flags.
    """
    if group not in BENCH_GROUPS:
        raise ValueError(f"unknown bench group {group!r}; choose from {BENCH_GROUPS}")

    def deco(func: Callable[..., dict]) -> Callable[..., dict]:
        if name in _BENCHES:
            raise ValueError(f"benchmark workload {name!r} already registered")
        doc = (func.__doc__ or "").strip().splitlines()
        _BENCHES[name] = BenchWorkload(
            name=name,
            group=group,
            description=doc[0] if doc else name,
            func=func,
            params=dict(params or {}),
            quick_params=dict(quick_params or {}),
            rounds=rounds,
            quick_rounds=quick_rounds,
            warmup=warmup,
            cold=cold,
        )
        return func

    return deco


def get_bench(name: str) -> BenchWorkload:
    """Look up a registered workload by name."""
    try:
        return _BENCHES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark workload {name!r}; available: "
            f"{', '.join(available_benches())}"
        ) from None


def available_benches() -> list[str]:
    """All registered workload names, in registration order."""
    return list(_BENCHES)


def bench_groups() -> dict[str, list[str]]:
    """Workload names keyed by group, groups in display order."""
    out: dict[str, list[str]] = {g: [] for g in BENCH_GROUPS}
    for name, w in _BENCHES.items():
        out[w.group].append(name)
    return {g: names for g, names in out.items() if names}


def selected_benches(names: list[str] | None = None, quick: bool = False) -> list[str]:
    """The workloads a run executes, in deterministic (registration) order.

    ``--quick`` changes *parameters*, never membership, so a quick CI run
    and a full local run always cover the same workload set; an explicit
    ``names`` list is validated and re-ordered to registry order.
    """
    del quick  # selection is quick-invariant by design (tests pin this)
    if names is None:
        return available_benches()
    unknown = [n for n in names if n not in _BENCHES]
    if unknown:
        raise KeyError(
            f"unknown benchmark workload(s) {unknown}; available: "
            f"{', '.join(available_benches())}"
        )
    chosen = set(names)
    return [n for n in available_benches() if n in chosen]


# ---------------------------------------------------------------------- #
# the harness                                                             #
# ---------------------------------------------------------------------- #


def _peak_rss_kb() -> int:
    """Process high-water RSS in KiB (ru_maxrss is bytes on macOS)."""
    if resource is None:
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


def _seconds_stats(raw: list[float]) -> dict[str, Any]:
    arr = np.asarray(raw, dtype=np.float64)
    return {
        "raw": [float(x) for x in raw],
        "min": float(arr.min()),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p90": float(np.percentile(arr, 90)),
    }


def run_bench(
    name: str,
    quick: bool = False,
    rounds: int | None = None,
) -> dict:
    """Time one workload and return its per-workload JSON record.

    Cold workloads see a fresh memory-only :class:`EngineCache` every
    round; everything else shares one per-run cache (populated by the
    warm-up call when ``warmup`` is set).  Cache counters are reset after
    warm-up so the reported hits/misses/builds cover exactly the timed
    rounds — the reason :meth:`EngineCache.reset_stats` exists.
    """
    w = get_bench(name)
    params = w.resolve_params(quick)
    n_rounds = rounds if rounds is not None else (w.quick_rounds if quick else w.rounds)
    if n_rounds < 1:
        raise ValueError("need at least one timed round")

    cache = EngineCache(disk=False)
    if w.warmup:
        w.func(cache, **params)
    cache.reset_stats()
    pool_before = pool_runtime.pool_stats_snapshot()

    raw: list[float] = []
    payload: dict = {}
    # Initialize from the dataclass so new CacheStats counters are summed
    # (not KeyError'd) the day they are added.
    cache_stats = CacheStats().as_dict()
    for _ in range(n_rounds):
        if w.cold:
            cache = EngineCache(disk=False)
        t0 = time.perf_counter()
        payload = w.func(cache, **params)
        raw.append(time.perf_counter() - t0)
        if w.cold:
            for key, value in cache.stats.as_dict().items():
                cache_stats[key] += value
    if not w.cold:
        cache_stats = cache.stats.as_dict()

    if not isinstance(payload, dict) or "check" not in payload:
        raise TypeError(f"workload {name!r} must return a dict payload with a 'check' key")
    record = {
        "group": w.group,
        "params": _jsonable(params),
        "rounds": n_rounds,
        "warmup": w.warmup,
        "cold": w.cold,
        "seconds": _seconds_stats(raw),
        "peak_rss_kb": _peak_rss_kb(),
        "cache": cache_stats,
        "pool": {
            k: v - pool_before.get(k, 0)
            for k, v in pool_runtime.pool_stats_snapshot().items()
        },
        "check": _jsonable(payload["check"]),
    }
    if "metrics" in payload:
        # Workload-reported numbers (throughput, latency percentiles): kept
        # in the document for humans and dashboards, never compared — the
        # timing gate is the ``seconds`` block.
        record["metrics"] = _jsonable(payload["metrics"])
    return record


def host_fingerprint() -> dict[str, Any]:
    """Where a BENCH document was measured (for reading baselines honestly)."""
    import scipy

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "cpus": int(os.cpu_count() or 1),
    }


def run_suite(
    names: list[str] | None = None,
    quick: bool = False,
    rounds: int | None = None,
    tag: str = "local",
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Run a set of workloads and assemble the full BENCH document."""
    doc: dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "tag": tag,
        "quick": bool(quick),
        "created_unix": time.time(),
        "host": host_fingerprint(),
        "workloads": {},
    }
    for name in selected_benches(names, quick=quick):
        if progress is not None:
            progress(name)
        doc["workloads"][name] = run_bench(name, quick=quick, rounds=rounds)
    return doc


def write_bench_file(doc: dict, path: str | Path) -> Path:
    """Write a BENCH document as strict (NaN-free) indented JSON."""
    path = Path(path)
    path.write_text(json.dumps(_jsonable(doc), indent=2, allow_nan=False) + "\n")
    return path


def load_bench_file(path: str | Path) -> dict:
    doc = json.loads(Path(path).read_text())
    version = doc.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"bench file {path} has schema_version {version!r}; "
            f"this build reads {BENCH_SCHEMA_VERSION}"
        )
    return doc


# ---------------------------------------------------------------------- #
# baseline comparison                                                     #
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ComparisonRow:
    """One workload's current-vs-baseline verdict."""

    name: str
    # ok | regression | improved | missing | new | check_mismatch | params_differ
    status: str
    ratio: float | None = None
    current_seconds: float | None = None
    baseline_seconds: float | None = None
    detail: str = ""


@dataclass(frozen=True)
class BenchComparison:
    """The full join of a current run against a baseline document."""

    rows: tuple[ComparisonRow, ...]
    threshold: float
    metric: str

    @property
    def regressions(self) -> list[ComparisonRow]:
        return [r for r in self.rows if r.status == "regression"]

    @property
    def check_mismatches(self) -> list[ComparisonRow]:
        return [r for r in self.rows if r.status == "check_mismatch"]

    @property
    def ungated(self) -> list[ComparisonRow]:
        """Rows the gate could not evaluate: a baseline workload that did
        not run here ("missing") or ran with different parameters
        ("params_differ")."""
        return [r for r in self.rows if r.status in ("missing", "params_differ")]

    def failed(self, strict_checks: bool = True) -> bool:
        """Whether the comparison should gate (non-zero exit).

        Regressions always gate.  Under ``strict_checks`` (the default),
        check-value drift gates too, and so do ungated rows — otherwise a
        params tweak or a dropped workload would silently disable its own
        perf and science gates while CI stays green.
        """
        if self.regressions:
            return True
        return strict_checks and bool(self.check_mismatches or self.ungated)


def _checks_equal(a: Any, b: Any, rel_tol: float) -> bool:
    """Recursive check-value equality with relative float tolerance."""
    if isinstance(a, dict) and isinstance(b, dict):
        return set(a) == set(b) and all(_checks_equal(a[k], b[k], rel_tol) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_checks_equal(x, y, rel_tol) for x, y in zip(a, b))
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b or a == b
    if isinstance(a, int) and isinstance(b, int):
        return a == b  # counters and sizes are exact; no tolerance
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return math.isclose(float(a), float(b), rel_tol=rel_tol, abs_tol=1e-12)
    return a == b


def compare_benchmarks(
    current: dict,
    baseline: dict,
    threshold: float = 1.5,
    metric: str = "min",
    check_rel_tol: float = 1e-4,
) -> BenchComparison:
    """Join two BENCH documents and flag regressions and check drift.

    ``metric`` names a field of the per-workload ``seconds`` record ("min"
    is the least noisy on shared CI runners).  A workload regresses when
    ``current/baseline > threshold``; it is reported "improved" below
    ``1/threshold``.  ``check`` values must agree to ``check_rel_tol``
    (relative; integers exactly) — timings may drift, science must not.
    Workloads run with different parameter sets (a --quick run against a
    full baseline) are reported ``params_differ``; they and ``missing``
    rows fail :meth:`BenchComparison.failed` unless strict checks are
    relaxed, because an uncomparable workload is an unenforced gate.
    """
    if threshold <= 1.0:
        raise ValueError("threshold must exceed 1.0 (it is a slowdown ratio)")
    cur = current.get("workloads", {})
    base = baseline.get("workloads", {})
    rows: list[ComparisonRow] = []
    for name in list(base) + [n for n in cur if n not in base]:
        if name not in cur:
            rows.append(ComparisonRow(name, "missing", detail="in baseline, not in this run"))
            continue
        if name not in base:
            rows.append(ComparisonRow(name, "new", detail="no baseline entry"))
            continue
        c, b = cur[name], base[name]
        if c.get("params") != b.get("params"):
            # Different parameter sets are apples-to-oranges: neither the
            # timings nor the check values are comparable.  Report it
            # instead of misdiagnosing the inevitable check drift.
            rows.append(
                ComparisonRow(
                    name,
                    "params_differ",
                    detail="parameter sets differ (quick vs full run?); not compared",
                )
            )
            continue
        c_sec = float(c["seconds"][metric])
        b_sec = float(b["seconds"][metric])
        ratio = c_sec / b_sec if b_sec > 0 else math.inf
        if not _checks_equal(c.get("check"), b.get("check"), check_rel_tol):
            status, detail = "check_mismatch", "science outputs differ from baseline"
        elif ratio > threshold:
            status, detail = "regression", f"slower than {threshold:.2f}x baseline"
        elif ratio < 1.0 / threshold:
            status, detail = "improved", f"faster than baseline/{threshold:.2f}"
        else:
            status, detail = "ok", ""
        rows.append(
            ComparisonRow(
                name,
                status,
                ratio=ratio,
                current_seconds=c_sec,
                baseline_seconds=b_sec,
                detail=detail,
            )
        )
    return BenchComparison(rows=tuple(rows), threshold=threshold, metric=metric)


def render_comparison(cmp: BenchComparison) -> str:
    """Human-readable comparison table (the CLI prints this)."""
    lines = [
        f"bench comparison (metric={cmp.metric}, threshold={cmp.threshold:.2f}x)",
        f"{'workload':24s} {'status':15s} {'current':>10s} {'baseline':>10s} {'ratio':>7s}",
    ]
    for r in cmp.rows:
        cur = f"{r.current_seconds:.4f}s" if r.current_seconds is not None else "-"
        base = f"{r.baseline_seconds:.4f}s" if r.baseline_seconds is not None else "-"
        ratio = f"{r.ratio:.2f}x" if r.ratio is not None else "-"
        suffix = f"  {r.detail}" if r.detail else ""
        lines.append(f"{r.name:24s} {r.status:15s} {cur:>10s} {base:>10s} {ratio:>7s}{suffix}")
    n_reg = len(cmp.regressions)
    n_bad = len(cmp.check_mismatches)
    n_ungated = len(cmp.ungated)
    lines.append(
        f"{len(cmp.rows)} workloads compared: {n_reg} regression(s), "
        f"{n_bad} check mismatch(es), {n_ungated} ungated"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# registered workloads                                                    #
# ---------------------------------------------------------------------- #
#
# Each function is deterministic, takes the harness's EngineCache first,
# and returns a payload whose "check" entry is the scalar science the
# comparison gate pins.  The pytest wrappers in benchmarks/bench_*.py call
# these same functions (via BenchWorkload.call) and assert on the payload.


@register_bench(
    "cdag_build",
    "cdag",
    params={"scheme": "strassen", "k": 6},
    quick_params={"k": 5},
    rounds=5,
    quick_rounds=3,
)
def _bench_cdag_build(cache: EngineCache, scheme: str, k: int) -> dict:
    """Cold construction of Dec_k C and H_k (the vectorized decode wiring)."""
    from repro.cdag.strassen_cdag import dec_graph, h_graph

    del cache  # pure construction; the cache layer is benched separately
    g = dec_graph(scheme, k)
    hg = h_graph(scheme, k)
    return {
        "dec": g,
        "h": hg,
        "check": {
            "dec_V": g.n_vertices,
            "dec_E": g.n_edges,
            "h_V": hg.cdag.n_vertices,
            "h_E": hg.cdag.n_edges,
        },
    }


@register_bench(
    "cdag_structure",
    "cdag",
    params={"scheme": "strassen", "k": 5},
    quick_params={"k": 4},
    warmup=True,
)
def _bench_cdag_structure(cache: EngineCache, scheme: str, k: int) -> dict:
    """Figure 2/3 structural reports and the Dec_1 connectivity dichotomy."""
    from repro.experiments.structure_exp import (
        dec1_connectivity_table,
        figure2_report,
        figure3_tree_report,
    )

    fig2 = figure2_report(scheme, k, cache=cache)
    fig3 = figure3_tree_report(scheme, k, cache=cache)
    connectivity = dec1_connectivity_table(cache=cache)
    return {
        "fig2": fig2,
        "fig3": fig3,
        "connectivity": connectivity,
        "check": {
            "dec1_V": fig2["dec1"]["V"],
            "deck_max_degree": fig2["deck"]["max_degree"],
            "hk_n_mults": fig2["hk"]["n_mults"],
            "partition_ok": fig3["partition_ok"],
            "connected": {r["scheme"]: r["dec1_connected"] for r in connectivity},
        },
    }


@register_bench("expansion_exact", "expansion")
def _bench_expansion_exact(cache: EngineCache) -> dict:
    """Exact edge-expansion enumeration on the largest feasible CDAGs."""
    from repro.cdag.classical_cdag import classical_matmul_cdag
    from repro.cdag.strassen_cdag import dec1_graph
    from repro.core.expansion import exact_edge_expansion, exact_small_set_expansion

    del cache
    g_cl = classical_matmul_cdag(2)  # 20 vertices: ~1M subsets enumerated
    h_cl, _ = exact_edge_expansion(g_cl)
    g_dec = dec1_graph("strassen")
    h_dec, _ = exact_edge_expansion(g_dec)
    h_small = exact_small_set_expansion(g_dec, 3)
    return {
        "check": {
            "h_classical2": h_cl,
            "h_dec1": h_dec,
            "h_dec1_s3": h_small,
            "V_classical2": g_cl.n_vertices,
        },
    }


@register_bench(
    "exact_v2",
    "expansion",
    params={"n_head": 22, "n_deep": 26, "dec2_scheme": "classical122"},
    quick_params={},
    rounds=3,
    quick_rounds=2,
    cold=True,
)
def _bench_exact_v2(cache: EngineCache, n_head: int, n_deep: int, dec2_scheme: str) -> dict:
    """Exact-expansion engine v2: bitset/Gray enumeration at the raised limit.

    ``n_head`` is the headline graph the seed enumerator could still solve
    (so ``--compare`` shows the speedup); ``n_deep`` (> 22) and the
    ``Dec_2`` of a ⟨1,2,2⟩-type scheme (28 vertices, solved exactly under
    the "auto" policy) were outside the pre-v2 exactly-solvable regime.
    """
    from repro.cdag.build import layered_circulant_cdag
    from repro.core.expansion import exact_edge_expansion
    from repro.engine.builders import cached_estimate

    g_head = layered_circulant_cdag(n_head)
    h_head, m_head = exact_edge_expansion(g_head)
    g_deep = layered_circulant_cdag(n_deep)
    h_deep, m_deep = exact_edge_expansion(g_deep)
    est = cached_estimate(dec2_scheme, 2, policy="auto", cache=cache)
    return {
        "estimate": est,
        "check": {
            "h_head": h_head,
            "head_witness": int(m_head.sum()),
            "h_deep": h_deep,
            "deep_witness": int(m_deep.sum()),
            "dec2_method": est.method,
            "dec2_h": est.upper,
        },
    }


@register_bench(
    "small_set_exact",
    "expansion",
    params={"n": 40, "s_max": 3},
    quick_params={},
)
def _bench_small_set_exact(cache: EngineCache, n: int, s_max: int) -> dict:
    """Size-restricted exact h_s walk far beyond the full-enumeration limit."""
    from repro.cdag.build import layered_circulant_cdag
    from repro.core.expansion import exact_small_set_expansion

    del cache
    g = layered_circulant_cdag(n)
    hs = [exact_small_set_expansion(g, s) for s in range(1, s_max + 1)]
    return {
        "check": {
            "V": g.n_vertices,
            "h_s": hs,
        },
    }


@register_bench(
    "exact_native",
    "expansion",
    params={"n": 28, "jobs": 1},
    quick_params={"n": 24},
    rounds=3,
    quick_rounds=2,
    cold=True,
)
def _bench_exact_native(cache: EngineCache, n: int, jobs: int) -> dict:
    """The native C kernel on the bench circulant (the tentpole hot path).

    Explicitly requests ``backend="native"`` so the timing row measures the
    compiled kernel; when the build is unavailable (``REPRO_NATIVE=0`` legs)
    the workload degrades to the bitset backend and says so in its check —
    the ``h`` value is bit-identical either way, so check comparison across
    legs still passes.
    """
    from repro.cdag.build import layered_circulant_cdag
    from repro.core.exact import exact_edge_expansion_v2, native_backend_available

    del cache
    g = layered_circulant_cdag(n)
    backend = "native" if native_backend_available() else "bitset"
    h, mask = exact_edge_expansion_v2(g, backend=backend, jobs=jobs)
    return {
        "check": {
            "V": g.n_vertices,
            "h": h,
            "witness": int(mask.sum()),
        },
        "backend": backend,
    }


@register_bench(
    "certify_interval",
    "expansion",
    params={"scheme": "strassen", "k_max": 3},
    quick_params={"k_max": 2},
    cold=True,
)
def _bench_certify_interval(cache: EngineCache, scheme: str, k_max: int) -> dict:
    """Certified-interval pipeline down the auto-policy method ladder.

    One ``cached_estimate(...).interval()`` per depth: exact at k=1, then
    Cheeger + witness cuts — the end-to-end cost of producing the
    ``(lower, upper, provenance)`` certificates the engine rows now carry.
    """
    from repro.engine.builders import cached_estimate

    rows = []
    for k in range(1, k_max + 1):
        iv = cached_estimate(scheme, k, policy="auto", cache=cache).interval()
        rows.append(
            {"k": k, "lower": iv.lower, "upper": iv.upper, "provenance": iv.provenance}
        )
    return {
        "check": {
            "provenances": [r["provenance"] for r in rows],
            "uppers": [r["upper"] for r in rows],
            "lowers": [r["lower"] for r in rows],
        },
    }


@register_bench(
    "expansion_spectral",
    "expansion",
    params={"scheme": "strassen", "k": 4},
    quick_params={"k": 3},
    cold=True,
)
def _bench_expansion_spectral(cache: EngineCache, scheme: str, k: int) -> dict:
    """Cold spectral sandwich of h(Dec_k C): build + eigensolve + cuts."""
    from repro.engine.builders import cached_estimate

    est = cached_estimate(scheme, k, policy="spectral", cache=cache)
    return {
        "estimate": est,
        "check": {
            "lower": est.lower,
            "upper": est.upper,
            "witness_size": est.witness_size,
            "method": est.method,
        },
    }


@register_bench(
    "expansion_decay",
    "expansion",
    params={"scheme": "strassen", "k_max": 5, "spectral_upto": 4},
    quick_params={"k_max": 4, "spectral_upto": 3},
    warmup=True,
)
def _bench_expansion_decay(
    cache: EngineCache,
    scheme: str,
    k_max: int,
    spectral_upto: int,
) -> dict:
    """Warm Lemma 4.3 decay sweep plus the small-set cone profile."""
    from repro.experiments.expansion_exp import expansion_decay, small_set_profile

    decay = expansion_decay(scheme, k_max=k_max, spectral_upto=spectral_upto, cache=cache)
    small = small_set_profile(scheme, k=k_max, cache=cache)
    return {
        "decay": decay,
        "small_set": small,
        "check": {
            "uppers": [r["upper"] for r in decay["rows"]],
            "expected_decay": decay["expected_decay"],
            "small_set_hs": [r["h_of_cut"] for r in small["rows"]],
        },
    }


@register_bench(
    "seq_io_sweep",
    "io",
    params={"scheme": "strassen", "M": 192, "t_max": 9, "simulate_upto": 256},
    quick_params={"t_max": 8, "simulate_upto": 128},
)
def _bench_seq_io_sweep(
    cache: EngineCache, scheme: str, M: int, t_max: int, simulate_upto: int
) -> dict:
    """Theorem 1.1's n-sweep: simulated + modeled DF-Strassen I/O vs bound."""
    from repro.experiments.seq_io import n_sweep

    del cache
    result = n_sweep(scheme, M=M, t_range=range(4, t_max + 1), simulate_upto=simulate_upto)
    return {
        "n_sweep": result,
        "check": {
            "fit_exponent": result["fit_exponent"],
            "words": [r["measured_words"] for r in result["rows"]],
        },
    }


@register_bench(
    "seq_io_models",
    "io",
    params={"n_m_sweep": 4096, "omega_depth": 9, "hybrid_levels": 6},
    quick_params={},
)
def _bench_seq_io_models(
    cache: EngineCache,
    n_m_sweep: int,
    omega_depth: int,
    hybrid_levels: int,
) -> dict:
    """Closed-form I/O recurrences: M-sweep, ω₀-sweep, cutoffs, hybrids."""
    from repro.algorithms.nonstationary import nonstationary_io
    from repro.experiments.seq_io import (
        classical_comparison,
        cutoff_ablation,
        m_sweep,
        omega_sweep,
    )

    del cache
    m_result = m_sweep("strassen", n=n_m_sweep)
    omega = omega_sweep(M=192, depth=omega_depth)
    cutoff = cutoff_ablation(n=512, M=3 * 32 * 32)
    classical = classical_comparison(M=192, n=128)
    hybrid_rows = []
    for k in range(0, hybrid_levels + 1):
        schemes = ["strassen"] * k + ["classical2"] * (hybrid_levels - k)
        rep = nonstationary_io(512, 192, schemes)
        hybrid_rows.append(
            {
                "strassen_levels": k,
                "measured_words": rep.words,
                "base_multiplies": rep.n_base_multiplies,
            }
        )
    return {
        "m_sweep": m_result,
        "omega_sweep": omega,
        "cutoff": cutoff,
        "classical": classical,
        "hybrid_rows": hybrid_rows,
        "check": {
            "m_fit_exponent": m_result["fit_exponent"],
            "omega_fits": {r["scheme"]: r["fit_exponent"] for r in omega["rows"]},
            "best_base": cutoff["best_base"],
            "hybrid_words": [r["measured_words"] for r in hybrid_rows],
        },
    }


@register_bench(
    "seq_io_simulate",
    "io",
    params={"n": 256, "M": 192, "scheme": "strassen"},
    quick_params={"n": 128},
)
def _bench_seq_io_simulate(cache: EngineCache, n: int, M: int, scheme: str) -> dict:
    """Full FastMemory simulation of one depth-first run (no model shortcut)."""
    from repro.algorithms.io_strassen import dfs_io

    del cache
    rep = dfs_io(n, M, scheme)
    return {
        "report": rep,
        "check": {
            "words": rep.words,
            "messages": rep.messages,
            "base_multiplies": rep.n_base_multiplies,
        },
    }


@register_bench(
    "partition_bound",
    "io",
    params={"deep": True},
    quick_params={"deep": False},
)
def _bench_partition_bound(cache: EngineCache, deep: bool) -> dict:
    """Eq. 6 partition bounds vs Belady-scheduled I/O on real CDAGs."""
    from repro.cdag.classical_cdag import classical_matmul_cdag, matvec_cdag
    from repro.cdag.pebble import exhaustive_min_io, schedule_io
    from repro.cdag.schedule import bfs_topological_order, dfs_topological_order
    from repro.cdag.strassen_cdag import h_graph
    from repro.core.partition import best_partition_bound

    del cache
    cases = [
        ("classical n=4", classical_matmul_cdag(4), 8),
        ("classical n=5", classical_matmul_cdag(5), 12),
        ("matvec n=6", matvec_cdag(6), 6),
        ("strassen H_2", h_graph("strassen", 2).cdag, 8),
    ]
    if deep:
        cases += [
            ("strassen H_3", h_graph("strassen", 3).cdag, 16),
            ("winograd H_2", h_graph("winograd", 2).cdag, 8),
        ]
    rows = []
    for name, g, M in cases:
        for order_name, order_fn in (
            ("dfs", dfs_topological_order),
            ("bfs", bfs_topological_order),
        ):
            order = order_fn(g)
            measured = schedule_io(g, order, M=M, policy="belady").total
            bound, seg = best_partition_bound(g, order, M)
            rows.append(
                {
                    "graph": name,
                    "order": order_name,
                    "M": M,
                    "partition_bound": bound,
                    "measured_io": measured,
                    "gap": measured / bound if bound else float("inf"),
                    "segment": seg,
                }
            )
    g_tiny = matvec_cdag(2)
    order = dfs_topological_order(g_tiny)
    tiny = {
        "bound": best_partition_bound(g_tiny, order, 4)[0],
        "optimum": exhaustive_min_io(g_tiny, 4),
        "belady": schedule_io(g_tiny, order, M=4, policy="belady").total,
    }
    return {
        "rows": rows,
        "tiny": tiny,
        "check": {
            "bounds": [r["partition_bound"] for r in rows],
            "measured": [r["measured_io"] for r in rows],
            "tiny_optimum": tiny["optimum"],
        },
    }


@register_bench(
    "latency",
    "io",
    params={"M": 768, "ns": (128, 256, 512, 1024), "n_parallel": 64},
    quick_params={"ns": (128, 256, 512)},
)
def _bench_latency(cache: EngineCache, M: int, ns: Sequence[int], n_parallel: int) -> dict:
    """Footnote 8: message counts vs bandwidth-bound/M, both machine models."""
    from repro.experiments.latency_exp import parallel_latency, sequential_latency

    del cache
    seq = sequential_latency("strassen", M=M, ns=tuple(ns))
    par = parallel_latency(n=n_parallel)
    return {
        "sequential": seq,
        "parallel": par,
        "check": {
            "seq_messages": [r["measured_messages"] for r in seq["rows"]],
            "par_messages": [r["measured_messages"] for r in par["rows"]],
        },
    }


_GRID_MEMORIES = (48, 192, 768, 3072)


def _grid_spec(schemes: Sequence[str], k_max: int) -> GridSpec:
    from repro.engine.grid import GridSpec

    return GridSpec.from_ranges(schemes=schemes, k_max=k_max, memories=_GRID_MEMORIES)


def _grid_check(report: GridReport) -> dict:
    last = report.rows[-1]
    return {
        "points": len(report.rows),
        "V_total": sum(r["V"] for r in report.rows),
        "E_total": sum(r["E"] for r in report.rows),
        "last_h_upper": last["h_upper"],
        "last_io_lower": last["io_lower_bound"],
    }


@register_bench(
    "grid_sweep_cold",
    "engine",
    params={"schemes": ("strassen", "winograd"), "k_max": 5},
    quick_params={"k_max": 4},
    cold=True,
)
def _bench_grid_sweep_cold(cache: EngineCache, schemes: Sequence[str], k_max: int) -> dict:
    """Cold (scheme × k × M) sweep: every graph, spectrum, estimate rebuilt."""
    from repro.engine.grid import run_grid

    report = run_grid(_grid_spec(schemes, k_max), cache=cache)
    return {"report": report, "check": _grid_check(report)}


@register_bench(
    "grid_sweep_warm",
    "engine",
    params={"schemes": ("strassen", "winograd"), "k_max": 5},
    quick_params={"k_max": 4},
    warmup=True,
)
def _bench_grid_sweep_warm(cache: EngineCache, schemes: Sequence[str], k_max: int) -> dict:
    """Warm sweep over the same grid: the steady state must rebuild nothing."""
    from repro.engine.grid import run_grid

    report = run_grid(_grid_spec(schemes, k_max), cache=cache)
    check = _grid_check(report)
    check["rebuilds"] = report.rebuilds
    return {"report": report, "check": check}


@register_bench(
    "pool_cold_vs_warm",
    "engine",
    params={"schemes": ("strassen",), "k_max": 3, "workers": 4},
    quick_params={},
    rounds=1,
    quick_rounds=1,
)
def _bench_pool_cold_vs_warm(
    cache: EngineCache, schemes: Sequence[str], k_max: int, workers: int
) -> dict:
    """First vs second pooled grid sweep: worker spawn cost vs warm dispatch.

    The workload shuts the shared pool down, runs one ``workers``-wide grid
    sweep cold (pays interpreter + numpy spawns), then runs the identical
    sweep warm on the now-live pool.  The ``check`` block pins what must
    hold on every leg — identical rows and **zero** new processes for the
    warm sweep (trivially true under ``REPRO_POOL=0``, load-bearing when
    pooled); the cold/warm split and their ratio land in the ungated
    ``metrics`` block (the ``benchmarks/bench_pool.py`` wrapper asserts the
    warm-speedup floor where a pool actually runs).
    """
    from repro.engine.grid import run_grid

    del cache  # fresh memory-only caches per sweep: the pool is the subject
    pool_runtime.shutdown_pool()
    spec = _grid_spec(schemes, k_max)
    t0 = time.perf_counter()
    cold_report = run_grid(spec, workers=workers, cache=EngineCache(disk=False))
    cold_s = time.perf_counter() - t0
    before = pool_runtime.pool_stats_snapshot()
    t0 = time.perf_counter()
    warm_report = run_grid(spec, workers=workers, cache=EngineCache(disk=False))
    warm_s = time.perf_counter() - t0
    warm_delta = {
        k: v - before.get(k, 0) for k, v in pool_runtime.pool_stats_snapshot().items()
    }
    return {
        "cold": cold_report,
        "warm": warm_report,
        "metrics": {
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "cold_over_warm": cold_s / warm_s if warm_s > 0 else math.inf,
            "pooled": pool_runtime.pool_enabled(),
        },
        "check": {
            "points": len(cold_report.rows),
            "rows_identical": cold_report.rows == warm_report.rows,
            "warm_new_processes": warm_delta["workers_spawned"],
            "warm_pool_starts": warm_delta["pool_starts"],
        },
    }


@register_bench(
    "scaling_sweep",
    "parallel",
    params={"n": 56, "p_max": 64, "cs": (1, 2, 4)},
    quick_params={"p_max": 16, "cs": (1, 2)},
    cold=True,
)
def _bench_scaling_sweep(cache: EngineCache, n: int, p_max: int, cs: Sequence[int]) -> dict:
    """Cold strong-scaling sweep over every registered parallel algorithm."""
    from repro.engine.scaling import ScalingSpec, scaling_sweep
    from repro.parallel.base import available_parallel

    spec = ScalingSpec(algos=tuple(available_parallel()), n=n, p_max=p_max, cs=tuple(cs))
    report = scaling_sweep(spec, cache=cache)
    return {
        "report": report,
        "check": {
            "points": len(report.rows),
            "words_total": sum(r["measured_words"] for r in report.rows),
            "all_verified": all(r["verified"] for r in report.rows),
        },
    }


@register_bench(
    "plan_tournament",
    "parallel",
    params={"n": 56, "topologies": ("uniform", "fat-tree:4x4", "torus:4x4", "gpu:2x8")},
    quick_params={"topologies": ("uniform", "fat-tree:4x4", "torus:4x4")},
    cold=True,
)
def _bench_plan_tournament(cache: EngineCache, n: int, topologies: Sequence[str]) -> dict:
    """Auto-scheduler tournament: the planner's memory-ladder winners per topology.

    The ``check`` block pins the winner table, so a cost-model or search
    regression that changes who wins (not just how fast the search runs)
    fails the gate outright.
    """
    from repro.engine.planner import plan_report

    from repro.topology import Topology

    reports = {}
    winners = {}
    searched = 0
    for spec in topologies:
        report = plan_report(n, topology=Topology.parse(spec), cache=cache)
        reports[spec] = report
        for limit, winner in report["winners"].items():
            winners[f"{spec}@{limit}"] = winner
        searched += sum(len(t["rows"]) for t in report["tables"])
    return {
        "reports": reports,
        "check": {
            "winners": winners,
            "ranked_plans": searched,
            "every_topology_flips": all(r["flips"] for r in reports.values()),
        },
    }


@register_bench(
    "memory_sweep",
    "parallel",
    params={"n": 64, "q": 8, "cs": (1, 2, 4, 8)},
    quick_params={"cs": (1, 2, 4)},
)
def _bench_memory_sweep(cache: EngineCache, n: int, q: int, cs: Sequence[int]) -> dict:
    """2.5D replication sweep (§6.1's regime knob) plus the ω₀-free numerator."""
    from repro.core.bounds import LG7, table1_cell
    from repro.experiments.table1 import two5d_c_sweep

    del cache
    result = two5d_c_sweep(n=n, q=q, cs=tuple(cs))
    # §6.1: Table I numerators do not depend on ω₀ — only p's power does.
    numerator_rows = []
    nn, p, c = 256, 64, 2
    for w in (2.1, 2.5, LG7, 3.0):
        for regime in ("2D", "3D", "2.5D"):
            cell = table1_cell(regime, "strassen-like", nn, p, c, omega0=w)
            c_part = c ** (w / 2 - 1) if regime == "2.5D" else 1.0
            numerator_rows.append(
                {
                    "omega0": w,
                    "regime": regime,
                    "bound": cell.bound,
                    "p_exponent": cell.exponent_of_p,
                    "reconstructed_numerator": cell.bound * (p**cell.exponent_of_p) * c_part,
                }
            )
    return {
        "c_sweep": result,
        "numerator_rows": numerator_rows,
        "numerator_n": nn,
        "check": {
            "words": [r["measured_words"] for r in result["rows"]],
            "regimes": [r["M_regime"] for r in result["rows"]],
            "all_verified": all(r["verified"] for r in result["rows"]),
            "numerators": [r["reconstructed_numerator"] for r in numerator_rows],
        },
    }


@register_bench(
    "table1_scaling",
    "parallel",
    params={
        "n": 64,
        "qs2d": (2, 4, 8, 16),
        "qs3d": (2, 4, 8),
        "ells": (1, 2),
        "n0_factor": 8,
    },
    quick_params={"qs2d": (2, 4, 8), "qs3d": (2, 4), "n0_factor": 4},
    rounds=2,
)
def _bench_table1_scaling(
    cache: EngineCache,
    n: int,
    qs2d: Sequence[int],
    qs3d: Sequence[int],
    ells: Sequence[int],
    n0_factor: int,
) -> dict:
    """Table I scaling rows: 2D/3D exponent fits and CAPS all-BFS shape."""
    from repro.experiments.table1 import caps_scaling, classical_2d_scaling, threed_scaling

    del cache
    two_d = classical_2d_scaling(n=n, qs=tuple(qs2d))
    three_d = threed_scaling(n=n, qs=tuple(qs3d))
    caps = caps_scaling(n0_factor=n0_factor, ells=tuple(ells))
    return {
        "2d": two_d,
        "3d": three_d,
        "caps": caps,
        "check": {
            "cannon_p_exponent": two_d["cannon_p_exponent"],
            "threed_p_exponent": three_d["p_exponent"],
            "caps_words": [r["measured_words"] for r in caps["rows"]],
        },
    }


@register_bench(
    "caps_tradeoff",
    "parallel",
    params={"n": 112, "ell": 2},
    quick_params={"n": 56},
    rounds=2,
)
def _bench_caps_tradeoff(cache: EngineCache, n: int, ell: int) -> dict:
    """CAPS schedule frontier: memory/bandwidth trade against Corollary 1.2."""
    from repro.experiments.table1 import caps_memory_sweep

    del cache
    result = caps_memory_sweep(n=n, ell=ell)
    return {
        "sweep": result,
        "check": {
            "words": {r["schedule"]: r["measured_words"] for r in result["rows"]},
            "mem_peaks": {r["schedule"]: r["mem_peak"] for r in result["rows"]},
            "all_verified": all(r["verified"] for r in result["rows"]),
        },
    }


@register_bench("table1", "parallel", params={"n": 64}, quick_params={})
def _bench_table1(cache: EngineCache, n: int) -> dict:
    """The full six-cell Table I: attaining algorithms beside every bound."""
    from repro.experiments.table1 import table1_summary

    del cache
    rows = table1_summary(n=n)
    return {
        "rows": rows,
        "check": {
            "measured": {f"{r['regime']}/{r['class']}": r["measured_words"] for r in rows},
        },
    }


async def _serve_load_drive(
    cache: EngineCache, clients: int, repeats: int, scheme: str, k: int
) -> dict[str, Any]:
    """Boot the service on a free port and fire the concurrent request mix.

    Wave 0 is ``clients`` *identical* ``/expansion`` requests in flight at
    once — the single-flight invariant under test (exactly one build chain
    however many clients ask).  Later waves mix in ``/bounds`` and
    ``/healthz`` so the measured throughput covers cheap and CPU-bound
    endpoints alike.
    """
    import asyncio

    from repro.serve.http import fetch_json
    from repro.serve.service import ExpansionService, ServeConfig

    expansion = f"/expansion?scheme={scheme}&k={k}"
    rotation = (expansion, "/bounds?n=4096&M=256&p=64", expansion, "/healthz")
    service = ExpansionService(ServeConfig(host="127.0.0.1", port=0, workers=0), cache=cache)
    await service.start()
    port = service.port
    statuses: list[int] = []
    latencies: list[float] = []

    async def one_client(idx: int) -> None:
        for r in range(repeats):
            # wave 0: everyone asks the identical expansion question at once
            target = expansion if r == 0 else rotation[(idx + r) % len(rotation)]
            t0 = time.perf_counter()
            status, _body = await fetch_json("127.0.0.1", port, target)
            latencies.append(time.perf_counter() - t0)
            statuses.append(status)

    t_start = time.perf_counter()
    try:
        await asyncio.gather(*(one_client(i) for i in range(clients)))
    finally:
        await service.stop()
    wall = time.perf_counter() - t_start
    lat = np.asarray(sorted(latencies), dtype=np.float64)
    return {
        "ok": sum(1 for s in statuses if s == 200),
        "errors": sum(1 for s in statuses if s != 200),
        "total": len(statuses),
        "wall": wall,
        "requests_per_s": len(statuses) / wall if wall > 0 else 0.0,
        "latency_p50_ms": float(np.percentile(lat, 50)) * 1e3,
        "latency_p99_ms": float(np.percentile(lat, 99)) * 1e3,
    }


@register_bench(
    "serve_load",
    "serve",
    params={"clients": 8, "repeats": 6, "scheme": "strassen", "k": 2},
    quick_params={"clients": 8, "repeats": 3},
    rounds=3,
    quick_rounds=2,
    cold=True,
)
def _bench_serve_load(cache: EngineCache, clients: int, repeats: int, scheme: str, k: int) -> dict:
    """Concurrent HTTP load against the serving layer (single-flight path).

    Every round boots a fresh in-process service over the harness's cold
    cache, so the reported ``builds`` counter is exact: the identical
    ``/expansion`` wave must produce one build chain (graph + spectrum +
    estimate = 3 builds at the spectral depth used here) no matter how
    many clients race it.  Throughput and latency land in the ungated
    ``metrics`` block; the ``check`` block pins what must not drift —
    every response 200, zero errors, exactly 3 builds.
    """
    import asyncio

    result = asyncio.run(_serve_load_drive(cache, clients, repeats, scheme, k))
    builds = cache.stats.builds
    return {
        "load": result,
        "metrics": {
            "requests": result["total"],
            "requests_per_s": result["requests_per_s"],
            "latency_p50_ms": result["latency_p50_ms"],
            "latency_p99_ms": result["latency_p99_ms"],
        },
        "check": {
            "responses_ok": result["ok"],
            "errors": result["errors"],
            "builds": builds,
        },
    }
