"""Cache-backed constructors for the artifacts the experiments consume.

Each builder checks the decoded-object layer, then the disk layer, and only
then constructs from scratch (recording a *build* in the cache stats — a
warm sweep reports zero builds).  Round-trips are bit-identical: the arrays
are stored exactly as the constructors produced them.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cdag.graph import CDAG
from repro.cdag.schemes import BilinearScheme, get_scheme
from repro.cdag.strassen_cdag import HGraph, dec_graph, h_graph
from repro.core.expansion import (
    ExpansionEstimate,
    decode_cone_upper_bound,
    effective_exact_limit,
    exact_edge_expansion,
    fiedler_sweep_cut,
    spectral_lower_bound,
)
from repro.engine.cache import EngineCache, cache_key, default_cache

__all__ = [
    "AUTO_SPECTRAL_LIMIT",
    "POLICIES",
    "cached_dec_graph",
    "cached_h_graph",
    "cached_spectrum",
    "cached_estimate",
]

#: Under the "auto" policy, graphs larger than this skip the eigensolve and
#: fall back to the decode-cone upper bound (eigensolves are O(minutes) at
#: Dec_5 scale; the cone witness is the quantity the decay fits use anyway).
AUTO_SPECTRAL_LIMIT = 10_000

#: Estimate policies understood by :func:`cached_estimate` and the grid.
POLICIES = ("auto", "exact", "spectral", "cone")


def _resolve(scheme: BilinearScheme | str) -> BilinearScheme:
    return get_scheme(scheme) if isinstance(scheme, str) else scheme


def cached_dec_graph(
    scheme: BilinearScheme | str,
    k: int,
    expand_trees: bool = False,
    cache: EngineCache | None = None,
) -> CDAG:
    """``Dec_k C`` through the cache (drop-in for :func:`dec_graph`)."""
    scheme = _resolve(scheme)
    cache = cache if cache is not None else default_cache()
    key = cache_key("dec", scheme, k=k, expand_trees=expand_trees)
    g = cache.get_object(key)
    if g is not None:
        return g
    data = cache.get_arrays(key)
    if data is not None:
        g = CDAG(
            n_vertices=int(data["n_vertices"]),
            src=data["src"],
            dst=data["dst"],
            kinds=data["kinds"],
            levels=data["levels"],
        )
    else:
        cache.count_build()
        g = dec_graph(scheme, k, expand_trees=expand_trees)
        cache.put_arrays(
            key,
            {
                "n_vertices": np.int64(g.n_vertices),
                "src": g.src,
                "dst": g.dst,
                "kinds": g.kinds,
                "levels": g.levels,
            },
        )
    cache.put_object(key, g)
    return g


def cached_h_graph(
    scheme: BilinearScheme | str,
    k: int,
    cache: EngineCache | None = None,
) -> HGraph:
    """``H_k`` (with its named vertex regions) through the cache."""
    scheme = _resolve(scheme)
    cache = cache if cache is not None else default_cache()
    key = cache_key("h", scheme, k=k)
    hg = cache.get_object(key)
    if hg is not None:
        return hg
    data = cache.get_arrays(key)
    if data is not None:
        cdag = CDAG(
            n_vertices=int(data["n_vertices"]),
            src=data["src"],
            dst=data["dst"],
            kinds=data["kinds"],
            levels=data["levels"],
        )
        hg = HGraph(
            cdag=cdag,
            a_inputs=data["a_inputs"],
            b_inputs=data["b_inputs"],
            mult_ids=data["mult_ids"],
            output_ids=data["output_ids"],
            dec_ids=data["dec_ids"],
            k=k,
            scheme_name=scheme.name,
        )
    else:
        cache.count_build()
        hg = h_graph(scheme, k)
        cache.put_arrays(
            key,
            {
                "n_vertices": np.int64(hg.cdag.n_vertices),
                "src": hg.cdag.src,
                "dst": hg.cdag.dst,
                "kinds": hg.cdag.kinds,
                "levels": hg.cdag.levels,
                "a_inputs": hg.a_inputs,
                "b_inputs": hg.b_inputs,
                "mult_ids": hg.mult_ids,
                "output_ids": hg.output_ids,
                "dec_ids": hg.dec_ids,
            },
        )
    cache.put_object(key, hg)
    return hg


def cached_spectrum(
    scheme: BilinearScheme | str,
    k: int,
    cache: EngineCache | None = None,
) -> tuple[float, np.ndarray]:
    """Cheeger lower bound and Fiedler vector of ``Dec_k C``, cached.

    The eigensolve is the single most expensive analysis kernel (shift-invert
    on a Θ(m₀^k)-vertex Laplacian), so its result is cached independently of
    the estimate that consumes it.
    """
    scheme = _resolve(scheme)
    cache = cache if cache is not None else default_cache()
    key = cache_key("spectrum", scheme, k=k)
    cached = cache.get_object(key)
    if cached is not None:
        return cached
    data = cache.get_arrays(key)
    if data is not None:
        result = (float(data["lower"]), data["fiedler"])
    else:
        cache.count_build()
        g = cached_dec_graph(scheme, k, cache=cache)
        lower, fiedler = spectral_lower_bound(g)
        result = (lower, fiedler)
        cache.put_arrays(key, {"lower": np.float64(lower), "fiedler": fiedler})
    cache.put_object(key, result)
    return result


def _compute_estimate(
    scheme: BilinearScheme, k: int, policy: str, cache: EngineCache, jobs: int = 1
) -> ExpansionEstimate:
    g = cached_dec_graph(scheme, k, cache=cache)
    n = g.n_vertices
    d = g.max_degree
    if policy == "exact" or (policy == "auto" and n <= effective_exact_limit()):
        h, mask = exact_edge_expansion(g, jobs=jobs)
        return ExpansionEstimate(
            lower=h,
            upper=h,
            witness_size=int(mask.sum()),
            witness_boundary=g.edge_boundary_size(mask),
            degree=d,
            method="exact",
        )
    if policy == "spectral" or (policy == "auto" and n <= AUTO_SPECTRAL_LIMIT):
        lower, fiedler = cached_spectrum(scheme, k, cache=cache)
        upper, mask = fiedler_sweep_cut(g, fiedler)
        method = "spectral+sweep"
        try:
            cone_ratio, cone_mask = decode_cone_upper_bound(g, scheme, k)
        except ValueError:  # graph too small for a feasible cone
            cone_ratio, cone_mask = math.inf, None
        if cone_ratio < upper:
            upper, mask = cone_ratio, cone_mask
            method = "spectral+cone"
        return ExpansionEstimate(
            lower=lower,
            upper=upper,
            witness_size=int(mask.sum()),
            witness_boundary=g.edge_boundary_size(mask),
            degree=d,
            method=method,
        )
    if policy in ("cone", "auto"):
        upper, mask = decode_cone_upper_bound(g, scheme, k)
        return ExpansionEstimate(
            lower=float("nan"),
            upper=upper,
            witness_size=int(mask.sum()),
            witness_boundary=g.edge_boundary_size(mask),
            degree=d,
            method="cone-only",
        )
    raise ValueError(f"unknown estimate policy {policy!r}; choose from {POLICIES}")


def cached_estimate(
    scheme: BilinearScheme | str,
    k: int,
    policy: str = "auto",
    cache: EngineCache | None = None,
    jobs: int = 1,
) -> ExpansionEstimate:
    """Two-sided expansion estimate of ``Dec_k C``, cached by (scheme, k, policy).

    Policies: ``exact`` (enumeration, up to ``EXACT_LIMIT`` vertices —
    ``Dec_2`` of the ⟨1,2,2⟩-type rectangular schemes now solves exactly
    under ``auto``), ``spectral`` (Cheeger lower + best of Fiedler sweep /
    decode cone), ``cone`` (decode-cone upper bound only, NaN lower), and
    ``auto`` (exact below the enumeration limit, spectral below
    :data:`AUTO_SPECTRAL_LIMIT`, cone-only beyond).  ``jobs`` shards the
    exact subset search over processes; it never changes the result, so it
    is not part of the cache key.

    Every estimate certifies an :class:`~repro.core.certify.ExpansionInterval`
    (via :meth:`ExpansionEstimate.interval`); the interval's lower bound and
    provenance tag are stored alongside the raw fields so the artifact is a
    self-describing certificate.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown estimate policy {policy!r}; choose from {POLICIES}")
    scheme = _resolve(scheme)
    cache = cache if cache is not None else default_cache()
    if policy == "auto":
        # The auto policy's method choice depends on the enumeration ceiling
        # in force (REPRO_EXACT_LIMIT), so the ceiling is part of what the
        # artifact *is* — omit it and changing the env var returns stale
        # estimates computed under a different ceiling.  Fixed policies are
        # ceiling-independent and keep the shorter key.
        key = cache_key(
            "estimate", scheme, k=k, policy=policy, exact_limit=effective_exact_limit()
        )
    else:
        key = cache_key("estimate", scheme, k=k, policy=policy)
    est = cache.get_object(key)
    if est is not None:
        return est
    data = cache.get_arrays(key)
    if data is not None:
        est = ExpansionEstimate(
            lower=float(data["lower"]),
            upper=float(data["upper"]),
            witness_size=int(data["witness_size"]),
            witness_boundary=int(data["witness_boundary"]),
            degree=int(data["degree"]),
            method=str(data["method"]),
        )
    else:
        cache.count_build()
        est = _compute_estimate(scheme, k, policy, cache, jobs=jobs)
        iv = est.interval()
        cache.put_arrays(
            key,
            {
                "lower": np.float64(est.lower),
                "upper": np.float64(est.upper),
                "witness_size": np.int64(est.witness_size),
                "witness_boundary": np.int64(est.witness_boundary),
                "degree": np.int64(est.degree),
                "method": np.asarray(est.method),
                # The certified interval (v6 schema): lower differs from the
                # raw estimate only for cone-only rows (NaN → trivial 0), and
                # the provenance tag names the proof path, so cache readers
                # get the certificate without re-deriving it.
                "interval_lower": np.float64(iv.lower),
                "provenance": np.asarray(iv.provenance),
            },
        )
    cache.put_object(key, est)
    return est
