"""Parallel (scheme, k, M, policy) sweep engine.

The paper's experiments are grids: for each scheme and recursion depth,
estimate ``h(Dec_k C)`` and compare the measured depth-first I/O against the
``(n/√M)^ω₀·M`` bound across memory sizes.  The seed scripts ran such grids
point-by-point, rebuilding every graph; this runner fans the points out over
worker processes, shares one content-addressed cache between them, and
aggregates one report.

Per point the expensive work is M-independent (graph build + expansion
estimate), so a ``(schemes × ks × memories)`` grid touches each (scheme, k)
artifact once — and a warm cache makes the whole sweep rebuild-free
(``GridReport.stats["builds"] == 0``).
"""

from __future__ import annotations

import itertools
import json
import math
import time
from dataclasses import dataclass
from typing import Sequence

from repro.cdag.schemes import get_scheme
from repro.core.bounds import rect_sequential_io_bound, sequential_io_bound
from repro.algorithms.io_strassen import dfs_io_model, rect_dfs_io_model
from repro.engine import pool as pool_runtime
from repro.engine.builders import cached_dec_graph, cached_estimate
from repro.engine.cache import CacheStats, EngineCache, default_cache
from repro.util.jsonutil import jsonable

__all__ = ["GridPoint", "GridSpec", "GridReport", "evaluate_point", "run_grid"]


@dataclass(frozen=True)
class GridPoint:
    """One sweep coordinate."""

    scheme: str
    k: int
    M: int
    policy: str = "auto"


@dataclass(frozen=True)
class GridSpec:
    """The cartesian sweep ``schemes × ks × memories × policies``."""

    schemes: tuple[str, ...]
    ks: tuple[int, ...]
    memories: tuple[int, ...]
    policies: tuple[str, ...] = ("auto",)

    def __post_init__(self) -> None:
        object.__setattr__(self, "schemes", tuple(self.schemes))
        object.__setattr__(self, "ks", tuple(self.ks))
        object.__setattr__(self, "memories", tuple(self.memories))
        object.__setattr__(self, "policies", tuple(self.policies))

    @classmethod
    def from_ranges(
        cls,
        schemes: Sequence[str],
        k_max: int,
        memories: Sequence[int],
        policies: Sequence[str] = ("auto",),
        k_min: int = 1,
    ) -> "GridSpec":
        return cls(
            schemes=tuple(schemes),
            ks=tuple(range(k_min, k_max + 1)),
            memories=tuple(memories),
            policies=tuple(policies),
        )

    def points(self) -> list[GridPoint]:
        return [
            GridPoint(scheme=s, k=k, M=M, policy=p)
            for s, k, M, p in itertools.product(
                self.schemes, self.ks, self.memories, self.policies
            )
        ]


@dataclass
class GridReport:
    """Aggregated sweep result: rows in point order plus cache accounting."""

    spec: GridSpec
    rows: list[dict]
    stats: dict[str, int]
    wall_time: float
    workers: int

    @property
    def rebuilds(self) -> int:
        """Artifact constructions the cache could not avoid (0 when warm)."""
        return self.stats.get("builds", 0)

    def to_json(self, indent: int | None = None) -> str:
        # NaN/Inf (e.g. h_lower of cone-only rows) are not valid JSON; map
        # them to null so strict parsers can consume the output.
        return json.dumps(
            jsonable(
                {
                    "spec": {
                        "schemes": list(self.spec.schemes),
                        "ks": list(self.spec.ks),
                        "memories": list(self.spec.memories),
                        "policies": list(self.spec.policies),
                    },
                    "rows": self.rows,
                    "stats": self.stats,
                    "wall_time": self.wall_time,
                    "workers": self.workers,
                }
            ),
            indent=indent,
            allow_nan=False,
        )


def evaluate_point(point: GridPoint, cache: EngineCache | None = None) -> dict:
    """One grid row: graph stats, expansion sandwich, and I/O vs bound.

    The problem shape is ``(m₀^k, n₀^k, p₀^k)`` — the matrices whose
    recursion tree has depth exactly ``k``, the natural pairing of a memory
    size with the ``Dec_k C`` analysis.  For square schemes ``n = n₀^k`` and
    the paper's Theorem 1.1/1.3 bound applies verbatim; rectangular schemes
    use the geometric-mean form of the bound and the rectangular depth-first
    I/O model.
    """
    cache = cache if cache is not None else default_cache()
    s = get_scheme(point.scheme)
    g = cached_dec_graph(s, point.k, cache=cache)
    est = cached_estimate(s, point.k, policy=point.policy, cache=cache)
    iv = est.interval()
    m_dim, n_dim, p_dim = (s.m0**point.k, s.n0**point.k, s.p0**point.k)
    ratio = s.c_blocks / s.t0
    row = {
        "scheme": point.scheme,
        "k": point.k,
        "M": point.M,
        "policy": point.policy,
        "V": g.n_vertices,
        "E": g.n_edges,
        "max_degree": g.max_degree,
        "h_lower": est.lower,
        "h_upper": est.upper,
        # The certified interval: h_lower_cert is the interval's lower bound
        # (the trivial 0 when only a cone witness ran, where h_lower is NaN),
        # and provenance names the proof path ("exact", "cheeger+sweep", ...).
        "h_lower_cert": iv.lower,
        "provenance": iv.provenance,
        "h_upper/(c0/t0)^k": est.upper / ratio**point.k,
        "witness_size": est.witness_size,
        "method": est.method,
        "shape": f"{m_dim}x{n_dim}x{p_dim}",
        "n": n_dim,
        "io_lower_bound": (
            sequential_io_bound(n_dim, point.M, s.omega0)
            if s.is_square
            else rect_sequential_io_bound(m_dim, n_dim, p_dim, point.M, s.omega0)
        ),
    }
    if point.M >= 3:  # dfs recursion can always cut to 1x1 blocks
        if s.is_square:
            words = dfs_io_model(n_dim, point.M, s).words
        else:
            words = rect_dfs_io_model(m_dim, n_dim, p_dim, point.M, s).words
        row["measured_words"] = words
        row["measured/lower"] = words / row["io_lower_bound"]
    else:
        row["measured_words"] = math.nan
        row["measured/lower"] = math.nan
    return row


# ---------------------------------------------------------------------- #
# worker plumbing (shared persistent pool; see repro.engine.pool)         #
# ---------------------------------------------------------------------- #


def _pool_point_task(msg: tuple[str, int, int, str, str | None]) -> tuple[dict, dict]:
    """Evaluate one point on a pool worker; returns (row, stat increments).

    The per-task context message replaces the old per-pool ``initializer=``
    plumbing: the cache root rides along with every point, and
    :func:`~repro.engine.pool.worker_cache` memoizes the per-process
    :class:`EngineCache` it names — warm across batches and sweeps.
    """
    scheme, k, M, policy, root = msg
    cache = pool_runtime.worker_cache(root)
    before = cache.stats.as_dict()
    row = evaluate_point(GridPoint(scheme, k, M, policy), cache=cache)
    return row, cache.stats.delta_since(before)


def run_grid(
    spec: GridSpec,
    workers: int | None = None,
    cache: EngineCache | None = None,
) -> GridReport:
    """Run the sweep; ``workers`` > 1 fans points over the shared pool.

    All workers share the serial cache's *disk* root (atomic writes make
    concurrent population safe); their in-memory layers are per-process.
    Rows come back in deterministic point order regardless of worker count,
    and the stats aggregate hit/miss/build counters across all processes.
    ``workers`` is clamped to the point count (a 2-point grid with
    ``workers=8`` fans out over 2 processes, not 8), and the pool's serial
    modes (``REPRO_POOL=0``, permanent fallback) run the same tasks inline
    with bit-identical rows.
    """
    cache = cache if cache is not None else default_cache()
    points = spec.points()
    start = time.perf_counter()
    stats = CacheStats()
    rows: list[dict] = []
    n_workers = max(1, min(workers if workers is not None else 1, len(points)))
    if n_workers <= 1:
        for point in points:
            before = cache.stats.as_dict()
            rows.append(evaluate_point(point, cache=cache))
            delta = cache.stats.delta_since(before)
            for name, inc in delta.items():
                setattr(stats, name, getattr(stats, name) + inc)
    else:
        root = str(cache.root) if cache.disk_enabled else None
        msgs = [(p.scheme, p.k, p.M, p.policy, root) for p in points]
        for row, delta in pool_runtime.submit_batch(
            _pool_point_task, msgs, workers=n_workers
        ):
            rows.append(row)
            for name, inc in delta.items():
                setattr(stats, name, getattr(stats, name) + inc)
    return GridReport(
        spec=spec,
        rows=rows,
        stats=stats.as_dict(),
        wall_time=time.perf_counter() - start,
        workers=n_workers,
    )
