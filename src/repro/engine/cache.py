"""Content-addressed on-disk cache for built CDAGs, spectra, and estimates.

The experiments all analyze ``Dec_k C``-style graphs whose size grows as
Θ(m₀^k); rebuilding them (and re-running eigensolves) for every sweep point
dominated run time at the seed.  This module memoizes the three expensive
artifact kinds across processes and runs:

* **graphs** — the edge/kind/level arrays of a built :class:`CDAG`;
* **spectra** — the two smallest eigenpairs of the regularized Laplacian;
* **estimates** — :class:`~repro.core.expansion.ExpansionEstimate` plus its
  witness mask.

Keys are *content-addressed*: a SHA-256 over the scheme's actual coefficient
matrices (not just its registry name), the recursion depth, the build
options, and a format version.  Changing a scheme's U/V/W, any build flag,
or ``CACHE_VERSION`` automatically misses the old entries — there is no
manual invalidation protocol beyond ``clear()``.

Layout: ``<root>/<key[:2]>/<key>.npz``, written atomically (tmp file +
``os.replace``) so concurrent worker processes can share one cache
directory without locks.  The root defaults to ``~/.cache/repro-engine``
and is overridable with ``$REPRO_CACHE_DIR`` or per-instance.  A bounded
in-memory layer holds the decoded objects so repeat lookups inside one
process skip both the disk and array re-validation.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import zipfile
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.cdag.schemes import BilinearScheme

__all__ = [
    "CACHE_VERSION",
    "CacheStats",
    "EngineCache",
    "cache_key",
    "default_cache",
    "default_cache_root",
    "scheme_fingerprint",
    "set_default_cache",
]

#: Bump to invalidate every existing cache entry (stored-format changes).
#: v2: rectangular ⟨m₀,n₀,p₀;t₀⟩ schemes — the fingerprint now covers the
#: full shape, so square-era entries must not be shared.
#: v3: parallel scaling-sweep artifacts — keys may now carry a None scheme
#: (classical grid algorithms), so the keyspace layout changed.
#: v4: exact-expansion engine v2 — EXACT_LIMIT rose 22 → 28, so "auto"-policy
#: estimates of 23..28-vertex graphs change method (spectral → exact); stale
#: estimates from older builds must miss.
#: v5: "auto"-policy estimate keys now carry the effective exact-enumeration
#: ceiling (exact_limit=...), closing the stale-read when REPRO_EXACT_LIMIT
#: changes between runs; old auto-estimate entries keyed without it must miss.
CACHE_VERSION = 5

_ENV_VAR = "REPRO_CACHE_DIR"


@dataclass
class CacheStats:
    """Counters for one cache instance (monotone within a process)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    builds: int = 0  # full artifact constructions (cache could not help)

    def as_dict(self) -> dict[str, int]:
        return asdict(self)

    def delta_since(self, snapshot: dict[str, int]) -> dict[str, int]:
        """Counter increments since ``snapshot`` (an ``as_dict()`` result)."""
        now = self.as_dict()
        return {k: now[k] - snapshot.get(k, 0) for k in now}


def scheme_fingerprint(scheme: BilinearScheme) -> str:
    """Short content hash of a scheme's actual coefficients.

    Two schemes with identical (m₀, n₀, p₀, U, V, W) share every cached
    artifact even under different registry names; editing a coefficient or
    reshaping invalidates them.
    """
    h = hashlib.sha256()
    h.update(
        f"m0={scheme.m0}|n0={scheme.n0}|p0={scheme.p0}|t0={scheme.t0}".encode()
    )
    for mat in (scheme.U, scheme.V, scheme.W):
        h.update(np.ascontiguousarray(mat, dtype=np.float64).tobytes())
    return h.hexdigest()[:16]


def cache_key(kind: str, scheme: BilinearScheme | None, **params: Any) -> str:
    """Content-addressed key for one artifact of one scheme.

    ``scheme=None`` is allowed for artifacts with no bilinear scheme behind
    them (e.g. classical grid-algorithm scaling runs).
    """
    fp = scheme_fingerprint(scheme) if scheme is not None else "none"
    parts = [f"v{CACHE_VERSION}", kind, fp]
    parts.extend(f"{name}={params[name]!r}" for name in sorted(params))
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


def default_cache_root() -> Path:
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-engine"


class EngineCache:
    """Two-level (memory + disk) content-addressed artifact cache.

    Parameters
    ----------
    root:
        Cache directory; defaults to ``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro-engine``.
    disk:
        When False, never touch the filesystem (memory-only cache).
    memory_items:
        Decoded-object LRU capacity (whole CDAGs can be large; keep small).
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        disk: bool = True,
        memory_items: int = 32,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.stats = CacheStats()
        self._disk = disk
        self._memory_items = memory_items
        self._objects: OrderedDict[str, Any] = OrderedDict()

    @property
    def disk_enabled(self) -> bool:
        return self._disk

    # ------------------------------------------------------------------ #
    # decoded-object layer                                                #
    # ------------------------------------------------------------------ #

    def get_object(self, key: str) -> Any | None:
        """In-process decoded object for ``key`` (counts a hit when present)."""
        if key in self._objects:
            self._objects.move_to_end(key)
            self.stats.hits += 1
            return self._objects[key]
        return None

    def put_object(self, key: str, obj: Any) -> None:
        self._objects[key] = obj
        self._objects.move_to_end(key)
        while len(self._objects) > self._memory_items:
            self._objects.popitem(last=False)

    # ------------------------------------------------------------------ #
    # array (disk) layer                                                  #
    # ------------------------------------------------------------------ #

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.npz"

    def get_arrays(self, key: str) -> dict[str, np.ndarray] | None:
        """Load the stored array bundle for ``key``, or None on a miss."""
        if not self._disk:
            self.stats.misses += 1
            return None
        try:
            with np.load(self._path(key), allow_pickle=False) as z:
                data = {name: z[name] for name in z.files}
        except (OSError, ValueError, EOFError, zipfile.BadZipFile):
            # Missing file, unreadable directory, or a truncated/corrupt
            # entry: all are misses — the artifact is simply rebuilt.
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return data

    def put_arrays(self, key: str, arrays: dict[str, np.ndarray]) -> None:
        """Atomically persist an array bundle (best-effort: disk errors
        degrade the cache to memory-only rather than failing the build)."""
        self.stats.stores += 1
        if not self._disk:
            return
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    np.savez(f, **arrays)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            self._disk = False

    def count_build(self) -> None:
        """Record one full artifact construction (called by the builders)."""
        self.stats.builds += 1

    # ------------------------------------------------------------------ #
    # stats accounting                                                    #
    # ------------------------------------------------------------------ #

    def stats_snapshot(self) -> dict[str, int]:
        """Current counter values as a plain dict (for ``delta_since``)."""
        return self.stats.as_dict()

    def reset_stats(self) -> dict[str, int]:
        """Zero the hit/miss/store/build counters; returns the old values.

        The counters are otherwise monotone for the life of the instance,
        which makes cold-vs-warm accounting across consecutive runs (the
        bench harness's ``grid_sweep_cold`` / ``grid_sweep_warm`` split)
        impossible to read off directly — resetting between phases makes
        each phase's counters exact.  Cached artifacts are untouched.
        """
        old = self.stats.as_dict()
        self.stats = CacheStats()
        return old

    # ------------------------------------------------------------------ #
    # maintenance                                                         #
    # ------------------------------------------------------------------ #

    def clear(self) -> int:
        """Drop the memory layer and delete all on-disk entries; returns the
        number of files removed."""
        self._objects.clear()
        removed = 0
        if self._disk and self.root.is_dir():
            for path in self.root.glob("*/*.npz"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def info(self) -> dict[str, Any]:
        """Root, entry count, total bytes, and this process's counters."""
        n_files = 0
        n_bytes = 0
        if self._disk and self.root.is_dir():
            for path in self.root.glob("*/*.npz"):
                try:
                    n_bytes += path.stat().st_size
                    n_files += 1
                except OSError:
                    pass
        return {
            "root": str(self.root),
            "disk_enabled": self._disk,
            "entries": n_files,
            "bytes": n_bytes,
            "stats": self.stats.as_dict(),
        }


_DEFAULT: EngineCache | None = None


def default_cache() -> EngineCache:
    """The process-wide cache used when callers pass ``cache=None``."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = EngineCache()
    return _DEFAULT


def set_default_cache(cache: EngineCache | None) -> EngineCache | None:
    """Swap the process-wide default cache; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = cache
    return previous
