"""Content-addressed on-disk cache for built CDAGs, spectra, and estimates.

The experiments all analyze ``Dec_k C``-style graphs whose size grows as
Θ(m₀^k); rebuilding them (and re-running eigensolves) for every sweep point
dominated run time at the seed.  This module memoizes the three expensive
artifact kinds across processes and runs:

* **graphs** — the edge/kind/level arrays of a built :class:`CDAG`;
* **spectra** — the two smallest eigenpairs of the regularized Laplacian;
* **estimates** — :class:`~repro.core.expansion.ExpansionEstimate` plus its
  witness mask.

Keys are *content-addressed*: a SHA-256 over the scheme's actual coefficient
matrices (not just its registry name), the recursion depth, the build
options, and a format version.  Changing a scheme's U/V/W, any build flag,
or ``CACHE_VERSION`` automatically misses the old entries — there is no
manual invalidation protocol beyond ``clear()``.

Layout: ``<root>/<key[:2]>/<key>.npz``, written atomically (tmp file +
``os.replace``) so concurrent worker processes can share one cache
directory without locks.  The root defaults to ``~/.cache/repro-engine``
and is overridable with ``$REPRO_CACHE_DIR`` or per-instance.  A bounded
in-memory layer holds the decoded objects so repeat lookups inside one
process skip both the disk and array re-validation.

Concurrency: every public method is safe to call from multiple threads of
one process (the serving layer's executor threads share one instance).
Cross-thread build deduplication is explicit — :meth:`EngineCache.lock`
hands out one mutex per key and :meth:`EngineCache.single_flight` wraps the
check/build/store cycle in it, so N concurrent identical requests run the
build exactly once.  Cross-*process* writers need no locks at all: the
atomic-rename protocol makes concurrent same-key writers idempotent.
"""

from __future__ import annotations

import hashlib
import os
import sys
import tempfile
import threading
import zipfile
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.cdag.schemes import BilinearScheme

__all__ = [
    "CACHE_VERSION",
    "CacheStats",
    "EngineCache",
    "cache_key",
    "default_cache",
    "default_cache_root",
    "scheme_fingerprint",
    "set_default_cache",
]

#: Bump to invalidate every existing cache entry (stored-format changes).
#: v2: rectangular ⟨m₀,n₀,p₀;t₀⟩ schemes — the fingerprint now covers the
#: full shape, so square-era entries must not be shared.
#: v3: parallel scaling-sweep artifacts — keys may now carry a None scheme
#: (classical grid algorithms), so the keyspace layout changed.
#: v4: exact-expansion engine v2 — EXACT_LIMIT rose 22 → 28, so "auto"-policy
#: estimates of 23..28-vertex graphs change method (spectral → exact); stale
#: estimates from older builds must miss.
#: v5: "auto"-policy estimate keys now carry the effective exact-enumeration
#: ceiling (exact_limit=...), closing the stale-read when REPRO_EXACT_LIMIT
#: changes between runs; old auto-estimate entries keyed without it must miss.
#: v6: certified expansion intervals — estimate artifacts now store the
#: interval provenance tag, DEFAULT_EXACT_LIMIT rose 28 → 32 (the native
#: kernel), so "auto"-policy estimates of 29..32-vertex graphs change method;
#: v5 estimate entries lack the provenance field and must miss.
#: v7: planner-first parallel API — scaling artifacts now measure via
#: ``execute(ParallelConfig)`` and analytic records carry a flops term, and
#: the new kind ``"plan"`` stores ranked plan tables keyed by topology
#: cache tokens; pre-planner scaling entries must not be replayed into the
#: topology-costed pipeline.
#:
#: Numeric-key normalization (PR 7) deliberately did NOT bump the version:
#: normalized keys are byte-identical to the keys plain-Python (and
#: NumPy 1.x) callers always produced, so every canonical entry stays valid.
#: The only orphaned entries are the *fragmented duplicates* NumPy 2.x
#: scalars created via ``repr(np.float64(1.5)) == 'np.float64(1.5)'`` — those
#: held the same artifact content as their canonical twins, so leaving them
#: unreachable cannot serve a stale result.
CACHE_VERSION = 7

_ENV_VAR = "REPRO_CACHE_DIR"

#: Attempts per put_arrays call before the call is abandoned (transient
#: OSErrors — e.g. one ENOSPC mid-sweep — must not poison later stores).
_DISK_WRITE_ATTEMPTS = 2


@dataclass
class CacheStats:
    """Counters for one cache instance (monotone within a process)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    builds: int = 0  # full artifact constructions (cache could not help)
    disk_errors: int = 0  # put_arrays calls that exhausted their retries
    evictions: int = 0  # decoded objects dropped by the memory-tier caps

    def as_dict(self) -> dict[str, int]:
        return asdict(self)

    def delta_since(self, snapshot: dict[str, int]) -> dict[str, int]:
        """Counter increments since ``snapshot`` (an ``as_dict()`` result)."""
        now = self.as_dict()
        return {k: now[k] - snapshot.get(k, 0) for k in now}

    def merge(self, delta: dict[str, int]) -> None:
        """Fold a ``delta_since`` result from another process into this one."""
        for name, value in delta.items():
            setattr(self, name, getattr(self, name) + int(value))


def scheme_fingerprint(scheme: BilinearScheme) -> str:
    """Short content hash of a scheme's actual coefficients.

    Two schemes with identical (m₀, n₀, p₀, U, V, W) share every cached
    artifact even under different registry names; editing a coefficient or
    reshaping invalidates them.
    """
    h = hashlib.sha256()
    h.update(
        f"m0={scheme.m0}|n0={scheme.n0}|p0={scheme.p0}|t0={scheme.t0}".encode()
    )
    for mat in (scheme.U, scheme.V, scheme.W):
        h.update(np.ascontiguousarray(mat, dtype=np.float64).tobytes())
    return h.hexdigest()[:16]


def _normalize_param(value: Any) -> Any:
    """Decay NumPy scalars (recursively through tuples/lists) to Python ones.

    ``cache_key`` hashes ``repr(value)``, and NumPy 2.x changed scalar reprs
    (``repr(np.float64(1.5)) == 'np.float64(1.5)'``), so without this an
    ``np.int64`` recursion depth and the equal plain ``int`` would land in
    *different* cache entries.  Booleans are checked before integers because
    ``np.bool_`` is not an ``np.integer`` but plain ``bool`` *is* an ``int``
    — ``True`` and ``1`` must keep their distinct reprs.
    """
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.str_):
        return str(value)
    if isinstance(value, (tuple, list)):
        return type(value)(_normalize_param(v) for v in value)
    return value


def cache_key(kind: str, scheme: BilinearScheme | None, **params: Any) -> str:
    """Content-addressed key for one artifact of one scheme.

    ``scheme=None`` is allowed for artifacts with no bilinear scheme behind
    them (e.g. classical grid-algorithm scaling runs).  Numeric parameters
    are normalized first so NumPy scalars and equal Python numbers share a
    key (see :func:`_normalize_param`).
    """
    fp = scheme_fingerprint(scheme) if scheme is not None else "none"
    parts = [f"v{CACHE_VERSION}", kind, fp]
    parts.extend(f"{name}={_normalize_param(params[name])!r}" for name in sorted(params))
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


def default_cache_root() -> Path:
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-engine"


def _approx_nbytes(obj: Any, _seen: set[int] | None = None) -> int:
    """Rough decoded-object footprint: array payloads plus container skin.

    Exact accounting is impossible for arbitrary graph objects; what matters
    for the memory-tier byte cap is that ndarray payloads (the only thing
    that gets large here) are counted fully and everything else is bounded
    below by ``sys.getsizeof``.
    """
    if _seen is None:
        _seen = set()
    if id(obj) in _seen:
        return 0
    _seen.add(id(obj))
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + sys.getsizeof(obj, 0)
    total = sys.getsizeof(obj, 64)
    if isinstance(obj, dict):
        for k, v in obj.items():
            total += _approx_nbytes(k, _seen) + _approx_nbytes(v, _seen)
    elif isinstance(obj, (tuple, list, frozenset)):
        for item in obj:
            total += _approx_nbytes(item, _seen)
    elif hasattr(obj, "__dict__"):
        for v in vars(obj).values():
            total += _approx_nbytes(v, _seen)
    elif hasattr(obj, "__slots__"):
        for name in obj.__slots__:
            total += _approx_nbytes(getattr(obj, name, None), _seen)
    return total


class EngineCache:
    """Two-level (memory + disk) content-addressed artifact cache.

    Parameters
    ----------
    root:
        Cache directory; defaults to ``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro-engine``.
    disk:
        When False, never touch the filesystem (memory-only cache).
    memory_items:
        Decoded-object LRU capacity (whole CDAGs can be large; keep small).
    memory_bytes:
        Optional byte cap on the decoded-object tier (approximate, see
        :func:`_approx_nbytes`).  Objects larger than the cap are served but
        never retained; retained entries evict LRU-first until under the cap.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        disk: bool = True,
        memory_items: int = 32,
        memory_bytes: int | None = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.stats = CacheStats()
        self._disk = disk
        self._disk_degraded = False  # last put_arrays exhausted its retries
        self._memory_items = memory_items
        self._memory_bytes = memory_bytes
        self._objects: OrderedDict[str, Any] = OrderedDict()
        self._object_sizes: dict[str, int] = {}
        self._objects_nbytes = 0
        # One re-entrant lock covers counters and the memory tier; the
        # per-key locks below serialize whole build cycles instead.
        self._lock = threading.RLock()
        self._key_locks: dict[str, threading.Lock] = {}

    @property
    def disk_enabled(self) -> bool:
        return self._disk

    @property
    def disk_degraded(self) -> bool:
        """True while the most recent disk write failed (cleared on success)."""
        return self._disk_degraded

    # ------------------------------------------------------------------ #
    # decoded-object layer                                                 #
    # ------------------------------------------------------------------ #

    def get_object(self, key: str) -> Any | None:
        """In-process decoded object for ``key`` (counts a hit or a miss)."""
        with self._lock:
            if key in self._objects:
                self._objects.move_to_end(key)
                self.stats.hits += 1
                return self._objects[key]
            self.stats.misses += 1
            return None

    def put_object(self, key: str, obj: Any) -> None:
        size = _approx_nbytes(obj) if self._memory_bytes is not None else 0
        with self._lock:
            if self._memory_bytes is not None and size > self._memory_bytes:
                # Larger than the whole tier: serve it, don't retain it.
                self._evict_key(key)
                return
            self._evict_key(key)
            self._objects[key] = obj
            self._object_sizes[key] = size
            self._objects_nbytes += size
            while len(self._objects) > self._memory_items or (
                self._memory_bytes is not None and self._objects_nbytes > self._memory_bytes
            ):
                evicted, _ = self._objects.popitem(last=False)
                self._objects_nbytes -= self._object_sizes.pop(evicted, 0)
                self.stats.evictions += 1

    def _evict_key(self, key: str) -> None:
        """Drop ``key`` from the memory tier without counting an eviction."""
        if key in self._objects:
            del self._objects[key]
            self._objects_nbytes -= self._object_sizes.pop(key, 0)

    # ------------------------------------------------------------------ #
    # build coordination                                                   #
    # ------------------------------------------------------------------ #

    def lock(self, key: str) -> threading.Lock:
        """The per-key mutex serializing concurrent builds of one artifact."""
        with self._lock:
            lk = self._key_locks.get(key)
            if lk is None:
                lk = self._key_locks[key] = threading.Lock()
            return lk

    def single_flight(self, key: str, build: Callable[[], Any]) -> Any:
        """Return the decoded object for ``key``, building at most once.

        Concurrent callers with the same key block on the per-key lock; the
        first runs ``build()`` and stores the result, the rest re-check the
        memory tier and hit.  ``build`` must return a non-None object.
        """
        obj = self.get_object(key)
        if obj is not None:
            return obj
        with self.lock(key):
            obj = self.get_object(key)
            if obj is not None:
                return obj
            obj = build()
            self.put_object(key, obj)
            return obj

    # ------------------------------------------------------------------ #
    # array (disk) layer                                                   #
    # ------------------------------------------------------------------ #

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.npz"

    def get_arrays(self, key: str) -> dict[str, np.ndarray] | None:
        """Load the stored array bundle for ``key``, or None on a miss."""
        if not self._disk:
            with self._lock:
                self.stats.misses += 1
            return None
        try:
            with np.load(self._path(key), allow_pickle=False) as z:
                data = {name: z[name] for name in z.files}
        except (OSError, ValueError, EOFError, zipfile.BadZipFile):
            # Missing file, unreadable directory, or a truncated/corrupt
            # entry: all are misses — the artifact is simply rebuilt.
            with self._lock:
                self.stats.misses += 1
            return None
        with self._lock:
            self.stats.hits += 1
        return data

    def put_arrays(self, key: str, arrays: dict[str, np.ndarray]) -> None:
        """Atomically persist an array bundle (best-effort).

        Disk failures are *per call*: each store gets
        ``_DISK_WRITE_ATTEMPTS`` tries, and an exhausted call only marks the
        cache degraded (``disk_degraded`` / ``stats.disk_errors``) — the next
        store retries the disk and clears the flag on success.  A transient
        ENOSPC mid-sweep therefore costs the entries written while full, not
        every later entry of the process's lifetime.
        """
        with self._lock:
            self.stats.stores += 1
        if not self._disk:
            return
        path = self._path(key)
        for attempt in range(_DISK_WRITE_ATTEMPTS):
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
                try:
                    with os.fdopen(fd, "wb") as f:
                        np.savez(f, **arrays)
                    os.replace(tmp, path)
                finally:
                    if os.path.exists(tmp):
                        os.unlink(tmp)
            except OSError:
                if attempt + 1 == _DISK_WRITE_ATTEMPTS:
                    with self._lock:
                        self.stats.disk_errors += 1
                        self._disk_degraded = True
            else:
                with self._lock:
                    self._disk_degraded = False
                return

    def count_build(self) -> None:
        """Record one full artifact construction (called by the builders)."""
        with self._lock:
            self.stats.builds += 1

    # ------------------------------------------------------------------ #
    # stats accounting                                                     #
    # ------------------------------------------------------------------ #

    def stats_snapshot(self) -> dict[str, int]:
        """Current counter values as a plain dict (for ``delta_since``)."""
        with self._lock:
            return self.stats.as_dict()

    def reset_stats(self) -> dict[str, int]:
        """Zero the hit/miss/store/build counters; returns the old values.

        The counters are otherwise monotone for the life of the instance,
        which makes cold-vs-warm accounting across consecutive runs (the
        bench harness's ``grid_sweep_cold`` / ``grid_sweep_warm`` split)
        impossible to read off directly — resetting between phases makes
        each phase's counters exact.  Cached artifacts are untouched.
        """
        with self._lock:
            old = self.stats.as_dict()
            self.stats = CacheStats()
            return old

    def merge_stats(self, delta: dict[str, int]) -> None:
        """Fold counter increments from a worker process into this instance.

        The grid runner and the serving layer's process pool both execute
        builds in workers whose caches are separate objects; each worker
        reports ``stats.delta_since(snapshot)`` and the parent merges it here
        so ``info()`` reflects the whole fleet.
        """
        with self._lock:
            self.stats.merge(delta)

    # ------------------------------------------------------------------ #
    # maintenance                                                          #
    # ------------------------------------------------------------------ #

    def clear(self) -> int:
        """Drop the memory layer and delete all on-disk entries; returns the
        number of files removed.

        Honest after degradation: a failed *write* never hides existing
        on-disk entries from ``clear()`` — only a cache constructed with
        ``disk=False`` skips the filesystem.  Emptied shard directories are
        pruned, and the degraded flag resets (nothing left to degrade).
        """
        with self._lock:
            self._objects.clear()
            self._object_sizes.clear()
            self._objects_nbytes = 0
        removed = 0
        if self._disk and self.root.is_dir():
            for path in self.root.glob("*/*.npz"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for shard in self.root.iterdir():
                if shard.is_dir():
                    try:
                        shard.rmdir()  # refuses non-empty shards
                    except OSError:
                        pass
        with self._lock:
            self._disk_degraded = False
        return removed

    def info(self) -> dict[str, Any]:
        """Root, entry count, total bytes, and this process's counters."""
        n_files = 0
        n_bytes = 0
        if self._disk and self.root.is_dir():
            for path in self.root.glob("*/*.npz"):
                try:
                    n_bytes += path.stat().st_size
                    n_files += 1
                except OSError:
                    pass
        with self._lock:
            return {
                "root": str(self.root),
                "disk_enabled": self._disk,
                "disk_degraded": self._disk_degraded,
                "entries": n_files,
                "bytes": n_bytes,
                "memory": {
                    "items": len(self._objects),
                    "bytes": self._objects_nbytes,
                    "max_items": self._memory_items,
                    "max_bytes": self._memory_bytes,
                },
                "stats": self.stats.as_dict(),
            }


_DEFAULT: EngineCache | None = None


def default_cache() -> EngineCache:
    """The process-wide cache used when callers pass ``cache=None``."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = EngineCache()
    return _DEFAULT


def set_default_cache(cache: EngineCache | None) -> EngineCache | None:
    """Swap the process-wide default cache; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = cache
    return previous
