"""The experiment engine: content-addressed caching + parallel grid sweeps.

Layers (bottom up):

* :mod:`repro.engine.cache` — two-level (memory + disk) content-addressed
  artifact store keyed by scheme coefficients, depth, and build options;
* :mod:`repro.engine.builders` — cache-backed constructors for ``Dec_k C`` /
  ``H_k`` graphs, Laplacian spectra, and expansion estimates;
* :mod:`repro.engine.pool` — the process-wide persistent worker-pool
  runtime every parallel call site ships work through (warm reuse,
  zero-copy task transport, ``REPRO_POOL`` kill switch, telemetry);
* :mod:`repro.engine.grid` — the pooled (scheme, k, M, policy) sweep
  runner with aggregated cache accounting;
* :mod:`repro.engine.scaling` — the cached strong-scaling sweep over the
  parallel-algorithm registry (algorithms × p-grid × replication c);
* :mod:`repro.engine.planner` — the topology-aware auto-scheduler ranking
  registry configurations by predicted time under a memory limit;
* :mod:`repro.engine.bench` — the benchmark-workload registry, the
  ``BENCH_<tag>.json`` emitter, and the baseline-comparison gate;
* :mod:`repro.engine.cli` — the ``python -m repro`` command-line front end.
"""

from repro.engine.cache import (
    CACHE_VERSION,
    CacheStats,
    EngineCache,
    cache_key,
    default_cache,
    default_cache_root,
    scheme_fingerprint,
    set_default_cache,
)
from repro.engine.builders import (
    AUTO_SPECTRAL_LIMIT,
    POLICIES,
    cached_dec_graph,
    cached_estimate,
    cached_h_graph,
    cached_spectrum,
)
from repro.engine.bench import (
    BENCH_SCHEMA_VERSION,
    BenchComparison,
    BenchWorkload,
    available_benches,
    compare_benchmarks,
    get_bench,
    register_bench,
    run_bench,
    run_suite,
    selected_benches,
)
from repro.engine.grid import GridPoint, GridReport, GridSpec, evaluate_point, run_grid
from repro.engine.pool import (
    PoolStats,
    max_pool_workers,
    pool_enabled,
    pool_info,
    pool_stats_snapshot,
    prewarm,
    serial_fallback_reason,
    shutdown_pool,
    submit_batch,
    submit_one,
)
from repro.engine.planner import (
    Plan,
    default_memory_ladder,
    enumerate_plans,
    plan,
    plan_report,
)
from repro.engine.scaling import (
    ScalingPoint,
    ScalingReport,
    ScalingSpec,
    evaluate_scaling_point,
    scaling_sweep,
)

__all__ = [
    "CACHE_VERSION",
    "CacheStats",
    "EngineCache",
    "cache_key",
    "default_cache",
    "default_cache_root",
    "scheme_fingerprint",
    "set_default_cache",
    "AUTO_SPECTRAL_LIMIT",
    "POLICIES",
    "cached_dec_graph",
    "cached_estimate",
    "cached_h_graph",
    "cached_spectrum",
    "BENCH_SCHEMA_VERSION",
    "BenchComparison",
    "BenchWorkload",
    "available_benches",
    "compare_benchmarks",
    "get_bench",
    "register_bench",
    "run_bench",
    "run_suite",
    "selected_benches",
    "GridPoint",
    "GridReport",
    "GridSpec",
    "evaluate_point",
    "run_grid",
    "PoolStats",
    "max_pool_workers",
    "pool_enabled",
    "pool_info",
    "pool_stats_snapshot",
    "prewarm",
    "serial_fallback_reason",
    "shutdown_pool",
    "submit_batch",
    "submit_one",
    "Plan",
    "default_memory_ladder",
    "enumerate_plans",
    "plan",
    "plan_report",
    "ScalingPoint",
    "ScalingReport",
    "ScalingSpec",
    "evaluate_scaling_point",
    "scaling_sweep",
]
