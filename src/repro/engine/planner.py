"""Topology-aware auto-scheduler over the parallel-algorithm registry.

Table I is ultimately a scheduling claim — which algorithm attains which
communication bound in which memory regime — and this module answers it
constructively: :func:`plan` searches the registry × (p, c, scheme,
schedule) space on a given :class:`~repro.topology.Topology`, prices every
candidate with the pure ``estimate`` API (no arrays, no simulation), drops
configurations whose per-rank footprint exceeds the memory limit, and
returns :class:`Plan` records ranked by predicted time.  Each record
carries the candidate's predicted time, words, messages, memory, flops,
and the binding lower bound (:func:`~repro.core.bounds.scaling_regime`
evaluated at the plan's own footprint), so a ranking is also a Table-I
classification.

:func:`plan_report` sweeps a ladder of memory limits (tight → unlimited by
default) in one call — the regime flip the paper predicts shows up as the
top-ranked algorithm changing across the ladder.

Plans are deterministic functions of (n, scheme, topology, memory limit,
search bounds), so plan tables are cached in the content-addressed store
(kind ``"plan"``, keyed by the topology's ``cache_token``); warm calls
re-rank from disk without re-enumerating.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cdag.schemes import get_scheme
from repro.core.bounds import scaling_regime
from repro.engine.cache import EngineCache, cache_key, default_cache
from repro.parallel.base import ParallelConfig, available_parallel, get_parallel
from repro.topology import Topology
from repro.util.jsonutil import jsonable

__all__ = [
    "Plan",
    "default_memory_ladder",
    "enumerate_plans",
    "plan",
    "plan_report",
]

#: Search cap when the topology's device fleet is unbounded.
DEFAULT_P_MAX = 64


@dataclass(frozen=True)
class Plan:
    """One ranked schedule: a configuration plus its predicted price tag."""

    algorithm: str
    label: str
    n: int
    p: int
    c: int
    scheme: str | None
    schedule: str | None
    omega0: float
    predicted_time: float
    words: float
    messages: float
    memory: float
    flops: float
    lower_bound: float   # max of the two Table-I bounds at this plan's footprint
    binding: str         # which bound binds there ("memory-dependent"/"-independent")

    def config(self, memory_limit: int | None = None) -> ParallelConfig:
        """The executable configuration this plan names."""
        return ParallelConfig(
            n=self.n,
            p=self.p,
            c=self.c,
            scheme=self.scheme,
            schedule=self.schedule,
            memory_limit=memory_limit,
        )

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "label": self.label,
            "n": self.n,
            "p": self.p,
            "c": self.c,
            "scheme": self.scheme,
            "schedule": self.schedule,
            "omega0": self.omega0,
            "predicted_time": self.predicted_time,
            "words": self.words,
            "messages": self.messages,
            "memory": self.memory,
            "flops": self.flops,
            "lower_bound": self.lower_bound,
            "binding": self.binding,
        }

    @classmethod
    def from_dict(cls, row: dict) -> Plan:
        return cls(**{f: row[f] for f in cls.__dataclass_fields__})


def default_memory_ladder(n: int, p_cap: int) -> tuple[int | None, ...]:
    """Tight → roomy → unlimited per-rank word budgets for one ``plan`` call.

    The tight rung (≈4·n²/p) admits only minimal-footprint 2D algorithms;
    the roomy rung (≈32·n²/p) re-admits the replicating/3D family; the
    unlimited rung lets all-BFS CAPS spend memory freely — so one ladder
    walks every Table-I regime.
    """
    if n < 1 or p_cap < 1:
        raise ValueError(f"memory ladder needs n >= 1 and p_cap >= 1 (got {n}, {p_cap})")
    base = n * n / p_cap
    return (math.ceil(4 * base), math.ceil(32 * base), None)


def enumerate_plans(
    n: int,
    scheme: str = "strassen",
    topology: Topology | None = None,
    memory_limit: int | None = None,
    *,
    p_max: int | None = None,
    cs: Sequence[int] = (1, 2, 4),
    algos: Sequence[str] | None = None,
) -> tuple[list[Plan], int]:
    """Search the registry and rank feasible candidates (pure, uncached).

    Returns ``(ranked_plans, searched)`` where ``searched`` counts every
    candidate configuration priced, feasible or not.  Ranking is by
    predicted time with a deterministic (words, messages, p, label)
    tie-break.
    """
    topology = topology if topology is not None else Topology.uniform()
    cap = topology.capacity
    if p_max is None:
        p_max = cap if cap is not None else DEFAULT_P_MAX
    if cap is not None:
        p_max = min(p_max, cap)
    names = list(algos) if algos is not None else available_parallel()

    plans: list[Plan] = []
    searched = 0
    for name in names:
        algo = get_parallel(name)
        scheme_arg = scheme if algo.uses_scheme else None
        for cfg in algo.plan_configs(n, p_max, cs=cs, scheme=scheme_arg):
            searched += 1
            est = algo.estimate(cfg, topology=topology)
            if memory_limit is not None and est.memory > memory_limit:
                continue
            sch = get_scheme(cfg.scheme) if cfg.scheme is not None else None
            w0 = algo.omega0(sch)
            # The honest M for the bound is the plan's own footprint — the
            # memory this schedule actually commits to using.
            regime = scaling_regime(n, cfg.p, max(1, math.ceil(est.memory)), w0)
            plans.append(
                Plan(
                    algorithm=name,
                    label=algo.result_label(p=cfg.p, c=cfg.c, scheme=sch, **cfg.options()),
                    n=n,
                    p=cfg.p,
                    c=cfg.c,
                    scheme=cfg.scheme,
                    schedule=cfg.schedule,
                    omega0=w0,
                    predicted_time=topology.predict_time(
                        est.words, est.messages, p=cfg.p, flops=est.flops
                    ),
                    words=est.words,
                    messages=est.messages,
                    memory=est.memory,
                    flops=est.flops,
                    lower_bound=regime.bound,
                    binding=regime.binding,
                )
            )
    plans.sort(
        key=lambda pl: (pl.predicted_time, pl.words, pl.messages, pl.p, pl.label)
    )
    return plans, searched


def plan(
    n: int,
    scheme: str = "strassen",
    topology: Topology | None = None,
    memory_limit: int | None = None,
    *,
    p_max: int | None = None,
    cs: Sequence[int] = (1, 2, 4),
    algos: Sequence[str] | None = None,
    cache: EngineCache | None = None,
) -> list[Plan]:
    """Ranked feasible :class:`Plan` records for one memory limit (cached)."""
    cache = cache if cache is not None else default_cache()
    topology = topology if topology is not None else Topology.uniform()
    key = cache_key(
        "plan",
        get_scheme(scheme),
        n=n,
        topology=topology.cache_token(),
        memory_limit=memory_limit,
        p_max=p_max,
        cs=tuple(cs),
        algos=tuple(algos) if algos is not None else None,
    )
    cached = cache.get_object(key)
    if cached is None:
        data = cache.get_arrays(key)
        if data is not None:
            cached = json.loads(str(data["rows"]))
        else:
            cache.count_build()
            plans, searched = enumerate_plans(
                n,
                scheme,
                topology,
                memory_limit,
                p_max=p_max,
                cs=cs,
                algos=algos,
            )
            cached = {"rows": [pl.as_dict() for pl in plans], "searched": searched}
            cache.put_arrays(
                key,
                {"rows": np.asarray(json.dumps(jsonable(cached), allow_nan=False))},
            )
        cache.put_object(key, cached)
    return [Plan.from_dict(row) for row in cached["rows"]]


def plan_report(
    n: int,
    scheme: str = "strassen",
    topology: Topology | None = None,
    memory_limits: Sequence[int | None] | None = None,
    *,
    p_max: int | None = None,
    cs: Sequence[int] = (1, 2, 4),
    algos: Sequence[str] | None = None,
    cache: EngineCache | None = None,
) -> dict:
    """Run :func:`plan` across a memory-limit ladder and summarize winners.

    The returned dict is JSON-ready: the spec, one ranked table per memory
    limit, the per-limit winning algorithm, and cache accounting.  The
    regime flip shows up as ``winners`` naming different algorithms on
    different rungs.
    """
    cache = cache if cache is not None else default_cache()
    topology = topology if topology is not None else Topology.uniform()
    if memory_limits is None:
        cap = topology.capacity
        p_cap = p_max if p_max is not None else (cap if cap is not None else DEFAULT_P_MAX)
        memory_limits = default_memory_ladder(n, p_cap)
    start = time.perf_counter()
    before = cache.stats.as_dict()
    tables = []
    winners: dict[str, str | None] = {}
    for limit in memory_limits:
        ranked = plan(
            n,
            scheme,
            topology,
            limit,
            p_max=p_max,
            cs=cs,
            algos=algos,
            cache=cache,
        )
        label = "unlimited" if limit is None else str(limit)
        winners[label] = ranked[0].algorithm if ranked else None
        tables.append(
            {
                "memory_limit": limit,
                "rows": [pl.as_dict() for pl in ranked],
            }
        )
    return jsonable(
        {
            "spec": {
                "n": n,
                "scheme": scheme,
                "topology": topology.describe(),
                "memory_limits": list(memory_limits),
                "p_max": p_max,
                "cs": list(cs),
                "algos": list(algos) if algos is not None else None,
            },
            "tables": tables,
            "winners": winners,
            "flips": len({w for w in winners.values() if w is not None}) > 1,
            "stats": cache.stats.delta_since(before),
            "wall_time": time.perf_counter() - start,
        }
    )
