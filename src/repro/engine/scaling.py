"""Cached strong-scaling sweep: parallel-algorithm registry × p-grid × c.

The parallel counterpart of :mod:`repro.engine.grid`: for every registered
algorithm (or a chosen subset) and every valid (p, c) configuration up to a
processor budget, run the simulated algorithm, meter its critical-path
words / messages / α–β time / per-rank memory, and set the measurements
beside

* the algorithm's *declared* analytic cost formulas (registry metadata),
* the memory-dependent bound ``(n/√M)^ω₀·M/p`` at the measured memory,
* the memory-independent floor ``n²/p^(2/ω₀)`` (arXiv:1202.3177), and
* the :func:`~repro.core.bounds.scaling_regime` classification saying
  which bound binds and where the perfect-scaling range ends.

Simulated runs are deterministic, so their measured counters are cached in
the PR-1 content-addressed store (kind ``"scaling"``) keyed by the
algorithm name, problem geometry, schedule, and seeds — a warm sweep
replays from disk without simulating anything (``builds == 0``).  The
per-superstep per-rank (msgs, words) tallies are part of the cached
artifact, so the critical-path time is recomputed at read time and
sweeping machine parameters never re-simulates.

Machine parameters flow through one object: a sweep's ``(alpha, beta)``
pair is materialized as ``Topology.uniform(alpha, beta)`` (bit-identical
to the historical flat α-β expression), and handing ``ScalingSpec`` a
heterogeneous :class:`~repro.topology.Topology` re-costs the same cached
tallies under that machine's effective tier parameters with no new
plumbing.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass

import numpy as np

from repro.cdag.schemes import get_scheme
from repro.core.bounds import scaling_regime
from repro.engine import pool as pool_runtime
from repro.engine.cache import EngineCache, cache_key, default_cache
from repro.parallel.base import ParallelConfig, get_parallel
from repro.topology import Topology
from repro.util.jsonutil import jsonable
from repro.util.matgen import integer_matrix

__all__ = [
    "ScalingPoint",
    "ScalingSpec",
    "ScalingReport",
    "evaluate_scaling_point",
    "scaling_sweep",
]


@dataclass(frozen=True)
class ScalingPoint:
    """One (algorithm, geometry) coordinate of the sweep."""

    algo: str
    n: int
    p: int
    c: int = 1
    scheme: str = "strassen"      # consumed only by scheme-driven algorithms
    schedule: str | None = None   # CAPS only; None = all-BFS
    memory_limit: int | None = None
    seed: int = 11                # inputs are integer_matrix(n, seed) / (n, seed+2)


@dataclass(frozen=True)
class ScalingSpec:
    """The sweep: every algorithm's valid configs with p ≤ p_max, c ∈ cs."""

    algos: tuple[str, ...]
    n: int = 56
    p_max: int = 64
    cs: tuple[int, ...] = (1, 2, 4)
    scheme: str = "strassen"
    seed: int = 11
    alpha: float = 1.0
    beta: float = 1.0
    topology: Topology | None = None   # None = Topology.uniform(alpha, beta)

    def __post_init__(self) -> None:
        object.__setattr__(self, "algos", tuple(self.algos))
        object.__setattr__(self, "cs", tuple(self.cs))

    def machine_topology(self) -> Topology:
        """The machine the sweep is costed on (uniform unless overridden)."""
        if self.topology is not None:
            return self.topology
        return Topology.uniform(self.alpha, self.beta)

    def points(self) -> list[ScalingPoint]:
        p_max = self.p_max
        cap = self.machine_topology().capacity
        if cap is not None:
            p_max = min(p_max, cap)
        pts = []
        for name in self.algos:
            algo = get_parallel(name)
            sch = get_scheme(self.scheme) if algo.uses_scheme else None
            for cfg in algo.default_configs(self.n, p_max, cs=self.cs, scheme=sch):
                pts.append(
                    ScalingPoint(
                        algo=name,
                        n=self.n,
                        p=cfg["p"],
                        c=cfg.get("c", 1),
                        scheme=self.scheme,
                        schedule=cfg.get("schedule"),
                        seed=self.seed,
                    )
                )
        return pts


@dataclass
class ScalingReport:
    """Aggregated sweep result: rows in point order plus cache accounting."""

    spec: ScalingSpec
    rows: list[dict]
    stats: dict[str, int]
    wall_time: float

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(
            jsonable(
                {
                    "spec": {
                        "algos": list(self.spec.algos),
                        "n": self.spec.n,
                        "p_max": self.spec.p_max,
                        "cs": list(self.spec.cs),
                        "scheme": self.spec.scheme,
                        "seed": self.spec.seed,
                        "alpha": self.spec.alpha,
                        "beta": self.spec.beta,
                        # only heterogeneous sweeps carry the extra key, so
                        # the uniform spec JSON stays golden-pinned verbatim
                        **(
                            {"topology": self.spec.topology.name}
                            if self.spec.topology is not None
                            else {}
                        ),
                    },
                    "rows": self.rows,
                    "stats": self.stats,
                    "wall_time": self.wall_time,
                }
            ),
            indent=indent,
            allow_nan=False,
        )


# ---------------------------------------------------------------------- #
# one point                                                               #
# ---------------------------------------------------------------------- #

_MEASURED_INTS = (
    "critical_words",
    "critical_messages",
    "max_mem_peak",
    "total_words",
    "supersteps",
    "verified",
)


def _measure(point: ScalingPoint) -> dict:
    """Run the simulation and extract the cacheable counters.

    The per-superstep per-rank message/word tallies (dense ``S × p``
    arrays) are kept so the α–β critical-path time can be evaluated for
    any (α, β) without re-simulating.
    """
    algo = get_parallel(point.algo)
    A = integer_matrix(point.n, seed=point.seed)
    B = integer_matrix(point.n, seed=point.seed + 2)
    cfg = ParallelConfig(
        n=point.n,
        p=point.p,
        c=point.c,
        scheme=point.scheme if algo.uses_scheme else None,
        schedule=point.schedule,
        memory_limit=point.memory_limit,
    )
    r = algo.execute(A, B, cfg, verify=True)
    steps = r.machine.log.steps
    step_words = np.zeros((len(steps), point.p), dtype=np.int64)
    step_msgs = np.zeros((len(steps), point.p), dtype=np.int64)
    for i, s in enumerate(steps):
        for rk, w in s.sent.items():
            step_words[i, rk] += w
        for rk, w in s.recv.items():
            step_words[i, rk] += w
        for rk, cnt in s.msgs.items():
            step_msgs[i, rk] = cnt
    return {
        "critical_words": r.critical_words,
        "critical_messages": r.critical_messages,
        "max_mem_peak": r.max_mem_peak,
        "total_words": r.machine.log.total_words,
        "supersteps": r.machine.log.n_supersteps,
        "verified": int(bool(r.verified)),
        "step_words": step_words,
        "step_msgs": step_msgs,
        "label": r.algorithm,
    }


def _ab_time(measured: dict, topology: Topology) -> float:
    """Critical-path time of the cached tallies on ``topology``.

    On ``Topology.uniform(alpha, beta)`` this is bit-identical to the
    historical flat expression
    ``Σ_steps max_r (α·msgs_r + β·words_r)`` (golden-pinned).
    """
    return topology.time_from_steps(measured["step_msgs"], measured["step_words"])


def _cached_measure(point: ScalingPoint, cache: EngineCache) -> dict:
    algo = get_parallel(point.algo)
    sch = get_scheme(point.scheme) if algo.uses_scheme else None
    key = cache_key(
        "scaling",
        sch,
        algo=point.algo,
        n=point.n,
        p=point.p,
        c=point.c,
        schedule=point.schedule,
        memory_limit=point.memory_limit,
        seed=point.seed,
    )
    measured = cache.get_object(key)
    if measured is not None:
        return measured
    data = cache.get_arrays(key)
    if data is not None:
        measured = {name: int(data[name]) for name in _MEASURED_INTS}
        measured["step_words"] = data["step_words"]
        measured["step_msgs"] = data["step_msgs"]
        measured["label"] = str(data["label"])
    else:
        cache.count_build()
        measured = _measure(point)
        cache.put_arrays(
            key,
            {
                **{name: np.int64(measured[name]) for name in _MEASURED_INTS},
                "step_words": measured["step_words"],
                "step_msgs": measured["step_msgs"],
                "label": np.asarray(measured["label"]),
            },
        )
    cache.put_object(key, measured)
    return measured


def evaluate_scaling_point(
    point: ScalingPoint,
    cache: EngineCache | None = None,
    alpha: float = 1.0,
    beta: float = 1.0,
    topology: Topology | None = None,
) -> dict:
    """One sweep row: measured counters + declared costs + both bounds.

    The memory-dependent bound is evaluated at the run's *measured* peak
    memory (the honest M the algorithm actually used); the memory-
    independent floor needs no M at all.  ``binding`` names the larger of
    the two at that M and ``p_limit`` where the crossover sits.
    """
    cache = cache if cache is not None else default_cache()
    topology = topology if topology is not None else Topology.uniform(alpha, beta)
    algo = get_parallel(point.algo)
    sch = get_scheme(point.scheme) if algo.uses_scheme else None
    measured = _cached_measure(point, cache)

    w0 = algo.omega0(sch)
    costs = algo.analytic_costs(
        point.n, point.p, c=point.c, scheme=sch, schedule=point.schedule
    )
    M = measured["max_mem_peak"]
    regime = scaling_regime(point.n, point.p, M, w0)
    lower = regime.bound
    row = {
        "algorithm": point.algo,
        "label": measured["label"],
        "class": algo.algorithm_class,
        "n": point.n,
        "p": point.p,
        "c": point.c,
        "scheme": sch.name if sch is not None else None,
        "schedule": point.schedule,
        "omega0": w0,
        "measured_words": measured["critical_words"],
        "measured_messages": measured["critical_messages"],
        "time": _ab_time(measured, topology),
        "mem_peak": M,
        "analytic_words": costs.words,
        "analytic_messages": costs.messages,
        "analytic_memory": costs.memory,
        "memory_dependent_bound": regime.memory_dependent,
        "memory_independent_bound": regime.memory_independent,
        "lower_bound": lower,
        "binding": regime.binding,
        "p_limit": regime.p_limit,
        "measured/analytic": (
            measured["critical_words"] / costs.words if costs.words > 0 else math.nan
        ),
        "measured/lower": (
            measured["critical_words"] / lower if lower > 0 else math.nan
        ),
        "verified": bool(measured["verified"]),
    }
    return row


def _pool_scaling_task(msg: "tuple[ScalingPoint, str | None, Topology]") -> tuple[dict, dict]:
    """Evaluate one scaling point on a pool worker: (row, stat increments).

    The per-task context message ships the point, the disk root, and the
    (picklable) topology; :func:`~repro.engine.pool.worker_cache` memoizes
    the per-process cache, so a sweep's points share warm state per worker.
    """
    point, root, topology = msg
    cache = pool_runtime.worker_cache(root)
    before = cache.stats.as_dict()
    row = evaluate_scaling_point(point, cache=cache, topology=topology)
    return row, cache.stats.delta_since(before)


def scaling_sweep(
    spec: ScalingSpec,
    cache: EngineCache | None = None,
    workers: int | None = None,
) -> ScalingReport:
    """Run the whole sweep through the cache (warm reruns simulate nothing).

    Points are cheap simulations (n is small), so the sweep defaults to
    serial; ``workers > 1`` fans the points over the shared persistent pool
    (clamped to the point count), with rows in deterministic point order
    and per-task cache-counter deltas merged into one stats block either
    way.  The cache layer is what makes repeats and overlapping sweeps
    free.
    """
    cache = cache if cache is not None else default_cache()
    start = time.perf_counter()
    topology = spec.machine_topology()
    points = spec.points()
    n_workers = max(1, min(workers if workers is not None else 1, len(points) or 1))
    if n_workers <= 1:
        before = cache.stats.as_dict()
        rows = [
            evaluate_scaling_point(pt, cache=cache, topology=topology) for pt in points
        ]
        stats = cache.stats.delta_since(before)
    else:
        root = str(cache.root) if cache.disk_enabled else None
        msgs = [(pt, root, topology) for pt in points]
        rows = []
        totals: dict[str, int] = {}
        for row, delta in pool_runtime.submit_batch(
            _pool_scaling_task, msgs, workers=n_workers
        ):
            rows.append(row)
            for name, inc in delta.items():
                totals[name] = totals.get(name, 0) + inc
        stats = totals
    return ScalingReport(
        spec=spec,
        rows=rows,
        stats=stats,
        wall_time=time.perf_counter() - start,
    )
