"""Process-wide persistent worker-pool runtime shared by every parallel call site.

Before this module, each parallel surface paid full spawn-pool startup per
call: :func:`repro.engine.grid.run_grid` built a fresh ``spawn`` pool per
sweep, the exact-expansion engine built one per graph, and the serving
layer's process executor booted cold caches per restart.  A spawned worker
costs a fresh interpreter plus the numpy/scipy imports — often more than
the sharded scan it parallelizes.  This module keeps **one warm pool per
process** and ships work to it as lightweight per-task context messages
instead of per-pool ``initializer=`` plumbing:

* grid points ship ``(scheme, k, M, policy, cache_root)`` tuples;
* exact scans ship a shared-memory handle whose :class:`_ScanCtx` tables a
  worker installs once per graph (:func:`worker_ctx`) and reuses across
  all of that graph's prefix spans;
* serve builds ship namespaced ``(kind, params, root)`` jobs.

Transport is a duplex pipe per worker carrying pickle **protocol 5**
frames with out-of-band buffers: large contiguous arrays (packed uint64
adjacency rows, grid artifacts) are sent as raw buffers after the pickle
payload, never copied through the pickle stream itself.  For data a worker
re-reads across many tasks (the exact scan's adjacency rows and its
cross-shard running minimum) the call sites use
``multiprocessing.shared_memory`` segments instead — see
:func:`create_shm` / :func:`attach_shm` / :class:`SharedMinimum`.

Submission is adaptively chunked: :func:`submit_batch` splits the task
list into roughly ``4 × workers`` contiguous chunks (override with
``chunksize=``), self-schedules chunks onto whichever worker frees up
first, and reassembles results **in task order** — deterministic output
for every worker count, which the exact engine's lexicographic
``(h, mask)`` merge and the grid's row order rely on.

Lifecycle and failure semantics:

* the pool starts lazily on first pooled batch and grows (never shrinks)
  up to ``REPRO_POOL_JOBS`` (default: ``max(8, cpu_count)``); a warm
  second sweep dispatches onto already-live workers with zero new
  processes;
* ``REPRO_POOL=0`` is the kill switch — every ``submit_*`` call runs its
  tasks inline (serially, in-process) instead;
* a broken pool (a worker segfaulted or was killed) is respawned **once**
  per process and the batch retried; a second breakage switches the
  runtime into permanent serial fallback, with the reason queryable via
  :func:`serial_fallback_reason`;
* an ``atexit`` hook stops the workers at interpreter shutdown.

Telemetry mirrors ``EngineCache.stats_snapshot()``: monotone counters
(``pool_starts``, ``workers_spawned``, ``tasks_dispatched``,
``warm_dispatches``, ``respawns``, ``serial_tasks``) exposed through
:func:`pool_stats_snapshot` / :class:`PoolStats` and surfaced into bench
JSON (the per-workload ``pool`` block) and ``/cache/info``.

Inside a worker the runtime is inert: ``submit_*`` runs inline (no nested
pools), so call sites never need to guard against recursive fan-out.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing
import multiprocessing.connection
import os
import pickle
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass, fields
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

if TYPE_CHECKING:
    from multiprocessing.connection import Connection
    from multiprocessing.context import SpawnContext

    from repro.engine.cache import EngineCache

__all__ = [
    "POOL_ENV",
    "POOL_JOBS_ENV",
    "PoolStats",
    "SharedMinimum",
    "attach_shm",
    "create_shm",
    "in_worker",
    "max_pool_workers",
    "pool_enabled",
    "pool_info",
    "pool_stats_snapshot",
    "prewarm",
    "reset_pool_stats",
    "serial_fallback_reason",
    "shutdown_pool",
    "submit_batch",
    "submit_one",
    "worker_cache",
    "worker_ctx",
]

#: Kill switch: ``REPRO_POOL=0`` forces every submission to run inline.
POOL_ENV = "REPRO_POOL"

#: Pool-size cap: the pool never grows beyond this many workers (default:
#: ``max(8, os.cpu_count())``), whatever width the call sites request.
POOL_JOBS_ENV = "REPRO_POOL_JOBS"

#: Target chunks per worker for auto chunking: small enough to load-balance
#: uneven tasks, large enough to amortize the per-chunk round trip.
_CHUNKS_PER_WORKER = 4

#: Per-worker context-store capacity (see :func:`worker_ctx`).
_CTX_STORE_MAX = 8


# ---------------------------------------------------------------------- #
# telemetry                                                               #
# ---------------------------------------------------------------------- #


@dataclass
class PoolStats:
    """Monotone pool counters (the ``EngineCache.stats_snapshot`` idiom)."""

    pool_starts: int = 0  # cold pool boots (0 → ≥1 live workers)
    workers_spawned: int = 0  # worker processes ever spawned
    tasks_dispatched: int = 0  # tasks shipped to pool workers
    warm_dispatches: int = 0  # pooled batches that spawned zero new workers
    respawns: int = 0  # broken-pool recoveries
    serial_tasks: int = 0  # tasks run inline (kill switch / fallback / width 1)

    def as_dict(self) -> dict[str, int]:
        return {f.name: int(getattr(self, f.name)) for f in fields(self)}

    def delta_since(self, before: dict[str, int]) -> dict[str, int]:
        """Counter increments since a previous :meth:`as_dict` snapshot."""
        return {k: v - before.get(k, 0) for k, v in self.as_dict().items()}


# ---------------------------------------------------------------------- #
# wire protocol: pickle protocol 5 with out-of-band buffers               #
# ---------------------------------------------------------------------- #


def _send_msg(conn: "Connection", obj: Any) -> None:
    """One frame: buffer count, protocol-5 payload, then each raw buffer.

    ``buffer_callback`` diverts every picklable out-of-band buffer (numpy
    arrays, bytearrays, ...) around the pickle stream, so large arrays go
    over the pipe as single contiguous writes with no pickle-side copy.
    """
    buffers: list[pickle.PickleBuffer] = []
    payload = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    conn.send_bytes(struct.pack("<I", len(buffers)))
    conn.send_bytes(payload)
    for buf in buffers:
        conn.send_bytes(buf.raw())


def _recv_msg(conn: "Connection") -> Any:
    (n_buffers,) = struct.unpack("<I", conn.recv_bytes())
    payload = conn.recv_bytes()
    buffers = [conn.recv_bytes() for _ in range(n_buffers)]
    return pickle.loads(payload, buffers=buffers)


# ---------------------------------------------------------------------- #
# worker side                                                             #
# ---------------------------------------------------------------------- #

_IN_WORKER = False
_CTX_STORE: "OrderedDict[str, Any]" = OrderedDict()


def in_worker() -> bool:
    """True inside a pool worker process (where ``submit_*`` runs inline)."""
    return _IN_WORKER


def worker_ctx(token: str, build: Callable[[], Any]) -> Any:
    """Per-process context store: install once under ``token``, reuse after.

    The replacement for per-pool ``initializer=`` plumbing: a task message
    carries a small content token (a cache root, a graph digest) and the
    worker materializes the heavy context (an :class:`EngineCache`, a
    ``_ScanCtx`` table set) on first sight, then reuses it for every later
    task with the same token — across batches and across call sites,
    because the pool itself is persistent.  Bounded LRU, so a long session
    touching many graphs cannot grow worker memory without bound.

    Also callable in the parent process (serial fallback runs tasks
    inline), where it memoizes exactly the same way.
    """
    try:
        value = _CTX_STORE[token]
    except KeyError:
        value = build()
        _CTX_STORE[token] = value
    _CTX_STORE.move_to_end(token)
    while len(_CTX_STORE) > _CTX_STORE_MAX:
        _CTX_STORE.popitem(last=False)
    return value


def worker_cache(root: str | None) -> "EngineCache":
    """The per-process :class:`EngineCache` for ``root`` (memoized).

    Workers share the parent's *disk* root (atomic writes make concurrent
    population safe) but keep private memory tiers and counters; tasks
    return counter deltas for the parent to merge.  ``None`` means a
    process-local memory-only cache — still warm across tasks and batches.
    """
    from repro.engine.cache import EngineCache

    cache = worker_ctx(
        f"engine-cache:{root if root is not None else '<memory>'}",
        lambda: EngineCache(root) if root is not None else EngineCache(disk=False),
    )
    assert isinstance(cache, EngineCache)
    return cache


def _worker_main(conn: "Connection") -> None:
    """Worker loop: recv ``("task", seq, fn, chunk)`` frames, send results.

    A task exception is shipped back as an ``("err", ...)`` frame (the
    pool re-raises it in the parent); only transport failure — the parent
    vanished — ends the loop besides an explicit ``("stop",)``.
    """
    global _IN_WORKER
    _IN_WORKER = True
    while True:
        try:
            msg = _recv_msg(conn)
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        _tag, seq, fn, chunk = msg
        try:
            reply: tuple[str, int, Any] = ("ok", seq, [fn(task) for task in chunk])
        except BaseException as exc:  # repro: ignore[RC601] shipped to the parent, which re-raises
            try:
                pickle.dumps(exc, protocol=5)
            except Exception:  # repro: ignore[RC601] unpicklable exception: degrade to repr
                exc = RuntimeError(f"pool task failed: {type(exc).__name__}: {exc}")
            reply = ("err", seq, exc)
        try:
            _send_msg(conn, reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


# ---------------------------------------------------------------------- #
# the pool                                                                #
# ---------------------------------------------------------------------- #


class _PoolBroken(RuntimeError):
    """Transport-level pool failure (a worker died mid-protocol)."""


class _Worker:
    def __init__(self, ctx: "SpawnContext", index: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"repro-pool-{index}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()  # the parent's copy; the child holds its own
        self.conn = parent_conn

    def alive(self) -> bool:
        return self.proc.is_alive()

    def stop(self, timeout: float = 0.5) -> None:
        try:
            _send_msg(self.conn, ("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout)
        self.conn.close()


class _WorkerPool:
    """The persistent pool: lazy spawn-up, idle checkout, chunk scheduling."""

    def __init__(self) -> None:
        self._ctx = multiprocessing.get_context("spawn")
        self._cond = threading.Condition()
        self._workers: list[_Worker] = []
        self._idle: list[_Worker] = []
        self._spawned = 0
        self._closed = False

    @property
    def size(self) -> int:
        with self._cond:
            return len(self._workers)

    def ensure(self, want: int) -> int:
        """Grow the pool toward ``want`` live workers; returns # spawned."""
        spawned = 0
        with self._cond:
            while not self._closed and len(self._workers) < want:
                w = _Worker(self._ctx, self._spawned)
                self._spawned += 1
                self._workers.append(w)
                self._idle.append(w)
                spawned += 1
            self._cond.notify_all()
        return spawned

    def _checkout(self, want: int) -> list[_Worker]:
        """Block until ≥ 1 idle worker, then take up to ``want`` of them."""
        with self._cond:
            while not self._idle:
                if self._closed:
                    raise _PoolBroken("pool closed while waiting for a worker")
                self._cond.wait()
            got = []
            while self._idle and len(got) < want:
                got.append(self._idle.pop())
            return got

    def _checkin(self, workers: list[_Worker]) -> None:
        with self._cond:
            for w in workers:
                if w.alive() and not self._closed:
                    self._idle.append(w)
                else:
                    if w in self._workers:
                        self._workers.remove(w)
            self._cond.notify_all()

    def run_batch(
        self, fn: Callable[[Any], Any], chunks: list[list[Any]], workers: int
    ) -> list[Any]:
        """Self-scheduling dispatch: chunks go to whichever worker frees up
        first; results reassemble by chunk index (deterministic order)."""
        got = self._checkout(min(workers, len(chunks)))
        try:
            results: list[list[Any] | None] = [None] * len(chunks)
            pending: dict[Any, tuple[_Worker, int]] = {}
            next_chunk = 0
            failure: BaseException | None = None

            def _dispatch(w: _Worker) -> None:
                nonlocal next_chunk
                seq = next_chunk
                next_chunk += 1
                try:
                    _send_msg(w.conn, ("task", seq, fn, chunks[seq]))
                except (BrokenPipeError, OSError) as exc:
                    raise _PoolBroken(f"worker {w.proc.name} died: {exc}") from exc
                pending[w.conn] = (w, seq)

            for w in got:
                if next_chunk < len(chunks):
                    _dispatch(w)
            while pending:
                for conn in multiprocessing.connection.wait(list(pending)):
                    w, seq = pending.pop(conn)
                    try:
                        tag, rseq, payload = _recv_msg(w.conn)
                    except (EOFError, OSError) as exc:
                        raise _PoolBroken(f"worker {w.proc.name} died: {exc}") from exc
                    if tag == "ok" and rseq == seq:
                        results[seq] = payload
                        if failure is None and next_chunk < len(chunks):
                            _dispatch(w)
                    elif tag == "err":
                        # Remember the first failure but keep draining the
                        # outstanding chunks, so every checked-out worker is
                        # quiescent before it goes back to the idle list.
                        if failure is None:
                            failure = payload
                    else:
                        raise _PoolBroken(f"worker {w.proc.name} broke protocol: {tag!r}")
            if failure is not None:
                raise failure
            out: list[Any] = []
            for chunk_result in results:
                assert chunk_result is not None  # all seqs completed above
                out.extend(chunk_result)
            return out
        finally:
            self._checkin(got)

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
            self._workers.clear()
            self._idle.clear()
            self._cond.notify_all()
        for w in workers:
            w.stop()


# ---------------------------------------------------------------------- #
# module-level runtime (the process-wide singleton)                       #
# ---------------------------------------------------------------------- #

_STATE_LOCK = threading.RLock()
_POOL: _WorkerPool | None = None
_FALLBACK_REASON: str | None = None
_STATS = PoolStats()


def pool_enabled() -> bool:
    """Whether submissions may use worker processes *right now*.

    Reads ``REPRO_POOL`` per call (so tests can flip it at runtime), and is
    False inside pool workers (no nested pools) and after the runtime has
    dropped into permanent serial fallback.
    """
    if _IN_WORKER:
        return False
    if os.environ.get(POOL_ENV, "1") == "0":
        return False
    return _FALLBACK_REASON is None


def max_pool_workers() -> int:
    """The pool-size cap: ``REPRO_POOL_JOBS``, else ``max(8, cpu_count)``.

    The default is a runaway backstop, not a parallelism heuristic: an
    explicit ``workers=4`` request should win even on a small machine
    (the sweeps ask for 2-4 and a warm pool amortizes the spawns), so the
    cap only clamps on boxes with more cores or via the env override.
    """
    raw = os.environ.get(POOL_JOBS_ENV)
    if raw is not None:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return max(8, os.cpu_count() or 1)


def serial_fallback_reason() -> str | None:
    """Why the runtime is permanently serial, or None while it is not."""
    return _FALLBACK_REASON


def pool_stats_snapshot() -> dict[str, int]:
    """Point-in-time copy of the pool counters (bench/`/cache/info` feed)."""
    with _STATE_LOCK:
        return _STATS.as_dict()


def reset_pool_stats() -> None:
    with _STATE_LOCK:
        for f in fields(PoolStats):
            setattr(_STATS, f.name, 0)


def pool_info() -> dict[str, Any]:
    """One inspectable snapshot: knobs, live size, fallback state, counters."""
    with _STATE_LOCK:
        return {
            "enabled": pool_enabled(),
            "in_worker": _IN_WORKER,
            "live_workers": _POOL.size if _POOL is not None else 0,
            "max_workers": max_pool_workers(),
            "serial_fallback": _FALLBACK_REASON,
            "stats": _STATS.as_dict(),
        }


def _ensure_pool() -> _WorkerPool:
    global _POOL
    with _STATE_LOCK:
        if _POOL is None:
            _POOL = _WorkerPool()
            _STATS.pool_starts += 1
        return _POOL


def _discard_pool(pool: _WorkerPool) -> None:
    """Tear one (broken) pool down; a later batch may start a fresh one."""
    global _POOL
    with _STATE_LOCK:
        if _POOL is pool:
            _POOL = None
    pool.close()


def shutdown_pool() -> None:
    """Stop all workers (tests, bench cold runs, and the ``atexit`` hook).

    Purely a lifecycle operation: counters and the fallback state survive,
    and the next pooled submission simply boots a fresh pool.
    """
    global _POOL
    with _STATE_LOCK:
        pool = _POOL
        _POOL = None
    if pool is not None:
        pool.close()


def prewarm(workers: int) -> int:
    """Spawn up to ``workers`` pool processes now (e.g. at service start),
    so the first real batch finds them warm.  Returns the live pool size."""
    if workers <= 0 or not pool_enabled():
        return 0
    pool = _ensure_pool()
    with _STATE_LOCK:
        _STATS.workers_spawned += pool.ensure(min(workers, max_pool_workers()))
    return pool.size


def _chunk_tasks(tasks: list[Any], workers: int, chunksize: int | None) -> list[list[Any]]:
    if chunksize is None:
        chunksize = max(1, math.ceil(len(tasks) / (workers * _CHUNKS_PER_WORKER)))
    return [tasks[i : i + chunksize] for i in range(0, len(tasks), chunksize)]


def _run_serial(fn: Callable[[Any], Any], tasks: list[Any]) -> list[Any]:
    with _STATE_LOCK:
        _STATS.serial_tasks += len(tasks)
    return [fn(task) for task in tasks]


def _run_pooled(fn: Callable[[Any], Any], tasks: list[Any], chunks: list[list[Any]], workers: int) -> list[Any]:
    """Pool dispatch with the recovery ladder: one respawn, then serial."""
    global _FALLBACK_REASON
    while True:
        pool = _ensure_pool()
        with _STATE_LOCK:
            spawned = pool.ensure(min(workers, max_pool_workers()))
            _STATS.workers_spawned += spawned
            _STATS.tasks_dispatched += len(tasks)
            if spawned == 0:
                _STATS.warm_dispatches += 1
        try:
            return pool.run_batch(fn, chunks, workers)
        except _PoolBroken as exc:
            _discard_pool(pool)
            with _STATE_LOCK:
                if _STATS.respawns == 0:
                    _STATS.respawns += 1
                    retry = True
                else:
                    _FALLBACK_REASON = (
                        f"pool broke again after its one respawn: {exc}"
                    )
                    retry = False
            if not retry:
                return _run_serial(fn, tasks)


def submit_batch(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    workers: int,
    chunksize: int | None = None,
) -> list[Any]:
    """Run ``fn`` over ``tasks`` on the shared pool; results in task order.

    ``fn`` must be a module-level picklable function (checker RC401's
    contract) taking one task message.  ``workers`` is clamped to the task
    count and the ``REPRO_POOL_JOBS`` cap; a width of 1, the kill switch,
    worker context, or permanent fallback all run the batch inline —
    bit-identical results either way, which callers rely on.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    workers = max(1, min(workers, len(tasks), max_pool_workers()))
    if workers <= 1 or not pool_enabled():
        return _run_serial(fn, tasks)
    return _run_pooled(fn, tasks, _chunk_tasks(tasks, workers, chunksize), workers)


def submit_one(fn: Callable[[Any], Any], task: Any) -> Any:
    """Ship a single task to one pool worker (the serving layer's shape).

    Concurrent callers (executor threads) each check out their own worker,
    so distinct jobs overlap across processes while every call keeps the
    plain call-and-return shape.  Inline when the pool is unavailable.
    """
    if not pool_enabled():
        with _STATE_LOCK:
            _STATS.serial_tasks += 1
        return fn(task)
    return _run_pooled(fn, [task], [[task]], 1)[0]


atexit.register(shutdown_pool)


# ---------------------------------------------------------------------- #
# shared-memory helpers (the exact scan's bulk-data path)                 #
# ---------------------------------------------------------------------- #


def create_shm(nbytes: int) -> shared_memory.SharedMemory:
    """A fresh shared-memory segment, owned (and later unlinked) by the caller."""
    return shared_memory.SharedMemory(create=True, size=nbytes)


def attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    Python < 3.13 auto-registers every attach with the resource tracker.
    Spawn children share the parent's tracker process, so an attach-then-
    ``unregister`` from a worker would *deregister the parent's ownership*
    (the tracker keeps a set, not a refcount) and make the parent's
    ``unlink`` fail inside the tracker.  Instead we suppress registration
    for the duration of the attach — safe because pool workers are
    single-threaded and the serial-fallback path attaches from one thread.
    3.13+ has ``track=False`` for exactly this.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedMinimum:
    """A cross-process running minimum: one aligned float64 in shared memory.

    Drop-in for the ``multiprocessing.Value("d")`` the ad-hoc exact pools
    inherited into their workers: exposes ``.value`` and ``get_lock()``
    (the ``_scan_span`` contract) plus :meth:`addr` for the native kernel's
    compare-and-swap.  The lock is process-local, so cross-process updates
    race benignly — that is safe here because every written value is a
    genuine candidate ratio (the minimum only *tightens* pruning, never
    decides the winner), aligned 8-byte stores do not tear, and the final
    ``(h, mask)`` reduction never reads it.
    """

    def __init__(self, buf: memoryview, offset: int = 0) -> None:
        self._arr: Any = np.frombuffer(buf, dtype=np.float64, count=1, offset=offset)
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return float(self._arr[0])

    @value.setter
    def value(self, v: float) -> None:
        self._arr[0] = v

    def get_lock(self) -> threading.Lock:
        return self._lock

    def addr(self) -> int:
        """The in-process address of the float64 (for the C kernel's CAS)."""
        return int(self._arr.ctypes.data)

    def close(self) -> None:
        """Drop the buffer export so the segment's mmap can close cleanly."""
        self._arr = None
