"""Deterministic test-matrix generators.

All generators take an explicit ``seed`` so that experiments are exactly
reproducible run-to-run.  Matrices are returned as C-contiguous float64
arrays unless stated otherwise (the guides' advice: keep data contiguous so
that numpy kernels and our simulated block transfers stay cache-friendly).
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_matrix", "structured_matrix", "hilbert_like", "integer_matrix"]


def random_matrix(n: int, m: int | None = None, seed: int = 0) -> np.ndarray:
    """Uniform [-1, 1) random ``n x m`` matrix (``m`` defaults to ``n``)."""
    if m is None:
        m = n
    rng = np.random.default_rng(seed)
    return rng.uniform(-1.0, 1.0, size=(n, m))


def structured_matrix(n: int, m: int | None = None, kind: str = "wave") -> np.ndarray:
    """Deterministic structured matrices useful for eyeballing block layouts.

    Kinds
    -----
    ``wave``     smooth sinusoidal field (well conditioned for its size).
    ``index``    ``A[i, j] = i * m + j`` — every entry unique, which makes
                 layout/redistribution bugs show up as wrong values rather
                 than as silently-matching zeros.
    ``identity`` the identity (requires ``n == m``).
    """
    if m is None:
        m = n
    if kind == "wave":
        i = np.arange(n)[:, None]
        j = np.arange(m)[None, :]
        return np.sin(0.37 * i + 0.11 * j) + 0.25 * np.cos(0.05 * i * j % 6.28)
    if kind == "index":
        return np.arange(n * m, dtype=np.float64).reshape(n, m)
    if kind == "identity":
        if n != m:
            raise ValueError("identity requires a square shape")
        return np.eye(n)
    raise ValueError(f"unknown matrix kind: {kind!r}")


def hilbert_like(n: int) -> np.ndarray:
    """The Hilbert matrix ``1/(i+j+1)`` — classically ill-conditioned.

    Used in tests that check numerical robustness of the fast algorithms
    (Strassen loses a few digits versus classical; the tests budget for it).
    """
    i = np.arange(n)[:, None]
    j = np.arange(n)[None, :]
    return 1.0 / (i + j + 1.0)


def integer_matrix(
    n: int, m: int | None = None, lo: int = -4, hi: int = 5, seed: int = 0
) -> np.ndarray:
    """Small-integer matrix (as float64).

    Products of small-integer matrices are exactly representable, so
    Strassen-like algorithms must match the classical product *bit for bit*;
    these matrices give the sharpest correctness tests.
    """
    if m is None:
        m = n
    rng = np.random.default_rng(seed)
    return rng.integers(lo, hi, size=(n, m)).astype(np.float64)
