"""Strict-JSON sanitization shared by every report emitter.

All the machine-readable outputs (`GridReport.to_json`,
`ScalingReport.to_json`, the CLI's expansion payload, `BENCH_*.json`) are
dumped with ``allow_nan=False`` so downstream parsers never see the
non-standard ``NaN``/``Infinity`` tokens.  :func:`jsonable` is the single
place the sanitization rule lives: non-finite floats map to ``None``,
numpy scalars/arrays decay to their Python equivalents, and anything else
unserializable raises instead of silently corrupting a report.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

__all__ = ["jsonable"]


def jsonable(value: Any) -> Any:
    """Recursively map ``value`` onto strict-JSON-serializable types."""
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        f = float(value)
        return f if math.isfinite(f) else None
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    if isinstance(value, (str, type(None))):
        return value
    if isinstance(value, range):
        return list(value)
    raise TypeError(f"value {value!r} is not strict-JSON serializable")
