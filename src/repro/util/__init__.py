"""Shared utilities: matrix generation, validation helpers, power-of-two math."""

from repro.util.matgen import (
    random_matrix,
    structured_matrix,
    hilbert_like,
    integer_matrix,
)
from repro.util.numutil import (
    is_power_of,
    ilog,
    next_power_of,
    relative_error,
    fit_power_law,
)

__all__ = [
    "random_matrix",
    "structured_matrix",
    "hilbert_like",
    "integer_matrix",
    "is_power_of",
    "ilog",
    "next_power_of",
    "relative_error",
    "fit_power_law",
]
