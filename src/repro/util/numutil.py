"""Small numeric helpers used across the library.

These are deliberately tiny, dependency-free functions: integer powers and
logs (the recursion machinery needs exact integer arithmetic, not floats),
and the power-law fitter used by every experiment that checks an asymptotic
exponent from the paper.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["is_power_of", "ilog", "next_power_of", "relative_error", "fit_power_law"]


def is_power_of(n: int, base: int) -> bool:
    """True iff ``n == base**k`` for some integer ``k >= 0``."""
    if n < 1 or base < 2:
        return False
    while n % base == 0:
        n //= base
    return n == 1


def ilog(n: int, base: int) -> int:
    """Exact integer logarithm: the ``k`` with ``base**k == n``.

    Raises ``ValueError`` if ``n`` is not an exact power — callers rely on
    this to reject invalid recursion depths early instead of silently
    rounding (float ``log`` of 7**20 is already off by ULPs).
    """
    if n < 1:
        raise ValueError(f"ilog undefined for n={n}")
    k = 0
    m = n
    while m % base == 0:
        m //= base
        k += 1
    if m != 1:
        raise ValueError(f"{n} is not a power of {base}")
    return k


def next_power_of(n: int, base: int) -> int:
    """Smallest ``base**k >= n``."""
    if n < 1:
        return 1
    p = 1
    while p < n:
        p *= base
    return p


def relative_error(measured: float, reference: float) -> float:
    """``|measured - reference| / |reference|`` with a 0/0 guard."""
    if reference == 0:
        return 0.0 if measured == 0 else math.inf
    return abs(measured - reference) / abs(reference)


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit of ``y = C * x**e`` in log-log space.

    Returns ``(e, C)``.  This is the workhorse of the shape checks: the
    paper's bounds are `Θ(n^e)` statements, so every experiment fits the
    measured series and compares the exponent against the theorem's.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.ndim != 1 or xs.shape != ys.shape:
        raise ValueError("xs and ys must be 1-D of equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a power law")
    if np.any(xs <= 0) or np.any(ys <= 0):
        raise ValueError("power-law fit requires positive data")
    lx, ly = np.log(xs), np.log(ys)
    e, logc = np.polyfit(lx, ly, 1)
    return float(e), float(np.exp(logc))
