"""Certified expansion intervals — what the estimator actually *proves*.

:class:`~repro.core.expansion.ExpansionEstimate` reports whatever the chosen
policy computed — which may include a ``NaN`` lower bound (cone-only rows)
and leaves the caller to infer from the free-form ``method`` string how much
trust each side deserves.  This module tightens that into a certificate: an
:class:`ExpansionInterval` is a pair ``lower <= upper`` where *both* sides
are mathematically certified for the loop-regularized graph —

* ``lower`` — exact enumeration (within the enumeration limit), the Cheeger
  bound ``λ₂/2 <= h(G)`` from the sparse eigensolve, or the trivial ``0``
  when no eigensolve ran (expansion is nonnegative, so ``0`` is certified,
  unlike the estimate's ``NaN`` which certifies nothing);
* ``upper`` — a concrete cut: the exact minimizer, the best Fiedler sweep
  prefix, or a decode-cone witness (every cut's ratio upper-bounds the
  minimum by definition).

``provenance`` names the proof path, one of :data:`PROVENANCES`:

========================  ====================================================
``"exact"``               both sides from exact enumeration (``lower == upper``)
``"cheeger+sweep"``       Cheeger lower, Fiedler sweep-cut upper
``"cheeger+cone"``        Cheeger lower, decode-cone witness upper
``"cone"``                trivial ``0`` lower, decode-cone witness upper
========================  ====================================================

The engine's ``auto`` policy carries these intervals end-to-end: grid rows,
the ``/expansion`` serve endpoint, and the CLI all report
``(lower, upper, provenance)`` so a consumer can tell a ``Θ((4/7)^k)``
sandwich proved by enumeration from one inferred through a witness cut.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.cdag.graph import CDAG
from repro.cdag.schemes import BilinearScheme
from repro.core.expansion import ExpansionEstimate, estimate_expansion

__all__ = [
    "PROVENANCES",
    "ExpansionInterval",
    "provenance_for_method",
    "interval_from_estimate",
    "certified_interval",
]

#: The recognized proof paths, strongest first.
PROVENANCES = ("exact", "cheeger+sweep", "cheeger+cone", "cone")

#: Estimator ``method`` strings mapped to the proof path they certify.
_METHOD_PROVENANCE = {
    "exact": "exact",
    "spectral+sweep": "cheeger+sweep",
    "spectral+cone": "cheeger+cone",
    "cone-only": "cone",
}


@dataclass(frozen=True)
class ExpansionInterval:
    """A certified two-sided bound ``lower <= h(G) <= upper``.

    Both endpoints are finite and nonnegative, and the invariant
    ``lower <= upper`` is checked at construction — an interval that cannot
    hold is a bug in the estimator, not a value to propagate.
    """

    lower: float
    upper: float
    provenance: str

    def __post_init__(self) -> None:
        if self.provenance not in PROVENANCES:
            raise ValueError(
                f"unknown provenance {self.provenance!r}; choose from {PROVENANCES}"
            )
        if not (math.isfinite(self.lower) and math.isfinite(self.upper)):
            raise ValueError(
                f"interval endpoints must be finite, got [{self.lower}, {self.upper}]"
            )
        if self.lower < 0.0:
            raise ValueError(f"expansion is nonnegative; lower bound {self.lower} < 0")
        if self.lower > self.upper:
            raise ValueError(
                f"certified interval is empty: lower {self.lower} > upper {self.upper}"
            )

    @property
    def width(self) -> float:
        """The uncertainty ``upper - lower`` (0 exactly when proven tight)."""
        return self.upper - self.lower

    @property
    def is_exact(self) -> bool:
        """True when the interval pins ``h(G)`` to a single point."""
        return self.lower == self.upper

    def as_dict(self) -> dict[str, Any]:
        """The JSON-ready form carried by grid rows, serve payloads, and CLI."""
        return {
            "lower": self.lower,
            "upper": self.upper,
            "provenance": self.provenance,
        }


def provenance_for_method(method: str) -> str:
    """The proof path certified by an estimator ``method`` string."""
    try:
        return _METHOD_PROVENANCE[method]
    except KeyError:
        raise ValueError(
            f"unknown estimate method {method!r}; "
            f"expected one of {sorted(_METHOD_PROVENANCE)}"
        ) from None


def interval_from_estimate(est: ExpansionEstimate) -> ExpansionInterval:
    """The certified interval an :class:`ExpansionEstimate` establishes.

    Exact and spectral estimates carry their own certified lower bound;
    cone-only estimates report ``NaN`` (no eigensolve ran), which certifies
    the trivial ``0 <= h(G)`` — the interval makes that explicit instead of
    propagating a hole.
    """
    lower = est.lower
    if math.isnan(lower):
        lower = 0.0
    return ExpansionInterval(
        lower=lower,
        upper=est.upper,
        provenance=provenance_for_method(est.method),
    )


def certified_interval(
    g: CDAG,
    scheme: BilinearScheme | str | None = None,
    k: int | None = None,
    jobs: int = 1,
) -> ExpansionInterval:
    """Certified ``h(G)`` interval for an arbitrary CDAG.

    Thin composition of :func:`~repro.core.expansion.estimate_expansion`
    (exact below the enumeration ceiling, Cheeger + best witness cut above)
    and :func:`interval_from_estimate`.  ``scheme``/``k`` unlock the
    decode-cone witnesses when ``g`` is a ``Dec_k C``.
    """
    return interval_from_estimate(estimate_expansion(g, scheme, k, jobs=jobs))
