"""The paper's contribution: bounds, expansion analysis, partition argument."""

from repro.core.bounds import (
    LG7,
    Table1Cell,
    latency_bound,
    memory_regimes,
    parallel_io_bound,
    sequential_io_bound,
    sequential_io_upper,
    table1_cell,
    table1_rows,
)
from repro.core.exact import (
    EXACT_LIMIT,
    exact_edge_expansion_v2,
    exact_small_set_expansion_v2,
)
from repro.core.expansion import (
    ExpansionEstimate,
    claim_2_1_small_set_bound,
    decode_cone_mask,
    decode_cone_upper_bound,
    estimate_expansion,
    exact_edge_expansion,
    exact_small_set_expansion,
    expansion_of_cut,
    fiedler_sweep_cut,
    spectral_lower_bound,
)
from repro.core.partition import (
    SegmentStats,
    best_partition_bound,
    expansion_io_bound,
    partition_bound,
    segment_stats,
)
from repro.core.dominator import hong_kung_2m_partition_bound, minimum_dominator_size

__all__ = [
    "EXACT_LIMIT",
    "exact_edge_expansion_v2",
    "exact_small_set_expansion_v2",
    "LG7",
    "Table1Cell",
    "latency_bound",
    "memory_regimes",
    "parallel_io_bound",
    "sequential_io_bound",
    "sequential_io_upper",
    "table1_cell",
    "table1_rows",
    "ExpansionEstimate",
    "claim_2_1_small_set_bound",
    "decode_cone_mask",
    "decode_cone_upper_bound",
    "estimate_expansion",
    "exact_edge_expansion",
    "exact_small_set_expansion",
    "expansion_of_cut",
    "fiedler_sweep_cut",
    "spectral_lower_bound",
    "SegmentStats",
    "best_partition_bound",
    "expansion_io_bound",
    "partition_bound",
    "segment_stats",
    "hong_kung_2m_partition_bound",
    "minimum_dominator_size",
]
