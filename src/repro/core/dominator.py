"""Dominator-set machinery (Hong–Kung's approach, contrasted in §1.5).

A *dominator* of a vertex set S is a set D such that every path from an
input vertex to S passes through D.  Hong & Kung bound I/O by showing any
2M-dominated subcomputation is small; the paper contrasts this with the
expansion approach (dominators allow recomputation but need large
input/output; expansion needs neither but forbids recomputation).

We compute minimum dominators exactly via vertex-capacitated max-flow
(standard node-splitting reduction), which lets the tests *compare the two
techniques on the same graphs*: for classical matmul CDAGs both give the
Θ(n³/√M) shape; for the Strassen decode graph dominators degenerate (Dec
has no inputs — the very reason the paper needed a new technique).
"""

from __future__ import annotations

import numpy as np

from repro.cdag.graph import CDAG

__all__ = ["minimum_dominator_size", "hong_kung_2m_partition_bound"]


def minimum_dominator_size(g: CDAG, targets: np.ndarray, sources: np.ndarray | None = None) -> int:
    """Size of a minimum dominator of ``targets`` w.r.t. ``sources``.

    Defaults to the graph's input vertices as sources.  Computed as the
    minimum vertex cut separating sources from targets (sources and targets
    themselves may be cut vertices, matching the dominator definition), via
    max-flow on the node-split digraph.  Uses networkx; intended for the
    small graphs in tests and demos.
    """
    import networkx as nx

    targets = np.asarray(targets, dtype=np.int64)
    if sources is None:
        sources = g.inputs
    sources = np.asarray(sources, dtype=np.int64)
    if len(sources) == 0:
        # No inputs: every path from inputs to S is empty, so the empty set
        # dominates — the degenerate case the paper notes for Dec graphs.
        return 0
    if len(targets) == 0:
        return 0

    G = nx.DiGraph()
    INF = float("inf")
    n = g.n_vertices
    # node split: v_in = v, v_out = v + n, capacity 1 on (v_in, v_out)
    for v in range(n):
        G.add_edge(v, v + n, capacity=1)
    for s, d in zip(g.src.tolist(), g.dst.tolist()):
        G.add_edge(s + n, d, capacity=INF)
    SRC, SNK = 2 * n, 2 * n + 1
    for s in sources.tolist():
        G.add_edge(SRC, int(s), capacity=INF)
    for t in targets.tolist():
        G.add_edge(int(t) + n, SNK, capacity=INF)
    value, _ = nx.maximum_flow(G, SRC, SNK)
    return int(value)


def hong_kung_2m_partition_bound(
    g: CDAG,
    order: np.ndarray,
    M: int,
    h_of_2m: int,
) -> float:
    """Hong–Kung S-partition style bound: ``IO ≥ M · (⌈T/H(2M)⌉ − 1)``.

    ``h_of_2m`` is the caller-supplied bound H(2M) on the number of
    vertices computable with a dominator and a minimum set of size ≤ 2M
    (for classical matmul, H(σ) = O(σ^{3/2}) [Hong & Kung 1981]).  ``T`` is
    the number of non-input vertices.  This helper exists for cross-checks
    against the partition argument, not as new theory.
    """
    T = g.n_vertices - len(g.inputs)
    if h_of_2m < 1:
        raise ValueError("H(2M) must be positive")
    import math

    return M * max(math.ceil(T / h_of_2m) - 1, 0)
