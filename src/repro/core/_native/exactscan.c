/* exactscan.c — native exact-expansion subset scan (single translation unit).
 *
 * The kernel mirrors the vectorized numpy scan in repro/core/exact.py
 * (`_scan_span`): the subset space of an n-vertex graph (n <= 64, so every
 * adjacency row is one packed uint64 word) splits into prefix-fixed spans —
 * the high n-b vertex bits are fixed per prefix, the low b bits are
 * enumerated by a binary-reflected doubling recurrence that flips exactly
 * one vertex into every previously enumerated subset (the batched Gray-code
 * walk, O(1) amortized words per subset).  Per doubling level the freshly
 * written cross-sum entries are compared against precomputed integer
 * branch-and-bound thresholds (`boundary <= floor(h_cap * d * |U|) + 1`;
 * the +1 keeps exact ties so the smallest minimizing mask survives), with a
 * block-min reduction so the common no-candidate case stays branch-free and
 * auto-vectorizable; only blocks that contain a candidate are rescanned
 * scalar.  Candidate ratios are IEEE double divisions identical to the
 * numpy backend's, and the lexicographic (h, mask) reduction matches it
 * bit-for-bit.
 *
 * Parallel runs call repro_exact_scan once per span from separate worker
 * processes; `shared_min` points at one double in shared memory (a
 * multiprocessing.Value) used purely to tighten pruning — nonnegative IEEE
 * doubles order like their uint64 bit patterns, so the cross-process
 * running minimum is a relaxed compare-and-swap on the punned bits.  The
 * shared minimum never decides which candidate wins; the final reduction in
 * Python is by (h, mask), so results are identical for every jobs value.
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define API __attribute__((visibility("default")))

/* Bumped whenever the exported signatures change; the Python loader
 * refuses a stale cached .so whose ABI does not match. */
#define REPRO_NATIVE_ABI 1

/* Thresholds are clipped here instead of INT32_MAX so the hot-loop int32
 * subtraction `low_cut - 2*S - thr` can never overflow: boundaries are
 * bounded by n*d <= 64*63, far below 2^28.  A clipped threshold >= every
 * possible boundary behaves as "accept all", exactly like numpy's clip —
 * thresholds only gate *filtering*, never the final (h, mask). */
#define THR_CLIP ((int32_t)1 << 28)

static inline double load_shared_min(const volatile uint64_t *addr) {
    uint64_t bits = __atomic_load_n(addr, __ATOMIC_RELAXED);
    double value;
    memcpy(&value, &bits, sizeof value);
    return value;
}

static void store_shared_min(volatile uint64_t *addr, double val) {
    uint64_t newbits;
    memcpy(&newbits, &val, sizeof newbits);
    uint64_t old = __atomic_load_n(addr, __ATOMIC_RELAXED);
    for (;;) {
        double oldd;
        memcpy(&oldd, &old, sizeof oldd);
        if (!(val < oldd))
            return; /* somebody else already holds a tighter minimum */
        if (__atomic_compare_exchange_n(addr, &old, newbits, 0,
                                        __ATOMIC_RELAXED, __ATOMIC_RELAXED))
            return;
    }
}

API int32_t repro_native_abi(void) { return REPRO_NATIVE_ABI; }

/* Scan prefixes [p_lo, p_hi) of the subset space; lexicographic-best
 * (h, mask) including the incoming (best_r_in, best_m_in) seed.
 *
 *   n, b       graph size and low-block width (b = min(n, 16))
 *   limit      largest subset size considered (|U| <= limit)
 *   d          regularized degree (max degree; ratios divide by d*|U|)
 *   adj        n packed uint64 adjacency rows (undirected, no loops)
 *   deg        n vertex degrees
 *   low_cut    2^b table: vol(L) - 2*e(L) per low subset L
 *   low_sizes  2^b table: |L| per low subset
 *   shared_min optional cross-process running minimum (double bits), or NULL
 *
 * Returns 0 on success, -1 on allocation failure.
 */
API int32_t repro_exact_scan(
    int32_t n, int32_t b, int32_t limit, int64_t d,
    const uint64_t *adj, const int64_t *deg,
    const int32_t *restrict low_cut, const uint8_t *restrict low_sizes,
    uint64_t p_lo, uint64_t p_hi,
    double best_r_in, uint64_t best_m_in,
    volatile uint64_t *shared_min,
    double *out_r, uint64_t *out_m)
{
    const uint64_t nlow = (uint64_t)1 << b;
    const int32_t max_size_p = (n > b) ? (n - b) : 0;
    const int32_t n_tables = ((max_size_p < limit) ? max_size_p : limit) + 1;

    int32_t *restrict S = malloc(nlow * sizeof *S);
    int32_t *thr_tables = malloc((size_t)n_tables * nlow * sizeof *thr_tables);
    double *thr_cap = malloc((size_t)n_tables * sizeof *thr_cap);
    if (S == NULL || thr_tables == NULL || thr_cap == NULL) {
        free(S);
        free(thr_tables);
        free(thr_cap);
        return -1;
    }
    for (int32_t i = 0; i < n_tables; i++)
        thr_cap[i] = -1.0; /* impossible cap: every table starts stale */

    double best_r = best_r_in;
    uint64_t best_m = best_m_in;
    double cap_for_totals = -1.0;
    int32_t thr_total[65]; /* threshold by total subset size, n <= 64 */
    int32_t wv[64];        /* |N(v) ∩ P| per low vertex, for the prefix P */

    for (uint64_t p = p_lo; p < p_hi; p++) {
        const int32_t size_p = (int32_t)__builtin_popcountll(p);
        if (size_p > limit)
            continue;

        double h_cap = best_r;
        if (shared_min != NULL) {
            const double shared = load_shared_min(shared_min);
            if (shared < h_cap)
                h_cap = shared;
        }
        if (h_cap != cap_for_totals) {
            cap_for_totals = h_cap;
            thr_total[0] = -1; /* the empty set is never a cut */
            for (int32_t s = 1; s <= n; s++) {
                if (s > limit) {
                    thr_total[s] = -1;
                    continue;
                }
                double t = floor(h_cap * (double)d * (double)s) + 1.0;
                if (!(t < (double)THR_CLIP))
                    t = (double)THR_CLIP;
                thr_total[s] = (int32_t)t;
            }
        }
        if (thr_cap[size_p] != h_cap) {
            int32_t *restrict T = thr_tables + (size_t)size_p * nlow;
            for (uint64_t i = 0; i < nlow; i++)
                T[i] = thr_total[size_p + (int32_t)low_sizes[i]];
            thr_cap[size_p] = h_cap;
        }
        const int32_t *restrict T = thr_tables + (size_t)size_p * nlow;

        /* Boundary of the prefix alone and the per-low-vertex cross
         * counts |N(v) ∩ P| — O(n) word-popcounts per prefix. */
        int64_t base_p = 0;
        uint64_t pp = p;
        while (pp) {
            const int32_t j = __builtin_ctzll(pp);
            pp &= pp - 1;
            base_p += deg[b + j];
            base_p -= 2 * (int64_t)__builtin_popcountll(
                (adj[b + j] >> b) & (p & (((uint64_t)1 << j) - 1)));
        }
        int has_cross = 0;
        for (int32_t v = 0; v < b; v++) {
            wv[v] = (int32_t)__builtin_popcountll((adj[v] >> b) & p);
            has_cross |= wv[v];
        }
        (void)has_cross;

        /* Candidate U = P alone (low block empty). */
        if (size_p >= 1 && base_p <= (int64_t)T[0]) {
            const double r = (double)base_p / (double)(d * (int64_t)size_p);
            const uint64_t m = p << b;
            if (r < best_r) {
                best_r = r;
                best_m = m;
                if (shared_min != NULL)
                    store_shared_min(shared_min, r);
            } else if (r == best_r && m < best_m) {
                best_m = m;
            }
        }

        /* Doubling sweep over the low block with fused threshold checks:
         * level v writes S for every subset whose top low bit is v, and the
         * block-min of (low_cut - 2*S - thr) says whether any candidate
         * exists in the level without branching per element. */
        S[0] = 0;
        const int32_t base32 = (int32_t)base_p;
        for (int32_t v = 0; v < b; v++) {
            const uint64_t half = (uint64_t)1 << v;
            const int32_t w = wv[v];
            const int32_t *restrict lc = low_cut + half;
            const int32_t *restrict Th = T + half;
            const int32_t *restrict Sl = S;
            int32_t *restrict Sh = S + half;
            int32_t level_min = INT32_MAX;
            for (uint64_t i = 0; i < half; i++) {
                const int32_t s2 = Sl[i] + w;
                Sh[i] = s2;
                const int32_t t = lc[i] - 2 * s2 - Th[i];
                level_min = (t < level_min) ? t : level_min;
            }
            if (level_min + base32 > 0)
                continue;
            /* Rare: at least one candidate in this level — rescan it. */
            for (uint64_t i = 0; i < half; i++) {
                const int64_t bnd = (int64_t)lc[i] - 2 * (int64_t)Sh[i] + base_p;
                if (bnd > (int64_t)Th[i])
                    continue;
                const uint64_t idx = half + i;
                const int64_t tot = size_p + (int64_t)low_sizes[idx];
                const double r = (double)bnd / (double)(d * tot);
                const uint64_t m = (p << b) | idx;
                if (r < best_r) {
                    best_r = r;
                    best_m = m;
                    if (shared_min != NULL)
                        store_shared_min(shared_min, r);
                } else if (r == best_r && m < best_m) {
                    best_m = m;
                }
            }
        }
    }

    free(S);
    free(thr_tables);
    free(thr_cap);
    *out_r = best_r;
    *out_m = best_m;
    return 0;
}
