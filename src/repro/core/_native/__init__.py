"""Build-at-first-use loader for the native exact-expansion kernel.

The kernel is one C file (:file:`exactscan.c`, shipped as package data)
compiled into a shared library with the system C compiler the first time it
is needed — there is no build step at install time and **no hard
dependency**: if the compiler is missing, the compile fails, or the cached
library reports a mismatched ABI, :func:`load` returns ``None`` and the
callers in :mod:`repro.core.exact` silently fall back to the numpy bitset
backend (bit-identical results, just slower).

Knobs (environment):

* ``REPRO_NATIVE=0`` — disable the native backend entirely (force the
  fallback path; the CI fallback leg and debugging sessions use this).
* ``REPRO_NATIVE_CC`` / ``CC`` — the compiler driver (default ``cc``).
* ``REPRO_NATIVE_DIR`` — where compiled libraries are cached (defaults to
  ``$REPRO_CACHE_DIR/native`` or ``~/.cache/repro-engine/native``).

Compiled libraries are content-addressed by a SHA-256 over the C source,
the compiler command line, and the ABI version, and written atomically
(tmp + ``os.replace``) so concurrent processes — the spawn-pool workers of
a ``jobs > 1`` search all import this module — race benignly: everyone
compiles the same bytes to the same path.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from pathlib import Path

__all__ = [
    "NATIVE_ABI",
    "native_available",
    "native_build_error",
    "load",
    "reset",
]

#: Must match REPRO_NATIVE_ABI in exactscan.c; a cached .so from an older
#: source revision whose exported ABI differs is recompiled, not trusted.
NATIVE_ABI = 1

_SOURCE = Path(__file__).with_name("exactscan.c")

_lock = threading.Lock()
_lib: ctypes.CDLL | None = None
_attempted = False
_build_error: str | None = None


def _enabled() -> bool:
    return os.environ.get("REPRO_NATIVE", "1") != "0"


def _compiler() -> str:
    return os.environ.get("REPRO_NATIVE_CC") or os.environ.get("CC") or "cc"


def _build_dir() -> Path:
    env = os.environ.get("REPRO_NATIVE_DIR")
    if env:
        return Path(env)
    cache = os.environ.get("REPRO_CACHE_DIR")
    root = Path(cache) if cache else Path.home() / ".cache" / "repro-engine"
    return root / "native"


def _compile_flags() -> list[str]:
    # -O3 plus portable vectorization-friendly flags; no -march=native so a
    # library compiled on one container stays loadable after migration.
    return ["-O3", "-fPIC", "-shared", "-fvisibility=hidden"]


def _library_path(source: bytes, cc: str, flags: list[str]) -> Path:
    h = hashlib.sha256()
    h.update(f"abi={NATIVE_ABI}|cc={cc}|flags={' '.join(flags)}|".encode())
    h.update(source)
    return _build_dir() / f"exactscan-{h.hexdigest()[:16]}.so"


def _compile(source_path: Path, out_path: Path, cc: str, flags: list[str]) -> str | None:
    """Compile the kernel to ``out_path`` atomically; error text on failure."""
    try:
        out_path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=out_path.parent, suffix=".so.tmp")
        os.close(fd)
        try:
            proc = subprocess.run(
                [cc, *flags, "-o", tmp, str(source_path)],
                capture_output=True,
                text=True,
                timeout=120,
                check=False,
            )
            if proc.returncode != 0:
                detail = (proc.stderr or proc.stdout or "").strip()
                return f"{cc} exited {proc.returncode}: {detail[:500]}"
            os.replace(tmp, out_path)
            return None
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    except (OSError, subprocess.SubprocessError) as exc:
        return f"{type(exc).__name__}: {exc}"


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    """Declare the exported signatures (and check the compiled ABI)."""
    lib.repro_native_abi.argtypes = []
    lib.repro_native_abi.restype = ctypes.c_int32
    if int(lib.repro_native_abi()) != NATIVE_ABI:
        raise OSError(f"compiled kernel reports ABI {lib.repro_native_abi()}, need {NATIVE_ABI}")
    lib.repro_exact_scan.argtypes = [
        ctypes.c_int32,  # n
        ctypes.c_int32,  # b
        ctypes.c_int32,  # limit
        ctypes.c_int64,  # d
        ctypes.POINTER(ctypes.c_uint64),  # adj
        ctypes.POINTER(ctypes.c_int64),  # deg
        ctypes.POINTER(ctypes.c_int32),  # low_cut
        ctypes.POINTER(ctypes.c_uint8),  # low_sizes
        ctypes.c_uint64,  # p_lo
        ctypes.c_uint64,  # p_hi
        ctypes.c_double,  # best_r_in
        ctypes.c_uint64,  # best_m_in
        ctypes.c_void_p,  # shared_min (nullable)
        ctypes.POINTER(ctypes.c_double),  # out_r
        ctypes.POINTER(ctypes.c_uint64),  # out_m
    ]
    lib.repro_exact_scan.restype = ctypes.c_int32
    return lib


def load() -> ctypes.CDLL | None:
    """The compiled kernel library, or ``None`` when unavailable.

    The first call compiles (or picks up the content-addressed cached
    build); later calls are a cached-attribute read.  Every failure mode —
    disabled via ``REPRO_NATIVE=0``, missing source, missing compiler,
    compile error, unloadable or ABI-mismatched library — degrades to
    ``None`` and records the reason in :func:`native_build_error`.
    """
    global _lib, _attempted, _build_error
    if not _enabled():
        return None
    if _attempted:
        return _lib
    with _lock:
        if _attempted:
            return _lib
        _lib, _build_error = _try_load()
        _attempted = True
    return _lib


def _try_load() -> tuple[ctypes.CDLL | None, str | None]:
    if not _SOURCE.is_file():
        return None, f"kernel source missing: {_SOURCE}"
    source = _SOURCE.read_bytes()
    cc = _compiler()
    flags = _compile_flags()
    lib_path = _library_path(source, cc, flags)
    if not lib_path.is_file():
        error = _compile(_SOURCE, lib_path, cc, flags)
        if error is not None:
            return None, error
    try:
        return _bind(ctypes.CDLL(str(lib_path))), None
    except OSError as first_error:
        # A stale or truncated cached build: recompile once, then give up.
        try:
            lib_path.unlink(missing_ok=True)
        except OSError:
            pass
        error = _compile(_SOURCE, lib_path, cc, flags)
        if error is not None:
            return None, f"{first_error}; recompile failed: {error}"
        try:
            return _bind(ctypes.CDLL(str(lib_path))), None
        except OSError as exc:
            return None, str(exc)


def native_available() -> bool:
    """True when the compiled kernel is importable right now."""
    return load() is not None


def native_build_error() -> str | None:
    """Why the last load attempt failed (``None`` when loaded or untried)."""
    return _build_error


def reset() -> None:
    """Forget the cached load attempt (tests flip ``REPRO_NATIVE`` at runtime)."""
    global _lib, _attempted, _build_error
    with _lock:
        _lib = None
        _attempted = False
        _build_error = None
