"""Executable versions of the paper's lemma-level counting claims.

These functions re-derive, on concrete graphs, the inequalities the proofs
of §4.1.2 rest on.  They return measured values and raise on violation —
the test suite runs them across schemes and depths, which is as close as a
reproduction can get to "testing the proof".
"""

from __future__ import annotations

import numpy as np

from repro.cdag.graph import CDAG
from repro.cdag.schemes import BilinearScheme, get_scheme
from repro.cdag.strassen_cdag import (
    dec_graph,
    dec_level_sizes,
    recursion_tree_partition,
)

__all__ = [
    "check_fact_4_5",
    "check_claim_4_7",
    "check_claim_4_10",
    "check_fact_4_9",
    "check_corollary_4_4_constant",
    "lemma_4_3_lower_form",
]


def _level_fractions(g: CDAG, mask: np.ndarray) -> np.ndarray:
    """σ_i = |S ∩ l_i| / |l_i| per level, for S given as a boolean mask."""
    n_levels = int(g.levels.max()) + 1
    sizes = np.bincount(g.levels, minlength=n_levels).astype(np.float64)
    in_s = np.bincount(g.levels[mask], minlength=n_levels).astype(np.float64)
    return in_s / sizes


def check_fact_4_5(g: CDAG, mask: np.ndarray) -> None:
    """Fact 4.5: some level has σ_i ≤ σ and some has σ_{i'} ≥ σ (averaging)."""
    mask = np.asarray(mask, dtype=bool)
    sigma = mask.sum() / g.n_vertices
    fr = _level_fractions(g, mask)
    assert fr.min() <= sigma + 1e-12, "Fact 4.5 violated (min side)"
    assert fr.max() >= sigma - 1e-12, "Fact 4.5 violated (max side)"


def check_claim_4_7(scheme: BilinearScheme | str, k: int, mask: np.ndarray) -> dict:
    """Claim 4.7: between consecutive levels, the boundary is at least
    ``c' · d · |δ_i| · |l_i|`` with δ_i the level-fraction difference.

    We verify the *combinatorial core*: each connected Dec₁C component that
    is split by S contributes ≥ 1 boundary edge, and the number of split
    components between levels i, i+1 is ≥ |σ_i − σ_{i+1}| · |l_i| / c₀
    (the paper's |l_i|/4).  Returns measured per-level-pair counts.
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    c0 = scheme.c_blocks
    g = dec_graph(scheme, k)
    mask = np.asarray(mask, dtype=bool)
    fr = _level_fractions(g, mask)
    lev_lo = np.minimum(g.levels[g.src], g.levels[g.dst])
    crossing = mask[g.src] != mask[g.dst]
    sizes = dec_level_sizes(scheme, k)
    results = []
    for t in range(k):
        boundary_t = int(np.count_nonzero(crossing & (lev_lo == t)))
        # paper's l_i here is the smaller (output-side) level of the pair,
        # which in our indexing is level t+1 of size c0^(t+1) m0^(k-t-1)
        li = sizes[t + 1] / c0  # number of Dec1C components between t, t+1
        delta = abs(fr[t] - fr[t + 1])
        required = delta * li  # split components >= delta * (#components)
        assert boundary_t + 1e-9 >= required, (
            f"Claim 4.7 violated between levels {t},{t+1}: boundary "
            f"{boundary_t} < required {required}"
        )
        results.append({"levels": (t, t + 1), "boundary": boundary_t,
                        "required": required, "delta": delta})
    return {"per_level": results, "fractions": fr}


def check_claim_4_10(scheme: BilinearScheme | str, k: int, mask: np.ndarray) -> None:
    """Claim 4.10: for each recursion-tree node and its c₀ children, the
    boundary between their vertex sets is ≥ (1/16-style constant) ·
    Σ |ρ_child − ρ_parent| · |V_child|  — we verify the exact combinatorial
    statement: the number of split Dec₁C components between a parent and
    its children is at least max_child |ρ_parent − ρ_child| · |V_child| / c₀.
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    c0 = scheme.c_blocks
    g = dec_graph(scheme, k)
    mask = np.asarray(mask, dtype=bool)
    tree = recursion_tree_partition(scheme, k)
    crossing = mask[g.src] != mask[g.dst]
    # edge -> (parent level) index for grouping: tree level i corresponds to
    # graph level t = k - i + 1; edges between graph levels t-1, t connect
    # tree level i+1 (parent) to i (children).
    lev_lo = np.minimum(g.levels[g.src], g.levels[g.dst])
    for i in range(1, k + 1):  # children at tree level i, parent at i+1
        children = tree[i - 1]     # shape (c0^(k-i+1), m0^(i-1))
        parents = tree[i]          # shape (c0^(k-i),   m0^i)
        t_child = k - i + 1
        rho_child = mask[children].mean(axis=1)
        rho_parent = mask[parents].mean(axis=1)
        # child with suffix s has parent with suffix s mod c0^(k-i)
        n_parent = parents.shape[0]
        child_parent = np.arange(children.shape[0]) % n_parent
        boundary = int(np.count_nonzero(crossing & (lev_lo == t_child - 1)))
        required = 0.0
        for ci in range(children.shape[0]):
            pi = child_parent[ci]
            required = max(
                required,
                abs(rho_child[ci] - rho_parent[pi]) * children.shape[1] / c0,
            )
        assert boundary + 1e-9 >= required, (
            f"Claim 4.10 violated at tree level {i}: boundary {boundary} "
            f"< required {required}"
        )


def check_fact_4_9(scheme: BilinearScheme | str, k: int, mask: np.ndarray) -> None:
    """Fact 4.9: tree leaves have ρ ∈ {0,1} and #(ρ=1 leaves) = σ₁·|l₁|."""
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    g = dec_graph(scheme, k)
    mask = np.asarray(mask, dtype=bool)
    tree = recursion_tree_partition(scheme, k)
    leaves = tree[0]
    assert leaves.shape[1] == 1, "leaves must be singletons"
    rho = mask[leaves[:, 0]].astype(float)
    assert set(np.unique(rho)).issubset({0.0, 1.0})
    sigma1 = mask[g.levels == k].mean()  # paper's l_1 = our level k (outputs)
    assert abs(rho.sum() - sigma1 * leaves.shape[0]) < 1e-9


def check_corollary_4_4_constant(M: int, k_small: int | None = None) -> dict:
    """Corollary 4.4's bookkeeping: ``s · h_s ≥ 3M`` for ``s = 9·M^(lg7/2)``.

    We don't re-prove the inequality (that is Lemma 4.3); we verify the
    *arithmetic* of the corollary for the measured expansion of the small
    decomposition graph: using Claim 2.1, ``h_s(Dec_{lg n}) ≥ h(Dec_k')``
    with ``k' = ½ lg M``, so the corollary needs
    ``9 M^(lg7/2) · h(Dec_k') ≥ 3M``, i.e. ``h(Dec_k') ≥ (M/ M^(lg7/2))/3
    = (4/7)^(k') / 3``.  Returns the two sides for inspection.
    """
    import math

    if k_small is None:
        k_small = max(int(math.log2(M) / 2), 1)
    s = 9.0 * M ** (math.log2(7) / 2.0)
    needed_h = 3.0 * M / s
    lemma_form = (4.0 / 7.0) ** k_small / 3.0
    return {"s": s, "needed_h": needed_h, "lemma_form": lemma_form,
            "k_small": k_small}


def lemma_4_3_lower_form(k: int, c: float = 1.0, c0: int = 4, m0: int = 7) -> float:
    """The Main Lemma's bound expression ``c · (c₀/m₀)^k`` (constant-1 form)."""
    return c * (c0 / m0) ** k
