"""Every communication bound in the paper, as executable formulas.

The paper's bounds are asymptotic (Ω/O with unspecified constants).  Each
function here evaluates the bound's *expression* with constant 1, so that
experiments can report measured/bound ratios and exponent fits; the shape
checks in EXPERIMENTS.md are about those ratios being flat/stable, never
about absolute equality.

Covered:

* Eq. (1):   sequential upper bound  ``IO ≤ O((n/√M)^lg7 · M)``
* Thm 1.1:   sequential lower bound, Strassen (``ω₀ = lg 7``)
* Thm 1.3:   sequential lower bound, Strassen-like (general ``ω₀``)
* Cor 1.2/1.4: parallel versions (divide by p)
* footnote 8: latency = bandwidth / M
* Table I:   the six parallel memory-regime cells (2D / 3D / 2.5D ×
  classical / Strassen-like) plus the classical general-M row
* §6.1 remark: the 2.5D-style bound's numerator is ω₀-free.
* arXiv:1202.3177 (Ballard–Demmel–Holtz–Lipshitz–Schwartz): the
  *memory-independent* bounds ``Ω(n²/p^(2/ω₀))`` and the perfect
  strong-scaling limit ``p ≤ (n/√M)^ω₀`` where the memory-dependent and
  memory-independent bounds cross (``n³/M^(3/2)`` classically), plus the
  :func:`scaling_regime` classifier saying which bound binds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "LG7",
    "ScalingRegime",
    "rect_omega0",
    "rect_sequential_io_bound",
    "sequential_io_bound",
    "sequential_io_upper",
    "parallel_io_bound",
    "memory_independent_bound",
    "rect_memory_independent_bound",
    "perfect_scaling_limit",
    "scaling_regime",
    "latency_bound",
    "table1_cell",
    "table1_rows",
    "memory_regimes",
]

#: lg 7 — Strassen's exponent, the paper's headline ω₀.
LG7 = math.log2(7.0)


def rect_omega0(m0: int, n0: int, p0: int, t0: int) -> float:
    """The rectangular exponent ``ω₀ = 3·log_{m₀n₀p₀} t₀``.

    For a recursive ⟨m₀,n₀,p₀; t₀⟩ algorithm (Ballard–Demmel–Holtz–
    Lipshitz–Schwartz, arXiv:1209.2184) the multiplication count after k
    levels is ``t₀^k = ((m₀n₀p₀)^{k/3})^{ω₀}`` — the geometric-mean
    dimension raised to ω₀, reducing to ``log_{n₀} t₀`` in the square case.
    The degenerate ⟨1,1,1;1⟩ shape is assigned 3 by convention.
    """
    volume = m0 * n0 * p0
    if volume < 1 or t0 < 1:
        raise ValueError("scheme dimensions and rank must be >= 1")
    if volume == 1 or t0 == volume:
        return 3.0  # classical rank: exactly 3, no float slop
    return 3.0 * math.log(t0) / math.log(volume)


def rect_sequential_io_bound(m: float, n: float, p: float, M: float, omega0: float = LG7) -> float:
    """Rectangular Theorem 1.3: ``IO = Ω(((mnp)^{1/3}/√M)^ω₀ · M)``.

    The expansion argument on the rectangular ``Dec_k C`` gives the same
    form as the square bound with the matrix dimension replaced by the
    geometric mean ``(mnp)^{1/3}`` — for ``m = m₀^k`` etc. the numerator is
    exactly ``t₀^k``, the count of scalar multiplications.  Below the
    memory-bound regime the trivial bound (read both inputs, write the
    output once) applies; we return the max so sweeps behave sanely.
    """
    if m < 1 or n < 1 or p < 1:
        raise ValueError("matrix dimensions must be >= 1")
    if M < 1:
        raise ValueError("M must be >= 1")
    if not (2.0 <= omega0 <= 3.0):
        raise ValueError("omega0 must lie in [2, 3]")
    n_eff = (m * n * p) ** (1.0 / 3.0)
    expansion_term = (n_eff / math.sqrt(M)) ** omega0 * M
    trivial = m * n + n * p + m * p
    return max(expansion_term, trivial)


def sequential_io_bound(n: float, M: float, omega0: float = LG7) -> float:
    """Theorem 1.1 / 1.3: ``IO = Ω((n/√M)^ω₀ · M)`` with constant 1.

    Valid in the regime the paper cares about (footnote 12): the input does
    not fit in fast memory.  Below that regime the trivial bound ``≥ input``
    applies; we return the max of the two so sweeps behave sanely.
    """
    _check(n, M, omega0)
    expansion_term = (n / math.sqrt(M)) ** omega0 * M
    trivial = 2.0 * n * n  # must at least read A and B once
    return max(expansion_term, trivial)


def sequential_io_upper(n: float, M: float, omega0: float = LG7, n0: int = 2, t0: int = 7) -> float:
    """Eq. (1)'s recurrence solved with explicit constants.

    ``IO(n) ≤ t₀·IO(n/n₀) + c·n²``, cut off when ``3·(n')² ≤ M``:  the
    depth-first implementation reads two blocks and writes one at the base,
    and streams the additions above it.  Returns the closed-form value
    (used as the analytic reference curve next to *measured* DF I/O).
    """
    _check(n, M, omega0)
    if 3 * n * n <= M:
        return 3.0 * n * n
    # number of recursion levels until 3 (n/n0^t)^2 <= M
    t = 0
    size = n
    while 3 * size * size > M and size > n0:
        size /= n0
        t += 1
    # additions cost: sum_{j<t} t0^j * c * (n/n0^j)^2, with c = the number of
    # block reads/writes per level ~ (#linear forms)·3; keep c = 1 shape-wise.
    add_cost = sum(t0**j * (n / n0**j) ** 2 for j in range(t))
    base_cost = t0**t * 3.0 * size * size
    return add_cost + base_cost


def parallel_io_bound(n: float, M: float, p: int, omega0: float = LG7) -> float:
    """Corollary 1.2 / 1.4: per-processor bandwidth ``Ω((n/√M)^ω₀ · M / p)``."""
    if p < 1:
        raise ValueError("p must be >= 1")
    _check(n, M, omega0)
    return (n / math.sqrt(M)) ** omega0 * M / p


def memory_independent_bound(n: float, p: int, omega0: float = LG7) -> float:
    """Memory-independent per-processor bandwidth bound ``Ω(n²/p^(2/ω₀))``.

    Theorem of arXiv:1202.3177: however much local memory each of the p
    processors has, some processor moves ``Ω(n²/p^(2/ω₀))`` words —
    ``n²/p^(2/3)`` for classical (ω₀ = 3), ``n²/p^(2/lg 7)`` for
    Strassen-like recursion.  One processor moves nothing, so the bound is
    0 at p = 1.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    if n < 1:
        raise ValueError("n must be >= 1")
    if not (2.0 <= omega0 <= 3.0):
        raise ValueError("omega0 must lie in [2, 3]")
    if p == 1:
        return 0.0
    return n * n / p ** (2.0 / omega0)


def rect_memory_independent_bound(m: float, n: float, k: float, p: int, omega0: float) -> float:
    """Rectangular memory-independent bound via the geometric-mean dimension.

    As with :func:`rect_sequential_io_bound`, an ⟨m₀,n₀,p₀; t₀⟩ recursion
    on an ``m × n`` by ``n × k`` product obeys the square bound with the
    matrix dimension replaced by ``(mnk)^(1/3)`` and ω₀ from
    :func:`rect_omega0`.
    """
    if m < 1 or n < 1 or k < 1:
        raise ValueError("matrix dimensions must be >= 1")
    n_eff = (m * n * k) ** (1.0 / 3.0)
    return memory_independent_bound(n_eff, p, omega0)


def perfect_scaling_limit(n: float, M: float, omega0: float = LG7) -> float:
    """The end of the perfect strong-scaling range: ``p* = (n/√M)^ω₀``.

    Below p* the memory-dependent bound ``(n/√M)^ω₀·M/p`` dominates and
    communication scales perfectly as 1/p; beyond it the p-dependent
    memory-independent floor ``n²/p^(2/ω₀)`` binds instead
    (arXiv:1202.3177 §1).  Classically (ω₀ = 3) this is the familiar
    ``p* = n³/M^(3/2)``.
    """
    _check(n, M, omega0)
    return (n / math.sqrt(M)) ** omega0


@dataclass(frozen=True)
class ScalingRegime:
    """Which communication lower bound binds at one (n, p, M) point."""

    memory_dependent: float    # Cor. 1.2/1.4: (n/√M)^ω₀·M/p
    memory_independent: float  # 1202.3177:   n²/p^(2/ω₀)
    binding: str               # "memory-dependent" | "memory-independent"
    p_limit: float             # perfect_scaling_limit(n, M, ω₀)

    @property
    def bound(self) -> float:
        """The binding (larger) of the two bounds."""
        return max(self.memory_dependent, self.memory_independent)


def scaling_regime(n: float, p: int, M: float, omega0: float = LG7) -> ScalingRegime:
    """Classify which lower bound binds at (n, p, M).

    The two bounds cross exactly at ``p = perfect_scaling_limit(n, M, ω₀)``;
    at the crossover itself (equality) the point is classified as still
    memory-dependent — the last point of the perfect-scaling range.
    """
    md = parallel_io_bound(n, M, p, omega0)
    mi = memory_independent_bound(n, p, omega0)
    # The two expressions are algebraically equal at p = p*; classify the
    # crossover itself as memory-dependent despite float rounding.
    at_crossover = math.isclose(md, mi, rel_tol=1e-9)
    return ScalingRegime(
        memory_dependent=md,
        memory_independent=mi,
        binding="memory-dependent" if (md >= mi or at_crossover) else "memory-independent",
        p_limit=perfect_scaling_limit(n, M, omega0),
    )


def latency_bound(bandwidth_bound: float, M: float) -> float:
    """Footnote 8: messages ≥ words / max-message-size, message ≤ M words."""
    if M < 1:
        raise ValueError("M must be >= 1")
    return bandwidth_bound / M


# ---------------------------------------------------------------------- #
# Table I                                                                 #
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class Table1Cell:
    """One cell of Table I: the memory regime and the bound expression."""

    regime: str              # "2D", "3D", or "2.5D"
    algorithm_class: str     # "classical" or "strassen-like"
    memory: float            # the M implied by the regime
    bound: float             # the bandwidth lower bound
    exponent_of_p: float     # the p-exponent in n²/p^e (for fit checks)
    attained_by: str         # the algorithm the paper credits


def memory_regimes(n: float, p: int, c: float = 1.0) -> dict[str, float]:
    """The three local-memory regimes of §6.1 / Table I."""
    return {
        "2D": n * n / p,
        "3D": n * n / p ** (2.0 / 3.0),
        "2.5D": c * n * n / p,
    }


def table1_cell(
    regime: str,
    algorithm_class: str,
    n: float,
    p: int,
    c: float = 1.0,
    omega0: float = LG7,
) -> Table1Cell:
    """Evaluate one Table I cell.

    The bound value is computed by substituting the regime's M into
    Corollary 1.2/1.4 (exactly the table's own derivation), so the closed
    forms below are implied rather than transcribed:

    Classical column (ω₀ = 3):

    * 2D:    Ω(n² / p^(1/2))          — attained by [Cannon 1969]
    * 3D:    Ω(n² / p^(2/3))          — [Dekel et al. 81; Aggarwal et al. 90]
    * 2.5D:  Ω(n² / (c^(1/2) p^(1/2))) — [Solomonik & Demmel 2011]

    Strassen-like column (the paper's new results, 2 < ω₀ < 3):

    * 2D:    Ω(n² / p^(2 − ω₀/2))
    * 3D:    Ω(n² / p^((5 − ω₀)/3))
    * 2.5D:  Ω(n² / (c^(ω₀/2 − 1) p^(2 − ω₀/2)))

    all attained (up to O(log p)) by the CAPS parallel Strassen
    [Ballard et al. 2011].  Note the §6.1 observation the tests verify:
    the *numerators* are ω₀-free — improving ω₀ only deepens the
    denominator's power of p.
    """
    regimes = memory_regimes(n, p, c)
    if regime not in regimes:
        raise ValueError(f"regime must be one of {sorted(regimes)}")
    if algorithm_class == "classical":
        w = 3.0
        attained = {"2D": "Cannon 1969", "3D": "Dekel et al. 1981 / Aggarwal et al. 1990",
                    "2.5D": "Solomonik & Demmel 2011"}[regime]
    elif algorithm_class == "strassen-like":
        w = omega0
        attained = "Ballard, Demmel, Holtz, Rom, Schwartz 2011 (CAPS)"
    else:
        raise ValueError("algorithm_class must be 'classical' or 'strassen-like'")
    M = regimes[regime]
    bound = parallel_io_bound(n, M, p, w)
    # p-exponent: bound = n^2 * c^(1-w/2) / p^e with e from the substitution.
    if regime == "2D":
        e = 2.0 - w / 2.0
    elif regime == "3D":
        e = (5.0 - w) / 3.0
    else:  # 2.5D
        e = 2.0 - w / 2.0  # the c-dependence carries the rest
    return Table1Cell(
        regime=regime,
        algorithm_class=algorithm_class,
        memory=M,
        bound=bound,
        exponent_of_p=e,
        attained_by=attained,
    )


def table1_rows(n: float, p: int, c: float = 1.0, omega0: float = LG7) -> list[Table1Cell]:
    """All six cells of Table I for given (n, p, c)."""
    cells = []
    for regime in ("2D", "3D", "2.5D"):
        for cls in ("classical", "strassen-like"):
            cells.append(table1_cell(regime, cls, n, p, c, omega0))
    return cells


def _check(n: float, M: float, omega0: float) -> None:
    if n < 1:
        raise ValueError("n must be >= 1")
    if M < 1:
        raise ValueError("M must be >= 1")
    if not (2.0 <= omega0 <= 3.0):
        raise ValueError("omega0 must lie in [2, 3]")
