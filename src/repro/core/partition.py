"""The partition argument (§3.2) — certified I/O lower bounds for schedules.

Given any total order O of a CDAG and any partition of O into contiguous
segments S₁, S₂, …, the I/O of executing O with fast memory M satisfies

    IO  ≥  Σ_S ( |R_S| + |W_S| − 2M )                     (Eq. 6)

where ``R_S`` (read operands) are vertices outside S with an edge into S and
``W_S`` (write operands) are vertices in S with an edge leaving S (Fig. 1).
Each segment starts with at most M operands already resident and ends
leaving at most M behind, so it must *read* at least |R_S| − M and *write*
at least |W_S| − M words.

This module computes the bound exactly for concrete schedules, optimizes
the segment size (the ``max_P`` in Eq. 6), and connects to expansion: when
the graph's small sets expand, Claim 3.1 gives |R_S| + |W_S| ≥ h·|S|/2 and
Eq. 7–8 turn that into the familiar ``IO ≥ (|V|/s)·M`` form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cdag.graph import CDAG

__all__ = [
    "SegmentStats",
    "segment_stats",
    "partition_bound",
    "best_partition_bound",
    "expansion_io_bound",
]


@dataclass(frozen=True)
class SegmentStats:
    """Per-segment read/write operand counts for one segmentation."""

    segment_size: int
    n_segments: int
    reads: np.ndarray       # |R_S| per segment
    writes: np.ndarray      # |W_S| per segment

    def bound(self, M: int, clamp: bool = True) -> int:
        """Eq. 6 evaluated at memory M (per-segment clamping at 0 is valid
        because every segment's true I/O is nonnegative)."""
        raw = self.reads + self.writes - 2 * M
        if clamp:
            raw = np.maximum(raw, 0)
        return int(raw.sum())


def segment_stats(g: CDAG, order: np.ndarray, segment_size: int) -> SegmentStats:
    """Compute |R_S| and |W_S| for contiguous segments of a total order.

    Fully vectorized: an edge (u, v) with the endpoints in different
    segments contributes u to ``W_{seg(u)}`` and to ``R_{seg(v)}``; operands
    are counted once per segment (distinct vertices, like Fig. 1).
    """
    order = np.asarray(order, dtype=np.int64)
    n = g.n_vertices
    if len(order) != n:
        raise ValueError("order must cover all vertices")
    if segment_size < 1:
        raise ValueError("segment size must be >= 1")
    pos = np.empty(n, dtype=np.int64)
    pos[order] = np.arange(n)
    seg = pos // segment_size
    n_segments = int(seg.max()) + 1 if n else 0

    su = seg[g.src]
    sv = seg[g.dst]
    cross = su != sv
    cu = g.src[cross]
    cv_seg = sv[cross]
    cu_seg = su[cross]

    # R_S: distinct (target segment, source vertex) pairs.
    r_keys = cv_seg * np.int64(n) + cu
    r_unique = np.unique(r_keys)
    reads = np.bincount((r_unique // n).astype(np.int64), minlength=n_segments)

    # W_S: distinct (source segment, source vertex) pairs.
    w_keys = cu_seg * np.int64(n) + cu
    w_unique = np.unique(w_keys)
    writes = np.bincount((w_unique // n).astype(np.int64), minlength=n_segments)

    return SegmentStats(
        segment_size=segment_size,
        n_segments=n_segments,
        reads=reads.astype(np.int64),
        writes=writes.astype(np.int64),
    )


def partition_bound(g: CDAG, order: np.ndarray, M: int, segment_size: int) -> int:
    """Eq. 6 for one segment size: a certified I/O lower bound for ``order``."""
    return segment_stats(g, order, segment_size).bound(M)


def best_partition_bound(
    g: CDAG,
    order: np.ndarray,
    M: int,
    sizes: list[int] | None = None,
) -> tuple[int, int]:
    """``max_P`` of Eq. 6 over a geometric grid of segment sizes.

    Returns ``(bound, best_segment_size)``.  The default grid spans from
    2M (below which segments cannot force I/O) to |V|.
    """
    n = g.n_vertices
    if sizes is None:
        sizes = []
        s = max(2 * M, 4)
        while s <= n:
            sizes.append(s)
            s *= 2
        if not sizes:
            sizes = [max(n // 2, 1)]
    best = -1
    best_s = sizes[0]
    for s in sizes:
        b = partition_bound(g, order, M, s)
        if b > best:
            best, best_s = b, s
    return best, best_s


def expansion_io_bound(
    n_vertices: int,
    hs: float,
    s: int,
    M: int,
    alpha: float = 1.0,
) -> float:
    """The expansion ⇒ I/O step (Eq. 7–9 and Claim 3.2).

    If sets of size ≤ s in (an α-fraction subgraph of) the CDAG expand so
    that ``h_s · s / 2 ≥ 3M``, then ``IO ≥ (α/2) · (|V|/s) · M``.  Returns
    that bound, or 0.0 when the premise fails — callers are expected to
    *search* s (Corollary 4.4 supplies the right s for Strassen).
    """
    if s < 1 or M < 1:
        raise ValueError("s and M must be positive")
    if hs * s / 2.0 < 3.0 * M:
        return 0.0
    return (alpha / 2.0) * (n_vertices / s) * M
