"""Edge-expansion estimation (§2, §3.3, §4.1.2 — the paper's core quantity).

For a ``d``-regular graph the edge expansion is

    h(G) = min_{|U| ≤ |V|/2}  |E(U, V\\U)| / (d · |U|)        (Eq. 4)

CDAGs are not regular; the paper regularizes by adding loops up to the max
degree ``d`` (§2.0.2) — loops never cross a cut, so in practice we divide by
``d = max_degree`` and never materialize loops.

Exact ``h`` is NP-hard, so the module offers a *sandwich*:

* **exact enumeration** for small graphs (≤ :data:`EXACT_LIMIT` = 32
  vertices by default) — ground truth for the test suite and for the
  ``Dec_k C`` base cases (``Dec₁C`` of every scheme, and ``Dec₂C`` of the
  ⟨1,2,2⟩-type rectangular schemes).  The enumeration itself lives in
  :mod:`repro.core.exact` (bitset kernels, Gray-style incremental scans, a
  size-restricted walk for ``h_s``, optional process-parallel sharding);
  this module keeps thin façades with the historical signatures;
* **spectral (Cheeger) bounds** — ``λ₂/2 ≤ h(G) ≤ √(2 λ₂)`` for the
  loop-regularized graph, computed with sparse eigensolvers: a certified
  lower bound on one side;
* **constructive cuts** — every cut gives a certified *upper* bound:
  Fiedler sweep cuts, and the structural witness for Lemma 4.3's tightness:
  the *decode cone* of one outermost recursion branch of ``Dec_k C``
  (``S`` = everything decoded exclusively from products whose outermost
  digit is ``r``), whose boundary is the ``c₀^(k−1)`` partial results it
  hands to the final combine — giving ``h ≤ O((c₀/m₀)^k)``;
* **small-set expansion** ``h_s`` (Eq. 5) with the decomposition lower
  bound of Claim 2.1.

Together the experiments verify ``h(Dec_k C) = Θ((4/7)^k)`` (Lemma 4.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.cdag.graph import CDAG
from repro.cdag.schemes import BilinearScheme, get_scheme
from repro.cdag.strassen_cdag import dec_level_sizes
from repro.core.exact import (
    EXACT_LIMIT,
    effective_exact_limit,
    exact_edge_expansion_v2,
    exact_small_set_expansion_v2,
)
from repro.core.exact import _popcount as _popcount  # back-compat re-export

if TYPE_CHECKING:
    from repro.core.certify import ExpansionInterval

__all__ = [
    "EXACT_LIMIT",
    "effective_exact_limit",
    "ExpansionEstimate",
    "expansion_of_cut",
    "exact_edge_expansion",
    "exact_small_set_expansion",
    "spectral_lower_bound",
    "fiedler_sweep_cut",
    "decode_cone_mask",
    "decode_cone_upper_bound",
    "estimate_expansion",
    "claim_2_1_small_set_bound",
]

#: The exact-enumeration ceiling (re-exported from :mod:`repro.core.exact`;
#: 32 by default, overridable via ``REPRO_EXACT_LIMIT``).  Public because the
#: engine's policy selection and the experiments branch on it.
_EXACT_LIMIT = EXACT_LIMIT  # backwards-compatible alias


@dataclass(frozen=True)
class ExpansionEstimate:
    """A two-sided estimate of h(G) with the witness cut for the upper side."""

    lower: float               # certified lower bound (spectral or exact); NaN = none
    upper: float               # certified upper bound (a concrete cut)
    witness_size: int          # |U| of the best cut found
    witness_boundary: int      # |E(U, V\U)| of that cut
    degree: int                # the regularized degree d used
    method: str

    def interval(self) -> "ExpansionInterval":
        """The certified :class:`~repro.core.certify.ExpansionInterval`.

        Lazy import: :mod:`repro.core.certify` builds on this module, so the
        dependency must not also run at import time in the other direction.
        """
        from repro.core.certify import interval_from_estimate

        return interval_from_estimate(self)


# ---------------------------------------------------------------------- #
# cut evaluation                                                          #
# ---------------------------------------------------------------------- #


def expansion_of_cut(g: CDAG, mask: np.ndarray, degree: int | None = None) -> float:
    """The ratio ``|E(U, V\\U)| / (d · |U|)`` for ``U = mask``.

    Raises if ``U`` is empty or larger than ``|V|/2`` (Eq. 4's constraint).
    """
    mask = np.asarray(mask, dtype=bool)
    size = int(mask.sum())
    if size == 0:
        raise ValueError("cut set must be nonempty")
    if size > g.n_vertices // 2:
        raise ValueError("cut set exceeds |V|/2; expansion is defined on the smaller side")
    d = degree if degree is not None else g.max_degree
    return g.edge_boundary_size(mask) / (d * size)


# ---------------------------------------------------------------------- #
# exact enumeration (facades over repro.core.exact)                        #
# ---------------------------------------------------------------------- #


def exact_edge_expansion(
    g: CDAG, max_size: int | None = None, *, jobs: int = 1
) -> tuple[float, np.ndarray]:
    """Exact ``h(G)`` (or ``h_s`` when ``max_size`` given) by enumeration.

    Returns ``(h, best_mask)`` — bit-identical to the seed brute-force
    enumerator (same ``h``, smallest minimizing mask).  Feasible for
    ``|V| <= EXACT_LIMIT`` (32 by default); with ``max_size`` set, the
    size-restricted walk also solves much larger graphs as long as
    ``C(n, <=max_size)`` stays enumerable.  ``jobs > 1`` shards the subset
    space over worker processes without changing the result.
    """
    return exact_edge_expansion_v2(g, max_size=max_size, jobs=jobs)


def exact_small_set_expansion(g: CDAG, s: int, *, jobs: int = 1) -> float:
    """Exact ``h_s(G)`` (Eq. 5) via the size-restricted combinatorial walk."""
    h, _ = exact_small_set_expansion_v2(g, s, jobs=jobs)
    return h


# ---------------------------------------------------------------------- #
# spectral machinery                                                      #
# ---------------------------------------------------------------------- #


def _regularized_laplacian(g: CDAG) -> tuple[sp.csr_matrix, int]:
    """Normalized Laplacian of the loop-regularized d-regular graph.

    ``L = I − (A + (d − deg)·I)/d``; loops appear only on the diagonal and
    leave every cut untouched, exactly the paper's §2.0.2 convention.
    """
    d = g.max_degree
    A = g.adjacency
    deg = g.degree.astype(np.float64)
    n = g.n_vertices
    diag = (d - deg) / d
    L = sp.identity(n, format="csr") - (A / d + sp.diags(diag))
    return L.tocsr(), d


def _two_smallest_eigs(L: sp.csr_matrix) -> tuple[np.ndarray, np.ndarray]:
    """The two algebraically smallest eigenpairs of a PSD sparse matrix.

    Shift-invert around a small negative sigma converges fast even when the
    spectral gap is tiny (it is ~(4/7)^{2k} for deep decode graphs); fall
    back to plain 'SA' Lanczos if the factorization fails.
    """
    n = L.shape[0]
    if n <= 600:
        w, V = np.linalg.eigh(L.toarray())
        return w[:2], V[:, :2]
    # Deterministic start vector: repeat runs (and the engine's parallel
    # workers) must produce identical spectra for cache hits to be exact.
    v0 = np.random.default_rng(0x5EED).standard_normal(n)
    try:
        w, V = spla.eigsh(L, k=2, sigma=-1e-8, which="LM", maxiter=5000, v0=v0)
    except (spla.ArpackNoConvergence, np.linalg.LinAlgError, RuntimeError):
        # Shift-invert legitimately fails when the factorization is singular
        # or Lanczos stalls; anything else (bad shapes, dtypes) is a real
        # bug in the caller and must propagate.
        w, V = spla.eigsh(L, k=2, which="SA", maxiter=20000, tol=1e-10, v0=v0)
    order = np.argsort(w)
    return w[order], V[:, order]


def spectral_lower_bound(g: CDAG) -> tuple[float, np.ndarray]:
    """Cheeger lower bound ``h(G) ≥ λ₂/2`` plus the Fiedler vector.

    Returns ``(λ₂ / 2, fiedler_vector)`` for the regularized graph.
    """
    L, _ = _regularized_laplacian(g)
    w, V = _two_smallest_eigs(L)
    lam2 = max(float(w[1]), 0.0)
    return lam2 / 2.0, V[:, 1]


def fiedler_sweep_cut(g: CDAG, fiedler: np.ndarray | None = None) -> tuple[float, np.ndarray]:
    """Best prefix cut of the Fiedler ordering — a certified upper bound.

    Sorts vertices by the second eigenvector and evaluates *every* prefix
    ``U_i = first i vertices`` in O(V + E) total using a difference array
    over edge spans (an edge crosses exactly the prefixes between the ranks
    of its endpoints).
    """
    if fiedler is None:
        _, fiedler = spectral_lower_bound(g)
    n = g.n_vertices
    d = g.max_degree
    order = np.argsort(fiedler, kind="stable")
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)
    u, v = g.undirected_edges
    lo = np.minimum(rank[u], rank[v])
    hi = np.maximum(rank[u], rank[v])
    # cut(i) = number of edges with lo <= i < hi, for prefix of size i+1.
    # bincount beats np.add.at's unbuffered scatter by ~an order of magnitude
    # and this difference array is rebuilt on every spectral estimate.
    diff = np.bincount(lo, minlength=n + 1) - np.bincount(hi, minlength=n + 1)
    cut_sizes = np.cumsum(diff[:-1])
    prefix_sizes = np.arange(1, n + 1)
    valid = prefix_sizes <= n // 2
    ratios = np.where(valid, cut_sizes / (d * prefix_sizes), np.inf)
    best = int(np.argmin(ratios))
    mask = np.zeros(n, dtype=bool)
    mask[order[: best + 1]] = True
    return float(ratios[best]), mask


# ---------------------------------------------------------------------- #
# structural witness cuts for Dec_k C                                     #
# ---------------------------------------------------------------------- #


def decode_cone_mask(
    scheme: BilinearScheme | str, k: int, branch: int = 0, depth: int | None = None
) -> np.ndarray:
    """The decode cone of one outermost recursion branch of ``Dec_k C``.

    ``S`` = all vertices whose pending product prefix starts with outermost
    digit ``branch`` — i.e. everything computed *exclusively* from the
    products of subproblem ``M_branch`` of the top-level recursion, before
    the final combine.  Its out-boundary is only the
    ``(nnz of W column branch) · c₀^(k−1)`` edges that feed the top-level
    combine — the witness that Lemma 4.3 is tight:
    ``h(Dec_k C) = O((c₀/t₀)^k)``.  Branches index the scheme's ``t₀``
    products (7 for Strassen), and ``c₀ = m₀·p₀`` counts the output blocks,
    so rectangular schemes get their cones from the same arithmetic.

    ``depth`` (default ``k``) restricts the cone to its first ``depth``
    levels, producing the smaller witnesses used for ``h_s`` studies.
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    c0 = scheme.c_blocks
    t0 = scheme.t0
    if not (0 <= branch < t0):
        raise ValueError(f"branch must be in [0, {t0})")
    if depth is None:
        depth = k
    if not (1 <= depth <= k):
        raise ValueError("depth must be in [1, k]")
    sizes = dec_level_sizes(scheme, k)
    off = np.concatenate([[0], np.cumsum(sizes)])[:-1]
    mask = np.zeros(int(sizes.sum()), dtype=bool)
    # Level t vertices: id = off[t] + rho * c0^t + s, rho in [t0^(k-t)].
    # The outermost product digit is the most significant digit of rho, so
    # the cone at level t is rho in [branch * t0^(k-t-1), (branch+1) * ...).
    for t in range(0, depth):
        n_suffix = c0**t
        stride = t0 ** (k - t - 1)
        lo = off[t] + branch * stride * n_suffix
        hi = off[t] + (branch + 1) * stride * n_suffix
        mask[lo:hi] = True
    return mask


def decode_cone_upper_bound(
    g: CDAG, scheme: BilinearScheme | str, k: int
) -> tuple[float, np.ndarray]:
    """Best decode-cone cut over all outermost branches — upper bound on h.

    The best branch is one whose W column has the fewest nonzeros (its
    products feed the fewest outputs of the top-level combine).
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    best_ratio = math.inf
    best_mask: np.ndarray | None = None
    half = g.n_vertices // 2
    n_empty = 0
    n_oversized = 0
    for branch in range(scheme.t0):
        mask = decode_cone_mask(scheme, k, branch)
        size = int(mask.sum())
        if size == 0:
            n_empty += 1
            continue
        if size > half:
            n_oversized += 1
            continue
        ratio = expansion_of_cut(g, mask)
        if ratio < best_ratio:
            best_ratio = ratio
            best_mask = mask
    if best_mask is None:
        reasons = []
        if n_oversized:
            reasons.append(
                f"{n_oversized} cone(s) exceed |V|/2 = {half} "
                "(Eq. 4 needs the smaller side; the graph is too shallow "
                "for this scheme's branch cones)"
            )
        if n_empty:
            reasons.append(f"{n_empty} cone(s) are empty")
        raise ValueError(
            f"no feasible decode cone among {scheme.t0} branches of "
            f"{scheme.name!r} at k={k}: " + "; ".join(reasons)
        )
    return best_ratio, best_mask


# ---------------------------------------------------------------------- #
# the combined estimator                                                  #
# ---------------------------------------------------------------------- #


def estimate_expansion(
    g: CDAG,
    scheme: BilinearScheme | str | None = None,
    k: int | None = None,
    jobs: int = 1,
) -> ExpansionEstimate:
    """Two-sided expansion estimate.

    Graphs up to :data:`EXACT_LIMIT` vertices are solved exactly (``jobs``
    shards the subset search over processes).  Larger graphs get the Cheeger
    lower bound and the best of (Fiedler sweep, decode cones when
    ``scheme``/``k`` describe the graph as a ``Dec_k C``).
    """
    d = g.max_degree
    if g.n_vertices <= effective_exact_limit():
        h, mask = exact_edge_expansion(g, jobs=jobs)
        return ExpansionEstimate(
            lower=h,
            upper=h,
            witness_size=int(mask.sum()),
            witness_boundary=g.edge_boundary_size(mask),
            degree=d,
            method="exact",
        )
    lower, fiedler = spectral_lower_bound(g)
    upper, mask = fiedler_sweep_cut(g, fiedler)
    method = "spectral+sweep"
    if scheme is not None and k is not None:
        cone_ratio, cone_mask = decode_cone_upper_bound(g, scheme, k)
        if cone_ratio < upper:
            upper, mask = cone_ratio, cone_mask
            method = "spectral+cone"
    return ExpansionEstimate(
        lower=lower,
        upper=upper,
        witness_size=int(mask.sum()),
        witness_boundary=g.edge_boundary_size(mask),
        degree=d,
        method=method,
    )


# ---------------------------------------------------------------------- #
# small-set expansion via decomposition (Claim 2.1)                       #
# ---------------------------------------------------------------------- #


def claim_2_1_small_set_bound(
    h_small: float, d_small: int, d_big: int
) -> float:
    """Claim 2.1: if ``G`` decomposes into edge-disjoint copies of ``G'``
    (d'-regular, expansion ``h(G')``), then sets of size ≤ |V(G')|/2 in G
    expand at least ``h(G') · d'/d``.

    The deep decode graph ``Dec_{lg n} C`` decomposes into edge-disjoint
    copies of ``Dec_{k'} C`` (each spanning ``k'`` consecutive levels), so
    its small-set expansion inherits the small graph's — the step that turns
    Lemma 4.3 into Corollary 4.4.
    """
    if d_small <= 0 or d_big <= 0 or d_small > d_big:
        raise ValueError("degrees must satisfy 0 < d_small <= d_big")
    return h_small * d_small / d_big
