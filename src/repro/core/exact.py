"""Exact edge-expansion engine v2 — bitset kernels and a sharded subset search.

The paper's ground truth for Lemma 4.3 / Corollary 4.4 is *exact* edge
expansion (Eq. 4) and exact small-set expansion ``h_s`` (Eq. 5).  The seed
enumerator materialized every subset mask and paid an O(E)-wide vectorized
boundary comparison per subset, which capped exact solves at 22 vertices.
This module rebuilds the machinery around three composable ideas:

* **Bitset-packed adjacency** — every vertex's undirected neighborhood is a
  row of packed ``uint64`` words (:attr:`repro.cdag.graph.CDAG.adjacency_bits`),
  so set intersections are word-ANDs + popcounts instead of fancy-indexed
  comparisons over the edge list.

* **Incremental (Gray-style) enumeration** — subsets are never re-scored
  from scratch.  The vectorized kernel builds boundary tables with the
  binary-reflected doubling recurrence (each doubling step flips exactly one
  vertex into every previously enumerated subset — the batched form of a
  Gray-code walk, costing O(1) amortized words per subset), and prunes with
  the branch-and-bound test ``boundary > d·|U|·h_best ⇒ skip``.  A scalar
  single-bit-flip Gray walk (:func:`_gray_scan_py`) is kept as an
  independently-coded backend that the property tests cross-check.

* **Prefix-sharded parallel search** — the subset space splits into
  prefix-fixed spans (high vertex bits fixed, low bits enumerated by the
  kernel).  Spans are independent, so they fan out over a ``spawn``
  process pool with a shared running minimum for cross-shard pruning; the
  merge is a deterministic lexicographic ``(h, mask)`` reduction, so results
  are identical for every ``jobs`` value.

Exact ``h_s`` additionally gets a *size-restricted combinatorial walk*: only
the ``C(n, ≤s)`` subsets of size at most ``s`` are visited (Gosper
successor + one incremental flip per step in the scalar backend), which
makes ``h_s`` of a 40-vertex graph a few thousand evaluations instead of a
``2^40`` enumeration.

A fourth backend pushes the same scan to native speed: ``backend="native"``
runs the prefix-sharded doubling walk inside a small C kernel
(:mod:`repro.core._native`, one ``.c`` file compiled with the system
compiler at first use and loaded through ``ctypes``).  It is auto-selected
whenever the compiled library is importable and the graph fits in packed
single-word rows (n ≤ 64); when the compiler is missing or ``REPRO_NATIVE=0``
is set, everything silently falls back to the numpy bitset kernels — the
native path is a pure accelerator, never a dependency, and its ``(h, mask)``
results are bit-identical to the bitset backend's for every ``jobs`` value.

Together these lift the exactly-solvable regime from 22 (seed) to 28
(numpy kernels) to :data:`DEFAULT_EXACT_LIMIT` = 32 vertices with the
native kernel (override with the ``REPRO_EXACT_LIMIT`` environment variable
or the ``limit=`` parameter).  All kernels return results bit-identical to
the seed enumerator: the same ``h`` float and the *smallest* minimizing
subset mask.
"""

from __future__ import annotations

import ctypes
import hashlib
import math
import os
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.cdag.graph import CDAG
from repro.core import _native

__all__ = [
    "DEFAULT_EXACT_LIMIT",
    "EXACT_LIMIT",
    "COMB_SUBSET_LIMIT",
    "EXACT_BACKENDS",
    "effective_exact_limit",
    "native_backend_available",
    "exact_edge_expansion_v2",
    "exact_small_set_expansion_v2",
]

#: The policy-selected enumeration ceiling.  2^32 subsets through the native
#: kernel solve in seconds; the numpy fallback still handles the same space,
#: just slower (raise/lower via REPRO_EXACT_LIMIT for the machine at hand).
DEFAULT_EXACT_LIMIT = 32

#: The active ceiling: ``REPRO_EXACT_LIMIT`` overrides the default, and every
#: public entry point also accepts an explicit ``limit=``.
EXACT_LIMIT = int(os.environ.get("REPRO_EXACT_LIMIT", DEFAULT_EXACT_LIMIT))


def effective_exact_limit() -> int:
    """The enumeration ceiling in force *right now*.

    Reads ``REPRO_EXACT_LIMIT`` on every call (unlike :data:`EXACT_LIMIT`,
    which is frozen at import time), so policy decisions — and the cache
    keys derived from them — track the environment a test or sweep set
    after this module was first imported.
    """
    return int(os.environ.get("REPRO_EXACT_LIMIT", DEFAULT_EXACT_LIMIT))

#: Most subsets the size-restricted walk will visit (C(n, ≤s) must fit).
COMB_SUBSET_LIMIT = 1 << 24

#: The selectable enumeration backends (``"auto"`` picks native when the
#: compiled kernel is importable, bitset otherwise).
EXACT_BACKENDS = ("auto", "native", "bitset", "gray")

#: The native kernel packs each adjacency row into one uint64 word.
_NATIVE_MAX_VERTICES = 64


def native_backend_available() -> bool:
    """True when the compiled C kernel can back ``backend="native"`` runs."""
    return _native.native_available()

#: Low-block width: the vectorized kernel enumerates 2^_LOW_BITS subsets per
#: prefix.  16 keeps every scratch table L2-resident while leaving ≥ 2^(n-16)
#: prefixes to shard across processes.
_LOW_BITS = 16


def _popcount(x: np.ndarray) -> np.ndarray:
    """Vectorized popcount for non-negative integer arrays."""
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0: a single hardware-backed ufunc
        return np.bitwise_count(x).astype(np.int64)
    x = x.copy()
    count = np.zeros_like(x, dtype=np.int64)
    while np.any(x):
        count += (x & type(x.flat[0])(1)).astype(np.int64)
        x >>= 1
    return count


def _adjacency_ints(g: CDAG) -> list[int]:
    """Per-vertex undirected neighborhoods as arbitrary-width Python ints.

    Built from the packed :attr:`CDAG.adjacency_bits` words, so the bitset
    rows are computed once per graph and shared by every kernel.
    """
    words = g.adjacency_bits
    out = []
    for row in words:
        acc = 0
        for j in range(len(row) - 1, -1, -1):
            acc = (acc << 64) | int(row[j])
        out.append(acc)
    return out


def _mask_to_bool(mask: int, n: int) -> np.ndarray:
    bits = np.zeros(n, dtype=bool)
    v = mask
    while v:
        low = v & -v
        bits[low.bit_length() - 1] = True
        v ^= low
    return bits


# ---------------------------------------------------------------------- #
# the vectorized prefix-sharded kernel                                    #
# ---------------------------------------------------------------------- #


class _ScanCtx:
    """Precomputed tables for one graph's full subset scan.

    The low block covers vertices ``0..b-1``; its per-subset size / internal
    cut tables are built once by the doubling recurrence and shared across
    every prefix (and, in parallel runs, rebuilt once per worker).
    """

    def __init__(self, adj: list[int], deg: list[int], d: int, n: int, limit: int) -> None:
        self.adj = adj
        self.deg = deg
        self.d = d
        self.n = n
        self.limit = limit
        self.b = b = min(n, _LOW_BITS)
        nlow = 1 << b
        # Doubling tables over the low block: step v extends the table by
        # flipping vertex v into every subset enumerated so far (the batched
        # Gray-code update), so sizes / cut boundaries cost O(1) per subset.
        sizes = np.zeros(nlow, dtype=np.int32)
        cut = np.zeros(nlow, dtype=np.int32)  # vol(L) - 2*e(L)
        for v in range(b):
            half = 1 << v
            # |N(v) ∩ L'| over the subsets L' ⊆ {0..v-1} enumerated so far
            inter = np.zeros(half, dtype=np.int32)
            row = adj[v]
            for u in range(v):
                q = 1 << u
                if (row >> u) & 1:
                    np.add(inter[:q], 1, out=inter[q : 2 * q])
                else:
                    inter[q : 2 * q] = inter[:q]
            np.add(sizes[:half], 1, out=sizes[half : 2 * half])
            np.add(cut[:half], deg[v], out=cut[half : 2 * half])
            cut[half : 2 * half] -= 2 * inter
        self.low_sizes = sizes
        self.low_cut = cut
        # High side (vertices b..n-1): per-vertex degree, adjacency among the
        # high vertices, and the bit matrix of edges into the low block.
        nh = n - b
        self.high_deg = [deg[b + j] for j in range(nh)]
        self.high_adj = [adj[b + j] >> b for j in range(nh)]
        rows_low = np.zeros((nh, b), dtype=np.int32)
        for j in range(nh):
            row = adj[b + j]
            for u in range(b):
                rows_low[j, u] = (row >> u) & 1
        self.rows_low = rows_low

    def n_prefixes(self) -> int:
        return 1 << (self.n - self.b)


def _seed_singletons(ctx: _ScanCtx) -> tuple[float, int]:
    """The best singleton cut — a real enumeration candidate that seeds the
    running minimum so branch-and-bound prunes from the very first chunk."""
    best_r, best_m = math.inf, 0
    for v in range(ctx.n):
        r = ctx.deg[v] / ctx.d
        if r < best_r:
            best_r, best_m = r, 1 << v
    return best_r, best_m


def _scan_span(
    ctx: _ScanCtx,
    p_lo: int,
    p_hi: int,
    best: tuple[float, int],
    shared: Any = None,
) -> tuple[float, int]:
    """Scan prefixes ``[p_lo, p_hi)``; returns the lexicographic best
    ``(h, mask)`` including the incoming ``best``.

    ``shared`` is an optional cross-process running minimum (a
    ``multiprocessing.Value``): it tightens the pruning threshold but never
    affects which candidate wins — the final reduction is by ``(h, mask)``.
    """
    b, d, limit = ctx.b, ctx.d, ctx.limit
    nlow = 1 << b
    sizesL = ctx.low_sizes
    cutL = ctx.low_cut
    best_r, best_m = best
    scratch_s = np.empty(nlow, dtype=np.int32)
    scratch_b = np.empty(nlow, dtype=np.int32)
    # Integer pruning thresholds per prefix popcount, rebuilt when the
    # running minimum improves: a subset survives iff
    # boundary <= floor(h_best * d * |U|) + 1 — the +1 keeps exact ties (the
    # seed witness may sit at a larger mask than a tied candidate), and the
    # exact division below refilters the slack.
    thr: dict[int, np.ndarray] = {}
    thr_for = math.nan

    def _threshold(size_p: int, h_cap: float) -> np.ndarray:
        t = np.floor(h_cap * d * (size_p + sizesL.astype(np.float64))) + 1.0
        t = np.minimum(t, 2**31 - 1).astype(np.int32)
        over = np.flatnonzero(sizesL > limit - size_p)
        t[over] = -1
        if size_p == 0:
            t[0] = -1  # the empty set
        return t

    for p in range(p_lo, p_hi):
        js = []
        pp = p
        while pp:
            js.append((pp & -pp).bit_length() - 1)
            pp &= pp - 1
        size_p = len(js)
        if size_p > limit:
            continue
        h_cap = best_r
        if shared is not None:
            h_cap = min(h_cap, shared.value)
        if h_cap != thr_for:
            thr.clear()
            thr_for = h_cap
        tint = thr.get(size_p)
        if tint is None:
            tint = thr[size_p] = _threshold(size_p, h_cap)
        if js:
            base_p = sum(ctx.high_deg[j] for j in js)
            for j in js:
                base_p -= 2 * (ctx.high_adj[j] & (p & ((1 << j) - 1))).bit_count()
            wv = ctx.rows_low[js].sum(axis=0, dtype=np.int32)
        else:
            base_p = 0
            wv = None
        # Boundary of P ∪ L for every low subset L in one doubling sweep:
        # cross(P, L) = Σ_{v∈L} |N(v) ∩ P| is a weighted subset sum, built by
        # the same one-flip-per-step recurrence as the low tables.
        S = scratch_s
        S[0] = 0
        if wv is not None:
            half = 1
            for v in range(b):
                np.add(S[:half], wv[v], out=S[half : 2 * half])
                half *= 2
            np.multiply(S, -2, out=scratch_b)
            scratch_b += cutL
            if base_p:
                scratch_b += base_p
            bnd = scratch_b
        else:
            bnd = cutL
        hits = np.flatnonzero(bnd <= tint)
        if hits.size == 0:
            continue
        bb = bnd[hits].astype(np.int64)
        ss = d * (size_p + sizesL[hits].astype(np.int64))
        ratios = bb / ss
        j = int(np.argmin(ratios))
        r = float(ratios[j])
        m = (p << b) | int(hits[j])
        if r < best_r:
            best_r, best_m = r, m
            if shared is not None and r < shared.value:
                with shared.get_lock():
                    if r < shared.value:
                        shared.value = r
        elif r == best_r and m < best_m:
            best_m = m
    return best_r, best_m


# -- shared-pool span plumbing (spawn-safe module level) ----------------- #

_MASK64 = (1 << 64) - 1

#: The span task message: (shm name, context token, backend, n, words-per-
#: row, d, limit, degree tuple, p_lo, p_hi).
_SpanMsg = tuple[str, str, str, int, int, int, int, "tuple[int, ...]", int, int]


def _ints_from_rows(rows: np.ndarray, n: int, w: int) -> list[int]:
    """Per-vertex Python-int neighborhoods from packed uint64 rows."""
    out = []
    for v in range(n):
        acc = 0
        for j in range(w - 1, -1, -1):
            acc = (acc << 64) | int(rows[v, j])
        out.append(acc)
    return out


def _pool_scan_span(msg: _SpanMsg) -> tuple[float, int]:
    """One prefix span on a pool worker (or inline, under serial fallback).

    The message carries only scalars plus the name of the shared-memory
    segment holding the cross-shard running minimum (first 8 bytes) and
    the packed adjacency rows.  The scan context — the doubling tables the
    kernel re-reads on every span — is installed once per (graph, backend)
    through the pool's worker context store and reused across all of that
    graph's spans, and across repeat scans of the same graph.
    """
    from repro.engine import pool as pool_runtime

    shm_name, token, backend, n, w, d, limit, deg, p_lo, p_hi = msg
    shm = pool_runtime.attach_shm(shm_name)
    shared = pool_runtime.SharedMinimum(shm.buf)
    try:

        def _build() -> Any:
            rows = np.frombuffer(shm.buf, dtype=np.uint64, count=n * w, offset=8)
            adj = _ints_from_rows(rows.reshape(n, w), n, w)
            if backend == "native":
                return _native_ctx(adj, list(deg), d, n, limit)
            return _ScanCtx(adj, list(deg), d, n, limit)

        ctx = pool_runtime.worker_ctx(token, _build)
        if backend == "native":
            assert isinstance(ctx, _NativeCtx)
            return _native_scan_span(
                ctx, p_lo, p_hi, (math.inf, 0), shared_addr=shared.addr()
            )
        assert isinstance(ctx, _ScanCtx)
        return _scan_span(ctx, p_lo, p_hi, (math.inf, 0), shared=shared)
    finally:
        shared.close()
        try:
            shm.close()
        except BufferError:  # a lingering view export; GC finishes the close
            pass


def _pooled_span_scan(
    backend: str,
    adj: list[int],
    deg: list[int],
    d: int,
    n: int,
    limit: int,
    n_pref: int,
    jobs: int,
    best: tuple[float, int],
) -> tuple[float, int]:
    """Fan prefix spans over the shared pool; deterministic (h, mask) merge.

    One shared-memory segment per scan ships the bulk data zero-copy: the
    running minimum (seeded with the singleton best) followed by the packed
    adjacency rows.  Spans and merge order are identical to the serial
    scan, so results are bit-identical for every ``jobs`` value.
    """
    from repro.engine import pool as pool_runtime

    w = (n + 63) // 64
    spans = []
    n_spans = min(n_pref, jobs * 4)
    step = -(-n_pref // n_spans)
    for lo in range(0, n_pref, step):
        spans.append((lo, min(lo + step, n_pref)))
    shm = pool_runtime.create_shm(8 + n * w * 8)
    try:
        shared = pool_runtime.SharedMinimum(shm.buf)
        shared.value = best[0]
        rows = np.frombuffer(shm.buf, dtype=np.uint64, count=n * w, offset=8)
        rows = rows.reshape(n, w)
        for v, a in enumerate(adj):
            for j in range(w):
                rows[v, j] = (a >> (64 * j)) & _MASK64
        token = hashlib.sha256(
            repr((backend, n, d, limit, tuple(deg))).encode() + rows.tobytes()
        ).hexdigest()
        msgs: list[_SpanMsg] = [
            (shm.name, token, backend, n, w, d, limit, tuple(deg), lo, hi)
            for lo, hi in spans
        ]
        results = pool_runtime.submit_batch(
            _pool_scan_span, msgs, workers=jobs, chunksize=1
        )
        del rows
        shared.close()
        for r, m in results:
            if r < best[0] or (r == best[0] and m < best[1]):
                best = (r, m)
        return best
    finally:
        try:
            shm.close()
        except BufferError:
            pass
        shm.unlink()


def _span_jobs(jobs: int, n_pref: int) -> int:
    """Clamp the span fan-out: never more workers than prefixes, and serial
    whenever the shared pool cannot run workers (kill switch, fallback)."""
    jobs = max(1, min(jobs, n_pref))
    if jobs > 1:
        from repro.engine import pool as pool_runtime

        if not pool_runtime.pool_enabled():
            jobs = 1
    return jobs


def _full_scan(
    adj: list[int], deg: list[int], d: int, n: int, limit: int, jobs: int
) -> tuple[float, int]:
    """Minimum-ratio cut over every subset of size ``1..limit``."""
    ctx = _ScanCtx(adj, deg, d, n, limit)
    best = _seed_singletons(ctx)
    n_pref = ctx.n_prefixes()
    jobs = _span_jobs(jobs, n_pref)
    if jobs == 1:
        return _scan_span(ctx, 0, n_pref, best)
    return _pooled_span_scan("bitset", adj, deg, d, n, limit, n_pref, jobs, best)


# ---------------------------------------------------------------------- #
# the native (C kernel) scan                                              #
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class _NativeCtx:
    """The packed tables one native scan call reads (per process).

    The low-block doubling tables are the same ones :class:`_ScanCtx`
    builds for the numpy kernel — the C scan consumes them directly, so the
    two backends share one definition of the enumeration space.
    """

    n: int
    b: int
    limit: int
    d: int
    adj: np.ndarray  # (n,) uint64 — one packed word per vertex (n <= 64)
    deg: np.ndarray  # (n,) int64
    low_cut: np.ndarray  # (2^b,) int32: vol(L) - 2 e(L)
    low_sizes: np.ndarray  # (2^b,) uint8: |L|

    def n_prefixes(self) -> int:
        return 1 << (self.n - self.b)


def _native_ctx(adj: list[int], deg: list[int], d: int, n: int, limit: int) -> _NativeCtx:
    if n > _NATIVE_MAX_VERTICES:
        raise ValueError(
            f"native backend packs rows into single uint64 words (n <= "
            f"{_NATIVE_MAX_VERTICES}); got {n}"
        )
    scan = _ScanCtx(adj, deg, d, n, limit)
    return _NativeCtx(
        n=n,
        b=scan.b,
        limit=limit,
        d=d,
        adj=np.array(adj, dtype=np.uint64),
        deg=np.array(deg, dtype=np.int64),
        low_cut=np.ascontiguousarray(scan.low_cut, dtype=np.int32),
        low_sizes=np.ascontiguousarray(scan.low_sizes, dtype=np.uint8),
    )


def _native_scan_span(
    ctx: _NativeCtx,
    p_lo: int,
    p_hi: int,
    best: tuple[float, int],
    shared_addr: int | None = None,
) -> tuple[float, int]:
    """One C-kernel call over prefixes ``[p_lo, p_hi)`` — same contract as
    :func:`_scan_span` (lexicographic best including the incoming seed)."""
    lib = _native.load()
    if lib is None:  # pragma: no cover - callers gate on availability first
        raise RuntimeError(
            "native exact backend unavailable: "
            f"{_native.native_build_error() or 'not loaded'}"
        )
    out_r = ctypes.c_double(math.inf)
    out_m = ctypes.c_uint64(0)
    rc = lib.repro_exact_scan(
        ctx.n,
        ctx.b,
        ctx.limit,
        ctx.d,
        ctx.adj.ctypes.data_as(ctypes.POINTER(ctypes.c_uint64)),
        ctx.deg.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)),
        ctx.low_cut.ctypes.data_as(ctypes.POINTER(ctypes.c_int32)),
        ctx.low_sizes.ctypes.data_as(ctypes.POINTER(ctypes.c_uint8)),
        p_lo,
        p_hi,
        best[0],
        best[1],
        shared_addr,
        ctypes.byref(out_r),
        ctypes.byref(out_m),
    )
    if rc != 0:
        raise MemoryError("native exact scan could not allocate its scratch tables")
    return float(out_r.value), int(out_m.value)


def _full_scan_native(
    adj: list[int], deg: list[int], d: int, n: int, limit: int, jobs: int
) -> tuple[float, int]:
    """:func:`_full_scan` on the C kernel — identical spans, pool, and merge."""
    ctx = _native_ctx(adj, deg, d, n, limit)
    best = _seed_singletons(_ScanCtx(adj, deg, d, n, limit))
    n_pref = ctx.n_prefixes()
    jobs = _span_jobs(jobs, n_pref)
    if jobs == 1:
        return _native_scan_span(ctx, 0, n_pref, best)
    return _pooled_span_scan("native", adj, deg, d, n, limit, n_pref, jobs, best)


# ---------------------------------------------------------------------- #
# the size-restricted combinatorial walk                                  #
# ---------------------------------------------------------------------- #


def _gosper_chunks(n: int, j: int, chunk: int) -> Iterator[np.ndarray]:
    """Yield uint64 arrays of all ``C(n, j)`` masks of popcount ``j``,
    in ascending order (Gosper's successor), ``chunk`` masks at a time."""
    m = (1 << j) - 1
    top = 1 << n
    buf: list[int] = []
    while m < top:
        buf.append(m)
        if len(buf) == chunk:
            yield np.array(buf, dtype=np.uint64)
            buf = []
        c = m & -m
        r = m + c
        m = (((r ^ m) >> 2) // c) | r
    if buf:
        yield np.array(buf, dtype=np.uint64)


def _bounded_scan(
    adj: list[int],
    deg: list[int],
    d: int,
    n: int,
    s_max: int,
    best: tuple[float, int],
) -> tuple[float, int]:
    """Minimum-ratio cut over the ``C(n, ≤s_max)`` subsets of size ≤ s_max.

    Vectorized over Gosper-ordered mask chunks: the boundary is
    ``vol(U) − Σ_{v∈U} |N(v) ∩ U|`` computed with packed-word popcounts, so
    the cost per subset is O(n/64) words, independent of |E|.
    """
    if n > 63:
        raise ValueError(
            "size-restricted exact walk supports at most 63 vertices "
            f"(got {n}); shard the graph or use the spectral sandwich"
        )
    adj64 = np.array([a for a in adj], dtype=np.uint64)
    deg64 = np.array(deg, dtype=np.int64)
    shifts = np.arange(n, dtype=np.uint64)
    one = np.uint64(1)
    best_r, best_m = best
    for j in range(1, s_max + 1):
        dj = d * j
        for masks in _gosper_chunks(n, j, 1 << 14):
            member = ((masks[:, None] >> shifts[None, :]) & one).astype(np.int64)
            inter = _popcount(masks[:, None] & adj64[None, :])
            bnd = member @ deg64 - (inter * member).sum(axis=1)
            ratios = bnd / dj
            i = int(np.argmin(ratios))
            r = float(ratios[i])
            m = int(masks[i])
            if r < best_r or (r == best_r and m < best_m):
                best_r, best_m = r, m
    return best_r, best_m


# ---------------------------------------------------------------------- #
# scalar Gray-code backends (independent implementations, cross-checked)  #
# ---------------------------------------------------------------------- #


def _gray_scan_py(
    adj: list[int], deg: list[int], d: int, n: int, limit: int
) -> tuple[float, int]:
    """Pure-Python binary-reflected Gray walk over all 2^n − 1 subsets.

    One vertex flips per step, so the boundary update is a single bitset
    intersection; candidates are pruned with ``boundary > d·|U|·h_best``
    before any division happens.
    """
    best_r, best_m = math.inf, 0
    cur = 0
    bnd = 0
    for i in range(1, 1 << n):
        nxt = i ^ (i >> 1)
        v = (cur ^ nxt).bit_length() - 1
        if (nxt >> v) & 1:  # v flipped in
            bnd += deg[v] - 2 * (adj[v] & cur).bit_count()
        else:  # v flipped out
            bnd -= deg[v] - 2 * (adj[v] & nxt).bit_count()
        cur = nxt
        s = cur.bit_count()
        if 1 <= s <= limit and bnd <= best_r * (d * s) + 1:
            r = bnd / (d * s)
            if r < best_r or (r == best_r and cur < best_m):
                best_r, best_m = r, cur
    return best_r, best_m


def _bounded_walk_py(
    adj: list[int], deg: list[int], d: int, n: int, s_max: int
) -> tuple[float, int]:
    """Pure-Python size-restricted walk: DFS over the subset lattice.

    Each step flips exactly one vertex into the current set (the
    revolving-door idea: C(n, ≤s) states, O(1) bitset work per transition),
    so exact ``h_s`` never touches the 2^n space.
    """
    best_r, best_m = math.inf, 0

    def rec(start: int, cur: int, bnd: int, size: int) -> None:
        nonlocal best_r, best_m
        for v in range(start, n):
            nb = bnd + deg[v] - 2 * (adj[v] & cur).bit_count()
            nm = cur | (1 << v)
            ns = size + 1
            r = nb / (d * ns)
            if r < best_r or (r == best_r and nm < best_m):
                best_r, best_m = r, nm
            if ns < s_max:
                rec(v + 1, nm, nb, ns)

    rec(0, 0, 0, 0)
    return best_r, best_m


# ---------------------------------------------------------------------- #
# public façade                                                           #
# ---------------------------------------------------------------------- #


def _comb_subsets(n: int, s: int) -> int:
    return sum(math.comb(n, j) for j in range(1, s + 1))


def exact_edge_expansion_v2(
    g: CDAG,
    max_size: int | None = None,
    *,
    jobs: int = 1,
    limit: int | None = None,
    backend: str = "auto",
) -> tuple[float, np.ndarray]:
    """Exact ``h(G)`` (or ``h_s`` when ``max_size`` is given) — ``(h, mask)``.

    Bit-identical to the seed enumerator on every input it could solve: the
    same ``h`` and the smallest minimizing subset mask.  ``jobs > 1`` shards
    the subset space over processes (identical results for any ``jobs``).
    ``backend`` selects ``"native"`` (the compiled C kernel), ``"bitset"``
    (vectorized numpy kernels), or ``"gray"`` (the scalar Gray-walk
    reference); ``"auto"`` picks native when the compiled library is
    importable and the graph fits single-word rows, bitset otherwise.  All
    backends return bit-identical ``(h, mask)``.
    """
    n = g.n_vertices
    if n < 2:
        raise ValueError("expansion undefined for graphs with < 2 vertices")
    # Per-call read, not the import-time constant: REPRO_EXACT_LIMIT flipped
    # at runtime must move this gate in lockstep with the auto-policy cache
    # keys (which already call effective_exact_limit()).
    lim = effective_exact_limit() if limit is None else limit
    if backend not in EXACT_BACKENDS:
        raise ValueError(f"unknown exact backend {backend!r}; choose from {EXACT_BACKENDS}")
    if backend == "native":
        if n > _NATIVE_MAX_VERTICES:
            raise ValueError(
                f"native backend packs rows into single uint64 words "
                f"(n <= {_NATIVE_MAX_VERTICES}); got {n}"
            )
        if not _native.native_available():
            raise RuntimeError(
                "native exact backend unavailable "
                f"({_native.native_build_error() or 'compile not attempted'}); "
                'use backend="bitset" or fix the C toolchain'
            )
    size_cap = n // 2 if max_size is None else min(max_size, n)
    if size_cap < 1:
        raise ValueError("max_size must be at least 1")
    d = g.max_degree
    if d == 0:
        # Edgeless graph: every ratio is 0/0; mirror the seed enumerator,
        # which reported NaN with the first singleton as witness.
        return math.nan, _mask_to_bool(1, n)
    adj = _adjacency_ints(g)
    deg = [int(x) for x in g.degree]

    restricted = max_size is not None
    comb_count = _comb_subsets(n, size_cap) if restricted else 0
    comb_feasible = restricted and comb_count <= COMB_SUBSET_LIMIT
    if n > lim:
        if not restricted:
            raise ValueError(
                f"exact enumeration limited to {lim} vertices; got {n} "
                "(pass max_size= for the size-restricted walk, or raise "
                "REPRO_EXACT_LIMIT)"
            )
        if not comb_feasible:
            raise ValueError(
                f"exact h_s infeasible: {n} vertices exceeds the enumeration "
                f"limit {lim} and C({n}, <={size_cap}) = {comb_count} exceeds "
                f"{COMB_SUBSET_LIMIT} subsets"
            )

    if backend == "gray":
        if restricted:
            r, m = _bounded_walk_py(adj, deg, d, n, size_cap)
        else:
            r, m = _gray_scan_py(adj, deg, d, n, n // 2)
        return r, _mask_to_bool(m, n)

    # Cost-based choice between the full doubling scan and the combinatorial
    # walk; both are exact and tie-break identically, so this is pure perf.
    # (The size-restricted walk shares the bitset machinery regardless of
    # backend — the native kernel only accelerates the full scan.)
    use_comb = comb_feasible and (n > lim or comb_count * n < (1 << n))
    if use_comb:
        if n > 63:  # beyond uint64 masks: the Python-int walk still works
            r, m = _bounded_walk_py(adj, deg, d, n, size_cap)
        else:
            r, m = _bounded_scan(adj, deg, d, n, size_cap, (math.inf, 0))
    elif backend == "native" or (
        backend == "auto" and n <= _NATIVE_MAX_VERTICES and _native.native_available()
    ):
        r, m = _full_scan_native(adj, deg, d, n, size_cap, jobs)
    else:
        r, m = _full_scan(adj, deg, d, n, size_cap, jobs)
    return r, _mask_to_bool(m, n)


def exact_small_set_expansion_v2(
    g: CDAG, s: int, *, jobs: int = 1, limit: int | None = None
) -> tuple[float, np.ndarray]:
    """Exact ``h_s(G)`` (Eq. 5) with its witness, via the size-restricted walk.

    Feasible far beyond the full-enumeration limit: a 40-vertex graph at
    ``s=3`` costs ``C(40, ≤3) ≈ 10^4`` evaluations, not ``2^40``.
    """
    return exact_edge_expansion_v2(g, max_size=s, jobs=jobs, limit=limit)
