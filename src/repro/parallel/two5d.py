"""The "2.5D" algorithm [Solomonik & Demmel 2011] — Table I row 3.

Interpolates between 2D and 3D with a replication factor ``1 ≤ c ≤ p^(1/3)``:
``p = q²·c`` processors as c layers of q×q grids, ``M = Θ(c·n²/p)`` words
each.  A and B are replicated across the c layers; each layer executes a
1/c slice of Cannon's shift rounds starting from a layer-specific offset;
C partials are reduced across layers.

Per-processor bandwidth ``Θ(n²/√(c·p))`` — at c=1 this *is* Cannon, at
c=p^(1/3) it matches 3D, which is the §6.1 story the E10 sweep reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.machine.collectives import broadcast_many, reduce_many, shift_many
from repro.machine.distmatrix import Grid2D, Grid3D, distribute_blocks, gather_blocks
from repro.machine.distributed import Machine, Message
from repro.parallel.cannon import ParallelResult

__all__ = ["two5d_multiply"]


def two5d_multiply(
    A: np.ndarray,
    B: np.ndarray,
    q: int,
    c: int,
    memory_limit: int | None = None,
) -> ParallelResult:
    """Run the 2.5D algorithm on c layers of q×q grids (p = q²·c).

    ``q`` must be divisible by ``c`` (each layer advances q/c of the q
    shift rounds; c=1 degenerates to Cannon with an explicit skew).
    """
    n = A.shape[0]
    if A.shape != B.shape or A.shape != (n, n):
        raise ValueError("A and B must be equal square matrices")
    if q % c != 0:
        raise ValueError(f"q={q} must be divisible by c={c}")
    grid = Grid3D(q, c)
    face = Grid2D(q)
    m = Machine(grid.p, memory_limit=memory_limit)
    b = n // q

    distribute_blocks(m, A, "A", face, layer_rank=lambda i, j: grid.rank(i, j, 0))
    distribute_blocks(m, B, "B", face, layer_rank=lambda i, j: grid.rank(i, j, 0))

    # Replicate A and B across the c layers (all fibers broadcast at once).
    fibers = [(grid.fiber(i, j), grid.fiber(i, j)[0]) for i in range(q) for j in range(q)]
    broadcast_many(m, fibers, "A", label="replA")
    broadcast_many(m, fibers, "B", label="replB")

    # Layer l performs Cannon rounds k = l·(q/c) .. (l+1)·(q/c) − 1.  The
    # alignment for its first round uses A_{i, j+i+l·q/c} and
    # B_{i+j+l·q/c, j}: a layer-dependent rotation, realized as one
    # permutation superstep across all layers (fully connected model).
    rounds = q // c
    if q > 1:
        msgs = []
        for l in range(c):
            off = l * rounds
            for i in range(q):
                for j in range(q):
                    src = grid.rank(i, j, l)
                    msgs.append(Message(src, grid.rank(i, j - i - off, l), "A", m.get(src, "A")))
        m.exchange(msgs, label="skewA")
        msgs = []
        for l in range(c):
            off = l * rounds
            for i in range(q):
                for j in range(q):
                    src = grid.rank(i, j, l)
                    msgs.append(Message(src, grid.rank(i - j - off, j, l), "B", m.get(src, "B")))
        m.exchange(msgs, label="skewB")

    for r in range(grid.p):
        m.put(r, "Cpart", np.zeros((b, b)))

    for k in range(rounds):
        for r in range(grid.p):
            Cp = m.get(r, "Cpart") + m.get(r, "A") @ m.get(r, "B")
            m.put(r, "Cpart", Cp)
            m.flop(r, 2 * b * b * b)
        m.end_compute_phase()
        if k < rounds - 1:
            shift_many(
                m,
                [[grid.rank(i, j, l) for j in range(q)] for l in range(c) for i in range(q)],
                "A", -1, label="shiftA",
            )
            shift_many(
                m,
                [[grid.rank(i, j, l) for i in range(q)] for l in range(c) for j in range(q)],
                "B", -1, label="shiftB",
            )

    # Reduce C partials across layers onto layer 0 (all fibers at once).
    reduce_many(m, fibers, "Cpart", "C", label="reduceC")

    C = gather_blocks(m, "C", face, n, layer_rank=lambda i, j: grid.rank(i, j, 0))
    return ParallelResult(C=C, machine=m, algorithm=f"2.5d(c={c})", n=n, p=grid.p)
