"""The "2.5D" algorithm [Solomonik & Demmel 2011] — Table I row 3.

Interpolates between 2D and 3D with a replication factor ``1 ≤ c ≤ p^(1/3)``:
``p = q²·c`` processors as c layers of q×q grids, ``M = Θ(c·n²/p)`` words
each.  A and B are replicated across the c layers; each layer executes a
1/c slice of Cannon's shift rounds starting from a layer-specific offset;
C partials are reduced across layers.

Per-processor bandwidth ``Θ(n²/√(c·p))`` — at c=1 this *is* Cannon, at
c=p^(1/3) it matches 3D, which is the §6.1 story the E10 sweep reproduces.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from repro.cdag.schemes import BilinearScheme
from repro.machine.collectives import broadcast_many, reduce_many, shift_many
from repro.machine.distmatrix import Grid2D, Grid3D, distribute_blocks, gather_blocks
from repro.machine.distributed import Machine, Message
from repro.parallel.base import (
    AnalyticCost,
    ParallelAlgorithm,
    check_block_divisibility,
    register_parallel,
    square_grid_side,
)

__all__ = ["Two5D"]


def _grid_side(name: str, p: int, c: int) -> int:
    """q with p = q²·c, or a clear error."""
    if c < 1:
        raise ValueError(f"{name}: replication factor must be >= 1 (got c={c})")
    if p < 1 or p % c != 0:
        raise ValueError(f"{name}: p={p} must be q²·c with c={c} dividing it")
    try:
        return square_grid_side(name, p // c)
    except ValueError:
        raise ValueError(
            f"{name}: p={p} is not q²·c for replication factor c={c} "
            f"(p/c={p // c} is not a perfect square)"
        ) from None


@register_parallel
class Two5D(ParallelAlgorithm):
    """c replicated layers of Cannon rounds — the tunable-memory algorithm."""

    name = "2.5d"
    algorithm_class = "classical"
    regime = "2.5D"
    requirement = "p = q²·c (c layers of a square grid), c | q, q | n"
    attains = "Ω(n²/(c^(1/2)·p^(1/2))) at M = Θ(c·n²/p)  [Table I row 3, classical]"
    supports_replication = True

    def validate(
        self, n: int, p: int, *, c: int = 1, scheme: BilinearScheme | None = None, **options: Any
    ) -> None:
        q = _grid_side(self.name, p, c)
        if q % c != 0:
            raise ValueError(
                f"{self.name}: grid side q={q} must be divisible by the "
                f"replication factor c={c} (each layer runs q/c shift rounds)"
            )
        check_block_divisibility(self.name, n, q)

    def analytic_costs(
        self, n: int, p: int, *, c: int = 1, scheme: BilinearScheme | None = None, **options: Any
    ) -> AnalyticCost:
        # Replication broadcasts + reduction: 3·⌈lg c⌉ supersteps of b²;
        # skew (2 × 2b²) + shifts (2(q/c − 1) × 2b²) = 4(q/c)·b² — at c=1
        # exactly Cannon's 4b²q.
        q = _grid_side(self.name, p, c)
        b2 = (n / q) ** 2
        lg = math.ceil(math.log2(c)) if c > 1 else 0
        shift_part = 4.0 * (q // c) if q > 1 else 0.0
        return AnalyticCost(
            words=(3.0 * lg + shift_part) * b2,
            messages=3.0 * lg + shift_part,
            memory=4.0 * b2,  # A, B, Cpart, C — b² = c·n²/p per block
        )

    def default_configs(
        self,
        n: int,
        p_max: int,
        cs: Sequence[int] = (1,),
        scheme: BilinearScheme | None = None,
    ) -> list[dict]:
        out = []
        for c in sorted(set(cs)):
            for q in range(2, math.isqrt(max(p_max // c, 0)) + 1):
                if n % q == 0 and q % c == 0 and q * q * c <= p_max:
                    out.append({"p": q * q * c, "c": c})
        return out

    def result_label(
        self, *, p: int, c: int = 1, scheme: BilinearScheme | None = None, **options: Any
    ) -> str:
        return f"2.5d(c={c})"

    def _execute(
        self,
        m: Machine,
        A: np.ndarray,
        B: np.ndarray,
        *,
        p: int,
        c: int,
        scheme: BilinearScheme | None,
        **options: Any,
    ) -> np.ndarray:
        n = A.shape[0]
        q = _grid_side(self.name, p, c)
        grid = Grid3D(q, c)
        face = Grid2D(q)
        b = n // q

        distribute_blocks(m, A, "A", face, layer_rank=lambda i, j: grid.rank(i, j, 0))
        distribute_blocks(m, B, "B", face, layer_rank=lambda i, j: grid.rank(i, j, 0))

        # Replicate A and B across the c layers (all fibers broadcast at once).
        fibers = [(grid.fiber(i, j), grid.fiber(i, j)[0]) for i in range(q) for j in range(q)]
        broadcast_many(m, fibers, "A", label="replA")
        broadcast_many(m, fibers, "B", label="replB")

        # Layer layer performs Cannon rounds k = layer·(q/c) .. (layer+1)·(q/c) − 1.  The
        # alignment for its first round uses A_{i, j+i+layer·q/c} and
        # B_{i+j+layer·q/c, j}: a layer-dependent rotation, realized as one
        # permutation superstep across all layers (fully connected model).
        rounds = q // c
        if q > 1:
            msgs = []
            for layer in range(c):
                off = layer * rounds
                for i in range(q):
                    for j in range(q):
                        src = grid.rank(i, j, layer)
                        msgs.append(
                            Message(src, grid.rank(i, j - i - off, layer), "A", m.get(src, "A"))
                        )
            m.exchange(msgs, label="skewA")
            msgs = []
            for layer in range(c):
                off = layer * rounds
                for i in range(q):
                    for j in range(q):
                        src = grid.rank(i, j, layer)
                        msgs.append(
                            Message(src, grid.rank(i - j - off, j, layer), "B", m.get(src, "B"))
                        )
            m.exchange(msgs, label="skewB")

        for r in range(grid.p):
            m.put(r, "Cpart", np.zeros((b, b)))

        for k in range(rounds):
            for r in range(grid.p):
                Cp = m.get(r, "Cpart") + m.get(r, "A") @ m.get(r, "B")
                m.put(r, "Cpart", Cp)
                m.flop(r, 2 * b * b * b)
            m.end_compute_phase()
            if k < rounds - 1:
                shift_many(
                    m,
                    [
                        [grid.rank(i, j, layer) for j in range(q)]
                        for layer in range(c)
                        for i in range(q)
                    ],
                    "A",
                    -1,
                    label="shiftA",
                )
                shift_many(
                    m,
                    [
                        [grid.rank(i, j, layer) for i in range(q)]
                        for layer in range(c)
                        for j in range(q)
                    ],
                    "B",
                    -1,
                    label="shiftB",
                )

        # Reduce C partials across layers onto layer 0 (all fibers at once).
        reduce_many(m, fibers, "Cpart", "C", label="reduceC")

        return gather_blocks(m, "C", face, n, layer_rank=lambda i, j: grid.rank(i, j, 0))
