"""CAPS — Communication-Avoiding Parallel Strassen [Ballard et al. 2011].

The algorithm the paper credits with *attaining* the Strassen-like cells of
Table I (up to O(log p)).  ``p = 7^ℓ`` processors execute the Strassen
recursion itself in parallel; each recursion step is one of:

* **BFS step** ("breadth-first"): the 7 subproblems run *simultaneously*,
  each on a disjoint 1/7 of the current processor group.  Requires a
  redistribution (the only communication!) and multiplies the per-processor
  memory footprint by 7/4 — the communication-cheap, memory-hungry choice.
* **DFS step** ("depth-first"): all processors cooperate on the 7
  subproblems *sequentially*.  No communication at all (linear combinations
  are local under the layout below), memory shrinks by 4 — the
  memory-lean, parallelism-deferring choice.

The schedule (a string like ``"DBB"``) interleaves them; with unlimited
memory all-BFS gives bandwidth ``Θ(n²/p^(2/ω₀))``, and prepending DFS steps
trades bandwidth for memory exactly along the ``(n/√M)^(ω₀)·M/p`` curve —
the E7/E10 experiments sweep this.

Data layout (the heart of CAPS): matrices are stored in *quadtree order*
(block-recursive flattening to leaf cells of size ``(n/2^depth)²``), and
each group of g processors owns the elements of its current block
**cyclically**: global quadtree position ``t`` lives on group rank
``t mod g``.  Consequences, each load-bearing:

* every quadrant of the current block is a *contiguous quarter* of the
  flattening whose cyclic pattern is identical across quadrants (requires
  ``g | (s/2)²``, enforced at construction) — so the Strassen linear
  combinations are purely local slice arithmetic;
* a BFS redistribution from cyclic-mod-g to cyclic-mod-(g/7) sends each
  processor's chunk of ``S_r``/``T_r`` to exactly *one* target processor,
  and the target interleaves the 7 chunks it receives (``out[w::7] = …``);
* at the base (g = 1) the processor holds one contiguous leaf cell in
  row-major order — a plain in-core multiply.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.cdag.schemes import BilinearScheme, get_scheme
from repro.machine.distributed import Machine, Message
from repro.parallel.base import (
    AnalyticCost,
    ParallelAlgorithm,
    ParallelConfig,
    register_parallel,
)
from repro.util.numutil import is_power_of

__all__ = [
    "Caps",
    "block_permutation",
    "quadtree_permutation",
    "validate_caps_geometry",
]


def block_permutation(n: int, depth: int, n0: int = 2) -> np.ndarray:
    """π with ``flat[t] = M.ravel()[π[t]]``: block-recursive flattening.

    ``depth`` levels of n₀×n₀ block splitting; leaf cells of size
    ``(n/n₀^depth)²`` are stored row-major.  ``n0=2`` is the classic
    quadtree order of CAPS; any square scheme's n₀ gives the analogous
    layout for its own recursion.
    """
    if n % (n0**depth) != 0:
        raise ValueError(f"n={n} not divisible by {n0}^{depth}")
    idx = np.arange(n * n, dtype=np.int64).reshape(n, n)

    def rec(block: np.ndarray, d: int) -> np.ndarray:
        if d == 0:
            return block.ravel()
        h = block.shape[0] // n0
        return np.concatenate(
            [
                rec(block[i * h : (i + 1) * h, j * h : (j + 1) * h], d - 1)
                for i in range(n0)
                for j in range(n0)
            ]
        )

    return rec(idx, depth)


def quadtree_permutation(n: int, depth: int) -> np.ndarray:
    """The n₀ = 2 (quadtree) special case of :func:`block_permutation`."""
    return block_permutation(n, depth, 2)


def validate_caps_geometry(
    n: int, p: int, schedule: str, scheme: BilinearScheme | str = "strassen"
) -> None:
    """Check the divisibility the cyclic-over-block-tree layout needs.

    At each step the current group of g processors must satisfy
    ``g | (s/n₀)²`` (block chunks align), and the final leaf must be a
    whole matrix on one processor.  The scheme supplies n₀ (block split)
    and t₀ (BFS fan-out); Strassen's 2 and 7 are the defaults.
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    n0, t0 = scheme.n0, scheme.t0
    ell = schedule.count("B")
    if t0**ell != p:
        raise ValueError(
            f"schedule {schedule!r} has {ell} BFS steps; needs {t0}^{ell} == p={p}"
        )
    g = p
    s = n
    for i, step in enumerate(schedule):
        if s % n0 != 0:
            raise ValueError(f"step {i}: size {s} not divisible by {n0}")
        block = (s // n0) * (s // n0)
        if block % g != 0:
            raise ValueError(
                f"step {i}: group size {g} does not divide (s/{n0})²={block} "
                f"(choose n as a multiple of {n0}^depth · {t0}^⌈ℓ/2⌉)"
            )
        s //= n0
        if step == "B":
            g //= t0
        elif step != "D":
            raise ValueError(f"schedule may contain only 'B'/'D', got {step!r}")
    if g != 1:
        raise ValueError("schedule must end with group size 1 (ℓ BFS steps)")


def _bfs_count(scheme: BilinearScheme, p: int) -> int:
    """ℓ with p = t₀^ℓ, or a clear error (the declared rank-count predicate)."""
    if not is_power_of(p, scheme.t0):
        raise ValueError(
            f"caps: p={p} must be a power of the scheme's rank t0={scheme.t0} "
            f"(p = t0^ℓ processor groups)"
        )
    ell = 0
    while scheme.t0**ell < p:
        ell += 1
    return ell


@register_parallel
class Caps(ParallelAlgorithm):
    """Scheme-driven BFS/DFS parallel recursion on the cyclic block-tree layout."""

    name = "caps"
    algorithm_class = "strassen-like"
    regime = "2D–3D (schedule-tunable)"
    requirement = "p = t₀^ℓ, square scheme, g | (s/n₀)² at every schedule step"
    attains = "Ω((n/√M)^ω₀·M/p), floor Ω(n²/p^(2/ω₀))  [Table I, Strassen-like]"
    uses_scheme = True
    default_scheme = "strassen"
    option_names = ("schedule",)

    def validate(
        self,
        n: int,
        p: int,
        *,
        c: int = 1,
        scheme: BilinearScheme | None = None,
        schedule: str | None = None,
        **options: Any,
    ) -> None:
        scheme = scheme if scheme is not None else get_scheme(self.default_scheme)
        if not scheme.is_square:
            raise ValueError(
                "the cyclic-over-block-tree CAPS layout needs a square scheme; "
                f"{scheme.name!r} has shape {scheme.shape}"
            )
        ell = _bfs_count(scheme, p)
        if schedule is None:
            schedule = "B" * ell
        validate_caps_geometry(n, p, schedule, scheme)

    def analytic_costs(
        self,
        n: int,
        p: int,
        *,
        c: int = 1,
        scheme: BilinearScheme | None = None,
        schedule: str | None = None,
        **options: Any,
    ) -> AnalyticCost:
        # Walk the schedule.  A BFS step at state (s, g) redistributes, per
        # rank, 2(t₀−1) chunks out and 2(t₀−1) lanes in forward plus
        # (t₀−1)·seg each way backward, seg = (s/n₀)²/g — 6(t₀−1)·seg words
        # and 6(t₀−1) messages (one lane per rank is a free self-send).  A
        # DFS step is communication-free but multiplies every later charge
        # by t₀ (the subproblems run sequentially).  This is *exact*: the
        # simulator's measured words equal it for every schedule.
        # Memory: parent input chunks stay live down the recursion, so the
        # peak is the chain Σ 2·(n²/p)·f_i of prefix footprint factors
        # (×t₀/n₀² per BFS, ÷n₀² per DFS) plus the leaf's a/b/c working set
        # and, per DFS step, its t₀ accumulated Q-chunks (within ~6% of
        # measured for every schedule).
        scheme = scheme if scheme is not None else get_scheme(self.default_scheme)
        t0, n0 = scheme.t0, scheme.n0
        ell = _bfs_count(scheme, p)
        if schedule is None:
            schedule = "B" * ell
        if set(schedule) - {"B", "D"}:
            raise ValueError(f"schedule may contain only 'B'/'D', got {schedule!r}")
        if schedule.count("B") != ell:
            raise ValueError(
                f"schedule {schedule!r} has {schedule.count('B')} BFS steps; "
                f"needs {ell} for p={p} = {t0}^{ell}"
            )
        words = msgs = 0.0
        s, g, mult = float(n), p, 1.0
        factor = 1.0
        chain = 2.0 * n * n / p      # level-0 A, B chunks
        dfs_extra = 0.0
        for step in schedule:
            seg = (s / n0) ** 2 / g
            if step == "B":
                words += mult * 6.0 * (t0 - 1) * seg
                msgs += mult * 6.0 * (t0 - 1)
                factor *= t0 / n0**2
                s /= n0
                g //= t0
            else:  # D
                factor /= n0**2
                mult *= t0
                s /= n0
                dfs_extra += t0 * seg
            chain += 2.0 * n * n / p * factor
        memory = chain + 2.0 * s * s + dfs_extra
        return AnalyticCost(words=words, messages=msgs, memory=memory)

    def analytic_flops(
        self,
        n: int,
        p: int,
        *,
        c: int = 1,
        scheme: BilinearScheme | None = None,
        schedule: str | None = None,
        **options: Any,
    ) -> float:
        # t₀^depth leaf multiplies of size (n/n₀^depth) split over p ranks;
        # each DFS step serializes a factor t₀ of them onto every rank.
        scheme = scheme if scheme is not None else get_scheme(self.default_scheme)
        if schedule is None:
            schedule = "B" * _bfs_count(scheme, p)
        depth = len(schedule)
        leaf = n / scheme.n0**depth
        return scheme.t0**depth * 2.0 * leaf**3 / p

    def default_configs(
        self,
        n: int,
        p_max: int,
        cs: Sequence[int] = (1,),
        scheme: BilinearScheme | None = None,
    ) -> list[dict]:
        scheme = scheme if scheme is not None else get_scheme(self.default_scheme)
        out = []
        ell = 1
        while scheme.t0**ell <= p_max:
            p = scheme.t0**ell
            try:
                validate_caps_geometry(n, p, "B" * ell, scheme)
            except ValueError:
                pass
            else:
                out.append({"p": p, "c": 1})
            ell += 1
        return out

    def plan_configs(
        self,
        n: int,
        p_max: int,
        cs: Sequence[int] = (1,),
        scheme: str | None = None,
    ) -> list[ParallelConfig]:
        """All-BFS plus DFS-prefixed schedules: the bandwidth↔memory knob.

        ``"B"·ℓ`` is the unlimited-memory point; each prepended DFS step
        trades a factor t₀ of bandwidth for a factor n₀² of footprint, so
        the planner sees the whole Table-I trade-off curve, not just its
        memory-hungry endpoint.
        """
        sch = self._resolve_scheme(scheme)
        assert sch is not None
        out = []
        for base in self.default_configs(n, p_max, cs=cs, scheme=sch):
            p = base["p"]
            ell = _bfs_count(sch, p)
            for dfs in range(3):
                schedule = "D" * dfs + "B" * ell
                try:
                    validate_caps_geometry(n, p, schedule, sch)
                except ValueError:
                    continue
                out.append(
                    ParallelConfig(n=n, p=p, scheme=sch.name, schedule=schedule)
                )
        return out

    def result_label(
        self,
        *,
        p: int,
        c: int = 1,
        scheme: BilinearScheme | None = None,
        schedule: str | None = None,
        **options: Any,
    ) -> str:
        scheme = scheme if scheme is not None else get_scheme(self.default_scheme)
        if schedule is None:
            schedule = "B" * _bfs_count(scheme, p)
        return f"caps({schedule})"

    def _execute(
        self,
        m: Machine,
        A: np.ndarray,
        B: np.ndarray,
        *,
        p: int,
        c: int,
        scheme: BilinearScheme | None,
        schedule: str | None = None,
        **options: Any,
    ) -> np.ndarray:
        n = A.shape[0]
        if schedule is None:
            schedule = "B" * _bfs_count(scheme, p)
        depth = len(schedule)

        perm = block_permutation(n, depth, scheme.n0)
        a_flat = A.ravel()[perm]
        b_flat = B.ravel()[perm]
        for r in range(p):
            m.put(r, "A", a_flat[r::p])
            m.put(r, "B", b_flat[r::p])

        _caps(m, list(range(p)), "A", "B", "C", n, schedule, 0, scheme)

        c_flat = np.empty(n * n)
        for r in range(p):
            c_flat[r::p] = m.get(r, "C")
        C = np.empty(n * n)
        C[perm] = c_flat
        return C.reshape(n, n)


def _lin_combo(m: Machine, rank: int, coeffs: np.ndarray, segments: list[np.ndarray]) -> np.ndarray:
    """Local linear combination of chunk segments (flops charged)."""
    out = None
    terms = 0
    for c, seg in zip(coeffs, segments):
        if c == 0:
            continue
        term = seg if c == 1 else c * seg
        out = term.copy() if out is None else out + term
        terms += 1
    if out is None:
        out = np.zeros_like(segments[0])
    if terms:
        m.flop(rank, terms * int(out.size))
    return out


def _caps(
    m: Machine,
    group: Sequence[int],
    key_a: str,
    key_b: str,
    key_c: str,
    s: int,
    schedule: str,
    si: int,
    scheme: BilinearScheme,
) -> None:
    g = len(group)
    if si == len(schedule):
        assert g == 1, "recursion must bottom out on a single processor"
        rank = group[0]
        a = m.get(rank, key_a).reshape(s, s)
        b = m.get(rank, key_b).reshape(s, s)
        c = a @ b
        m.flop(rank, 2 * s * s * s - s * s)
        m.put(rank, key_c, c.ravel())
        return
    t0 = scheme.t0
    n0 = scheme.n0
    c0 = scheme.c_blocks                  # blocks per matrix (n0² square)
    seg = (s // n0) * (s // n0) // g      # per-rank words of one block
    step = schedule[si]

    if step == "D":
        # All processors walk the t0 subproblems together; zero communication.
        q_keys = []
        for r in range(t0):
            ka, kb, kq = f"{key_a}.s{r}", f"{key_b}.t{r}", f"{key_c}.q{r}"
            for rank in group:
                a_chunk = m.get(rank, key_a)
                b_chunk = m.get(rank, key_b)
                a_segs = [a_chunk[q * seg : (q + 1) * seg] for q in range(c0)]
                b_segs = [b_chunk[q * seg : (q + 1) * seg] for q in range(c0)]
                m.put(rank, ka, _lin_combo(m, rank, scheme.U[r], a_segs))
                m.put(rank, kb, _lin_combo(m, rank, scheme.V[r], b_segs))
            _caps(m, group, ka, kb, kq, s // n0, schedule, si + 1, scheme)
            for rank in group:
                m.delete(rank, ka)
                m.delete(rank, kb)
            q_keys.append(kq)
        for rank in group:
            q_chunks = [m.get(rank, kq) for kq in q_keys]
            out = np.concatenate(
                [_lin_combo(m, rank, scheme.W[q], q_chunks) for q in range(c0)]
            )
            m.put(rank, key_c, out)
        for rank in group:
            for kq in q_keys:
                m.delete(rank, kq)
        return

    # --- BFS step -------------------------------------------------------
    gsub = g // t0
    subgroups = [group[r * gsub : (r + 1) * gsub] for r in range(t0)]

    # 1. Local encode: all S_r, T_r chunks.
    for rank in group:
        a_chunk = m.get(rank, key_a)
        b_chunk = m.get(rank, key_b)
        a_segs = [a_chunk[q * seg : (q + 1) * seg] for q in range(c0)]
        b_segs = [b_chunk[q * seg : (q + 1) * seg] for q in range(c0)]
        for r in range(t0):
            m.put(rank, f"__S{r}", _lin_combo(m, rank, scheme.U[r], a_segs))
            m.put(rank, f"__T{r}", _lin_combo(m, rank, scheme.V[r], b_segs))

    # 2. Redistribute: S_r/T_r go from cyclic-mod-g to cyclic-mod-gsub on
    #    subgroup r.  Each source chunk lands on exactly one target.
    msgs = []
    for a_idx, rank in enumerate(group):
        tgt_pos = a_idx % gsub
        for r in range(t0):
            src_lane = a_idx // gsub    # which of the t0 interleaved lanes
            tgt = subgroups[r][tgt_pos]
            msgs.append(Message(rank, tgt, f"__Sin{r}.{src_lane}", m.get(rank, f"__S{r}")))
            msgs.append(Message(rank, tgt, f"__Tin{r}.{src_lane}", m.get(rank, f"__T{r}")))
    m.exchange(msgs, label=f"caps-bfs-fwd@{si}")
    for rank in group:
        for r in range(t0):
            m.delete(rank, f"__S{r}")
            m.delete(rank, f"__T{r}")

    # 3. Assemble subproblem inputs on each subgroup: element t of S_r sat
    #    at parent position t mod g = b + lane·gsub, so the child's chunk
    #    (length (s/n0)²/gsub = t0·seg) interleaves the t0 received lanes.
    for r in range(t0):
        for b_idx, rank in enumerate(subgroups[r]):
            out_s = np.empty(t0 * seg)
            out_t = np.empty(t0 * seg)
            for lane in range(t0):
                out_s[lane::t0] = m.pop(rank, f"__Sin{r}.{lane}")
                out_t[lane::t0] = m.pop(rank, f"__Tin{r}.{lane}")
            m.put(rank, f"{key_a}.s{r}", out_s)
            m.put(rank, f"{key_b}.t{r}", out_t)

    # 4. Recurse on all subgroups *in parallel*.
    with m.parallel() as par:
        for r in range(t0):
            with par.branch():
                _caps(
                    m,
                    subgroups[r],
                    f"{key_a}.s{r}",
                    f"{key_b}.t{r}",
                    f"{key_c}.q{r}",
                    s // n0,
                    schedule,
                    si + 1,
                    scheme,
                )
    for r in range(t0):
        for rank in subgroups[r]:
            m.delete(rank, f"{key_a}.s{r}")
            m.delete(rank, f"{key_b}.t{r}")

    # 5. Inverse redistribution: parent position a needs Q_r elements
    #    t ≡ a (mod g): the slice [w::t0] of child (a mod gsub)'s chunk,
    #    where w = a // gsub.
    msgs = []
    for r in range(t0):
        for b_idx, rank in enumerate(subgroups[r]):
            q_chunk = m.get(rank, f"{key_c}.q{r}")
            for lane in range(t0):
                parent = group[lane * gsub + b_idx]
                msgs.append(Message(rank, parent, f"__Qin{r}", q_chunk[lane::t0]))
    m.exchange(msgs, label=f"caps-bfs-bwd@{si}")
    for r in range(t0):
        for rank in subgroups[r]:
            m.delete(rank, f"{key_c}.q{r}")

    # 6. Local decode into C chunks (each parent got exactly one __Qin{r}
    #    message per subproblem, from child position a mod gsub of group r).
    for a_idx, rank in enumerate(group):
        q_chunks = [m.pop(rank, f"__Qin{r}") for r in range(t0)]
        out = np.concatenate(
            [_lin_combo(m, rank, scheme.W[q], q_chunks) for q in range(c0)]
        )
        m.put(rank, key_c, out)
