"""Parallel algorithms on the simulated machine: Table I's attaining algorithms.

All five algorithms live in one registry behind a uniform
``run(A, B, *, p, c=1, memory_limit=None, scheme=None)`` entry point::

    from repro.parallel import get_parallel, run_parallel, available_parallel

    r = run_parallel("2.5d", A, B, p=32, c=2)     # ParallelResult
    get_parallel("caps").analytic_costs(56, 49)   # declared cost formulas

The classic per-algorithm functions (``cannon_multiply`` etc.) remain as
thin wrappers over the registry.
"""

from repro.parallel.base import (
    AnalyticCost,
    ParallelAlgorithm,
    ParallelResult,
    available_parallel,
    get_parallel,
    register_parallel,
    run_parallel,
)
from repro.parallel.cannon import cannon_multiply
from repro.parallel.summa import summa_multiply
from repro.parallel.threed import threed_multiply
from repro.parallel.two5d import two5d_multiply
from repro.parallel.caps import caps_multiply, quadtree_permutation, validate_caps_geometry

__all__ = [
    "AnalyticCost",
    "ParallelAlgorithm",
    "ParallelResult",
    "available_parallel",
    "get_parallel",
    "register_parallel",
    "run_parallel",
    "cannon_multiply",
    "summa_multiply",
    "threed_multiply",
    "two5d_multiply",
    "caps_multiply",
    "quadtree_permutation",
    "validate_caps_geometry",
]
