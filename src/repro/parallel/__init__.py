"""Parallel algorithms on the simulated machine: Table I's attaining algorithms.

All five algorithms live in one registry behind the planner-first split
API — a pure cost estimate and a simulation, both driven by one frozen
:class:`ParallelConfig` record::

    from repro.parallel import ParallelConfig, get_parallel

    cfg = ParallelConfig(n=56, p=49, scheme="strassen")
    get_parallel("caps").estimate(cfg)          # AnalyticCost — no arrays
    get_parallel("caps").execute(A, B, cfg)     # ParallelResult — simulation

``run(A, B, p=...)`` remains as a compatibility shim over ``execute``
(positional use warns once per algorithm); the legacy per-algorithm
``*_multiply`` wrappers are gone.
"""

from repro.parallel.base import (
    AnalyticCost,
    ParallelAlgorithm,
    ParallelConfig,
    ParallelResult,
    available_parallel,
    get_parallel,
    register_parallel,
    run_parallel,
)
from repro.parallel.caps import quadtree_permutation, validate_caps_geometry

__all__ = [
    "AnalyticCost",
    "ParallelAlgorithm",
    "ParallelConfig",
    "ParallelResult",
    "available_parallel",
    "get_parallel",
    "register_parallel",
    "run_parallel",
    "quadtree_permutation",
    "validate_caps_geometry",
]
