"""Parallel algorithms on the simulated machine: Table I's attaining algorithms."""

from repro.parallel.cannon import ParallelResult, cannon_multiply
from repro.parallel.summa import summa_multiply
from repro.parallel.threed import threed_multiply
from repro.parallel.two5d import two5d_multiply
from repro.parallel.caps import caps_multiply, quadtree_permutation, validate_caps_geometry

__all__ = [
    "ParallelResult", "cannon_multiply", "summa_multiply", "threed_multiply",
    "two5d_multiply", "caps_multiply", "quadtree_permutation",
    "validate_caps_geometry",
]
