"""SUMMA — broadcast-based 2D matrix multiplication (van de Geijn & Watts).

The other canonical "2D" algorithm: same minimal memory as Cannon, but the
k-th step broadcasts A's k-th block column along grid rows and B's k-th
block row along grid columns.  Bandwidth ``Θ(n²·lg q/√p)`` with tree
broadcasts — the lg factor over Cannon is visible in the E6 table, a nice
demonstration that *attaining* a lower bound is a property of the specific
algorithm, not the memory regime.
"""

from __future__ import annotations

import numpy as np

from repro.machine.collectives import broadcast_many
from repro.machine.distmatrix import Grid2D, distribute_blocks, gather_blocks
from repro.machine.distributed import Machine
from repro.parallel.cannon import ParallelResult

__all__ = ["summa_multiply"]


def summa_multiply(A: np.ndarray, B: np.ndarray, q: int, memory_limit: int | None = None) -> ParallelResult:
    """Run SUMMA on a q×q simulated grid (block-sized panels, q rounds)."""
    n = A.shape[0]
    if A.shape != B.shape or A.shape != (n, n):
        raise ValueError("A and B must be equal square matrices")
    grid = Grid2D(q)
    m = Machine(grid.p, memory_limit=memory_limit)
    distribute_blocks(m, A, "A", grid)
    distribute_blocks(m, B, "B", grid)
    b = n // q
    for r in range(grid.p):
        m.put(r, "C", np.zeros((b, b)))

    for k in range(q):
        # Broadcast A[:, k] along every row and B[k, :] along every column
        # (all q row-broadcasts proceed simultaneously, likewise columns).
        for i in range(q):
            root = grid.rank(i, k)
            m.put(root, "Apanel", m.get(root, "A"))
        broadcast_many(m, [(grid.row(i), grid.rank(i, k)) for i in range(q)],
                       "Apanel", label="bcastA")
        for j in range(q):
            root = grid.rank(k, j)
            m.put(root, "Bpanel", m.get(root, "B"))
        broadcast_many(m, [(grid.col(j), grid.rank(k, j)) for j in range(q)],
                       "Bpanel", label="bcastB")
        for r in range(grid.p):
            Cblk = m.get(r, "C") + m.get(r, "Apanel") @ m.get(r, "Bpanel")
            m.put(r, "C", Cblk)
            m.flop(r, 2 * b * b * b)
            m.delete(r, "Apanel")
            m.delete(r, "Bpanel")
        m.end_compute_phase()

    C = gather_blocks(m, "C", grid, n)
    return ParallelResult(C=C, machine=m, algorithm="summa", n=n, p=grid.p)
