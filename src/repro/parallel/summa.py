"""SUMMA — broadcast-based 2D matrix multiplication (van de Geijn & Watts).

The other canonical "2D" algorithm: same minimal memory as Cannon, but the
k-th step broadcasts A's k-th block column along grid rows and B's k-th
block row along grid columns.  Bandwidth ``Θ(n²·lg q/√p)`` with tree
broadcasts — the lg factor over Cannon is visible in the E6 table, a nice
demonstration that *attaining* a lower bound is a property of the specific
algorithm, not the memory regime.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from repro.cdag.schemes import BilinearScheme
from repro.machine.collectives import broadcast_many
from repro.machine.distmatrix import Grid2D, distribute_blocks, gather_blocks
from repro.machine.distributed import Machine
from repro.parallel.base import (
    AnalyticCost,
    ParallelAlgorithm,
    check_block_divisibility,
    register_parallel,
    square_grid_side,
)

__all__ = ["Summa"]


@register_parallel
class Summa(ParallelAlgorithm):
    """Row/column broadcast 2D algorithm — pays a lg q factor over Cannon."""

    name = "summa"
    algorithm_class = "classical"
    regime = "2D"
    requirement = "p = q² (square grid), q | n"
    attains = "O(n²·lg p/p^(1/2)) at M = Θ(n²/p)  [2D cell up to the lg factor]"

    def validate(
        self, n: int, p: int, *, c: int = 1, scheme: BilinearScheme | None = None, **options: Any
    ) -> None:
        q = square_grid_side(self.name, p)
        check_block_divisibility(self.name, n, q)

    def analytic_costs(
        self, n: int, p: int, *, c: int = 1, scheme: BilinearScheme | None = None, **options: Any
    ) -> AnalyticCost:
        # Per round k: two batched binomial broadcasts of one b² panel each,
        # ⌈lg q⌉ supersteps apiece with critical charge b² (disjoint
        # sender/receiver sets within a superstep); q rounds total.
        q = math.isqrt(p)
        b2 = (n / q) ** 2
        lg = math.ceil(math.log2(q)) if q > 1 else 0
        return AnalyticCost(
            words=2.0 * q * lg * b2,
            messages=2.0 * q * lg,
            memory=5.0 * b2,  # A, B, C + the two in-flight panels
        )

    def default_configs(
        self,
        n: int,
        p_max: int,
        cs: Sequence[int] = (1,),
        scheme: BilinearScheme | None = None,
    ) -> list[dict]:
        return [
            {"p": q * q, "c": 1}
            for q in range(2, math.isqrt(p_max) + 1)
            if n % q == 0
        ]

    def _execute(
        self,
        m: Machine,
        A: np.ndarray,
        B: np.ndarray,
        *,
        p: int,
        c: int,
        scheme: BilinearScheme | None,
        **options: Any,
    ) -> np.ndarray:
        n = A.shape[0]
        q = math.isqrt(p)
        grid = Grid2D(q)
        distribute_blocks(m, A, "A", grid)
        distribute_blocks(m, B, "B", grid)
        b = n // q
        for r in range(grid.p):
            m.put(r, "C", np.zeros((b, b)))

        for k in range(q):
            # Broadcast A[:, k] along every row and B[k, :] along every
            # column (all q row-broadcasts proceed simultaneously, likewise
            # columns).
            for i in range(q):
                root = grid.rank(i, k)
                m.put(root, "Apanel", m.get(root, "A"))
            broadcast_many(m, [(grid.row(i), grid.rank(i, k)) for i in range(q)],
                           "Apanel", label="bcastA")
            for j in range(q):
                root = grid.rank(k, j)
                m.put(root, "Bpanel", m.get(root, "B"))
            broadcast_many(m, [(grid.col(j), grid.rank(k, j)) for j in range(q)],
                           "Bpanel", label="bcastB")
            for r in range(grid.p):
                Cblk = m.get(r, "C") + m.get(r, "Apanel") @ m.get(r, "Bpanel")
                m.put(r, "C", Cblk)
                m.flop(r, 2 * b * b * b)
                m.delete(r, "Apanel")
                m.delete(r, "Bpanel")
            m.end_compute_phase()

        return gather_blocks(m, "C", grid, n)
