"""One abstraction for every parallel algorithm: registry + uniform driver.

Table I of the paper is a statement about *which algorithm attains which
bound in which memory regime*; answering it experimentally requires running
every algorithm through one interface.  This module provides that
interface, mirroring the bilinear-scheme registry in
:mod:`repro.cdag.schemes`:

* :class:`ParallelConfig` — one frozen record naming a configuration
  ``(n, p, c, scheme, schedule, memory_limit)``; it replaces the loose
  kwarg soup that used to flow through ``run(A, B, *, p, c=1, ...)``.
* :class:`ParallelAlgorithm` — the protocol every algorithm implements:
  a declared **validity predicate** (``validate``: square grid, cube,
  replication factor c, rank count t₀^ℓ, block divisibility), declared
  **analytic cost formulas** (``analytic_costs`` / ``analytic_flops``),
  and the planner-first split entry points:

  - ``estimate(cfg, topology=None) -> AnalyticCost`` — *pure*: closed-form
    per-processor words/messages/memory/flops, optionally checked against
    a :class:`~repro.topology.Topology`'s capacity.  Never touches numpy
    arrays or the simulator (checker RC203 enforces this).
  - ``execute(A, B, cfg, verify=False) -> ParallelResult`` — the
    simulation, semantics unchanged from the historical ``run``.

* ``@register_parallel`` / :func:`get_parallel` /
  :func:`available_parallel` — the registry (``cannon``, ``summa``, ``3d``,
  ``2.5d``, ``caps``).
* :class:`ParallelResult` — the shared result record (critical-path words,
  messages, α–β time, per-rank memory peaks), promoted here so sibling
  algorithms stop importing it from ``parallel/cannon.py``.

``run(A, B, p=...)`` remains as a thin compatibility shim over
``execute``; positional use beyond ``(A, B)`` is deprecated and warns once
per algorithm.
"""

from __future__ import annotations

import abc
import math
import warnings
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.cdag.schemes import BilinearScheme, get_scheme
from repro.machine.distributed import Machine
from repro.topology import Topology

__all__ = [
    "AnalyticCost",
    "ParallelAlgorithm",
    "ParallelConfig",
    "ParallelResult",
    "available_parallel",
    "get_parallel",
    "register_parallel",
    "run_parallel",
]


@dataclass(frozen=True)
class AnalyticCost:
    """Declared closed-form per-processor costs of one configuration.

    The formulas are derived from the algorithm's actual superstep
    structure (with explicit constants, not bare Θ-shapes), so a measured
    run should land within a small constant factor of each field — tests
    and the scaling sweep assert exactly that.
    """

    words: float      # critical-path bandwidth
    messages: float   # critical-path latency
    memory: float     # per-rank peak footprint
    flops: float = 0.0  # critical-path arithmetic (leading term)

    def as_dict(self) -> dict[str, float]:
        return {
            "words": self.words,
            "messages": self.messages,
            "memory": self.memory,
            "flops": self.flops,
        }


@dataclass(frozen=True)
class ParallelConfig:
    """One fully-named parallel configuration.

    Frozen and hashable so planner rows, cache keys, and test
    parametrizations can carry configurations by value.  ``scheme`` and
    ``schedule`` are plain strings (resolved at use time); ``estimate``
    and ``execute`` both consume this record.
    """

    n: int
    p: int
    c: int = 1
    scheme: str | None = None
    schedule: str | None = None
    memory_limit: int | None = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"ParallelConfig: n must be >= 1 (got {self.n})")
        if self.p < 1:
            raise ValueError(f"ParallelConfig: p must be >= 1 (got {self.p})")
        if self.c < 1:
            raise ValueError(f"ParallelConfig: c must be >= 1 (got {self.c})")
        if self.memory_limit is not None and self.memory_limit < 1:
            raise ValueError(
                f"ParallelConfig: memory_limit must be >= 1 or None "
                f"(got {self.memory_limit})"
            )

    def options(self) -> dict[str, Any]:
        """Algorithm-specific extras in ``**options`` form (CAPS schedule)."""
        return {} if self.schedule is None else {"schedule": self.schedule}

    def as_dict(self) -> dict[str, Any]:
        return {
            "n": self.n,
            "p": self.p,
            "c": self.c,
            "scheme": self.scheme,
            "schedule": self.schedule,
            "memory_limit": self.memory_limit,
        }


@dataclass(frozen=True)
class ParallelResult:
    """Outcome of one simulated parallel run."""

    C: np.ndarray
    machine: Machine
    algorithm: str
    n: int
    p: int
    c: int = 1
    scheme_name: str | None = None
    analytic: AnalyticCost | None = None
    verified: bool | None = None

    @property
    def critical_words(self) -> int:
        return self.machine.critical_words

    @property
    def critical_messages(self) -> int:
        return self.machine.critical_messages

    @property
    def max_mem_peak(self) -> int:
        return self.machine.max_mem_peak

    @property
    def mem_peaks(self) -> tuple[int, ...]:
        """Per-rank peak local-memory words (index = rank)."""
        return tuple(int(x) for x in self.machine.mem_peak)

    def time(self, alpha: float = 1.0, beta: float = 1.0) -> float:
        """α–β critical-path time ``Σ_steps max_r (α·msgs_r + β·words_r)``."""
        return self.machine.time(alpha, beta)

    def time_on(self, topology: Topology) -> float:
        """Critical-path time under a topology's effective tier parameters."""
        alpha, beta = topology.effective_alpha_beta(self.p)
        return self.machine.time(alpha, beta)

    def summary(self) -> dict:
        """Headline numbers for experiment tables."""
        out = {
            "algorithm": self.algorithm,
            "n": self.n,
            "p": self.p,
            "c": self.c,
            "critical_words": self.critical_words,
            "critical_messages": self.critical_messages,
            "max_mem_peak": self.max_mem_peak,
            "time": self.time(),
        }
        if self.scheme_name is not None:
            out["scheme"] = self.scheme_name
        if self.verified is not None:
            out["verified"] = self.verified
        return out


# ---------------------------------------------------------------------- #
# the protocol                                                            #
# ---------------------------------------------------------------------- #


class ParallelAlgorithm(abc.ABC):
    """A registered parallel matrix-multiplication algorithm.

    Subclasses declare classification metadata (``algorithm_class``,
    ``regime``, ``requirement``, ``attains``), a validity predicate, the
    analytic cost formulas, and the superstep kernel ``_execute``; the
    shared :meth:`run` driver does everything else.
    """

    name: str = "?"
    algorithm_class: str = "classical"     # "classical" | "strassen-like"
    regime: str = "2D"                     # Table I memory regime it lives in
    requirement: str = ""                  # human-readable validity predicate
    attains: str = ""                      # the bound the paper credits it with
    supports_replication: bool = False     # accepts c > 1
    uses_scheme: bool = False              # recursion driven by a BilinearScheme
    default_scheme: str | None = None
    option_names: tuple[str, ...] = ()     # extra run() keywords this algorithm takes

    # -- declared predicates and formulas ------------------------------- #

    def omega0(self, scheme: BilinearScheme | None = None) -> float:
        """The exponent governing this algorithm's bounds (3 for classical)."""
        if self.uses_scheme and scheme is not None:
            return scheme.omega0
        return 3.0

    @abc.abstractmethod
    def validate(
        self,
        n: int,
        p: int,
        *,
        c: int = 1,
        scheme: BilinearScheme | None = None,
        **options: Any,
    ) -> None:
        """Raise ``ValueError`` when (n, p, c, scheme) is not runnable."""

    def is_valid(
        self,
        n: int,
        p: int,
        *,
        c: int = 1,
        scheme: BilinearScheme | str | None = None,
        **options: Any,
    ) -> bool:
        """Predicate form of :meth:`validate`."""
        try:
            self.validate(n, p, c=c, scheme=self._resolve_scheme(scheme), **options)
        except ValueError:
            return False
        return True

    @abc.abstractmethod
    def analytic_costs(
        self,
        n: int,
        p: int,
        *,
        c: int = 1,
        scheme: BilinearScheme | None = None,
        **options: Any,
    ) -> AnalyticCost:
        """Declared per-processor (words, messages, memory) formulas."""

    def analytic_flops(
        self,
        n: int,
        p: int,
        *,
        c: int = 1,
        scheme: BilinearScheme | None = None,
        **options: Any,
    ) -> float:
        """Per-processor critical-path flops, leading term (classical: 2n³/p)."""
        return 2.0 * float(n) ** 3 / p

    def default_configs(
        self,
        n: int,
        p_max: int,
        cs: Sequence[int] = (1,),
        scheme: BilinearScheme | None = None,
    ) -> list[dict]:
        """Valid ``{"p": ..., "c": ...}`` configurations with ``p ≤ p_max``."""
        return []

    def plan_configs(
        self,
        n: int,
        p_max: int,
        cs: Sequence[int] = (1,),
        scheme: str | None = None,
    ) -> list[ParallelConfig]:
        """Candidate :class:`ParallelConfig` records for the auto-scheduler.

        The default wraps :meth:`default_configs`; algorithms with extra
        schedule dimensions (CAPS) override this to expose them to the
        planner's search space.
        """
        sch = self._resolve_scheme(scheme) if self.uses_scheme else None
        scheme_name = sch.name if sch is not None else None
        return [
            ParallelConfig(
                n=n,
                p=cfg["p"],
                c=cfg.get("c", 1),
                scheme=scheme_name,
                schedule=cfg.get("schedule"),
            )
            for cfg in self.default_configs(n, p_max, cs=cs, scheme=sch)
        ]

    def estimate(
        self, cfg: ParallelConfig, topology: Topology | None = None
    ) -> AnalyticCost:
        """Pure cost estimate of one configuration — no arrays, no simulator.

        Validates the configuration (and, when a topology is given, that
        its device set can seat ``cfg.p`` ranks), then evaluates the
        declared closed-form cost model.  This is the planner's inner
        loop: it must stay array-free (checker RC203 enforces the purity
        contract on every registered algorithm).
        """
        options = cfg.options()
        self._check_options("estimate", options)
        sch = self._resolve_scheme(cfg.scheme)
        if not self.supports_replication and cfg.c != 1:
            raise ValueError(
                f"{self.name} has no replication factor (got c={cfg.c}); "
                "only 2.5D-style algorithms accept c > 1"
            )
        if topology is not None:
            topology.validate_p(cfg.p)
        self.validate(cfg.n, cfg.p, c=cfg.c, scheme=sch, **options)
        return self._full_analytic(cfg.n, cfg.p, c=cfg.c, scheme=sch, **options)

    # -- execution ------------------------------------------------------- #

    @abc.abstractmethod
    def _execute(
        self,
        m: Machine,
        A: np.ndarray,
        B: np.ndarray,
        *,
        p: int,
        c: int,
        scheme: BilinearScheme | None,
        **options: Any,
    ) -> np.ndarray:
        """The algorithm's supersteps; returns the gathered C."""

    def result_label(
        self, *, p: int, c: int = 1, scheme: BilinearScheme | None = None, **options: Any
    ) -> str:
        """The ``ParallelResult.algorithm`` label (subclasses may refine)."""
        return self.name

    def _resolve_scheme(
        self, scheme: BilinearScheme | str | None
    ) -> BilinearScheme | None:
        if not self.uses_scheme:
            if scheme is not None:
                raise ValueError(
                    f"{self.name} is not scheme-driven; do not pass scheme="
                )
            return None
        if scheme is None:
            scheme = self.default_scheme
        return get_scheme(scheme) if isinstance(scheme, str) else scheme

    def _full_analytic(
        self,
        n: int,
        p: int,
        *,
        c: int = 1,
        scheme: BilinearScheme | None = None,
        **options: Any,
    ) -> AnalyticCost:
        """Declared costs with the flop term filled in."""
        base = self.analytic_costs(n, p, c=c, scheme=scheme, **options)
        return AnalyticCost(
            words=base.words,
            messages=base.messages,
            memory=base.memory,
            flops=self.analytic_flops(n, p, c=c, scheme=scheme, **options),
        )

    def _check_options(self, entry: str, options: dict[str, Any]) -> None:
        """Reject extras outside the declared ``option_names``.

        A typo'd keyword cannot be silently swallowed by the ``**options``
        plumbing, and a schedule handed to a schedule-free algorithm fails
        loudly instead of being ignored.
        """
        unknown = set(options) - set(self.option_names)
        if unknown:
            raise TypeError(
                f"{self.name}.{entry}() got unexpected option(s) {sorted(unknown)}; "
                f"accepted: {sorted(self.option_names) or 'none'}"
            )

    def execute(
        self,
        A: np.ndarray,
        B: np.ndarray,
        cfg: ParallelConfig,
        *,
        verify: bool = False,
    ) -> ParallelResult:
        """Simulate one configuration: validate, run supersteps, assemble.

        Semantics are the historical ``run`` driver's, unchanged: input
        shape checks, validity checking, ``Machine`` construction,
        flop-phase flushing, optional verification against ``A @ B``, and
        result assembly with the declared analytic costs attached.
        """
        options = cfg.options()
        self._check_options("execute", options)
        A = np.ascontiguousarray(A, dtype=np.float64)
        B = np.ascontiguousarray(B, dtype=np.float64)
        if A.ndim != 2 or A.shape[0] != A.shape[1] or A.shape != B.shape:
            raise ValueError("A and B must be equal square matrices")
        n = A.shape[0]
        if n != cfg.n:
            raise ValueError(
                f"{self.name}.execute(): cfg.n={cfg.n} does not match the "
                f"operands' n={n}"
            )
        sch = self._resolve_scheme(cfg.scheme)
        p, c = cfg.p, cfg.c
        if not self.supports_replication and c != 1:
            raise ValueError(
                f"{self.name} has no replication factor (got c={c}); "
                "only 2.5D-style algorithms accept c > 1"
            )
        self.validate(n, p, c=c, scheme=sch, **options)
        m = Machine(p, memory_limit=cfg.memory_limit)
        C = self._execute(m, A, B, p=p, c=c, scheme=sch, **options)
        m.end_compute_phase()
        verified = bool(np.allclose(C, A @ B, rtol=1e-9, atol=1e-9)) if verify else None
        return ParallelResult(
            C=C,
            machine=m,
            algorithm=self.result_label(p=p, c=c, scheme=sch, **options),
            n=n,
            p=p,
            c=c,
            scheme_name=sch.name if sch is not None else None,
            analytic=self._full_analytic(n, p, c=c, scheme=sch, **options),
            verified=verified,
        )

    def run(
        self,
        A: np.ndarray,
        B: np.ndarray,
        *args: Any,
        p: int | None = None,
        c: int = 1,
        memory_limit: int | None = None,
        scheme: BilinearScheme | str | None = None,
        verify: bool = False,
        **options: Any,
    ) -> ParallelResult:
        """Compatibility shim over :meth:`execute`.

        Keyword use (``run(A, B, p=16)``) stays supported; positional
        extras (``run(A, B, 16)``) are deprecated and warn once per
        algorithm.  New code should build a :class:`ParallelConfig` and
        call :meth:`execute` directly.
        """
        if args:
            if self.name not in _positional_run_warned:
                _positional_run_warned.add(self.name)
                warnings.warn(
                    f"positional arguments to {self.name}.run() are deprecated; "
                    "build a ParallelConfig and call execute(A, B, cfg)",
                    DeprecationWarning,
                    stacklevel=2,
                )
            if len(args) > 2:
                raise TypeError(
                    f"{self.name}.run() takes at most (A, B, p, c) positionally "
                    f"(got {2 + len(args)} positional arguments)"
                )
            if p is not None:
                raise TypeError(f"{self.name}.run() got p both positionally and by keyword")
            p = int(args[0])
            if len(args) == 2:
                c = int(args[1])
        if p is None:
            raise TypeError(f"{self.name}.run() missing required argument: 'p'")
        self._check_options("run", options)
        A = np.asarray(A)
        if A.ndim != 2:
            raise ValueError("A and B must be equal square matrices")
        if isinstance(scheme, BilinearScheme):
            scheme = scheme.name
        cfg = ParallelConfig(
            n=int(A.shape[0]),
            p=p,
            c=c,
            scheme=scheme,
            schedule=options.get("schedule"),
            memory_limit=memory_limit,
        )
        return self.execute(A, B, cfg, verify=verify)


# ---------------------------------------------------------------------- #
# registry                                                                #
# ---------------------------------------------------------------------- #

_REGISTRY: dict[str, ParallelAlgorithm] = {}

# Algorithms that already emitted the positional-run() DeprecationWarning.
_positional_run_warned: set[str] = set()


def register_parallel(cls: type[ParallelAlgorithm]) -> type[ParallelAlgorithm]:
    """Class decorator: instantiate and register a :class:`ParallelAlgorithm`."""
    inst = cls()
    if inst.name in _REGISTRY and type(_REGISTRY[inst.name]) is not cls:
        raise ValueError(f"parallel algorithm {inst.name!r} already registered")
    _REGISTRY[inst.name] = inst
    return cls


def _ensure_loaded() -> None:
    # Registration happens at module import; pull the algorithm modules in
    # lazily so base stays import-cycle free.
    from repro.parallel import cannon, caps, summa, threed, two5d  # noqa: F401


def get_parallel(name: str) -> ParallelAlgorithm:
    """Fetch a registered algorithm by name."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown parallel algorithm {name!r}; available: {available_parallel()}"
        ) from None


def available_parallel() -> list[str]:
    """Names of all registered parallel algorithms."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def run_parallel(
    name: str, A: np.ndarray, B: np.ndarray, *, p: int, **kwargs: Any
) -> ParallelResult:
    """Convenience: ``get_parallel(name).run(A, B, p=p, **kwargs)``."""
    return get_parallel(name).run(A, B, p=p, **kwargs)


# ---------------------------------------------------------------------- #
# shared validity helpers                                                 #
# ---------------------------------------------------------------------- #


def square_grid_side(name: str, p: int) -> int:
    """q with p = q², or a clear error."""
    if p < 1:
        raise ValueError(f"{name}: need at least one processor (got p={p})")
    q = math.isqrt(p)
    if q * q != p:
        raise ValueError(
            f"{name} needs a square processor grid: p={p} is not a perfect square"
        )
    return q


def cube_grid_side(name: str, p: int) -> int:
    """q with p = q³, or a clear error."""
    if p < 1:
        raise ValueError(f"{name}: need at least one processor (got p={p})")
    q = round(p ** (1.0 / 3.0))
    for cand in (q - 1, q, q + 1):
        if cand >= 1 and cand**3 == p:
            return cand
    raise ValueError(f"{name} needs a cubic processor grid: p={p} is not a perfect cube")


def check_block_divisibility(name: str, n: int, q: int) -> None:
    """Fail loudly when q ∤ n instead of silently truncating ``b = n // q``."""
    if q < 1:
        raise ValueError(f"{name}: grid side must be >= 1 (got q={q})")
    if n % q != 0:
        raise ValueError(
            f"{name}: matrix size n={n} is not divisible by grid side q={q}; "
            f"blocks of size n//q={n // q} would drop {n % q} trailing rows/cols"
        )
