"""The "3D" algorithm [Dekel et al. 1981; Aggarwal et al. 1990] — Table I row 2.

``p = q³`` processors as a q×q×q grid with ``M = Θ(n²/p^(2/3))`` — a factor
``p^(1/3)`` more memory than 2D buys a factor ``p^(1/6)`` less communication:
``Θ(n²/p^(2/3))`` words per processor.

Processor (i, j, l) receives block A_{il} and B_{lj}, computes their
product, and the C_{ij} partials are summed over the depth fiber.  Inputs
start on layer 0 (evenly distributed); the replication broadcasts and the
final reductions are the *entire* communication.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from repro.cdag.schemes import BilinearScheme
from repro.machine.collectives import broadcast_many, reduce_many
from repro.machine.distmatrix import Grid2D, Grid3D, distribute_blocks, gather_blocks
from repro.machine.distributed import Machine, Message
from repro.parallel.base import (
    AnalyticCost,
    ParallelAlgorithm,
    check_block_divisibility,
    cube_grid_side,
    register_parallel,
)

__all__ = ["ThreeD"]


@register_parallel
class ThreeD(ParallelAlgorithm):
    """Replicate-multiply-reduce on a processor cube (p = q³)."""

    name = "3d"
    algorithm_class = "classical"
    regime = "3D"
    requirement = "p = q³ (processor cube), q | n"
    attains = "Ω(n²/p^(2/3)) at M = Θ(n²/p^(2/3))  [Table I row 2, classical]"

    def validate(
        self, n: int, p: int, *, c: int = 1, scheme: BilinearScheme | None = None, **options: Any
    ) -> None:
        q = cube_grid_side(self.name, p)
        check_block_divisibility(self.name, n, q)

    def analytic_costs(
        self, n: int, p: int, *, c: int = 1, scheme: BilinearScheme | None = None, **options: Any
    ) -> AnalyticCost:
        # One relay superstep per input (b² critical) + a batched binomial
        # broadcast (⌈lg q⌉ × b²) per input + the fiber reduction
        # (⌈lg q⌉ × b²): (2 + 3·⌈lg q⌉)·b² with b² = n²/p^(2/3).
        q = cube_grid_side(self.name, p)
        b2 = (n / q) ** 2
        lg = math.ceil(math.log2(q)) if q > 1 else 0
        rounds = 2 + 3 * lg if q > 1 else 0
        return AnalyticCost(
            words=rounds * b2,
            messages=float(rounds),
            memory=5.0 * b2,  # layer-0 ranks: A, B + Ablk, Bblk + Cpart
        )

    def default_configs(
        self,
        n: int,
        p_max: int,
        cs: Sequence[int] = (1,),
        scheme: BilinearScheme | None = None,
    ) -> list[dict]:
        out = []
        q = 2
        while q**3 <= p_max:
            if n % q == 0:
                out.append({"p": q**3, "c": 1})
            q += 1
        return out

    def _execute(
        self,
        m: Machine,
        A: np.ndarray,
        B: np.ndarray,
        *,
        p: int,
        c: int,
        scheme: BilinearScheme | None,
        **options: Any,
    ) -> np.ndarray:
        n = A.shape[0]
        q = cube_grid_side(self.name, p)
        grid = Grid3D(q, q)
        face = Grid2D(q)
        b = n // q

        # Inputs start evenly distributed on layer 0: rank (i, j, 0) owns
        # A_ij, B_ij.
        distribute_blocks(m, A, "A", face, layer_rank=lambda i, j: grid.rank(i, j, 0))
        distribute_blocks(m, B, "B", face, layer_rank=lambda i, j: grid.rank(i, j, 0))

        # Routing: A_{il} must reach every (i, j, layer).  One relay hop to the
        # target layer, then a binomial broadcast along the layer's row —
        # each processor moves Θ(b²·lg q) words, never a q-way fan-out from
        # one rank.
        msgs = []
        for i in range(q):
            for layer in range(q):
                src = grid.rank(i, layer, 0)
                dst = grid.rank(i, layer, layer)
                msgs.append(Message(src, dst, "Ablk", m.get(src, "A")))
        m.exchange(msgs, label="relayA")
        broadcast_many(
            m,
            [([grid.rank(i, j, layer) for j in range(q)], grid.rank(i, layer, layer))
             for i in range(q) for layer in range(q)],
            "Ablk",
            label="bcastA",
        )
        msgs = []
        for layer in range(q):
            for j in range(q):
                src = grid.rank(layer, j, 0)
                dst = grid.rank(layer, j, layer)
                msgs.append(Message(src, dst, "Bblk", m.get(src, "B")))
        m.exchange(msgs, label="relayB")
        broadcast_many(
            m,
            [([grid.rank(i, j, layer) for i in range(q)], grid.rank(layer, j, layer))
             for layer in range(q) for j in range(q)],
            "Bblk",
            label="bcastB",
        )

        # Local multiply: (i, j, layer) computes A_{il} · B_{lj}.
        for r in range(grid.p):
            prod = m.get(r, "Ablk") @ m.get(r, "Bblk")
            m.put(r, "Cpart", prod)
            m.flop(r, 2 * b * b * b)
            m.delete(r, "Ablk")
            m.delete(r, "Bblk")
        m.end_compute_phase()

        # Sum the partials down all fibers simultaneously onto layer 0.
        reduce_many(
            m,
            [(grid.fiber(i, j), grid.fiber(i, j)[0]) for i in range(q) for j in range(q)],
            "Cpart",
            "C",
            label="reduceC",
        )

        return gather_blocks(m, "C", face, n, layer_rank=lambda i, j: grid.rank(i, j, 0))
