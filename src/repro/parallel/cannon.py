"""Cannon's algorithm [Cannon 1969] — the classical "2D" algorithm of Table I.

``p = q²`` processors in a torus, one ``(n/q)²`` block of each matrix per
processor (minimal memory, ``M = Θ(n²/p)``, no replication — the first row
of Table I).  Initial skew aligns the blocks; then q shift-multiply rounds.

Per-processor communication: 2(q−1) block transfers ≈ ``2n²/√p`` words —
attaining the classical 2D lower bound ``Ω(n²/p^(1/2))``.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from repro.cdag.schemes import BilinearScheme
from repro.machine.collectives import shift_many
from repro.machine.distmatrix import Grid2D, distribute_blocks, gather_blocks
from repro.machine.distributed import Machine, Message
from repro.parallel.base import (
    AnalyticCost,
    ParallelAlgorithm,
    check_block_divisibility,
    register_parallel,
    square_grid_side,
)

__all__ = ["Cannon"]


@register_parallel
class Cannon(ParallelAlgorithm):
    """Torus shift-multiply: the minimal-memory 2D attaining algorithm."""

    name = "cannon"
    algorithm_class = "classical"
    regime = "2D"
    requirement = "p = q² (square grid), q | n"
    attains = "Ω(n²/p^(1/2)) at M = Θ(n²/p)  [Table I row 1, classical]"

    def validate(
        self, n: int, p: int, *, c: int = 1, scheme: BilinearScheme | None = None, **options: Any
    ) -> None:
        q = square_grid_side(self.name, p)
        check_block_divisibility(self.name, n, q)

    def analytic_costs(
        self, n: int, p: int, *, c: int = 1, scheme: BilinearScheme | None = None, **options: Any
    ) -> AnalyticCost:
        # 2 skew permutations (2b² each) + 2(q−1) shift rounds (2b² each)
        # = exactly 4b²q = 4n²/√p critical words; 2 messages per superstep.
        q = math.isqrt(p)
        b2 = (n / q) ** 2
        if q == 1:
            return AnalyticCost(words=0.0, messages=0.0, memory=3.0 * b2)
        return AnalyticCost(words=4.0 * q * b2, messages=4.0 * q, memory=3.0 * b2)

    def default_configs(
        self,
        n: int,
        p_max: int,
        cs: Sequence[int] = (1,),
        scheme: BilinearScheme | None = None,
    ) -> list[dict]:
        return [
            {"p": q * q, "c": 1}
            for q in range(2, math.isqrt(p_max) + 1)
            if n % q == 0
        ]

    def _execute(
        self,
        m: Machine,
        A: np.ndarray,
        B: np.ndarray,
        *,
        p: int,
        c: int,
        scheme: BilinearScheme | None,
        **options: Any,
    ) -> np.ndarray:
        n = A.shape[0]
        q = math.isqrt(p)
        grid = Grid2D(q)
        distribute_blocks(m, A, "A", grid)
        distribute_blocks(m, B, "B", grid)
        b = n // q

        # C starts at zero on every rank.
        for r in range(grid.p):
            m.put(r, "C", np.zeros((b, b)))

        # Skew: row i rotates A left by i, column j rotates B up by j.  In
        # the paper's machine model (§1.1: any disjoint pairs communicate
        # simultaneously, no topology) each skew is a single permutation
        # superstep — every rank sends one block and receives one block.
        if q > 1:
            msgs = []
            for i in range(q):
                for j in range(q):
                    src = grid.rank(i, j)
                    msgs.append(Message(src, grid.rank(i, j - i), "A", m.get(src, "A")))
            m.exchange(msgs, label="skewA")
            msgs = []
            for i in range(q):
                for j in range(q):
                    src = grid.rank(i, j)
                    msgs.append(Message(src, grid.rank(i - j, j), "B", m.get(src, "B")))
            m.exchange(msgs, label="skewB")

        for _round in range(q):
            for r in range(grid.p):
                Ablk = m.get(r, "A")
                Bblk = m.get(r, "B")
                Cblk = m.get(r, "C")
                m.put(r, "C", Cblk + Ablk @ Bblk)
                m.flop(r, 2 * b * b * b)
            m.end_compute_phase()
            if _round < q - 1:
                shift_many(m, [grid.row(i) for i in range(q)], "A", -1, label="shiftA")
                shift_many(m, [grid.col(j) for j in range(q)], "B", -1, label="shiftB")

        return gather_blocks(m, "C", grid, n)
