"""Cannon's algorithm [Cannon 1969] — the classical "2D" algorithm of Table I.

``p = q²`` processors in a torus, one ``(n/q)²`` block of each matrix per
processor (minimal memory, ``M = Θ(n²/p)``, no replication — the first row
of Table I).  Initial skew aligns the blocks; then q shift-multiply rounds.

Per-processor communication: 2(q−1) block transfers ≈ ``2n²/√p`` words —
attaining the classical 2D lower bound ``Ω(n²/p^(1/2))``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.collectives import shift_many
from repro.machine.distmatrix import Grid2D, distribute_blocks, gather_blocks
from repro.machine.distributed import Machine, Message

__all__ = ["cannon_multiply", "ParallelResult"]


@dataclass(frozen=True)
class ParallelResult:
    """Outcome of one simulated parallel run."""

    C: np.ndarray
    machine: Machine
    algorithm: str
    n: int
    p: int

    @property
    def critical_words(self) -> int:
        return self.machine.critical_words

    @property
    def critical_messages(self) -> int:
        return self.machine.critical_messages

    @property
    def max_mem_peak(self) -> int:
        return self.machine.max_mem_peak


def cannon_multiply(A: np.ndarray, B: np.ndarray, q: int, memory_limit: int | None = None) -> ParallelResult:
    """Run Cannon's algorithm on a q×q simulated grid.

    The initial skew is performed (and charged) explicitly with cyclic
    shifts, exactly as on a torus: row i of A moves i steps left, column j
    of B moves j steps up; each of the q multiply rounds then shifts A left
    and B up by one.
    """
    n = A.shape[0]
    if A.shape != B.shape or A.shape != (n, n):
        raise ValueError("A and B must be equal square matrices")
    grid = Grid2D(q)
    m = Machine(grid.p, memory_limit=memory_limit)
    distribute_blocks(m, A, "A", grid)
    distribute_blocks(m, B, "B", grid)
    b = n // q

    # C starts at zero on every rank.
    for r in range(grid.p):
        m.put(r, "C", np.zeros((b, b)))

    # Skew: row i rotates A left by i, column j rotates B up by j.  In the
    # paper's machine model (§1.1: any disjoint pairs communicate
    # simultaneously, no topology) each skew is a single permutation
    # superstep — every rank sends one block and receives one block.
    if q > 1:
        msgs = []
        for i in range(q):
            for j in range(q):
                src = grid.rank(i, j)
                msgs.append(Message(src, grid.rank(i, j - i), "A", m.get(src, "A")))
        m.exchange(msgs, label="skewA")
        msgs = []
        for i in range(q):
            for j in range(q):
                src = grid.rank(i, j)
                msgs.append(Message(src, grid.rank(i - j, j), "B", m.get(src, "B")))
        m.exchange(msgs, label="skewB")

    for _round in range(q):
        for r in range(grid.p):
            Ablk = m.get(r, "A")
            Bblk = m.get(r, "B")
            Cblk = m.get(r, "C")
            m.put(r, "C", Cblk + Ablk @ Bblk)
            m.flop(r, 2 * b * b * b)
        m.end_compute_phase()
        if _round < q - 1:
            shift_many(m, [grid.row(i) for i in range(q)], "A", -1, label="shiftA")
            shift_many(m, [grid.col(j) for j in range(q)], "B", -1, label="shiftB")

    C = gather_blocks(m, "C", grid, n)
    return ParallelResult(C=C, machine=m, algorithm="cannon", n=n, p=grid.p)
