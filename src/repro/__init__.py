"""repro — Graph expansion and communication costs of fast matrix multiplication.

A full reproduction of Ballard, Demmel, Holtz & Schwartz, *Graph Expansion
and Communication Costs of Fast Matrix Multiplication* (SPAA 2011,
arXiv:1109.1693): the CDAG machinery and expansion analysis behind the
paper's lower bounds, exact simulators for the sequential two-level and
parallel α–β machines, the algorithms that attain the bounds (depth-first
Strassen, Cannon, SUMMA, 3D, 2.5D, CAPS), and the experiment harnesses that
regenerate every table and figure.

Quick start::

    from repro import dec_graph, estimate_expansion, dfs_io, sequential_io_bound

    g = dec_graph("strassen", k=4)               # the Dec_k C graph of §4.1
    est = estimate_expansion(g, "strassen", 4)   # Lemma 4.3's h = Θ((4/7)^k)
    io = dfs_io(n=256, M=768)                    # measured words vs Theorem 1.1
    print(io.words / sequential_io_bound(256, 768))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.cdag.graph import CDAG, VertexKind
from repro.cdag.schemes import (
    BilinearScheme,
    available_schemes,
    compose_schemes,
    get_scheme,
)
from repro.cdag.strassen_cdag import HGraph, dec_graph, enc_graph, h_graph
from repro.cdag.classical_cdag import classical_matmul_cdag, matvec_cdag
from repro.cdag.pebble import exhaustive_min_io, schedule_io
from repro.cdag.schedule import (
    bfs_topological_order,
    dfs_topological_order,
    random_topological_order,
)
from repro.core.bounds import (
    LG7,
    latency_bound,
    memory_independent_bound,
    parallel_io_bound,
    perfect_scaling_limit,
    scaling_regime,
    sequential_io_bound,
    sequential_io_upper,
    table1_rows,
)
from repro.core.exact import (
    EXACT_LIMIT,
    exact_edge_expansion_v2,
    exact_small_set_expansion_v2,
)
from repro.core.expansion import (
    ExpansionEstimate,
    decode_cone_mask,
    estimate_expansion,
    exact_edge_expansion,
    exact_small_set_expansion,
    expansion_of_cut,
)
from repro.core.partition import best_partition_bound, partition_bound, segment_stats
from repro.algorithms.strassen import bilinear_multiply, count_flops, strassen_multiply
from repro.algorithms.io_strassen import dfs_io, dfs_io_model
from repro.algorithms.io_classical import blocked_io, naive_io, recursive_io
from repro.engine import (
    EngineCache,
    GridPoint,
    GridReport,
    GridSpec,
    ScalingPoint,
    ScalingReport,
    ScalingSpec,
    cached_dec_graph,
    cached_estimate,
    cached_h_graph,
    cached_spectrum,
    default_cache,
    run_grid,
    scaling_sweep,
)
from repro.engine.planner import Plan, plan
from repro.machine.cache import FastMemory
from repro.machine.distributed import Machine, Message
from repro.parallel import (
    AnalyticCost,
    ParallelAlgorithm,
    ParallelConfig,
    ParallelResult,
    available_parallel,
    get_parallel,
    run_parallel,
)
from repro.topology import Device, Link, Topology

__version__ = "1.0.0"

__all__ = [
    "CDAG",
    "VertexKind",
    "BilinearScheme",
    "available_schemes",
    "compose_schemes",
    "get_scheme",
    "HGraph",
    "dec_graph",
    "enc_graph",
    "h_graph",
    "classical_matmul_cdag",
    "matvec_cdag",
    "exhaustive_min_io",
    "schedule_io",
    "bfs_topological_order",
    "dfs_topological_order",
    "random_topological_order",
    "LG7",
    "latency_bound",
    "memory_independent_bound",
    "parallel_io_bound",
    "perfect_scaling_limit",
    "scaling_regime",
    "sequential_io_bound",
    "sequential_io_upper",
    "table1_rows",
    "EXACT_LIMIT",
    "ExpansionEstimate",
    "decode_cone_mask",
    "estimate_expansion",
    "exact_edge_expansion",
    "exact_edge_expansion_v2",
    "exact_small_set_expansion",
    "exact_small_set_expansion_v2",
    "expansion_of_cut",
    "best_partition_bound",
    "partition_bound",
    "segment_stats",
    "bilinear_multiply",
    "count_flops",
    "strassen_multiply",
    "dfs_io",
    "dfs_io_model",
    "blocked_io",
    "naive_io",
    "recursive_io",
    "EngineCache",
    "GridPoint",
    "GridReport",
    "GridSpec",
    "ScalingPoint",
    "ScalingReport",
    "ScalingSpec",
    "cached_dec_graph",
    "cached_estimate",
    "cached_h_graph",
    "cached_spectrum",
    "default_cache",
    "run_grid",
    "scaling_sweep",
    "FastMemory",
    "Machine",
    "Message",
    "AnalyticCost",
    "ParallelAlgorithm",
    "ParallelConfig",
    "ParallelResult",
    "available_parallel",
    "get_parallel",
    "run_parallel",
    "Device",
    "Link",
    "Topology",
    "Plan",
    "plan",
    "__version__",
]
