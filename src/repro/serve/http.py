"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

The serving layer deliberately avoids a web framework: the container the
engine ships in has numpy/scipy and nothing else, and the protocol surface
it needs is tiny — GET requests with query strings, JSON responses, and
keep-alive so load tests measure the engine rather than TCP handshakes.
This module owns exactly that framing; routing and the worker pool live in
:mod:`repro.serve.service`.

Everything here is strict about limits (request-line/header/body caps) so
one misbehaving client cannot balloon the event loop's memory, and strict
about JSON (payloads route through :func:`repro.util.jsonutil.jsonable`
with ``allow_nan=False`` — the same RC301 invariant every report emitter
obeys; a cone-only estimate's NaN lower bound serializes as ``null``).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, urlsplit

from repro.util.jsonutil import jsonable

__all__ = [
    "HttpError",
    "Request",
    "Response",
    "fetch_json",
    "json_response",
    "read_request",
]

#: Framing caps: one request line / header line, total header count, body.
MAX_LINE_BYTES = 8192
MAX_HEADERS = 64
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """A malformed or over-limit request; maps to a 400 response."""

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


@dataclass(frozen=True)
class Request:
    """One parsed request: method, split target, lowercased headers."""

    method: str
    target: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 default keep-alive unless the client asked to close."""
        return self.headers.get("connection", "").lower() != "close"


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""  # clean EOF between keep-alive requests
        raise HttpError("connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError("request line exceeds the line cap") from exc
    if len(line) > MAX_LINE_BYTES:
        raise HttpError(f"line longer than {MAX_LINE_BYTES} bytes")
    return line


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream; None on a clean EOF.

    Raises :class:`HttpError` on malformed framing — the caller answers
    400 and closes.  Query values are single-valued (last wins), which is
    all the engine's parameter grammar needs.
    """
    raw = await _read_line(reader)
    if not raw:
        return None
    parts = raw.decode("latin-1").rstrip("\r\n").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError("malformed request line")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        line = await _read_line(reader)
        if not line or line == b"\r\n":
            break
        name, sep, value = line.decode("latin-1").rstrip("\r\n").partition(":")
        if not sep:
            raise HttpError("malformed header line")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(f"more than {MAX_HEADERS} headers")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError("non-integer content-length") from exc
        if not 0 <= length <= MAX_BODY_BYTES:
            raise HttpError(f"body outside [0, {MAX_BODY_BYTES}] bytes")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise HttpError("connection closed mid-body") from exc
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(
        method=method.upper(),
        target=target,
        path=split.path,
        query=query,
        headers=headers,
        body=body,
    )


@dataclass(frozen=True)
class Response:
    """One response: status, body bytes, and extra headers."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    def encode(self, keep_alive: bool = True) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"content-type: {self.content_type}",
            f"content-length: {len(self.body)}",
            f"connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines.extend(f"{k}: {v}" for k, v in self.headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


def json_response(status: int, payload: Any) -> Response:
    """Serialize ``payload`` as a strict-JSON response body."""
    body = json.dumps(jsonable(payload), allow_nan=False).encode()
    return Response(status=status, body=body)


async def fetch_json(
    host: str,
    port: int,
    target: str,
    method: str = "GET",
    timeout: float = 30.0,
) -> tuple[int, Any]:
    """One-shot stdlib client: ``(status, decoded JSON body)``.

    Used by the tests, the load-bench workload, and the CI smoke script so
    none of them need an HTTP client dependency.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = (
            f"{method} {target} HTTP/1.1\r\n"
            f"host: {host}:{port}\r\n"
            "connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionError):
            pass
    header_blob, _sep, body = raw.partition(b"\r\n\r\n")
    status_line = header_blob.split(b"\r\n", 1)[0].decode("latin-1")
    status = int(status_line.split()[1])
    return status, json.loads(body) if body else None
