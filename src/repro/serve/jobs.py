"""Job model for the serving layer: parse, key, and execute one request.

A :class:`Job` is the canonical form of one analysis request — a kind
(``expansion`` / ``bounds`` / ``sweep`` / ``scaling`` / ``plan``) plus a sorted,
hashable parameter tuple.  Canonicalizing *before* keying is what makes
single-flight deduplication work: two clients asking for
``?k=4&scheme=strassen`` and ``?scheme=strassen&k=4`` produce the same
:meth:`Job.key`, so the second request rides the first one's build.

Execution comes in two shapes, mirroring :mod:`repro.engine.grid`'s worker
plumbing: :func:`run_job_inline` runs in the serving process (thread
executor) against the shared cache, and :func:`run_job_pooled` ships the
job as a namespaced ``(kind, params, root)`` message to the shared
persistent worker pool (:mod:`repro.engine.pool`), where it runs against
a per-worker cache over the same disk root and returns the payload
together with the worker's cache-counter delta so the parent can
:meth:`~repro.engine.cache.EngineCache.merge_stats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.bounds import LG7
from repro.engine import pool as pool_runtime
from repro.engine.builders import POLICIES, cached_estimate
from repro.engine.cache import EngineCache, cache_key

__all__ = [
    "JOB_KINDS",
    "Job",
    "build_payload",
    "parse_job",
    "run_job_inline",
    "run_job_pooled",
]

JOB_KINDS = ("expansion", "bounds", "sweep", "scaling", "plan")

#: Guardrails on the expensive dimensions; a service must bound the work
#: one query can demand (the CLI, run by the operator, has no such caps).
MAX_K = 7
MAX_SWEEP_POINTS = 256
MAX_SCALING_P = 256
MAX_PLAN_P = 256
MAX_PLAN_N = 65536


@dataclass(frozen=True)
class Job:
    """One canonical request: ``kind`` plus sorted (name, value) params."""

    kind: str
    params: tuple[tuple[str, Any], ...]

    def key(self) -> str:
        """Content-addressed payload key (namespaced apart from artifacts).

        The whole params tuple goes in as one ``params=`` kwarg: job params
        legitimately include names like ``scheme`` that collide with
        :func:`cache_key`'s own positional parameters, and the tuple form
        keeps the (name, value) ordering the parsers canonicalized.
        """
        return cache_key(f"serve:{self.kind}", None, params=self.params)

    def as_dict(self) -> dict[str, Any]:
        return dict(self.params)


def _make_job(kind: str, params: dict[str, Any]) -> Job:
    return Job(kind=kind, params=tuple(sorted(params.items())))


def _as_int(raw: dict[str, str], name: str, default: int, lo: int, hi: int) -> int:
    try:
        value = int(raw.get(name, default))
    except ValueError:
        raise ValueError(f"parameter {name!r} must be an integer") from None
    if not lo <= value <= hi:
        raise ValueError(f"parameter {name!r} must lie in [{lo}, {hi}]")
    return value


def _as_float(raw: dict[str, str], name: str, default: float, lo: float, hi: float) -> float:
    try:
        value = float(raw.get(name, default))
    except ValueError:
        raise ValueError(f"parameter {name!r} must be a number") from None
    if not lo <= value <= hi:
        raise ValueError(f"parameter {name!r} must lie in [{lo}, {hi}]")
    return value


def _as_names(raw: dict[str, str], name: str, default: str) -> tuple[str, ...]:
    """A comma-separated name list; empty entries rejected."""
    items = tuple(s.strip() for s in raw.get(name, default).split(","))
    if not items or any(not s for s in items):
        raise ValueError(f"parameter {name!r} must be a comma-separated name list")
    return items


def _parse_expansion(raw: dict[str, str]) -> dict[str, Any]:
    policy = raw.get("policy", "auto")
    if policy not in POLICIES:
        raise ValueError(f"unknown estimate policy {policy!r}; choose from {POLICIES}")
    return {
        "scheme": raw.get("scheme", "strassen"),
        "k": _as_int(raw, "k", 4, 1, MAX_K),
        "policy": policy,
    }


def _parse_bounds(raw: dict[str, str]) -> dict[str, Any]:
    return {
        "n": _as_float(raw, "n", 4096.0, 1.0, 1e12),
        "M": _as_float(raw, "M", 4096.0, 3.0, 1e12),
        "p": _as_int(raw, "p", 1, 1, 1_000_000),
        "omega0": _as_float(raw, "omega0", LG7, 2.0, 3.0),
    }


def _parse_sweep(raw: dict[str, str]) -> dict[str, Any]:
    try:
        memories = tuple(int(m) for m in _as_names(raw, "memories", "48,192"))
    except ValueError:
        raise ValueError("parameter 'memories' must be comma-separated integers") from None
    params = {
        "schemes": _as_names(raw, "schemes", "strassen"),
        "k_min": _as_int(raw, "k_min", 1, 1, MAX_K),
        "k_max": _as_int(raw, "k_max", 3, 1, MAX_K),
        "memories": memories,
        "policies": _as_names(raw, "policies", "auto"),
    }
    if params["k_min"] > params["k_max"]:
        raise ValueError("k_min must not exceed k_max")
    for policy in params["policies"]:
        if policy not in POLICIES:
            raise ValueError(f"unknown estimate policy {policy!r}; choose from {POLICIES}")
    n_points = (
        len(params["schemes"])
        * (params["k_max"] - params["k_min"] + 1)
        * len(memories)
        * len(params["policies"])
    )
    if n_points > MAX_SWEEP_POINTS:
        raise ValueError(f"sweep of {n_points} points exceeds the cap of {MAX_SWEEP_POINTS}")
    return params


def _parse_scaling(raw: dict[str, str]) -> dict[str, Any]:
    try:
        cs = tuple(int(c) for c in _as_names(raw, "cs", "1,2"))
    except ValueError:
        raise ValueError("parameter 'cs' must be comma-separated integers") from None
    return {
        "algos": _as_names(raw, "algos", "all"),
        "n": _as_int(raw, "n", 28, 4, 512),
        "p_max": _as_int(raw, "p_max", 16, 1, MAX_SCALING_P),
        "cs": cs,
        "scheme": raw.get("scheme", "strassen"),
    }


def _parse_plan(raw: dict[str, str]) -> dict[str, Any]:
    from repro.topology import Topology

    try:
        cs = tuple(int(c) for c in _as_names(raw, "cs", "1,2,4"))
    except ValueError:
        raise ValueError("parameter 'cs' must be comma-separated integers") from None
    topology = raw.get("topology", "uniform")
    Topology.parse(topology)  # reject malformed specs at the 400 boundary
    return {
        "n": _as_int(raw, "n", 4096, 4, MAX_PLAN_N),
        "topology": topology,
        "scheme": raw.get("scheme", "strassen"),
        # 0 means "no limit" / "topology capacity" — query strings have no null
        "memory_limit": _as_int(raw, "memory_limit", 0, 0, 10**12),
        "p_max": _as_int(raw, "p_max", 0, 0, MAX_PLAN_P),
        "cs": cs,
    }


_PARSERS = {
    "expansion": _parse_expansion,
    "bounds": _parse_bounds,
    "sweep": _parse_sweep,
    "scaling": _parse_scaling,
    "plan": _parse_plan,
}


def parse_job(kind: str, raw: dict[str, str]) -> Job:
    """Validate one request's query parameters into a canonical Job.

    Raises ``ValueError`` (mapped to a 400 by the service) on unknown
    kinds, unknown parameters, bad types, or over-cap work sizes.
    """
    parser = _PARSERS.get(kind)
    if parser is None:
        raise ValueError(f"unknown job kind {kind!r}; choose from {JOB_KINDS}")
    params = parser(raw)
    unknown = sorted(set(raw) - set(params))
    if unknown:
        raise ValueError(f"unknown parameter(s) {unknown} for {kind!r}")
    return _make_job(kind, params)


# ---------------------------------------------------------------------- #
# payload builders (module-level: spawn workers must pickle the entry)     #
# ---------------------------------------------------------------------- #


def _expansion_payload(params: dict[str, Any], cache: EngineCache) -> dict[str, Any]:
    est = cached_estimate(params["scheme"], params["k"], policy=params["policy"], cache=cache)
    return {
        "scheme": params["scheme"],
        "k": params["k"],
        "policy": params["policy"],
        "lower": est.lower,
        "upper": est.upper,
        "witness_size": est.witness_size,
        "witness_boundary": est.witness_boundary,
        "degree": est.degree,
        "method": est.method,
        # Certified interval: both endpoints finite (cone-only rows get the
        # trivial 0 lower where "lower" above serializes to null).
        "interval": est.interval().as_dict(),
    }


def _bounds_payload(params: dict[str, Any], cache: EngineCache) -> dict[str, Any]:
    from repro.core.bounds import (
        memory_independent_bound,
        parallel_io_bound,
        scaling_regime,
        sequential_io_bound,
    )

    del cache  # closed-form Section 1 bounds; nothing to build or store
    n, M, p = params["n"], params["M"], params["p"]
    omega0 = params["omega0"]
    regime = scaling_regime(n, p, M, omega0=omega0)
    return {
        "n": n,
        "M": M,
        "p": p,
        "omega0": omega0,
        "sequential_io_bound": sequential_io_bound(n, M, omega0=omega0),
        "parallel_io_bound": parallel_io_bound(n, M, p, omega0=omega0),
        "memory_independent_bound": memory_independent_bound(n, p, omega0=omega0),
        "binding": regime.binding,
        "perfect_scaling_limit": regime.p_limit,
    }


def _sweep_payload(params: dict[str, Any], cache: EngineCache) -> dict[str, Any]:
    from repro.engine.grid import GridSpec, run_grid

    spec = GridSpec.from_ranges(
        schemes=params["schemes"],
        k_min=params["k_min"],
        k_max=params["k_max"],
        memories=params["memories"],
        policies=params["policies"],
    )
    report = run_grid(spec, workers=1, cache=cache)
    return {
        "spec": {
            "schemes": list(spec.schemes),
            "ks": list(spec.ks),
            "memories": list(spec.memories),
            "policies": list(spec.policies),
        },
        "points": len(report.rows),
        "rows": report.rows,
        "stats": report.stats,
    }


def _scaling_payload(params: dict[str, Any], cache: EngineCache) -> dict[str, Any]:
    from repro.engine.scaling import ScalingSpec, scaling_sweep
    from repro.parallel.base import available_parallel

    algos = params["algos"]
    if algos == ("all",):
        algos = tuple(available_parallel())
    spec = ScalingSpec(
        algos=algos,
        n=params["n"],
        p_max=params["p_max"],
        cs=params["cs"],
        scheme=params["scheme"],
    )
    report = scaling_sweep(spec, cache=cache)
    return {
        "algos": list(algos),
        "n": params["n"],
        "points": len(report.rows),
        "rows": report.rows,
        "stats": report.stats,
    }


def _plan_payload(params: dict[str, Any], cache: EngineCache) -> dict[str, Any]:
    from repro.engine.planner import plan
    from repro.topology import Topology

    topology = Topology.parse(params["topology"])
    ranked = plan(
        params["n"],
        scheme=params["scheme"],
        topology=topology,
        memory_limit=params["memory_limit"] or None,
        p_max=params["p_max"] or None,
        cs=params["cs"],
        cache=cache,
    )
    return {
        "n": params["n"],
        "scheme": params["scheme"],
        "topology": topology.describe(),
        "memory_limit": params["memory_limit"] or None,
        "plans": [pl.as_dict() for pl in ranked],
    }


_BUILDERS = {
    "expansion": _expansion_payload,
    "bounds": _bounds_payload,
    "sweep": _sweep_payload,
    "scaling": _scaling_payload,
    "plan": _plan_payload,
}


def build_payload(job: Job, cache: EngineCache) -> dict[str, Any]:
    """Compute one job's response payload against ``cache`` (no dedup)."""
    return _BUILDERS[job.kind](job.as_dict(), cache)


def run_job_inline(job: Job, cache: EngineCache) -> dict[str, Any]:
    """Thread-executor path: single-flight build against the shared cache."""
    payload = cache.single_flight(job.key(), lambda: build_payload(job, cache))
    assert isinstance(payload, dict)
    return payload


# ---------------------------------------------------------------------- #
# shared-pool plumbing (the grid runner's idiom, on repro.engine.pool)     #
# ---------------------------------------------------------------------- #


def _pool_job_task(
    msg: tuple[str, tuple[tuple[str, Any], ...], str | None],
) -> tuple[dict[str, Any], dict[str, int]]:
    """Pool-worker entry point: ``(payload, cache-counter delta)``.

    The namespaced message carries the job's canonical form plus the disk
    root; :func:`~repro.engine.pool.worker_cache` memoizes the per-process
    cache (shared disk root, private memory tiers and counters).  The
    delta covers exactly this job (counters snapshotted around the build),
    so the parent can merge per-job increments regardless of how jobs
    interleave across the pool.
    """
    kind, params, root = msg
    job = Job(kind=kind, params=params)
    cache = pool_runtime.worker_cache(root)
    before = cache.stats_snapshot()
    payload = cache.single_flight(job.key(), lambda: build_payload(job, cache))
    assert isinstance(payload, dict)
    return payload, cache.stats.delta_since(before)


def run_job_pooled(job: Job, root: str | None) -> tuple[dict[str, Any], dict[str, int]]:
    """Ship one job to the shared persistent pool (``workers > 0`` mode).

    Blocking — the service calls it from executor threads, each of which
    checks out its own pool worker, so distinct jobs overlap across
    processes.  Under ``REPRO_POOL=0`` or serial fallback the job runs
    inline with identical semantics (the payload/delta contract holds).
    """
    payload, delta = pool_runtime.submit_one(_pool_job_task, (job.kind, job.params, root))
    assert isinstance(payload, dict)
    return payload, delta
