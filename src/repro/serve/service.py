"""The concurrent expansion-analysis service: asyncio front, pooled builds.

One event loop accepts connections and parses requests; the CPU-bound
engine work (graph builds, eigensolves, sweeps) never runs on the loop —
it is dispatched to an executor:

* ``workers == 0`` (default) — a small thread pool in this process,
  sharing the service's :class:`~repro.engine.cache.EngineCache` directly.
  NumPy/SciPy kernels release the GIL, so threads already overlap the
  heavy parts; this mode is also fully deterministic for tests and the
  load bench.
* ``workers > 0`` — jobs ship to the process-wide persistent worker pool
  (:mod:`repro.engine.pool`, pre-warmed at service start), each worker
  holding a private cache over the same disk root (the grid runner's
  sharing model).  Workers return ``(payload, counter-delta)`` and the
  parent merges the delta, so ``/cache/info`` reflects the whole fleet.
  A small thread executor hosts the blocking pool round-trips so the
  event loop never waits on a pipe.

Single-flight: the loop keeps one future per in-flight job key.  N
identical concurrent requests await the same future — exactly one build
runs (the acceptance invariant; ``CacheStats.builds`` proves it).
Followers await through :func:`asyncio.shield` so one cancelled client
cannot cancel the shared build under everyone else.

Shared-state discipline (enforced tree-wide by checker RC403): an async
handler may only touch the shared cache inside ``async with self._lock``.
The executor threads rely on the cache's own internal locks instead —
RC403 scopes to coroutines, where a forgotten lock interleaves at every
``await`` and corrupts LRU bookkeeping silently.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import sys
from dataclasses import dataclass
from typing import Any

from repro.engine import pool as pool_runtime
from repro.engine.cache import EngineCache, default_cache_root
from repro.serve.http import HttpError, Request, Response, json_response, read_request
from repro.serve.jobs import (
    JOB_KINDS,
    Job,
    parse_job,
    run_job_inline,
    run_job_pooled,
)

__all__ = ["ServeConfig", "ExpansionService", "run"]

#: Threads for the inline (workers == 0) executor.
_INLINE_THREADS = 4


@dataclass(frozen=True)
class ServeConfig:
    """Operator-facing knobs (the ``python -m repro serve`` flags)."""

    host: str = "127.0.0.1"
    port: int = 8077
    workers: int = 0  # 0 = in-process thread executor
    cache_dir: str | None = None
    disk: bool = True
    memory_items: int = 64
    memory_bytes: int | None = 512 * 1024 * 1024


class ExpansionService:
    """The HTTP service over one concurrency-hardened engine cache."""

    def __init__(self, config: ServeConfig, cache: EngineCache | None = None) -> None:
        self.config = config
        if cache is not None:
            self.cache = cache  # injected by tests/bench; caps are theirs
        else:
            root = config.cache_dir if config.cache_dir is not None else default_cache_root()
            self.cache = EngineCache(
                root,
                disk=config.disk,
                memory_items=config.memory_items,
                memory_bytes=config.memory_bytes,
            )
        self._lock = asyncio.Lock()  # guards _inflight and shared-cache access
        self._inflight: dict[str, asyncio.Future[dict[str, Any]]] = {}
        self._pool_root: str | None = None
        self._executor: concurrent.futures.Executor | None = None
        self._server: asyncio.Server | None = None
        self.requests = 0
        self.errors = 0
        self.deduped = 0

    # ------------------------------------------------------------------ #
    # lifecycle                                                            #
    # ------------------------------------------------------------------ #

    @property
    def port(self) -> int:
        """The bound port (differs from config when it asked for port 0)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self) -> None:
        if self.config.workers > 0:
            # Jobs run on the shared persistent pool; pre-warm it here so the
            # first request finds live workers.  The thread executor only
            # hosts the blocking pool round-trips (one thread per concurrent
            # pooled job), keeping the event loop off the pipes.
            self._pool_root = str(self.cache.root) if self.cache.disk_enabled else None
            pool_runtime.prewarm(self.config.workers)
            self._executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.config.workers, thread_name_prefix="serve-pool"
            )
        else:
            self._executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=_INLINE_THREADS, thread_name_prefix="serve"
            )
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        async with self._lock:
            pending = list(self._inflight.values())
            self._inflight.clear()
        for fut in pending:
            fut.cancel()
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------ #
    # connection handling                                                  #
    # ------------------------------------------------------------------ #

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(
                        json_response(400, {"error": exc.message}).encode(keep_alive=False)
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self.handle(request)
                keep_alive = request.keep_alive and response.status < 500
                writer.write(response.encode(keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def handle(self, request: Request) -> Response:
        """Route one request; exceptions become structured error responses."""
        self.requests += 1
        try:
            return await self._route(request)
        except (KeyError, ValueError) as exc:
            # Domain errors (unknown scheme, bad parameter, over-cap sweep):
            # the client's fault, not the service's.
            self.errors += 1
            message = exc.args[0] if exc.args else str(exc)
            return json_response(400, {"error": str(message)})
        except Exception as exc:  # repro: ignore[RC601] fault barrier for the accept loop
            self.errors += 1
            return json_response(500, {"error": f"{type(exc).__name__}: {exc}"})

    async def _route(self, request: Request) -> Response:
        if request.method != "GET":
            return json_response(405, {"error": f"method {request.method} not allowed"})
        path = request.path.rstrip("/") or "/"
        if path == "/healthz":
            return json_response(200, {"status": "ok"})
        if path == "/cache/info":
            async with self._lock:
                info = self.cache.info()
            info["service"] = {
                "requests": self.requests,
                "errors": self.errors,
                "deduped": self.deduped,
                "inflight": len(self._inflight),
                "workers": self.config.workers,
            }
            info["pool"] = pool_runtime.pool_info()
            return json_response(200, info)
        kind = path.lstrip("/")
        if kind not in JOB_KINDS:
            return json_response(404, {"error": f"no route for {request.path!r}"})
        job = parse_job(kind, request.query)
        payload = await self._submit(job.key(), job)
        return json_response(200, payload)

    # ------------------------------------------------------------------ #
    # single-flight dispatch                                               #
    # ------------------------------------------------------------------ #

    async def _submit(self, key: str, job: Job) -> dict[str, Any]:
        """Deduplicated dispatch: one build per key, however many awaiters."""
        async with self._lock:
            fut = self._inflight.get(key)
            if fut is not None:
                self.deduped += 1
            else:
                cached = self.cache.get_object(key)
                if cached is not None:
                    return dict(cached)
                fut = asyncio.ensure_future(self._dispatch(key, job))
                self._inflight[key] = fut
        # shield: a cancelled follower must not cancel the shared build.
        return await asyncio.shield(fut)

    async def _dispatch(self, key: str, job: Job) -> dict[str, Any]:
        loop = asyncio.get_running_loop()
        assert self._executor is not None
        try:
            if self.config.workers > 0:
                payload, delta = await loop.run_in_executor(
                    self._executor, run_job_pooled, job, self._pool_root
                )
                async with self._lock:
                    self.cache.merge_stats(delta)
                    self.cache.put_object(key, payload)
            else:
                payload = await loop.run_in_executor(
                    self._executor, run_job_inline, job, self.cache
                )
        finally:
            async with self._lock:
                self._inflight.pop(key, None)
        return payload


def run(config: ServeConfig) -> int:
    """Blocking entry point for ``python -m repro serve``."""
    service = ExpansionService(config)

    async def _main() -> None:
        await service.start()
        print(
            f"[serve] listening on http://{config.host}:{service.port} "
            f"(workers={config.workers}, cache={service.cache.root}"
            f"{'' if service.cache.disk_enabled else ', memory-only'})",
            file=sys.stderr,
            flush=True,
        )
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("[serve] shutting down", file=sys.stderr)
    return 0
