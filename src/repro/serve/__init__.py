"""Serving layer: the engine's builders behind a concurrent HTTP service.

``python -m repro serve`` boots :class:`ExpansionService` — an asyncio
HTTP/JSON front over the content-addressed
:class:`~repro.engine.cache.EngineCache`, with single-flight request
deduplication and a worker pool for the CPU-bound builds.  See
:mod:`repro.serve.service` for the concurrency model and
:mod:`repro.serve.jobs` for the endpoint grammar.
"""

from repro.serve.http import Request, Response, fetch_json, json_response, read_request
from repro.serve.jobs import (
    JOB_KINDS,
    Job,
    build_payload,
    parse_job,
    run_job_inline,
    run_job_pooled,
)
from repro.serve.service import ExpansionService, ServeConfig, run

__all__ = [
    "JOB_KINDS",
    "ExpansionService",
    "Job",
    "Request",
    "Response",
    "ServeConfig",
    "build_payload",
    "fetch_json",
    "json_response",
    "parse_job",
    "read_request",
    "run",
    "run_job_inline",
    "run_job_pooled",
]
