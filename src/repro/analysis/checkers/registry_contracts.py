"""Registry contracts: parallel algorithms and benchmark workloads.

Table I of the paper is an experimental claim about declared analytic
costs; the bench gate is a claim about pinned science outputs.  Both rest
on registry entries actually *declaring* their contracts:

* **RC201** — every ``@register_parallel`` class must define its validity
  predicate (``validate``), its analytic α-β word/message/memory formulas
  (``analytic_costs``), its superstep kernel (``_execute``), and a
  registry ``name``.  A registered algorithm without declared costs
  silently drops out of the bound-attainment comparison.
* **RC202** — every ``@register_bench`` workload with tunable ``params``
  must also declare ``quick_params`` (an explicit ``{}`` documents "quick
  deliberately equals full"), and every dict-literal return of the
  workload must carry the scalar ``"check"`` payload the CI comparison
  gate pins.
* **RC203** — the planner-facing cost surface (``estimate`` /
  ``analytic_costs`` / ``analytic_flops`` / ``validate`` /
  ``plan_configs``) of a registered algorithm must stay *pure*: no numpy
  arrays and no ``Machine`` simulation.  The auto-scheduler calls these
  methods thousands of times per search; an array allocation or a
  simulator hop hidden in one turns an O(1) analytic probe into an
  accidental execution.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import decorator_call, decorator_name
from repro.analysis.base import Checker, Module, register_checker
from repro.analysis.findings import Finding

__all__ = [
    "ParallelContractChecker",
    "BenchContractChecker",
    "PureCostChecker",
]

#: Methods a registered parallel algorithm must define in its own body.
REQUIRED_PARALLEL_METHODS = ("validate", "analytic_costs", "_execute")

#: Methods the planner treats as pure analytics: they may not touch numpy
#: or the ``Machine`` simulator.  (``_execute`` is the *only* sanctioned
#: home for both.)
PURE_COST_METHODS = (
    "estimate",
    "analytic_costs",
    "analytic_flops",
    "validate",
    "plan_configs",
)

#: Names whose appearance inside a pure-cost method marks an impurity.
_IMPURE_NAMES = frozenset({"np", "numpy", "Machine"})


def _class_method_names(node: ast.ClassDef) -> set[str]:
    return {
        stmt.name
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _class_attr_names(node: ast.ClassDef) -> set[str]:
    out: set[str] = set()
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            out |= {t.id for t in stmt.targets if isinstance(t, ast.Name)}
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            out.add(stmt.target.id)
    return out


@register_checker
class ParallelContractChecker(Checker):
    """RC201: ``@register_parallel`` classes declare their full contract."""

    name = "registry-parallel"
    code = "RC201"
    description = (
        "@register_parallel classes must define validate, analytic_costs, "
        "_execute, and a registry name"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(
                decorator_name(d) == "register_parallel" for d in node.decorator_list
            ):
                continue
            methods = _class_method_names(node)
            for required in REQUIRED_PARALLEL_METHODS:
                if required not in methods:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"registered parallel algorithm {node.name!r} does not "
                        f"define {required}()",
                        fix_hint=(
                            "declare the contract explicitly; inheriting an "
                            "abstract stub hides missing analytic formulas"
                        ),
                    )
            if "name" not in _class_attr_names(node):
                yield self.finding(
                    module,
                    node.lineno,
                    f"registered parallel algorithm {node.name!r} does not set "
                    "a registry 'name'",
                    fix_hint="set the class attribute name = '<registry key>'",
                )


def _keyword(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _dict_literal_keys(node: ast.expr) -> set[str] | None:
    """String keys of a dict display, or None when not a plain dict literal."""
    if not isinstance(node, ast.Dict):
        return None
    keys: set[str] = set()
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.add(key.value)
        elif key is None:
            return None  # **spread: membership is undecidable
    return keys


def _direct_returns(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.Return]:
    """Return statements of ``func`` itself, skipping nested functions."""
    out: list[ast.Return] = []

    def visit(stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Return):
                out.append(stmt)
            for fieldname in ("body", "orelse", "finalbody", "handlers"):
                block = getattr(stmt, fieldname, None)
                if isinstance(block, list):
                    for item in block:
                        if isinstance(item, ast.ExceptHandler):
                            visit(item.body)
                        else:
                            visit([item])

    visit(func.body)
    return out


@register_checker
class BenchContractChecker(Checker):
    """RC202: ``@register_bench`` workloads declare quick params and checks."""

    name = "registry-bench"
    code = "RC202"
    description = (
        "@register_bench workloads with params must declare quick_params, "
        "and must return a dict literal carrying a 'check' entry"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            call = decorator_call(node, "register_bench")
            if call is None:
                continue
            params = _keyword(call, "params")
            quick = _keyword(call, "quick_params")
            has_params = params is not None and not (
                isinstance(params, ast.Dict) and not params.keys
            )
            if has_params and quick is None:
                yield self.finding(
                    module,
                    call.lineno,
                    f"bench workload {node.name!r} declares params but no "
                    "quick_params",
                    fix_hint=(
                        "add quick_params (an explicit {} documents that the "
                        "quick set deliberately equals the full set)"
                    ),
                )
            for ret in _direct_returns(node):
                if ret.value is None:
                    yield self.finding(
                        module,
                        ret.lineno,
                        f"bench workload {node.name!r} returns nothing; the "
                        "harness requires a payload dict with a 'check' entry",
                        fix_hint="return {'check': {...}} with the pinned scalars",
                    )
                    continue
                keys = _dict_literal_keys(ret.value)
                if keys is None:
                    yield self.finding(
                        module,
                        ret.lineno,
                        f"bench workload {node.name!r} returns a non-literal "
                        "payload; the 'check' contract cannot be verified "
                        "statically",
                        fix_hint=(
                            "return a dict literal with an explicit 'check' key "
                            "so the science gate is visible in review"
                        ),
                    )
                elif "check" not in keys:
                    yield self.finding(
                        module,
                        ret.lineno,
                        f"bench workload {node.name!r} returns a payload without "
                        "a 'check' entry",
                        fix_hint=(
                            "add 'check': {...} with the scalar science outputs "
                            "the --compare gate must pin"
                        ),
                    )


def _impure_references(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[tuple[int, str]]:
    """(lineno, name) for each numpy/Machine reference in ``func``'s body."""
    out: list[tuple[int, str]] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and node.id in _IMPURE_NAMES:
            out.append((node.lineno, node.id))
        elif isinstance(node, ast.Attribute) and node.attr == "Machine":
            out.append((node.lineno, "Machine"))
    return out


@register_checker
class PureCostChecker(Checker):
    """RC203: planner-facing cost methods stay numpy- and Machine-free."""

    name = "registry-pure-cost"
    code = "RC203"
    description = (
        "pure-cost methods (estimate/analytic_costs/analytic_flops/"
        "validate/plan_configs) of @register_parallel classes may not "
        "reference numpy or Machine"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(
                decorator_name(d) == "register_parallel" for d in node.decorator_list
            ):
                continue
            for stmt in node.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if stmt.name not in PURE_COST_METHODS:
                    continue
                for lineno, name in _impure_references(stmt):
                    yield self.finding(
                        module,
                        lineno,
                        f"pure-cost method {node.name}.{stmt.name}() references "
                        f"{name!r}; the planner requires it to be analytic",
                        fix_hint=(
                            "move array work and Machine simulation into "
                            "_execute(); cost methods must be closed-form"
                        ),
                    )
