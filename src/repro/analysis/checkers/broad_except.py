"""Broad exception handlers.

Every handler in the engine today names the concrete exceptions it can
actually see (``OSError`` around artifact IO, ``ArpackNoConvergence``
around the spectral solve, ``BrokenPipeError`` on CLI output, ...).  A
bare ``except:`` or ``except Exception:`` in this codebase is almost
always a swallowed science bug: a cache read that silently recomputes, a
worker crash folded into an empty shard.  **RC601** keeps the tree that
way by flagging any handler whose type is missing, ``Exception``,
``BaseException``, or a tuple containing either.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import Checker, Module, register_checker
from repro.analysis.findings import Finding

__all__ = ["BroadExceptChecker"]

_BROAD_NAMES = {"Exception", "BaseException"}


def _broad_name(node: ast.expr | None) -> str | None:
    """The broad class name a handler type names, if any."""
    if node is None:
        return "(bare except)"
    if isinstance(node, ast.Name) and node.id in _BROAD_NAMES:
        return node.id
    if isinstance(node, ast.Tuple):
        for elt in node.elts:
            hit = _broad_name(elt)
            if hit is not None and hit != "(bare except)":
                return hit
    return None


@register_checker
class BroadExceptChecker(Checker):
    """RC601: no bare/broad ``except`` clauses."""

    name = "broad-except"
    code = "RC601"
    description = "no bare except / except Exception / except BaseException"

    def check_module(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _broad_name(node.type)
            if broad is None:
                continue
            what = "bare except" if node.type is None else f"except {broad}"
            yield self.finding(
                module,
                node.lineno,
                f"{what} swallows unrelated failures",
                fix_hint=(
                    "catch the concrete exception types this block can see; "
                    "if you only annotate and re-raise, still name them"
                ),
            )
