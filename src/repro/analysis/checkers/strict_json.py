"""Strict-JSON safety: every serialized payload routes through ``jsonable``.

PR 4 fixed NaN/numpy-scalar leakage into ``BENCH_*.json`` ad hoc by
introducing :func:`repro.util.jsonutil.jsonable`; this checker makes the
rule structural.  Outside ``util/jsonutil.py`` itself, a
``json.dump``/``json.dumps`` call must either

* serialize a payload wrapped in ``jsonable(...)`` (directly, or via a
  name assigned from ``jsonable(...)`` in the same function), or
* serialize a pure literal (dict/list/tuple of constants), which cannot
  carry numpy scalars or NaN by construction,

and must pass ``allow_nan=False`` so a sanitization gap fails loudly at
the emitter instead of corrupting a downstream parser.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import imported_aliases
from repro.analysis.base import Checker, Module, register_checker
from repro.analysis.findings import Finding

__all__ = ["StrictJsonChecker"]

_JSONUTIL_REL_SUFFIX = "util/jsonutil.py"

#: Functions whose first argument is the serialized payload.
_DUMP_METHODS = {"dump", "dumps"}


def _is_literal_safe(node: ast.expr) -> bool:
    """Literal payloads cannot smuggle NaN or numpy scalars."""
    if isinstance(node, ast.Constant):
        return not isinstance(node.value, float) or node.value == node.value
    if isinstance(node, (ast.List, ast.Tuple)):
        return all(_is_literal_safe(e) for e in node.elts)
    if isinstance(node, ast.Dict):
        return all(k is not None and _is_literal_safe(k) for k in node.keys) and all(
            _is_literal_safe(v) for v in node.values
        )
    return False


def _jsonable_names(module: Module) -> set[str]:
    names = imported_aliases(module.tree, "repro.util.jsonutil", "jsonable")
    names.add("jsonable")  # direct attribute use: jsonutil.jsonable(...)
    return names


def _is_jsonable_call(node: ast.expr, aliases: set[str]) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in aliases
    if isinstance(func, ast.Attribute):
        return func.attr == "jsonable"
    return False


def _enclosing_function_assignments(
    module: Module, call: ast.Call
) -> dict[str, ast.expr]:
    """Simple name -> value map of assignments in the function around ``call``.

    No flow analysis: the *last* textual assignment wins, which is the
    right conservative reading for the straight-line report emitters this
    rule guards.
    """
    target: ast.AST = module.tree
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(node):
                if inner is call:
                    target = node
                    break
    out: dict[str, ast.expr] = {}
    for node in ast.walk(target):
        if isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    out[t.id] = node.value
    return out


@register_checker
class StrictJsonChecker(Checker):
    """RC301: non-literal JSON payloads must be ``jsonable``-sanitized."""

    name = "strict-json"
    code = "RC301"
    description = (
        "json.dump(s) outside util/jsonutil must serialize jsonable(...)-"
        "wrapped (or purely literal) payloads with allow_nan=False"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        if module.rel.endswith(_JSONUTIL_REL_SUFFIX):
            return
        aliases = _jsonable_names(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _DUMP_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id == "json"
            ):
                continue
            if not node.args:
                continue
            payload = node.args[0]
            safe = _is_literal_safe(payload) or _is_jsonable_call(payload, aliases)
            if not safe and isinstance(payload, ast.Name):
                assigned = _enclosing_function_assignments(module, node).get(payload.id)
                safe = assigned is not None and (
                    _is_jsonable_call(assigned, aliases) or _is_literal_safe(assigned)
                )
            if not safe:
                yield self.finding(
                    module,
                    node.lineno,
                    f"json.{func.attr} serializes a payload that is not routed "
                    "through util.jsonutil.jsonable",
                    fix_hint=(
                        "wrap the payload in jsonable(...) so NaN and numpy "
                        "scalars are sanitized before serialization"
                    ),
                )
            has_allow_nan_false = any(
                kw.arg == "allow_nan"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
                for kw in node.keywords
            )
            if not has_allow_nan_false and not _is_literal_safe(payload):
                yield self.finding(
                    module,
                    node.lineno,
                    f"json.{func.attr} does not pass allow_nan=False",
                    fix_hint=(
                        "strict artifacts must reject NaN/Infinity at the "
                        "emitter; add allow_nan=False"
                    ),
                )
